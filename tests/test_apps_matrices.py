"""Sparse matrix generators: QCD-like structure and references."""

import numpy as np
import pytest

import scipy.sparse as sp

from repro.apps.matrices import BlockSparseMatrix, qcd_like, random_blocked
from repro.errors import ModelError


class TestQcdLike:
    @pytest.fixture(scope="class")
    def small(self):
        return qcd_like(dims=(4, 4, 4, 4))

    def test_published_shape_at_full_size(self):
        # Shape check without building the 49k matrix's values twice.
        matrix = qcd_like()
        assert matrix.n == 49152
        assert matrix.block_rows == 16384
        assert matrix.slots == 13
        assert matrix.nnz == 1916928  # the published QCD nnz

    def test_small_lattice_structure(self, small):
        assert small.block_rows == 256
        assert small.slots == 13

    def test_diagonal_present(self, small):
        for i in range(small.block_rows):
            assert i in small.block_cols[i]

    def test_columns_sorted(self, small):
        for row in small.block_cols:
            assert list(row) == sorted(row)

    def test_columns_unique_on_large_enough_lattice(self):
        # +-2 offsets alias on length-4 dimensions (periodic), so
        # uniqueness needs dims[0:2] > 4, as in the full-size matrix.
        matrix = qcd_like(dims=(6, 6, 4, 4))
        for row in matrix.block_cols:
            assert len(set(row)) == len(row)

    def test_symmetric_pattern(self, small):
        # Periodic-lattice neighbours are mutual.
        pattern = {(i, int(c)) for i in range(small.block_rows) for c in small.block_cols[i]}
        assert all((j, i) in pattern for i, j in pattern)

    def test_multiply_against_scipy(self, small):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, small.n)
        values, columns = small.to_ell()
        rows = np.repeat(np.arange(small.n), values.shape[1])
        coo = sp.coo_matrix(
            (values.ravel(), (rows, columns.ravel())),
            shape=(small.n, small.n),
        )
        assert np.allclose(small.multiply(x), coo @ x, atol=1e-9)


class TestEllConversion:
    def test_ell_width(self):
        matrix = random_blocked(16, 4, seed=1)
        values, columns = matrix.to_ell()
        assert values.shape == (48, 12)
        assert columns.shape == (48, 12)

    def test_rows_of_a_block_share_block_columns(self):
        matrix = random_blocked(16, 4, seed=1)
        _, columns = matrix.to_ell()
        for br in range(4):
            triplet = columns[3 * br : 3 * br + 3]
            assert (triplet // 3 == triplet[0] // 3).all()

    def test_ell_multiply_matches_block_multiply(self):
        matrix = random_blocked(12, 3, seed=2)
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, matrix.n)
        values, columns = matrix.to_ell()
        y = (values * x[columns]).sum(axis=1)
        assert np.allclose(y, matrix.multiply(x), atol=1e-9)


class TestRandomBlocked:
    def test_banded_locality(self):
        matrix = random_blocked(64, 5, bandwidth=6, seed=3)
        for i, row in enumerate(matrix.block_cols):
            assert all(abs(int(c) - i) <= 6 for c in row)

    def test_degree_uniform(self):
        matrix = random_blocked(32, 7, seed=4)
        assert matrix.block_cols.shape == (32, 7)

    def test_too_many_slots_rejected(self):
        with pytest.raises(ModelError):
            random_blocked(4, 10)

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ModelError):
            BlockSparseMatrix(
                3,
                np.zeros((4, 2), dtype=np.int64),
                np.zeros((4, 2, 2, 2)),
            )

    def test_validation_rejects_out_of_range_columns(self):
        cols = np.array([[0, 9]], dtype=np.int64)
        with pytest.raises(ModelError):
            BlockSparseMatrix(3, cols, np.zeros((1, 2, 3, 3)))
