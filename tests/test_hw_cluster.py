"""Hardware cluster simulator: timing semantics and determinism."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import ClusterSimulator, HwConfig, TextureCache
from repro.hw.config import cluster_bytes_per_cycle, deterministic_jitter, issue_intervals
from repro.arch import GTX285
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
)


def arith(dep=1, type_index=1):
    return (EV_ARITH, dep, type_index, 0, None)


def shared(ntrans, dep=0):
    return (EV_SHARED, dep, ntrans, 0, None)


def load(nbytes, ntxn=2, dep=0, payload=None):
    return (EV_GLOBAL_LD, dep, ntxn, nbytes, payload)


def run_one(stream, warps=1, config=None, use_cache=False, resident=1):
    sim = ClusterSimulator(config=config or HwConfig(), use_cache=use_cache)
    return sim.run([[[stream] * warps]], resident_per_sm=resident)


class TestBasics:
    def test_empty_block_completes(self):
        result = ClusterSimulator().run([[[[]]]], 1)
        assert result.cycles >= 0

    def test_dependent_chain_costs_latency_each(self):
        n = 100
        result = run_one([arith()] * n)
        cfg = HwConfig()
        per = cfg.arith_latency[1] + issue_intervals(GTX285)[1]
        assert result.cycles == pytest.approx(n * per, rel=0.25)

    def test_type_iv_slower_than_type_ii(self):
        slow = run_one([arith(type_index=3)] * 50)
        fast = run_one([arith(type_index=1)] * 50)
        assert slow.cycles > fast.cycles

    def test_more_warps_dont_slow_wallclock(self):
        stream = [arith()] * 100
        one = run_one(stream, warps=1)
        eight = run_one(stream, warps=8)
        # 8 warps do 8x the work in (at most) modestly more time.
        assert eight.cycles < 2.0 * one.cycles

    def test_determinism(self):
        stream = [arith()] * 64 + [shared(2)] * 16 + [load(128)] * 8
        a = run_one(stream, warps=4)
        b = run_one(stream, warps=4)
        assert a.cycles == b.cycles
        assert a.events == b.events

    def test_events_counted(self):
        result = run_one([arith()] * 10)
        assert result.events == 10


class TestSharedTiming:
    def test_transactions_scale_busy_time(self):
        few = run_one([shared(2)] * 100)
        many = run_one([shared(32)] * 100)
        assert many.cycles > few.cycles * 2

    def test_zero_transaction_event_is_cheap(self):
        # Fully predicated-off accesses still occupy issue slots (4
        # cycles each on the type II pipe) but never touch the banks.
        result = run_one([shared(0)] * 100)
        assert result.cycles < 700

    def test_replay_stalls_issuing_warp(self):
        config = HwConfig(replay_warp_stall=10.0)
        no_stall = HwConfig(replay_warp_stall=0.0)
        conflicted = [shared(16)] * 50
        slow = run_one(conflicted, config=config)
        fast = run_one(conflicted, config=no_stall)
        assert slow.cycles > fast.cycles

    def test_conflict_free_unaffected_by_replay_config(self):
        clean = [shared(2)] * 50
        a = run_one(clean, config=HwConfig(replay_warp_stall=0.0))
        b = run_one(clean, config=HwConfig(replay_warp_stall=50.0))
        assert a.cycles == b.cycles


class TestGlobalTiming:
    def test_latency_dominates_single_load(self):
        result = run_one([load(128)])
        assert result.cycles >= HwConfig().global_latency

    def test_bandwidth_dominates_many_loads(self):
        n = 2000
        result = run_one([load(128, dep=0)] * n, warps=4)
        rate = cluster_bytes_per_cycle(GTX285)
        service = n * 4 * 128 / rate
        assert result.cycles == pytest.approx(service, rel=0.3)

    def test_dram_busy_accounted(self):
        result = run_one([load(128)] * 10)
        rate = cluster_bytes_per_cycle(GTX285)
        assert result.dram_busy_cycles == pytest.approx(10 * 128 / rate, rel=1e-6)

    def test_stores_do_not_block_warp(self):
        stores = [(EV_GLOBAL_ST, 0, 2, 128, None)] * 50
        loads = [load(128, dep=1)] * 50
        assert run_one(stores).cycles < run_one(loads).cycles

    def test_three_sms_share_the_dram_pipe(self):
        # Eight warps per SM saturate the cluster's DRAM slice; adding
        # SMs then stretches time ~linearly (one shared pipe per
        # cluster, the paper's Section 4.3 topology).
        stream = [load(128)] * 300
        sim = ClusterSimulator()
        one_sm = sim.run([[[stream] * 8]], 1)
        three_sm = sim.run([[[stream] * 8], [[stream] * 8], [[stream] * 8]], 1)
        assert three_sm.cycles > 2.0 * one_sm.cycles


class TestBarriers:
    def test_barrier_waits_for_slowest_warp(self):
        fast = [arith()] * 5 + [(EV_BAR, 0, 0, 0, None)] + [arith()] * 5
        slow = [arith()] * 50 + [(EV_BAR, 0, 0, 0, None)] + [arith()] * 5
        result = ClusterSimulator().run([[[fast, slow]]], 1)
        solo = run_one([arith()] * 55)
        assert result.cycles >= solo.cycles

    def test_barrier_only_streams_complete(self):
        streams = [[(EV_BAR, 0, 0, 0, None)] for _ in range(4)]
        result = ClusterSimulator().run([[streams]], 1)
        assert result.cycles < 200

    def test_unbalanced_block_queue(self):
        stream = [arith()] * 20
        sim = ClusterSimulator()
        result = sim.run([[[stream]], [[stream]] * 3, []], 1)
        assert result.cycles > 0


class TestScheduling:
    def test_resident_limit_serializes_blocks(self):
        stream = [arith()] * 100
        blocks = [[stream]] * 4
        serial = ClusterSimulator().run([blocks], resident_per_sm=1)
        parallel = ClusterSimulator().run([blocks], resident_per_sm=4)
        assert serial.cycles > parallel.cycles

    def test_too_many_queues_rejected(self):
        with pytest.raises(HardwareModelError):
            ClusterSimulator().run([[], [], [], []], 1)

    def test_bad_resident_count(self):
        with pytest.raises(HardwareModelError):
            ClusterSimulator().run([[]], 0)


class TestTextureCache:
    def test_cache_hits_skip_dram(self):
        payload = (True, ((0, 64),))
        stream = [load(64, ntxn=1, payload=payload)] * 50
        cached = run_one(stream, use_cache=True)
        uncached = run_one(stream, use_cache=False)
        assert cached.cycles < uncached.cycles
        assert cached.cache_hit_rate > 0.9

    def test_non_cacheable_payload_ignores_cache(self):
        payload = (False, ((0, 64),))
        stream = [load(64, ntxn=1, payload=payload)] * 20
        result = run_one(stream, use_cache=True)
        assert result.cache_hit_rate == 0.0

    def test_lru_eviction(self):
        cache = TextureCache(capacity=256, line=32, ways=2)
        cache.access(0, 32)
        cache.access(0, 32)
        assert cache.hits == 1
        # 4 sets x 2 ways: touching 3 lines in the same set evicts.
        cache.access(128, 32)
        cache.access(256, 32)
        cache.access(0, 32)
        assert cache.misses == 4

    def test_bad_geometry(self):
        with pytest.raises(HardwareModelError):
            TextureCache(capacity=100, line=32, ways=2)


class TestJitter:
    def test_jitter_deterministic(self):
        assert deterministic_jitter(1234, 8.0) == deterministic_jitter(1234, 8.0)

    def test_jitter_bounds(self):
        for key in range(200):
            j = deterministic_jitter(key, 8.0)
            assert 0 <= j < 8.0

    def test_zero_amplitude(self):
        assert deterministic_jitter(7, 0.0) == 0.0
