"""Batched interpreter: differential equivalence against the per-warp
oracle, grid batching of barrier-free blocks, vectorized coalescing and
bank analysis, interval-list footprints, digest memoization, and the
shared-memory arena transport for pool workers."""

import pickle

import numpy as np
import pytest

from repro.errors import MemoryAccessError, SimulationError
from repro.isa import Imm, KernelBuilder
from repro.memory.banks import (
    BankConfig,
    warp_transactions,
    warp_transactions_batch,
)
from repro.memory.coalescing import (
    TransactionConfig,
    coalesce_warp,
    coalesce_warp_batch,
    coalesce_warp_multi,
)
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig
from repro.sim.engine import SimulationEngine
from repro.sim.functional import _IntervalList
from repro.sim.trace import stream_digest


def _both(kernel, gmem_factory):
    reference = FunctionalSimulator(kernel, gmem=gmem_factory(), batched=False)
    batched = FunctionalSimulator(kernel, gmem=gmem_factory(), batched=True)
    return reference, batched


def assert_block_identical(kernel, launch, gmem_factory, check_state=True):
    """Batched and per-warp traces must agree down to pickled bytes."""
    reference, batched = _both(kernel, gmem_factory)
    for block in launch.all_blocks():
        ref_trace, ref_state = reference.run_block_state(launch, block)
        bat_trace, bat_state = batched.run_block_state(launch, block)
        assert ref_trace == bat_trace
        assert pickle.dumps(ref_trace.warp_streams) == pickle.dumps(
            bat_trace.warp_streams
        )
        if check_state:
            assert np.array_equal(ref_state.R, bat_state.R)
            assert np.array_equal(ref_state.P, bat_state.P)


class TestStressDivergence:
    """Satellite: batched-vs-reference under hostile divergence."""

    def test_per_lane_trip_counts(self):
        # Every lane loops tid % 7 times: seven distinct PC groups that
        # continually split and reconverge.
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(64, "out")
            return gmem

        out = build_gmem().allocations[0].base

        b = KernelBuilder("lanes", params=("out",))
        trip = b.reg()
        seven = b.reg()
        b.mov(seven, Imm(7))
        b.iand(trip, b.tid, Imm(0))  # zero
        b.iadd(trip, b.tid, trip)
        rem = b.reg()
        b.ishr(rem, trip, Imm(0))
        # rem = tid % 7 via repeated subtraction to stay in the ISA
        p = b.pred()
        top = b.label()
        b.isetp(p, "ge", rem, seven)
        with b.if_then(p):
            b.isub(rem, rem, seven)
            b.bra(top)
        acc = b.reg()
        b.mov(acc, Imm(0))
        loop = b.label()
        q = b.pred()
        b.isetp(q, "gt", rem, Imm(0))
        with b.if_then(q):
            b.iadd(acc, acc, Imm(3))
            b.isub(rem, rem, Imm(1))
            b.bra(loop)
        addr = b.reg()
        b.imad(addr, b.tid, Imm(4), b.param("out"))
        b.stg(addr, acc)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(1, 1), block_threads=64, params={"out": out}
        )
        assert_block_identical(kernel, launch, build_gmem)

    def test_tail_guard_mid_warp_and_guarded_stores(self):
        # 147 threads: the guard cuts lane 19 of warp 4; stores are
        # additionally guarded by a data-dependent predicate.
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(256, "buf")
            return gmem

        probe = build_gmem()
        buf = probe.allocations[0].base

        b = KernelBuilder("tail", params=("buf", "n"))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        guard = b.pred()
        b.isetp(guard, "lt", gid, b.param("n"))
        with b.if_then(guard):
            addr = b.reg()
            b.imad(addr, gid, Imm(4), b.param("buf"))
            v = b.reg()
            b.ldg(v, addr)
            odd = b.reg()
            b.iand(odd, gid, Imm(1))
            store_p = b.pred()
            b.isetp(store_p, "eq", odd, Imm(1))
            with b.if_then(store_p):
                b.fadd(v, v, Imm(1.0))
                b.stg(addr, v)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(1, 1),
            block_threads=160,
            params={"buf": buf, "n": 147},
            record_segments=True,
        )
        assert_block_identical(kernel, launch, build_gmem)

    def test_only_lane_31_survives(self):
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(32, "out")
            return gmem

        out = build_gmem().allocations[0].base

        b = KernelBuilder("lane31", params=("out",))
        p = b.pred()
        b.isetp(p, "lt", b.tid, Imm(31))
        with b.if_then(p):
            b.exit()  # lanes 0..30 leave immediately
        v = b.reg()
        b.imul(v, b.tid, Imm(2))
        addr = b.reg()
        b.imad(addr, b.tid, Imm(4), b.param("out"))
        b.stg(addr, v)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(grid=(1, 1), block_threads=32, params={"out": out})
        reference, batched = _both(kernel, build_gmem)
        ref = reference.run_block(launch, (0, 0))
        bat = batched.run_block(launch, (0, 0))
        assert ref == bat
        # exactly one active lane did the store
        assert ref.totals.instructions["stg"] == 1

    def test_divergent_barrier_rejected_in_batched_mode(self):
        b = KernelBuilder("divbar")
        p = b.pred()
        b.isetp(p, "lt", b.tid, Imm(5))
        with b.if_then(p):
            b.bar()
        b.exit()
        kernel = b.build()
        sim = FunctionalSimulator(kernel, batched=True)
        from repro.errors import DivergenceError

        with pytest.raises(DivergenceError):
            sim.run(LaunchConfig(grid=(1, 1), block_threads=32))

    def test_instruction_budget_enforced_in_batched_mode(self):
        b = KernelBuilder("inf")
        top = b.label()
        r = b.reg()
        b.mov(r, Imm(1))
        b.bra(top)
        b.exit()
        kernel = b.build()
        sim = FunctionalSimulator(kernel, max_warp_instructions=1000, batched=True)
        with pytest.raises(SimulationError):
            sim.run(LaunchConfig(grid=(1, 1), block_threads=32))


class TestGridBatching:
    """Barrier-free grids execute whole batches of blocks per step."""

    def _stream_kernel(self):
        b = KernelBuilder("stream", params=("buf", "n"))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        guard = b.pred()
        b.isetp(guard, "lt", gid, b.param("n"))
        with b.if_then(guard):
            addr = b.reg()
            b.imad(addr, gid, Imm(4), b.param("buf"))
            v = b.reg()
            b.ldg(v, addr)
            b.fmad(v, v, v, v)
            b.stg(addr, v)
        b.exit()
        return b.build()

    def test_grid_batch_bit_identical_and_ctaid_correct(self):
        kernel = self._stream_kernel()
        n = 17 * 64 - 9  # ragged tail cuts mid-warp in the last block

        def build_gmem():
            gmem = GlobalMemory()
            base = gmem.alloc(17 * 64, "buf")
            gmem.write(
                base + 4 * np.arange(n, dtype=np.int64),
                np.arange(n, dtype=np.float64) / 7.0,
            )
            return gmem

        probe = build_gmem()
        buf = probe.allocations[0].base
        launch = LaunchConfig(
            grid=(17, 1), block_threads=64, params={"buf": buf, "n": n}
        )
        reference = FunctionalSimulator(kernel, gmem=build_gmem(), batched=False)
        grid_gmem = build_gmem()
        batched = FunctionalSimulator(kernel, gmem=grid_gmem, batched=True)
        blocks = launch.all_blocks()
        ref = [reference.run_block(launch, block) for block in blocks]
        bat = batched.run_blocks(launch, blocks)
        assert len(bat) == len(ref)
        for expected, got in zip(ref, bat):
            assert expected == got
            assert pickle.dumps(expected) == pickle.dumps(got)
        # numerical results (ctaid-dependent addressing) are correct
        # (fmad rounds through float32, operand by operand)
        values32 = (np.arange(n, dtype=np.float64) / 7.0).astype(np.float32)
        expected_out = (values32 * values32 + values32).astype(np.float64)
        got_out = grid_gmem.read_array(buf, n)
        np.testing.assert_array_equal(got_out, expected_out)

    def test_grid_batch_with_shared_memory(self):
        # Barrier-free per-warp shared traffic: arena slices must not
        # alias across blocks and bank counts must be unchanged.
        def build_kernel():
            b = KernelBuilder("smem", params=("out",))
            b.alloc_shared(96)  # deliberately not a multiple of 16 words
            sa = b.reg()
            b.ishl(sa, b.tid, Imm(2))
            v = b.reg()
            b.imad(v, b.ctaid_x, Imm(100), b.tid)
            b.sts(v, sa)
            got = b.reg()
            b.lds(got, sa)
            addr = b.reg()
            gid = b.reg()
            b.imad(gid, b.ctaid_x, b.ntid, b.tid)
            b.imad(addr, gid, Imm(4), b.param("out"))
            b.stg(addr, got)
            b.exit()
            return b.build()

        kernel = build_kernel()

        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(6 * 64, "out")
            return gmem

        probe = build_gmem()
        out = probe.allocations[0].base
        launch = LaunchConfig(
            grid=(6, 1), block_threads=64, params={"out": out}
        )
        reference = FunctionalSimulator(kernel, gmem=build_gmem(), batched=False)
        grid_gmem = build_gmem()
        batched = FunctionalSimulator(kernel, gmem=grid_gmem, batched=True)
        blocks = launch.all_blocks()
        ref = [reference.run_block(launch, block) for block in blocks]
        bat = batched.run_blocks(launch, blocks)
        for expected, got in zip(ref, bat):
            assert expected == got
        expected_out = np.concatenate(
            [bx * 100 + np.arange(64.0) for bx in range(6)]
        )
        np.testing.assert_array_equal(
            grid_gmem.read_array(out, 6 * 64), expected_out
        )

    def test_grid_batch_shared_bounds_still_checked(self):
        b = KernelBuilder("oob")
        b.alloc_shared(8)
        sa = b.reg()
        b.ishl(sa, b.tid, Imm(2))  # lanes 8.. exceed the footprint
        v = b.reg()
        b.mov(v, Imm(1.0))
        b.sts(v, sa)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(grid=(4, 1), block_threads=32)
        sim = FunctionalSimulator(kernel, batched=True)
        with pytest.raises(MemoryAccessError):
            sim.run_blocks(launch, launch.all_blocks())

    def test_chunking_respects_batch_size(self):
        kernel = self._stream_kernel()
        gmem = GlobalMemory()
        buf = gmem.alloc(5 * 32, "buf")
        launch = LaunchConfig(
            grid=(5, 1), block_threads=32, params={"buf": buf, "n": 5 * 32}
        )
        sim = FunctionalSimulator(kernel, gmem=gmem, batched=True)
        sim.grid_batch_blocks = 2  # force several chunks plus a tail
        traces = sim.run_blocks(launch, launch.all_blocks())
        assert [t.block for t in traces] == launch.all_blocks()


class TestVectorizedMemoryAnalysis:
    """Batch coalescing / bank analysis vs the scalar protocol."""

    def test_coalesce_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        configs = [
            TransactionConfig(),
            TransactionConfig(min_segment=16, max_segment=128),
            TransactionConfig(min_segment=4, max_segment=4),
        ]
        for trial in range(60):
            num_warps = int(rng.integers(1, 6))
            config = configs[trial % len(configs)]
            if trial % 3 == 0:
                base = int(rng.integers(0, 1000)) * 4
                addresses = base + np.arange(num_warps * 32).reshape(
                    num_warps, 32
                ) * 4
            else:
                addresses = rng.integers(0, 4096, size=(num_warps, 32)) * 4
            active = rng.random((num_warps, 32)) < rng.random()
            counts, nbytes, segments = coalesce_warp_batch(
                addresses, active, 4, config, want_segments=True
            )
            for w in range(num_warps):
                expected = coalesce_warp(
                    list(addresses[w]), list(active[w]), 4, config
                )
                assert counts[w] == len(expected)
                assert nbytes[w] == sum(t.size for t in expected)
                assert segments[w] == tuple(
                    (t.address, t.size) for t in expected
                )

    def test_coalesce_multi_shares_totals(self):
        rng = np.random.default_rng(5)
        sweep = [
            TransactionConfig(min_segment=32, max_segment=128),
            TransactionConfig(min_segment=16, max_segment=128),
            TransactionConfig(min_segment=4, max_segment=4),
        ]
        addresses = rng.integers(0, 8192, size=(3, 32)) * 4
        active = rng.random((3, 32)) < 0.8
        out = coalesce_warp_multi(
            addresses, active, 4, sweep,
            want_segments_at=0, totals_only=range(1, 3),
        )
        for i, config in enumerate(sweep):
            counts, nbytes, total_txns, total_bytes, segments = out[i]
            expected_txns = expected_bytes = 0
            for w in range(3):
                transactions = coalesce_warp(
                    list(addresses[w]), list(active[w]), 4, config
                )
                expected_txns += len(transactions)
                expected_bytes += sum(t.size for t in transactions)
            assert total_txns == expected_txns
            assert total_bytes == expected_bytes
            if i == 0:
                assert counts is not None and segments is not None
            else:
                assert counts is None and segments is None

    def test_coalesce_unaligned_falls_back_to_scalar(self):
        addresses = np.array([[2, 6, 10, 14] + [0] * 28])
        active = np.array([[True] * 4 + [False] * 28])
        counts, nbytes, segments = coalesce_warp_batch(
            addresses, active, 4, TransactionConfig(), want_segments=True
        )
        expected = coalesce_warp(list(addresses[0]), list(active[0]), 4)
        assert counts[0] == len(expected)
        assert segments[0] == tuple((t.address, t.size) for t in expected)

    def test_bank_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        config = BankConfig()
        for _ in range(40):
            num_warps = int(rng.integers(1, 9))
            addresses = rng.integers(0, 4096, size=(num_warps, 32)) * 4
            active = rng.random((num_warps, 32)) < rng.random()
            actual, ideal = warp_transactions_batch(addresses, active, config)
            for w in range(num_warps):
                got, want = warp_transactions(
                    list(addresses[w]), list(active[w]), config
                )
                assert actual[w] == got and ideal[w] == want

    def test_bank_2d_dispatch_through_scalar_name(self):
        addresses = np.arange(64).reshape(2, 32) * 4
        active = np.ones((2, 32), dtype=bool)
        actual, ideal = warp_transactions(addresses, active)
        assert actual.tolist() == [2, 2] and ideal.tolist() == [2, 2]


class TestIntervalLists:
    """Satellite: bounded interval lists replace single hulls."""

    def test_union_is_order_independent(self):
        import itertools

        hulls = [(0, 8), (32, 40), (8, 12), (100, 108), (36, 48)]
        results = set()
        for perm in itertools.permutations(hulls):
            intervals = _IntervalList()
            for lo, hi in perm:
                intervals.add(lo, hi)
            results.add(tuple(intervals.spans))
        assert results == {((0, 12), (32, 48), (100, 108))}

    def test_adjacent_intervals_merge(self):
        intervals = _IntervalList()
        intervals.add(0, 4)
        intervals.add(4, 8)
        assert intervals.spans == [(0, 8)]

    def test_containment_and_bridging(self):
        intervals = _IntervalList()
        intervals.add(0, 100)
        intervals.add(10, 20)
        assert intervals.spans == [(0, 100)]
        intervals.add(200, 300)
        intervals.add(90, 210)
        assert intervals.spans == [(0, 300)]

    def test_cap_widens_smallest_gap(self):
        intervals = _IntervalList(cap=2, watermark=4)
        for i in range(5):
            intervals.add(i * 100, i * 100 + 4)
        assert len(intervals.spans) <= 4
        assert len(intervals.capped()) <= 2
        capped = intervals.capped()
        assert capped[0][0] == 0 and capped[-1][1] == 404

    def test_striped_kernel_has_no_raw_false_positive(self):
        # Each block loads its own two far-apart stripes of one shared
        # allocation and stores a third; a single [lo, hi) hull per
        # allocation would span every other block's store stripe and
        # fire the cross-block RAW warning -- interval lists must not.
        import warnings

        stride = 256  # words per stripe
        blocks = 4

        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(stride * 3 * blocks, "data")
            return gmem

        probe = build_gmem()
        data = probe.allocations[0].base

        b = KernelBuilder("striped", params=("data",))
        low = b.reg()
        b.imad(low, b.ctaid_x, Imm(stride * 4), b.tid)
        b.imul(low, b.ctaid_x, Imm(stride * 4))
        lane4 = b.reg()
        b.ishl(lane4, b.tid, Imm(2))
        b.iadd(low, low, lane4)
        b.iadd(low, low, b.param("data"))
        high = b.reg()
        b.iadd(high, low, Imm(stride * 4 * 2 * blocks))
        v1 = b.reg()
        v2 = b.reg()
        b.ldg(v1, low)
        b.ldg(v2, high)
        out = b.reg()
        b.iadd(out, low, Imm(stride * 4 * blocks))
        acc = b.reg()
        b.fadd(acc, v1, v2)
        # steer the store address through loaded data so the kernel is
        # data-dependent (only data-dependent kernels are RAW-checked)
        zero = b.reg()
        b.imul(zero, v1, Imm(0))
        b.iadd(out, out, zero)
        b.stg(out, acc)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(blocks, 1), block_threads=32, params={"data": data}
        )
        engine = SimulationEngine(kernel, gmem=build_gmem())
        assert engine.dependence.data_dependent
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails
            trace = engine.run(launch)
        # loads produce two disjoint stripes per block, not one hull
        sample = trace.block_traces[0]
        assert len(sample.global_load_ranges) == 2


class TestDigestMemoization:
    """Satellite: BlockTrace memoizes stream digests and stats keys."""

    def _trace(self):
        b = KernelBuilder("d")
        r = b.reg()
        b.mov(r, Imm(1))
        b.exit()
        kernel = b.build()
        sim = FunctionalSimulator(kernel)
        return sim.run_block(
            LaunchConfig(grid=(1, 1), block_threads=32), (0, 0)
        )

    def test_digest_matches_functional_form_and_is_cached(self):
        trace = self._trace()
        first = trace.stream_digest()
        assert first == stream_digest(trace.warp_streams)
        assert trace._digest_memo is not None
        trace._digest_memo = (trace._digest_memo[0], "poisoned")
        assert trace.stream_digest() == "poisoned"  # cache hit

    def test_digest_invalidated_on_stream_growth(self):
        trace = self._trace()
        before = trace.stream_digest()
        trace.warp_streams[0].append((0, 0, 0, 0, None))
        after = trace.stream_digest()
        assert after != before
        assert after == stream_digest(trace.warp_streams)

    def test_stats_key_cached_and_invalidated(self):
        trace = self._trace()
        key = trace.stats_key()
        assert trace.stats_key() is trace._stats_key_memo[1]
        trace.warp_streams[0].append((0, 0, 0, 0, None))
        assert trace.stats_key() != key

    def test_hw_engine_reexports_stream_digest(self):
        from repro.hw.engine import stream_digest as hw_digest

        assert hw_digest is stream_digest


class TestSharedArenaTransport:
    """Satellite: GlobalMemory ships to workers via shared memory."""

    def test_round_trip_preserves_contents_and_metadata(self):
        gmem = GlobalMemory()
        base = gmem.alloc_array(np.arange(100.0), "a")
        other = gmem.alloc(50, "b")
        gmem.mark_cacheable("a")
        shared = gmem.share()
        assert shared is not None
        descriptor, segment = shared
        try:
            rebuilt = GlobalMemory.from_shared(descriptor)
            assert rebuilt.digest() == gmem.digest()
            np.testing.assert_array_equal(
                rebuilt.read_array(base, 100), np.arange(100.0)
            )
            assert rebuilt.is_cacheable(base)
            assert not rebuilt.is_cacheable(other)
            # worker copies are private: writes must not leak back
            rebuilt.write(np.array([base]), np.array([999.0]))
            assert gmem.read_array(base, 1)[0] == 0.0
        finally:
            segment.close()
            segment.unlink()

    def test_digest_mismatch_detected(self):
        gmem = GlobalMemory()
        gmem.alloc_array(np.arange(16.0), "a")
        descriptor, segment = gmem.share()
        try:
            descriptor = dict(descriptor, digest="not-the-digest")
            with pytest.raises(MemoryAccessError):
                GlobalMemory.from_shared(descriptor)
        finally:
            segment.close()
            segment.unlink()

    def test_engine_workers_with_shared_arena_match_serial(self, monkeypatch):
        import repro.sim.engine as engine_mod

        # Force the shared-memory transport even under a fork pool.
        monkeypatch.setattr(engine_mod, "start_method", lambda: "spawn")

        def build():
            gmem = GlobalMemory()
            base = gmem.alloc_array(
                np.arange(4 * 64, dtype=np.float64), "buf"
            )
            return gmem, base

        b = KernelBuilder("pool", params=("buf",))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        v = b.reg()
        b.ldg(v, addr)
        # index a second load through the data: data-dependent traces
        # defeat dedup, so every block really runs in the pool
        idx = b.reg()
        b.imad(idx, v, Imm(0), addr)
        w = b.reg()
        b.ldg(w, idx)
        b.fmad(w, w, w, w)
        b.stg(addr, w)
        b.exit()
        kernel = b.build()

        gmem_a, base_a = build()
        launch = LaunchConfig(
            grid=(4, 1), block_threads=64, params={"buf": base_a}
        )
        serial = SimulationEngine(kernel, gmem=gmem_a).run(launch)
        gmem_b, _ = build()
        parallel = SimulationEngine(kernel, gmem=gmem_b, workers=2)
        parallel.simulator.grid_batch_blocks = 1  # several pool chunks
        fast = parallel.run(launch)
        assert [s.canonical() for s in serial.stages] == [
            s.canonical() for s in fast.stages
        ]
        assert all(
            a == b for a, b in zip(serial.block_traces, fast.block_traces)
        )
