"""Observability subsystem: recorder, pool propagation, export, report.

The invariants under test mirror the design constraints in
:mod:`repro.obs`:

* span IDs are deterministic (``lane:seq``), never wall clock;
* disabled instrumentation is a shared no-op (no per-call allocation);
* worker-side spans ship home through the pool envelope and land in
  the parent recorder *exactly once* -- including under injected
  crashes and hangs;
* recording on vs off never changes a simulation payload's pickled
  bytes (traces, MeasuredRuns);
* the exported session round-trips through ``repro obs report`` and
  the Chrome trace validates structurally.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

import pytest

import repro.pool as pool_mod
from repro import faults, obs
from repro.apps.matmul import build_matmul_kernel, prepare_problem
from repro.hw import HardwareGpu
from repro.obs import core, export, report
from repro.obs import log as obs_log
from repro.pool import PoolHealth, map_tasks
from repro.sim.engine import SimulationEngine


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """No recorder or log override may leak between tests."""
    yield
    core.stop()
    obs_log.set_level(None)


# ----------------------------------------------------------------------
# picklable pool helpers (spawn workers re-import this module)
# ----------------------------------------------------------------------
def _times_ten(task):
    return task * 10


# ----------------------------------------------------------------------
# recorder core
# ----------------------------------------------------------------------
class TestRecorder:
    def test_span_ids_are_deterministic(self):
        recorder = core.Recorder()
        with recorder.span("a") as a_id:
            with recorder.span("b") as b_id:
                pass
        assert (a_id, b_id) == ("main:1", "main:2")
        by_id = {e["id"]: e for e in recorder.events}
        assert by_id["main:2"]["parent"] == "main:1"
        assert by_id["main:1"]["parent"] is None
        # Completion order: inner span closes first.
        assert [e["name"] for e in recorder.events] == ["b", "a"]

    def test_span_records_error_flag(self):
        recorder = core.Recorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("x")
        (event,) = recorder.events
        assert event["error"] is True
        assert recorder._stack == []  # unwound despite the raise

    def test_pool_lanes_are_deterministic(self):
        recorder = core.Recorder()
        assert recorder.next_pool_lane() == "pool0"
        assert recorder.next_pool_lane() == "pool1"
        worker = core.Recorder(lane="pool1.t3")
        assert worker.next_pool_lane() == "pool1.t3.pool0"

    def test_histogram_adoption_merges(self):
        parent = core.Recorder()
        parent.observe("width", 4)
        child = core.Recorder(lane="pool0.t0")
        child.observe("width", 10)
        child.inc("tasks", 2)
        parent.adopt(
            child.events, child.counters, child.gauges, child.histograms
        )
        snapshot = parent.metrics_snapshot()
        assert snapshot["histograms"]["width"] == {
            "count": 2, "total": 14, "min": 4, "max": 10, "mean": 7.0,
        }
        assert snapshot["counters"]["tasks"] == 2

    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        assert obs.span("anything", k=1) is obs.span("other")
        obs.event("dropped")  # must not raise with no recorder
        obs.annotate(k="v")

    def test_start_stop_installs_and_returns(self):
        recorder = obs.start()
        assert obs.enabled() and obs.current() is recorder
        assert obs.stop() is recorder
        assert not obs.enabled()

    def test_capture_installs_fresh_and_restores(self):
        outer = obs.start()
        with obs.capture("pool0.t1") as inner:
            assert obs.current() is inner
            assert inner is not outer and inner.lane == "pool0.t1"
        assert obs.current() is outer


# ----------------------------------------------------------------------
# structured log
# ----------------------------------------------------------------------
class TestLog:
    def test_default_threshold_renders_info(self, capsys):
        obs_log.info("hello from the pipeline")
        assert "hello from the pipeline" in capsys.readouterr().err

    def test_threshold_filters_stderr(self, capsys):
        obs_log.set_level("error")
        obs_log.warning("too quiet to print")
        assert capsys.readouterr().err == ""

    def test_env_threshold(self, monkeypatch, capsys):
        monkeypatch.setenv(obs_log.LOG_ENV, "debug")
        obs_log.debug("now visible")
        assert "now visible" in capsys.readouterr().err

    def test_unknown_env_fails_open_to_info(self, monkeypatch):
        monkeypatch.setenv(obs_log.LOG_ENV, "chatty")
        assert obs_log.threshold() == "info"

    def test_set_level_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.set_level("loud")

    def test_events_recorded_below_threshold(self, capsys):
        obs_log.set_level("error")
        recorder = obs.start()
        obs_log.info("silent but recorded", spec="gtx285")
        obs.stop()
        assert capsys.readouterr().err == ""
        (event,) = recorder.events
        assert event["type"] == "log"
        assert event["level"] == "info"
        assert event["fields"] == {"spec": "gtx285"}

    def test_render_false_records_without_printing(self, capsys):
        recorder = obs.start()
        obs_log.warning("owned by warnings.warn", render=False)
        obs.stop()
        assert capsys.readouterr().err == ""
        assert recorder.events[0]["level"] == "warning"


# ----------------------------------------------------------------------
# worker-side span propagation through the pool
# ----------------------------------------------------------------------
def _pool_task_indices(recorder) -> list:
    return [
        e["attrs"]["index"]
        for e in recorder.events
        if e["type"] == "span" and e["name"] == "pool.task"
    ]


class TestPoolSpanPropagation:
    def test_worker_spans_land_exactly_once(self):
        recorder = obs.start()
        try:
            out = map_tasks(list(range(6)), 2, _times_ten, _times_ten)
        finally:
            obs.stop()
        assert out == [i * 10 for i in range(6)]
        assert sorted(_pool_task_indices(recorder)) == list(range(6))
        lanes = {
            e["lane"]
            for e in recorder.events
            if e["type"] == "span" and e["name"] == "pool.task"
        }
        assert lanes == {f"pool0.t{i}" for i in range(6)}
        (outer,) = [
            e for e in recorder.events if e["name"] == "pool.map_tasks"
        ]
        assert outer["attrs"]["mode"] == "pool"

    def test_spawn_workers_ship_spans_home(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "start_method", lambda: "spawn")
        recorder = obs.start()
        try:
            out = map_tasks(list(range(4)), 2, _times_ten, _times_ten)
        finally:
            obs.stop()
        assert out == [i * 10 for i in range(4)]
        assert sorted(_pool_task_indices(recorder)) == list(range(4))

    def test_serial_mode_records_no_worker_spans(self):
        recorder = obs.start()
        try:
            map_tasks(list(range(4)), 0, _times_ten, _times_ten)
        finally:
            obs.stop()
        assert _pool_task_indices(recorder) == []
        (outer,) = [
            e for e in recorder.events if e["name"] == "pool.map_tasks"
        ]
        assert outer["attrs"]["mode"] == "serial"

    def test_crash_retry_ships_spans_exactly_once(self):
        recorder = obs.start()
        health = PoolHealth()
        try:
            with faults.injected(crash_task=1, crash_attempts=1):
                out = map_tasks(
                    list(range(6)), 2, _times_ten, _times_ten,
                    health=health,
                )
        finally:
            obs.stop()
        assert out == [i * 10 for i in range(6)]
        assert health.worker_crashes == 1
        # The crashed attempt shipped nothing; every index that finished
        # through the pool lands exactly one span -- never two.
        indices = _pool_task_indices(recorder)
        assert sorted(set(indices)) == sorted(indices)
        assert set(indices) <= set(range(6))
        assert recorder.counters.get("pool.worker_crashes") == 1

    def test_hung_task_spans_stay_unique(self):
        recorder = obs.start()
        health = PoolHealth()
        try:
            with faults.injected(hang_task=0, hang_seconds=120.0):
                out = map_tasks(
                    list(range(4)), 2, _times_ten, _times_ten,
                    health=health, task_timeout=2.0,
                )
        finally:
            obs.stop()
        assert out == [i * 10 for i in range(4)]
        assert health.timeouts == 1
        indices = _pool_task_indices(recorder)
        # The hung task was reaped and finished serially: no pool span.
        assert 0 not in indices
        assert sorted(set(indices)) == sorted(indices)
        assert recorder.counters.get("pool.timeouts") == 1
        assert recorder.counters.get("pool.serial_fallbacks") == 1


# ----------------------------------------------------------------------
# payload byte-identity with recording on
# ----------------------------------------------------------------------
def _engine_trace():
    problem = prepare_problem(64, 8)
    engine = SimulationEngine(build_matmul_kernel(64, 8), gmem=problem.gmem)
    return engine.run(problem.launch()), problem.launch()


class TestByteIdentity:
    def test_trace_and_run_identical_with_recording(self):
        trace_off, launch = _engine_trace()
        run_off = HardwareGpu().measure(
            list(trace_off.block_traces), launch.num_blocks, 4
        )
        recorder = obs.start()
        try:
            trace_on, _ = _engine_trace()
            run_on = HardwareGpu().measure(
                list(trace_on.block_traces), launch.num_blocks, 4
            )
        finally:
            obs.stop()
        # engine_stats carries wall-clock; everything else must match
        # to the byte.
        assert pickle.dumps(replace(trace_on, engine_stats=None)) == \
            pickle.dumps(replace(trace_off, engine_stats=None))
        assert pickle.dumps(run_on) == pickle.dumps(run_off)
        names = {
            e["name"] for e in recorder.events if e["type"] == "span"
        }
        assert {"engine.run", "engine.simulate", "hw.measure"} <= names
        assert recorder.counters.get("engine.runs") == 1
        assert recorder.counters.get("hw.measures") == 1


# ----------------------------------------------------------------------
# export + report round trip
# ----------------------------------------------------------------------
def _recorded_session() -> core.Recorder:
    recorder = obs.start()
    try:
        with obs.span("engine.run", kernel="matmul"):
            with obs.span("engine.proof", classes=1):
                pass
            obs.event("checkpoint", stage=2)
        obs.metrics.inc("cache.trace.hits", 3)
        obs.metrics.inc("cache.trace.misses", 1)
        obs.metrics.inc("engine.health.worker_crashes", 1)
        obs_log.warning("a degraded thing happened", render=False)
        obs.annotate(**{"spec.gtx285": "fingerprint"})
        # A worker capture adopted in, exactly as the pool does it.
        with obs.capture("pool0.t0") as worker:
            with worker.span("pool.task", index=0, attempt=0):
                pass
        recorder.adopt(
            worker.events, worker.counters, worker.gauges,
            worker.histograms,
        )
    finally:
        obs.stop()
    return recorder


class TestExportAndReport:
    def test_export_writes_all_four_files(self, tmp_path):
        paths = export.export_session(
            _recorded_session(), tmp_path, argv=["matmul"],
            command="matmul", exit_status=0,
        )
        for name in ("events", "trace", "metrics", "manifest"):
            assert (tmp_path / f"{name}.json{'l' if name == 'events' else ''}").exists(), name
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert all(isinstance(e, dict) for e in events)
        assert paths["manifest"].endswith("manifest.json")

    def test_chrome_trace_validates(self, tmp_path):
        export.export_session(_recorded_session(), tmp_path)
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert isinstance(trace["traceEvents"], list)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases <= {"M", "X", "i"}
        # One named track per lane, main first (tid 0).
        threads = {
            e["args"]["name"]: e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert threads["main"] == 0
        assert "pool0.t0" in threads
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0

    def test_manifest_provenance(self, tmp_path):
        export.export_session(
            _recorded_session(), tmp_path, argv=["matmul", "--n", "64"],
            command="matmul", exit_status=0,
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == export.MANIFEST_SCHEMA
        assert manifest["command"] == "matmul"
        assert manifest["argv"] == ["matmul", "--n", "64"]
        assert manifest["exit_status"] == 0
        from repro.sim.engine import ENGINE_CACHE_VERSION

        assert manifest["cache_versions"]["engine"] == ENGINE_CACHE_VERSION
        assert manifest["annotations"] == {"spec.gtx285": "fingerprint"}
        assert manifest["tuning"]["grid_batch_blocks"]["source"]

    def test_report_round_trip(self, tmp_path):
        export.export_session(
            _recorded_session(), tmp_path, command="matmul"
        )
        built = report.build_report(tmp_path)
        assert built["schema"] == report.REPORT_SCHEMA
        assert built["command"] == "matmul"
        assert built["totals"]["lanes"] == 2
        names = [e["name"] for e in built["top_spans"]]
        assert set(names) == {"engine.run", "engine.proof", "pool.task"}
        assert built["caches"]["trace"]["hit_rate"] == 0.75
        degradations = built["degradations"]
        assert degradations["health_counters"] == {
            "engine.health.worker_crashes": 1
        }
        assert degradations["warnings"][0]["message"] == (
            "a degraded thing happened"
        )
        text = report.render_text(built)
        assert "engine.health.worker_crashes" in text
        markdown = report.render_markdown(built)
        assert "| cache | hit rate |" in markdown

    def test_self_time_subtracts_children(self, tmp_path):
        recorder = obs.start()
        try:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        finally:
            obs.stop()
        export.export_session(recorder, tmp_path)
        spans = {
            e["name"]: e
            for e in report.build_report(tmp_path)["top_spans"]
        }
        assert spans["outer"]["self_ms"] <= spans["outer"]["total_ms"]
        assert spans["inner"]["self_ms"] == spans["inner"]["total_ms"]

    def test_report_on_empty_directory_raises(self, tmp_path):
        with pytest.raises(report.ObsReportError):
            report.build_report(tmp_path / "nowhere")

    def test_session_exports_on_failure(self, tmp_path):
        with pytest.raises(RuntimeError):
            with obs.session(tmp_path, argv=["x"], command="x"):
                raise RuntimeError("mid-run failure")
        assert not obs.enabled()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["exit_status"] == 1


# ----------------------------------------------------------------------
# cache provenance in performance reports
# ----------------------------------------------------------------------
class TestCacheProvenance:
    def test_cold_then_hit(self, tmp_path, model):
        from repro.apps.common import execute

        def run():
            problem = prepare_problem(64, 8)
            return execute(
                "matmul",
                build_matmul_kernel(64, 8),
                problem.gmem,
                problem.launch(),
                model=model,
                trace_cache=str(tmp_path / "traces"),
            )

        first = run().report.cache_provenance
        assert first["trace"] == "cold"
        assert first["measured"] == "off"  # no measured-run cache wired
        assert "calibration" not in first  # model built without the CLI
        second = run().report.cache_provenance
        assert second["trace"] == "hit"

    def test_render_includes_cache_line(self, model):
        from repro.apps.common import execute

        problem = prepare_problem(64, 8)
        run = execute(
            "matmul",
            build_matmul_kernel(64, 8),
            problem.gmem,
            problem.launch(),
            model=model,
        )
        assert run.report.cache_provenance == {
            "trace": "off", "measured": "off"
        }
        assert "caches               : measured off | trace off" in (
            run.report.render()
        )
