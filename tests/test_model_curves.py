"""Throughput curves: interpolation and saturation analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError
from repro.model import ThroughputCurve, instruction_curves, shared_curve


def curve():
    return ThroughputCurve((1.0, 4.0, 8.0, 16.0), (1.0, 4.0, 7.0, 8.0))


class TestInterpolation:
    def test_exact_at_samples(self):
        c = curve()
        for x, y in zip(c.xs, c.ys):
            assert c.at(x) == y

    def test_linear_between_samples(self):
        assert curve().at(2.5) == pytest.approx(2.5)
        assert curve().at(12.0) == pytest.approx(7.5)

    def test_clamped_below(self):
        assert curve().at(0.5) == 1.0

    def test_clamped_above(self):
        assert curve().at(100.0) == 8.0

    def test_peak(self):
        assert curve().peak == 8.0

    def test_saturation_x(self):
        assert curve().saturation_x(0.85) == 8.0

    def test_bad_curves_rejected(self):
        with pytest.raises(CalibrationError):
            ThroughputCurve((), ())
        with pytest.raises(CalibrationError):
            ThroughputCurve((1.0, 1.0), (1.0, 2.0))
        with pytest.raises(CalibrationError):
            ThroughputCurve((1.0, 2.0), (1.0,))

    @given(st.floats(min_value=0.0, max_value=64.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_interpolation_within_sample_range(self, x):
        c = curve()
        value = c.at(x)
        assert min(c.ys) <= value <= max(c.ys)


class TestFromCalibration:
    def test_instruction_curves_cover_all_types(self, tables):
        curves = instruction_curves(tables)
        assert set(curves) == {"I", "II", "III", "IV"}
        for c in curves.values():
            assert c.at(16) > 0

    def test_shared_curve_in_bytes_per_second(self, tables, gpu):
        c = shared_curve(tables)
        assert c.at(32) > 0.5 * gpu.spec.peak_shared_bandwidth

    def test_interpolated_warp_counts(self, tables):
        curves = instruction_curves(tables)
        mid = curves["II"].at(3)
        assert curves["II"].at(2) <= mid <= curves["II"].at(4)
