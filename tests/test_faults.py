"""Failure matrix for the fault-tolerant execution substrate.

Every degraded path (worker crash, hung task, corrupt cache entry,
failed cache write, shared-memory attach failure, interrupt) must
return results pickle-byte-identical to a healthy serial run, with the
degradation visible in the health counters -- never a changed result,
never a silent recovery.  Faults are injected deterministically through
:mod:`repro.faults`.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import replace

import pytest

import repro.sim.engine as engine_mod
from repro import faults
from repro.apps import spmv as spmv_app
from repro.apps.common import kernel_resources
from repro.apps.matmul import build_matmul_kernel, prepare_problem
from repro.apps.matrices import qcd_like
from repro.faults import FaultPlan, FaultPlanError, parse_plan
from repro.hw.gpu import HardwareGpu
from repro.pool import (
    HealthRecord,
    PoolHealth,
    default_task_timeout,
    map_tasks,
    track_segment,
)
from repro.sim.engine import SimulationEngine
from repro.util import VersionedPickleCache, atomic_write_bytes

# ----------------------------------------------------------------------
# picklable pool helpers
# ----------------------------------------------------------------------


def _times_ten(task):
    return task * 10


def _raise_on_three(task):
    if task == 3:
        raise ValueError("genuine bug in task 3")
    return task * 10


def _serial_raise_on_three(task):
    if task == 3:
        raise ValueError("genuine bug in task 3")
    return task * 10


# ----------------------------------------------------------------------
# fault-plan parsing and activation
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = parse_plan("crash_task=1,crash_attempts=3,hang_seconds=2.5")
        assert plan.crash_task == 1
        assert plan.crash_attempts == 3
        assert plan.hang_seconds == 2.5
        assert plan.any_active()

    def test_empty_plan_is_inactive(self):
        assert not parse_plan("").any_active()

    def test_unknown_key_raises(self):
        with pytest.raises(FaultPlanError):
            parse_plan("crash_tsak=1")

    def test_non_number_value_raises(self):
        with pytest.raises(FaultPlanError):
            parse_plan("crash_task=yes")

    def test_missing_equals_raises(self):
        with pytest.raises(FaultPlanError):
            parse_plan("crash_task")

    def test_injected_restores_previous_plan(self):
        with faults.injected(crash_task=7) as outer:
            assert faults.active_plan() == outer
            with faults.injected(hang_task=2):
                assert faults.active_plan().hang_task == 2
                assert faults.active_plan().crash_task is None
            assert faults.active_plan() == outer
        assert faults.active_plan() is None

    def test_env_plan_is_consulted(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt_read=4")
        assert faults.active_plan().corrupt_read == 4
        with faults.injected(crash_task=0):
            assert faults.active_plan().corrupt_read is None
        assert faults.active_plan().corrupt_read == 4

    def test_default_task_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_TIMEOUT", raising=False)
        assert default_task_timeout() is None
        monkeypatch.setenv("REPRO_POOL_TIMEOUT", "2.5")
        assert default_task_timeout() == 2.5
        monkeypatch.setenv("REPRO_POOL_TIMEOUT", "0")
        assert default_task_timeout() is None
        monkeypatch.setenv("REPRO_POOL_TIMEOUT", "soon")
        assert default_task_timeout() is None


# ----------------------------------------------------------------------
# the self-healing pool
# ----------------------------------------------------------------------


class TestPoolSelfHealing:
    def test_healthy_run_is_ordered_and_clean(self):
        health = PoolHealth()
        out = map_tasks(
            list(range(8)), 2, _times_ten, _times_ten, health=health
        )
        assert out == [i * 10 for i in range(8)]
        assert health.tasks == 8
        assert not health.degraded

    def test_crash_is_retried_and_result_identical(self):
        health = PoolHealth()
        with faults.injected(crash_task=1, crash_attempts=1):
            out = map_tasks(
                list(range(6)), 2, _times_ten, _times_ten, health=health
            )
        assert out == [i * 10 for i in range(6)]
        assert health.worker_crashes == 1
        assert health.pool_rebuilds == 1
        assert health.retried >= 1
        assert health.serial_fallbacks == 0

    def test_permanent_crash_degrades_to_serial(self):
        health = PoolHealth()
        with faults.injected(crash_task=2, crash_attempts=99):
            out = map_tasks(
                list(range(6)), 2, _times_ten, _times_ten, health=health
            )
        assert out == [i * 10 for i in range(6)]
        # max_retries=2: the crashing task burns its retries across
        # rebuilt pools, then the serial reference finishes it.
        assert health.worker_crashes == 3
        assert health.serial_fallbacks >= 1

    def test_hung_task_is_reaped_by_watchdog(self):
        health = PoolHealth()
        start = time.monotonic()
        with faults.injected(hang_task=0, hang_seconds=120.0):
            out = map_tasks(
                list(range(4)),
                2,
                _times_ten,
                _times_ten,
                health=health,
                task_timeout=2.0,
            )
        elapsed = time.monotonic() - start
        assert out == [i * 10 for i in range(4)]
        assert health.timeouts == 1
        assert health.serial_fallbacks == 1
        assert health.wall_seconds_lost >= 2.0
        assert elapsed < 60.0  # the injected 120 s hang must not be awaited

    def test_worker_error_recovers_through_serial(self):
        health = PoolHealth()
        out = map_tasks(
            list(range(5)), 2, _times_ten, _raise_on_three, health=health
        )
        assert out == [i * 10 for i in range(5)]
        assert health.task_errors == 1
        assert health.serial_fallbacks == 1

    def test_genuine_error_propagates_from_serial_reference(self):
        with pytest.raises(ValueError, match="genuine bug in task 3"):
            map_tasks(
                list(range(5)), 2, _serial_raise_on_three, _raise_on_three
            )

    def test_interrupt_unlinks_tracked_segments(self):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=64)
        name = segment.name
        track_segment(segment)
        assert os.path.exists(f"/dev/shm/{name}")
        health = PoolHealth()
        try:
            with pytest.raises(KeyboardInterrupt):
                with faults.injected(interrupt_task=0):
                    map_tasks(
                        list(range(4)),
                        2,
                        _times_ten,
                        _times_ten,
                        health=health,
                    )
            assert health.interrupts == 1
            assert not os.path.exists(f"/dev/shm/{name}")
        finally:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass


# ----------------------------------------------------------------------
# cache quarantine and fail-open writes
# ----------------------------------------------------------------------


class TestCacheQuarantine:
    def _cache(self, tmp_path):
        return VersionedPickleCache(tmp_path, version=1, suffix=".pkl")

    def test_corrupt_entry_is_quarantined_once(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store_payload("key", {"answer": 42})
        path = tmp_path / "key.pkl"
        assert path.exists()
        with faults.injected(corrupt_read=0):
            assert cache.load_payload("key") is None
        assert cache.quarantines == 1
        assert not path.exists()
        assert (tmp_path / "key.pkl.corrupt").exists()
        # The next lookup is a plain miss: no re-parse, no re-quarantine.
        assert cache.load_payload("key") is None
        assert cache.quarantines == 1

    def test_version_mismatch_is_a_plain_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store_payload("key", {"answer": 42})
        newer = VersionedPickleCache(tmp_path, version=2, suffix=".pkl")
        assert newer.load_payload("key") is None
        assert newer.quarantines == 0
        assert (tmp_path / "key.pkl").exists()  # valid data for old code

    def test_failed_write_fails_open(self, tmp_path):
        cache = self._cache(tmp_path)
        with faults.injected(fail_write=0):
            cache.store_payload("key", {"answer": 42})
        assert cache.write_errors == 1
        assert not (tmp_path / "key.pkl").exists()
        cache.store_payload("key", {"answer": 42})
        assert cache.load_payload("key") == {"answer": 42}

    def test_atomic_write_reports_injected_failure(self, tmp_path):
        target = tmp_path / "blob"
        with faults.injected(fail_write=0):
            assert not atomic_write_bytes(target, b"payload")
        assert not target.exists()
        assert atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"


# ----------------------------------------------------------------------
# engine-level failure matrix (SpMV: data-dependent, genuinely pooled)
# ----------------------------------------------------------------------

LATTICE_DIMS = (4, 4, 4, 4)


@pytest.fixture(scope="module")
def spmv_lattice():
    return qcd_like(dims=LATTICE_DIMS)


@pytest.fixture(scope="module")
def spmv_kernel(spmv_lattice):
    return spmv_app.build_kernel_for(
        spmv_app.prepare_problem(spmv_lattice, "ell")
    )


def _spmv_run(
    lattice, kernel, workers, cache=None, plan=None, timeout=None
):
    problem = spmv_app.prepare_problem(lattice, "ell")
    engine = SimulationEngine(
        kernel,
        gmem=problem.gmem,
        workers=workers,
        cache_dir=cache,
        faults=plan,
        task_timeout=timeout,
    )
    # Chunk fine enough that the small grid genuinely fans out, giving
    # every injected fault a pool task to hit.
    engine.simulator.grid_batch_blocks = 2
    return engine.run(problem.launch()), problem.launch()


@pytest.fixture(scope="module")
def spmv_healthy(spmv_lattice, spmv_kernel):
    trace, launch = _spmv_run(spmv_lattice, spmv_kernel, workers=0)
    return trace, launch


def _normalized(trace) -> bytes:
    """The trace's bytes with the run-specific telemetry removed."""
    return pickle.dumps(replace(trace, engine_stats=None))


class TestEngineFailureMatrix:
    def test_crash_with_retry_is_bit_identical(
        self, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        trace, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=2,
            plan=FaultPlan(crash_task=1, crash_attempts=1),
        )
        assert _normalized(trace) == _normalized(healthy)
        health = trace.engine_stats.health
        assert health.worker_crashes == 1
        assert health.pool_rebuilds == 1
        assert health.degraded

    def test_permanent_crash_is_bit_identical(
        self, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        trace, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=2,
            plan=FaultPlan(crash_task=0, crash_attempts=99),
        )
        assert _normalized(trace) == _normalized(healthy)
        health = trace.engine_stats.health
        assert health.worker_crashes >= 1
        assert health.serial_fallbacks >= 1

    def test_hang_with_watchdog_is_bit_identical(
        self, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        trace, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=2,
            plan=FaultPlan(hang_task=0, hang_seconds=120.0),
            timeout=3.0,
        )
        assert _normalized(trace) == _normalized(healthy)
        health = trace.engine_stats.health
        assert health.timeouts == 1
        assert health.serial_fallbacks >= 1

    def test_corrupt_cache_entry_quarantines_and_recovers(
        self, tmp_path, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        cache_dir = str(tmp_path / "traces")
        first, _ = _spmv_run(
            spmv_lattice, spmv_kernel, workers=0, cache=cache_dir
        )
        assert not first.engine_stats.cache_hit
        corrupted, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=0,
            cache=cache_dir,
            plan=FaultPlan(corrupt_read=0),
        )
        assert _normalized(corrupted) == _normalized(healthy)
        stats = corrupted.engine_stats
        assert not stats.cache_hit
        assert stats.health.cache_quarantines == 1
        corrupt_files = [
            name
            for name in os.listdir(cache_dir)
            if name.endswith(".corrupt")
        ]
        assert len(corrupt_files) == 1
        # The corrupted run re-stored a good entry: the third run hits,
        # and a hit's health is all-zero (it describes *this* run).
        third, _ = _spmv_run(
            spmv_lattice, spmv_kernel, workers=0, cache=cache_dir
        )
        assert third.engine_stats.cache_hit
        assert third.engine_stats.health == HealthRecord()

    def test_failed_cache_write_fails_open(
        self, tmp_path, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        trace, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=0,
            cache=str(tmp_path / "traces"),
            plan=FaultPlan(fail_write=0),
        )
        assert _normalized(trace) == _normalized(healthy)
        assert trace.engine_stats.health.cache_write_errors == 1

    def test_shm_attach_failure_degrades_to_serial(
        self, monkeypatch, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        # Force the spawn-style decision so the arena ships through
        # shared memory (fork pools inherit it copy-on-write and never
        # attach); the pool itself still forks, which is what lets the
        # fork children see the installed plan's attach counter.
        monkeypatch.setattr(engine_mod, "start_method", lambda: "spawn")
        trace, _ = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=2,
            plan=FaultPlan(fail_shm_attach=0),
        )
        assert _normalized(trace) == _normalized(healthy)
        health = trace.engine_stats.health
        assert health.shm_fallbacks >= 1
        assert health.serial_fallbacks >= 1

    def test_healthy_pooled_run_reports_clean_health(
        self, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        healthy, _ = spmv_healthy
        trace, _ = _spmv_run(spmv_lattice, spmv_kernel, workers=2)
        assert _normalized(trace) == _normalized(healthy)
        assert not trace.engine_stats.health.degraded


# ----------------------------------------------------------------------
# engine-level matrix (matmul: block-uniform, pooled probe path)
# ----------------------------------------------------------------------


class TestMatmulFailureMatrix:
    N, TILE = 64, 16

    def _run(self, workers, plan=None):
        problem = prepare_problem(self.N, self.TILE)
        engine = SimulationEngine(
            build_matmul_kernel(self.N, self.TILE),
            gmem=problem.gmem,
            workers=workers,
            faults=plan,
            trace_mode="interpret",  # probe blocks instead of synthesis
        )
        engine.simulator.grid_batch_blocks = 1
        # dedup=False: the affine grid collapses to one class otherwise,
        # leaving a single pool task and nothing for the fault to hit.
        return engine.run(problem.launch(), dedup=False)

    def test_crash_during_probes_is_bit_identical(self):
        healthy = self._run(0)
        faulted = self._run(
            2, plan=FaultPlan(crash_task=1, crash_attempts=1)
        )
        assert _normalized(faulted) == _normalized(healthy)
        assert faulted.engine_stats.health.worker_crashes == 1


# ----------------------------------------------------------------------
# timing layer
# ----------------------------------------------------------------------


class TestTimingLayerFaults:
    def _measure(self, table, num_blocks, workers, plan=None, timeout=None):
        gpu = HardwareGpu(
            workers=workers, min_parallel_events=0, task_timeout=timeout
        )
        with faults.injected(plan):
            return gpu.measure(table, num_blocks, 4)

    @staticmethod
    def _run_bytes(run) -> bytes:
        return pickle.dumps(replace(run, health=HealthRecord()))

    def test_crash_and_hang_stay_bit_identical(self, spmv_healthy):
        healthy_trace, launch = spmv_healthy
        table = healthy_trace.block_traces
        reference = self._measure(table, launch.num_blocks, workers=0)
        assert reference.health == HealthRecord()

        crashed = self._measure(
            table,
            launch.num_blocks,
            workers=2,
            plan=FaultPlan(crash_task=1, crash_attempts=1),
        )
        assert self._run_bytes(crashed) == self._run_bytes(reference)
        assert crashed.health.worker_crashes == 1

        hung = self._measure(
            table,
            launch.num_blocks,
            workers=2,
            plan=FaultPlan(hang_task=0, hang_seconds=120.0),
            timeout=3.0,
        )
        assert self._run_bytes(hung) == self._run_bytes(reference)
        assert hung.health.timeouts == 1

    def test_measured_run_cache_hit_resets_health(
        self, tmp_path, spmv_healthy
    ):
        healthy_trace, launch = spmv_healthy
        table = healthy_trace.block_traces
        gpu = HardwareGpu(cache_dir=str(tmp_path / "measured"))
        first = gpu.measure(table, launch.num_blocks, 4)
        assert not first.from_cache
        again = gpu.measure(table, launch.num_blocks, 4)
        assert again.from_cache
        assert again.health == HealthRecord()
        assert self._run_bytes(again) == pickle.dumps(
            replace(first, from_cache=True, health=HealthRecord())
        )


# ----------------------------------------------------------------------
# telemetry surfacing
# ----------------------------------------------------------------------


class TestHealthTelemetry:
    def test_health_record_summary(self):
        assert HealthRecord().summary() == "ok"
        record = HealthRecord(
            pool_retries=2, timeouts=1, wall_seconds_lost=3.25
        )
        assert record.summary() == "retries=2 timeouts=1 lost=3.2s"
        assert record.degraded

    def test_analysis_fallbacks_are_not_degradation(self):
        record = HealthRecord(proof_fallbacks=3, symbolic_fallbacks=5)
        assert not record.degraded
        assert "symbolic_fallbacks=5" in record.summary()

    def test_report_renders_degraded_line(
        self, model, spmv_lattice, spmv_kernel
    ):
        trace, launch = _spmv_run(
            spmv_lattice,
            spmv_kernel,
            workers=2,
            plan=FaultPlan(crash_task=1, crash_attempts=1),
        )
        resources = kernel_resources(spmv_kernel, launch)
        report = model.analyze(trace, launch, resources)
        rendered = report.render()
        assert "degraded" in rendered
        assert "worker_crashes=1" in rendered

    def test_healthy_report_has_no_degraded_line(
        self, model, spmv_lattice, spmv_kernel, spmv_healthy
    ):
        trace, launch = spmv_healthy
        resources = kernel_resources(spmv_kernel, launch)
        report = model.analyze(trace, launch, resources)
        assert "degraded" not in report.render()
