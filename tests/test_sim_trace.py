"""Trace containers: merging, scaling, aggregation."""

from collections import Counter

import pytest

from repro.sim import (
    BlockTrace,
    StageStats,
    aggregate_blocks,
    aggregate_weighted,
)


def stage_with(instr=0, mad=0, shared=0, ideal=0, gbytes=0, useful=0, warps=1):
    stage = StageStats()
    stage.instructions = Counter({"fmad": mad, "iadd": instr - mad})
    stage.instr_by_type["II"] = instr
    stage.mad_instructions = mad
    stage.shared_transactions = shared
    stage.shared_transactions_ideal = ideal
    stage.global_transactions = {32: gbytes // 64} if gbytes else {}
    stage.global_bytes = {32: gbytes} if gbytes else {}
    stage.global_useful_bytes = useful
    stage.active_warps = warps
    return stage


class TestStageStats:
    def test_merge_adds_extensive_quantities(self):
        a = stage_with(instr=10, mad=4, shared=6, ideal=3, warps=2)
        b = stage_with(instr=5, mad=1, shared=2, ideal=2, warps=4)
        a.merge(b)
        assert a.total_instructions == 15
        assert a.mad_instructions == 5
        assert a.shared_transactions == 8
        assert a.active_warps == 4  # max, not sum

    def test_merge_by_array(self):
        a = StageStats()
        b = StageStats()
        a.global_by_array = {"x": {32: (2, 64)}}
        b.global_by_array = {"x": {32: (1, 32)}, "y": {32: (1, 128)}}
        a.merge(b)
        assert a.global_by_array["x"][32] == (3, 96)
        assert a.global_by_array["y"][32] == (1, 128)

    def test_scaled_multiplies_counts_not_warps(self):
        stage = stage_with(instr=10, mad=4, shared=6, ideal=3, warps=2)
        scaled = stage.scaled(3.0)
        assert scaled.total_instructions == 30
        assert scaled.shared_transactions == 18
        assert scaled.active_warps == 2

    def test_density(self):
        stage = stage_with(instr=10, mad=8)
        assert stage.computational_density == 0.8

    def test_conflict_factor_defaults_to_one(self):
        assert StageStats().bank_conflict_factor == 1.0

    def test_coalescing_efficiency(self):
        stage = stage_with(gbytes=128, useful=64)
        assert stage.coalescing_efficiency(32) == 0.5
        assert stage.coalescing_efficiency(16) == 1.0  # no data -> neutral


class TestAggregation:
    def _block(self, stages, block=(0, 0)):
        return BlockTrace(block=block, stages=stages, warp_streams=[[]])

    def test_stage_alignment(self):
        t1 = self._block([stage_with(instr=4), stage_with(instr=2)])
        t2 = self._block([stage_with(instr=6), stage_with(instr=8)], (1, 0))
        trace = aggregate_blocks([t1, t2])
        assert trace.num_stages == 2
        assert trace.stages[0].total_instructions == 10
        assert trace.stages[1].total_instructions == 10

    def test_scaling_to_full_grid(self):
        t1 = self._block([stage_with(instr=4)])
        trace = aggregate_blocks([t1], scale_to_blocks=10)
        assert trace.num_blocks == 10
        assert trace.totals.total_instructions == 40

    def test_scaling_preserves_active_warps(self):
        t1 = self._block([stage_with(instr=4, warps=3)])
        trace = aggregate_blocks([t1], scale_to_blocks=100)
        assert trace.stages[0].active_warps == 3

    def test_ragged_stage_counts_padded(self):
        t1 = self._block([stage_with(instr=4)])
        t2 = self._block([stage_with(instr=4), stage_with(instr=6)], (1, 0))
        trace = aggregate_blocks([t1, t2])
        assert trace.num_stages == 2
        assert trace.stages[1].total_instructions == 6

    def test_totals_property(self):
        t1 = self._block([stage_with(instr=4, mad=2), stage_with(instr=6, mad=6)])
        trace = aggregate_blocks([t1])
        assert trace.totals.mad_instructions == 8

    def test_partial_stages_scale_by_their_contributors(self):
        # Regression: stage 1 is reached by only one of two sampled
        # blocks; it must be extrapolated from that contributor alone
        # (factor 10/1), not by the uniform 10/2 sample factor.
        t1 = self._block([stage_with(instr=4)])
        t2 = self._block([stage_with(instr=4), stage_with(instr=6)], (1, 0))
        trace = aggregate_blocks([t1, t2], scale_to_blocks=10)
        assert trace.stages[0].total_instructions == 40  # 8 * 10/2
        assert trace.stages[1].total_instructions == 60  # 6 * 10/1
        assert not trace.exact

    def test_unscaled_aggregation_is_exact(self):
        t1 = self._block([stage_with(instr=4)])
        assert aggregate_blocks([t1]).exact
        assert aggregate_blocks([t1], scale_to_blocks=1).exact
        assert not aggregate_blocks([t1], scale_to_blocks=3).exact


class TestWeightedAggregation:
    def _block(self, stages, block=(0, 0)):
        return BlockTrace(block=block, stages=stages, warp_streams=[[]])

    def test_multiplicities_match_explicit_replication(self):
        rep = self._block([stage_with(instr=4, mad=2, shared=6, ideal=3)])
        other = self._block([stage_with(instr=10, mad=5)], (1, 0))
        weighted = aggregate_weighted([rep, other], [7, 1])
        replicated = aggregate_blocks([rep] * 7 + [other])
        assert (
            [s.canonical() for s in weighted.stages]
            == [s.canonical() for s in replicated.stages]
        )
        assert weighted.num_blocks == 8
        assert weighted.exact

    def test_weighted_preserves_active_warps(self):
        rep = self._block([stage_with(instr=4, warps=3)])
        trace = aggregate_weighted([rep], [100])
        assert trace.stages[0].active_warps == 3

    def test_validation(self):
        rep = self._block([stage_with(instr=4)])
        with pytest.raises(ValueError):
            aggregate_weighted([rep], [])
        with pytest.raises(ValueError):
            aggregate_weighted([rep], [0])


class TestCanonicalKeys:
    def test_canonical_ignores_dict_ordering(self):
        a = stage_with(instr=4, gbytes=128, useful=64)
        b = stage_with(instr=4, gbytes=128, useful=64)
        a.global_bytes = {32: 128, 16: 256}
        b.global_bytes = {16: 256, 32: 128}
        assert a.canonical() == b.canonical()

    def test_stats_key_excludes_block_coords(self):
        stages = [stage_with(instr=4)]
        t1 = BlockTrace(block=(0, 0), stages=stages, warp_streams=[[(0, 0, 1, 0, None)]])
        t2 = BlockTrace(block=(5, 3), stages=stages, warp_streams=[[(0, 0, 1, 0, None)]])
        assert t1.stats_key() == t2.stats_key()

    def test_stats_key_sees_stream_differences(self):
        stages = [stage_with(instr=4)]
        t1 = BlockTrace(block=(0, 0), stages=stages, warp_streams=[[(0, 0, 1, 0, None)]])
        t2 = BlockTrace(block=(0, 0), stages=stages, warp_streams=[[(0, 0, 2, 0, None)]])
        assert t1.stats_key() != t2.stats_key()
