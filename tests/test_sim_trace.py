"""Trace containers: merging, scaling, aggregation."""

from collections import Counter

from repro.sim import BlockTrace, StageStats, aggregate_blocks


def stage_with(instr=0, mad=0, shared=0, ideal=0, gbytes=0, useful=0, warps=1):
    stage = StageStats()
    stage.instructions = Counter({"fmad": mad, "iadd": instr - mad})
    stage.instr_by_type["II"] = instr
    stage.mad_instructions = mad
    stage.shared_transactions = shared
    stage.shared_transactions_ideal = ideal
    stage.global_transactions = {32: gbytes // 64} if gbytes else {}
    stage.global_bytes = {32: gbytes} if gbytes else {}
    stage.global_useful_bytes = useful
    stage.active_warps = warps
    return stage


class TestStageStats:
    def test_merge_adds_extensive_quantities(self):
        a = stage_with(instr=10, mad=4, shared=6, ideal=3, warps=2)
        b = stage_with(instr=5, mad=1, shared=2, ideal=2, warps=4)
        a.merge(b)
        assert a.total_instructions == 15
        assert a.mad_instructions == 5
        assert a.shared_transactions == 8
        assert a.active_warps == 4  # max, not sum

    def test_merge_by_array(self):
        a = StageStats()
        b = StageStats()
        a.global_by_array = {"x": {32: (2, 64)}}
        b.global_by_array = {"x": {32: (1, 32)}, "y": {32: (1, 128)}}
        a.merge(b)
        assert a.global_by_array["x"][32] == (3, 96)
        assert a.global_by_array["y"][32] == (1, 128)

    def test_scaled_multiplies_counts_not_warps(self):
        stage = stage_with(instr=10, mad=4, shared=6, ideal=3, warps=2)
        scaled = stage.scaled(3.0)
        assert scaled.total_instructions == 30
        assert scaled.shared_transactions == 18
        assert scaled.active_warps == 2

    def test_density(self):
        stage = stage_with(instr=10, mad=8)
        assert stage.computational_density == 0.8

    def test_conflict_factor_defaults_to_one(self):
        assert StageStats().bank_conflict_factor == 1.0

    def test_coalescing_efficiency(self):
        stage = stage_with(gbytes=128, useful=64)
        assert stage.coalescing_efficiency(32) == 0.5
        assert stage.coalescing_efficiency(16) == 1.0  # no data -> neutral


class TestAggregation:
    def _block(self, stages, block=(0, 0)):
        return BlockTrace(block=block, stages=stages, warp_streams=[[]])

    def test_stage_alignment(self):
        t1 = self._block([stage_with(instr=4), stage_with(instr=2)])
        t2 = self._block([stage_with(instr=6), stage_with(instr=8)], (1, 0))
        trace = aggregate_blocks([t1, t2])
        assert trace.num_stages == 2
        assert trace.stages[0].total_instructions == 10
        assert trace.stages[1].total_instructions == 10

    def test_scaling_to_full_grid(self):
        t1 = self._block([stage_with(instr=4)])
        trace = aggregate_blocks([t1], scale_to_blocks=10)
        assert trace.num_blocks == 10
        assert trace.totals.total_instructions == 40

    def test_scaling_preserves_active_warps(self):
        t1 = self._block([stage_with(instr=4, warps=3)])
        trace = aggregate_blocks([t1], scale_to_blocks=100)
        assert trace.stages[0].active_warps == 3

    def test_ragged_stage_counts_padded(self):
        t1 = self._block([stage_with(instr=4)])
        t2 = self._block([stage_with(instr=4), stage_with(instr=6)], (1, 0))
        trace = aggregate_blocks([t1, t2])
        assert trace.num_stages == 2
        assert trace.stages[1].total_instructions == 6

    def test_totals_property(self):
        t1 = self._block([stage_with(instr=4, mad=2), stage_with(instr=6, mad=6)])
        trace = aggregate_blocks([t1])
        assert trace.totals.mad_instructions == 8
