"""Differential testing: the SIMT simulator vs a Python oracle.

Hypothesis generates random straight-line arithmetic programs; a tiny
reference interpreter executes them per-thread in plain Python/numpy.
The functional simulator must produce identical register files -- this
is the strongest correctness evidence for the execution core that every
other result depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Imm, Instruction, Kernel, Opcode, Reg, Special
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig

_NUM_REGS = 6


def _f32(x):
    return np.float64(np.float32(x))


def _as_int(x):
    return np.asarray(x, dtype=np.float64).astype(np.int64)


_ORACLE = {
    Opcode.MOV: lambda a: a,
    Opcode.FADD: lambda a, b: _f32(np.float32(a) + np.float32(b)),
    Opcode.FMUL: lambda a, b: _f32(np.float32(a) * np.float32(b)),
    Opcode.FMAD: lambda a, b, c: _f32(
        np.float32(a) * np.float32(b) + np.float32(c)
    ),
    Opcode.FNEG: lambda a: -a,
    Opcode.FMIN: lambda a, b: min(a, b),
    Opcode.FMAX: lambda a, b: max(a, b),
    Opcode.IADD: lambda a, b: float(_as_int(a) + _as_int(b)),
    Opcode.ISUB: lambda a, b: float(_as_int(a) - _as_int(b)),
    Opcode.IMUL: lambda a, b: float(_as_int(a) * _as_int(b)),
    Opcode.IMAD: lambda a, b, c: float(_as_int(a) * _as_int(b) + _as_int(c)),
    Opcode.ISHL: lambda a, b: float(_as_int(a) << _as_int(b)),
    Opcode.ISHR: lambda a, b: float(_as_int(a) >> _as_int(b)),
    Opcode.IAND: lambda a, b: float(_as_int(a) & _as_int(b)),
    Opcode.IOR: lambda a, b: float(_as_int(a) | _as_int(b)),
    Opcode.IMIN: lambda a, b: float(min(_as_int(a), _as_int(b))),
    Opcode.IMAX: lambda a, b: float(max(_as_int(a), _as_int(b))),
    Opcode.DADD: lambda a, b: a + b,
    Opcode.DMUL: lambda a, b: a * b,
    Opcode.DFMA: lambda a, b, c: a * b + c,
}

_INT_OPS = {
    Opcode.IADD,
    Opcode.ISUB,
    Opcode.IMUL,
    Opcode.IMAD,
    Opcode.ISHL,
    Opcode.ISHR,
    Opcode.IAND,
    Opcode.IOR,
    Opcode.IMIN,
    Opcode.IMAX,
}


def oracle_run(kernel: Kernel, thread: int) -> list[float]:
    """Execute a straight-line kernel for one thread, in plain Python."""
    regs = [0.0] * _NUM_REGS

    def value(operand):
        if isinstance(operand, Reg):
            return regs[operand.index]
        if isinstance(operand, Imm):
            return float(operand.value)
        if isinstance(operand, Special):
            return float(thread)  # only %tid is generated
        raise AssertionError(operand)

    for instr in kernel.instructions:
        if instr.opcode is Opcode.EXIT:
            break
        args = [value(s) for s in instr.srcs]
        regs[instr.dst.index] = float(_ORACLE[instr.opcode](*args))
    return regs


_reg = st.integers(0, _NUM_REGS - 1).map(Reg)
_int_imm = st.integers(-64, 64).map(Imm)
_shift_imm = st.integers(0, 8).map(Imm)
_float_imm = st.floats(
    min_value=-8, max_value=8, allow_nan=False, width=32
).map(lambda v: Imm(round(v, 3)))
_tid = st.just(Special("tid"))


@st.composite
def _instruction(draw):
    opcode = draw(st.sampled_from(sorted(_ORACLE, key=lambda o: o.name)))
    nsrc = opcode.info.num_srcs
    if opcode in (Opcode.ISHL, Opcode.ISHR):
        srcs = (draw(st.one_of(_reg, _int_imm, _tid)), draw(_shift_imm))
    elif opcode in _INT_OPS:
        srcs = tuple(
            draw(st.one_of(_reg, _int_imm, _tid)) for _ in range(nsrc)
        )
    else:
        srcs = tuple(
            draw(st.one_of(_reg, _float_imm, _tid)) for _ in range(nsrc)
        )
    return Instruction(opcode, dst=draw(_reg), srcs=srcs)


@st.composite
def straight_line_program(draw):
    # Seed every register so integer ops never see float garbage.
    seed = [
        Instruction(Opcode.MOV, dst=Reg(i), srcs=(Imm(i + 1),))
        for i in range(_NUM_REGS)
    ]
    body = draw(st.lists(_instruction(), min_size=1, max_size=14))
    return Kernel(
        name="diff",
        instructions=tuple(seed + body) + (Instruction(Opcode.EXIT),),
        num_registers=_NUM_REGS,
    )


class TestDifferential:
    @given(straight_line_program())
    @settings(max_examples=120, deadline=None)
    def test_simulator_matches_oracle(self, kernel):
        sim = FunctionalSimulator(kernel)
        launch = LaunchConfig(grid=(1, 1), block_threads=32)
        _, state = sim.run_block_state(launch, (0, 0))
        for lane in (0, 7, 31):
            expected = oracle_run(kernel, lane)
            got = [float(state.R[lane, r]) for r in range(_NUM_REGS)]
            for e, g in zip(expected, got):
                if np.isnan(e) or np.isnan(g):
                    assert np.isnan(e) and np.isnan(g)
                else:
                    assert g == pytest.approx(e, rel=1e-6, abs=1e-6)

    @given(straight_line_program())
    @settings(max_examples=60, deadline=None)
    def test_instruction_count_is_static_length(self, kernel):
        sim = FunctionalSimulator(kernel)
        launch = LaunchConfig(grid=(1, 1), block_threads=32)
        trace = sim.run_block(launch, (0, 0))
        # Straight-line code: every instruction issues exactly once per
        # warp, including the final EXIT (it occupies an issue slot and
        # belongs in the extracted mix).
        assert trace.totals.total_instructions == len(kernel.instructions)
        assert trace.totals.instructions["exit"] == 1

    @given(straight_line_program())
    @settings(max_examples=60, deadline=None)
    def test_event_dependencies_point_to_real_producers(self, kernel):
        sim = FunctionalSimulator(kernel)
        launch = LaunchConfig(grid=(1, 1), block_threads=32)
        trace = sim.run_block(launch, (0, 0))
        stream = trace.warp_streams[0]
        instructions = [
            i for i in kernel.instructions if i.opcode is not Opcode.EXIT
        ]
        for idx, (event, instr) in enumerate(zip(stream, instructions)):
            dep = event[1]
            assert 0 <= dep <= idx
            if dep:
                producer = instructions[idx - dep]
                written = set(producer.registers_written())
                read = set(instr.registers_read())
                assert written & read
