"""Per-block barrier release in the grid-batched interpreter:
barrier-synchronized kernels batch whole grids, blocks advance their
stages independently within one slab, and the divergence/budget
errors still fire per block.  Also covers the ``grid_batch_blocks``
override (env var and engine kwarg)."""

import pickle

import pytest

from repro.errors import DivergenceError
from repro.isa import Imm, KernelBuilder
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig
from repro.sim.engine import SimulationEngine
from repro.sim.functional import GRID_BATCH_BLOCKS_ENV


def assert_grid_batch_identical(kernel, launch, gmem_factory, blocks=None):
    """Grid-batched traces must match per-warp oracle pickled bytes."""
    blocks = blocks if blocks is not None else launch.all_blocks()
    oracle = FunctionalSimulator(kernel, gmem=gmem_factory(), batched=False)
    batched = FunctionalSimulator(kernel, gmem=gmem_factory(), batched=True)
    reference = [oracle.run_block(launch, block) for block in blocks]
    got = batched.run_blocks(launch, blocks)
    assert len(got) == len(reference)
    for expected, actual in zip(reference, got):
        assert expected == actual
        assert pickle.dumps(expected) == pickle.dumps(actual)
    return reference, got


class TestBarrierGridBatching:
    """Barriered kernels ride multi-block slabs, bit-identically."""

    def test_matmul_grid_batch_bit_identical(self):
        from repro.apps.matmul import build_matmul_kernel, prepare_problem

        kernel = build_matmul_kernel(64, 8)
        problem = prepare_problem(64, 8)
        assert_grid_batch_identical(
            kernel,
            problem.launch(),
            lambda: prepare_problem(64, 8).gmem,
        )

    def test_cyclic_reduction_grid_batch_bit_identical(self):
        from repro.apps.tridiag import build_cr_kernel, prepare_problem

        kernel = build_cr_kernel(32)
        problem = prepare_problem(32, 6)
        assert_grid_batch_identical(
            kernel,
            problem.launch(),
            lambda: prepare_problem(32, 6).gmem,
        )

    def test_mid_warp_tail_guard_at_barrier(self):
        # 96 threads, n = 83: the guard cuts lane 19 of warp 2, but the
        # barrier itself sits outside the guarded region, so warps
        # reconverge before arriving -- legal and must batch.
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(5 * 96, "buf")
            return gmem

        buf = build_gmem().allocations[0].base

        b = KernelBuilder("tailbar", params=("buf", "n"))
        b.alloc_shared(96)
        lid = b.reg()
        b.ishl(lid, b.tid, Imm(2))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        guard = b.pred()
        b.isetp(guard, "lt", gid, b.param("n"))
        v = b.reg()
        b.mov(v, Imm(0.0))
        with b.if_then(guard):
            addr = b.reg()
            b.imad(addr, gid, Imm(4), b.param("buf"))
            b.ldg(v, addr)
            b.fadd(v, v, Imm(1.0))
        b.sts(v, lid)
        b.bar()
        got = b.reg()
        b.lds(got, lid)
        with b.if_then(guard):
            addr2 = b.reg()
            b.imad(addr2, gid, Imm(4), b.param("buf"))
            b.stg(addr2, got)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(5, 1), block_threads=96, params={"buf": buf, "n": 83}
        )
        assert_grid_batch_identical(kernel, launch, build_gmem)

    def test_blocks_exit_at_different_stage_counts_in_one_slab(self):
        # Block bx loops bx + 1 times with a barrier per iteration, so
        # one slab carries blocks with 2..7 stages: each block must
        # advance and finish on its own schedule.
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(6 * 64, "out")
            return gmem

        out = build_gmem().allocations[0].base

        b = KernelBuilder("ragged", params=("out",))
        trips = b.reg()
        b.iadd(trips, b.ctaid_x, Imm(1))
        acc = b.reg()
        b.mov(acc, Imm(0.0))
        with b.counted_loop(trips):
            b.fadd(acc, acc, Imm(1.0))
            b.bar()
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("out"))
        b.stg(addr, acc)
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(6, 1), block_threads=64, params={"out": out}
        )
        reference, got = assert_grid_batch_identical(
            kernel, launch, build_gmem
        )
        stage_counts = [len(trace.stages) for trace in got]
        assert stage_counts == [bx + 2 for bx in range(6)]

    def test_exit_while_sibling_parks_at_barrier(self):
        # Warp 1 exits (after filler work, so warp 0 is already parked
        # at the barrier when the exit lands); the block must release
        # with only its live warp.
        def build_gmem():
            gmem = GlobalMemory()
            gmem.alloc(4 * 64, "out")
            return gmem

        out = build_gmem().allocations[0].base

        b = KernelBuilder("earlyexit", params=("out",))
        upper = b.pred()
        b.isetp(upper, "ge", b.tid, Imm(32))
        r = b.reg()
        with b.if_then(upper):
            b.mov(r, Imm(1.0))
            b.mov(r, Imm(2.0))
            b.mov(r, Imm(3.0))
            b.exit()
        b.bar()
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("out"))
        b.stg(addr, Imm(7.0))
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(
            grid=(4, 1), block_threads=64, params={"out": out}
        )
        reference, got = assert_grid_batch_identical(
            kernel, launch, build_gmem
        )
        assert len(got[0].stages) == 2

    def test_divergent_barrier_raised_per_block_in_slab(self):
        # Only block (2, 0) diverges at the barrier; the error must
        # name that block even though the whole slab runs together.
        b = KernelBuilder("divslab")
        is_bad = b.pred()
        b.isetp(is_bad, "eq", b.ctaid_x, Imm(2))
        cut = b.reg()
        b.sel(cut, is_bad, Imm(5), Imm(32))
        p = b.pred()
        b.isetp(p, "lt", b.tid, cut)
        with b.if_then(p):
            b.bar()
        b.exit()
        kernel = b.build()

        launch = LaunchConfig(grid=(4, 1), block_threads=32)
        sim = FunctionalSimulator(kernel, batched=True)
        with pytest.raises(DivergenceError, match=r"block \(2, 0\)"):
            sim.run_blocks(launch, launch.all_blocks())

    def test_engine_full_grid_matches_per_warp_serial(self):
        from repro.apps.tridiag import build_cr_kernel, prepare_problem

        kernel = build_cr_kernel(32)
        launch = prepare_problem(32, 5).launch()
        serial = FunctionalSimulator(
            kernel, gmem=prepare_problem(32, 5).gmem, batched=False
        ).run(launch)
        engine = SimulationEngine(
            kernel, gmem=prepare_problem(32, 5).gmem
        ).run(launch, dedup=False)
        assert [s.canonical() for s in serial.stages] == [
            s.canonical() for s in engine.stages
        ]


class TestGridBatchBlocksOverride:
    """Satellite: the slab width resolves through repro.tune (kwarg >
    env > profile > built-in default; see test_tune_resolve for the
    full precedence matrix)."""

    def _kernel(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(1.0))
        b.exit()
        return b.build()

    def test_default_resolves_to_builtin(self):
        from repro.tune import BUILTIN_DEFAULTS

        sim = FunctionalSimulator(self._kernel())
        assert sim.grid_batch_blocks == BUILTIN_DEFAULTS["grid_batch_blocks"]
        assert sim.grid_batch_blocks == 32

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(GRID_BATCH_BLOCKS_ENV, "7")
        assert FunctionalSimulator(self._kernel()).grid_batch_blocks == 7

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(GRID_BATCH_BLOCKS_ENV, "7")
        sim = FunctionalSimulator(self._kernel(), grid_batch_blocks=4)
        assert sim.grid_batch_blocks == 4

    def test_invalid_env_fails_open(self, monkeypatch):
        import pytest

        monkeypatch.setenv(GRID_BATCH_BLOCKS_ENV, "not-a-number")
        # Resolution happens per launch (at run/read time), not at
        # construction, so the warning fires on the attribute read.
        sim = FunctionalSimulator(self._kernel())
        with pytest.warns(RuntimeWarning):
            assert sim.grid_batch_blocks == 32

    def test_floor_of_one(self):
        sim = FunctionalSimulator(self._kernel(), grid_batch_blocks=0)
        assert sim.grid_batch_blocks == 1

    def test_engine_kwarg_reaches_simulator(self):
        engine = SimulationEngine(self._kernel(), grid_batch_blocks=3)
        assert engine.simulator.grid_batch_blocks == 3

    def test_slab_width_changes_engine_cache_key(self):
        launch = LaunchConfig(grid=(1, 1), block_threads=32)
        narrow = SimulationEngine(self._kernel(), grid_batch_blocks=2)
        wide = SimulationEngine(self._kernel(), grid_batch_blocks=16)
        assert narrow._cache_key(launch, None, True) != wide._cache_key(
            launch, None, True
        )

    def test_narrow_slabs_still_bit_identical(self):
        from repro.apps.tridiag import build_cr_kernel, prepare_problem

        kernel = build_cr_kernel(32)
        launch = prepare_problem(32, 5).launch()
        blocks = launch.all_blocks()
        oracle = FunctionalSimulator(
            kernel, gmem=prepare_problem(32, 5).gmem, batched=False
        )
        reference = [oracle.run_block(launch, block) for block in blocks]
        narrow = FunctionalSimulator(
            kernel, gmem=prepare_problem(32, 5).gmem, grid_batch_blocks=2
        )
        got = narrow.run_blocks(launch, blocks)
        for expected, actual in zip(reference, got):
            assert pickle.dumps(expected) == pickle.dumps(actual)


class TestPerLaunchSlabResolution:
    """Slab width resolves at run time from the launch's warps-per-block."""

    def _kernel(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(1.0))
        b.exit()
        return b.build()

    def _save_by_warps_profile(self, by_warps, default):
        from repro.arch.specs import GTX285
        from repro.tune import new_profile, save_profile
        from repro.util import spec_fingerprint

        profile = new_profile(
            spec_fp=spec_fingerprint(GTX285),
            min_parallel_events={},
            grid_batch_blocks=by_warps,
            default_grid_batch_blocks=default,
        )
        save_profile(profile)

    def test_profile_width_follows_the_launch_shape(self):
        self._save_by_warps_profile({1: 5, 4: 9}, default=7)
        sim = FunctionalSimulator(self._kernel())
        narrow = LaunchConfig(grid=(1, 1), block_threads=32)
        wide = LaunchConfig(grid=(1, 1), block_threads=128)
        unknown = LaunchConfig(grid=(1, 1), block_threads=64)
        assert sim.grid_batch_blocks_for(narrow) == 5
        assert sim.grid_batch_blocks_for(wide) == 9
        assert sim.grid_batch_blocks_for(unknown) == 7
        # The launch-free property has no warps context: the default.
        assert sim.grid_batch_blocks == 7

    def test_one_simulator_serves_differently_shaped_launches(self):
        # The regression the refactor fixes: construction froze the
        # width, so the second launch inherited the first's shape.
        self._save_by_warps_profile({1: 5, 4: 9}, default=7)
        sim = FunctionalSimulator(self._kernel())
        assert sim.grid_batch_blocks_for(
            LaunchConfig(grid=(1, 1), block_threads=128)
        ) == 9
        assert sim.grid_batch_blocks_for(
            LaunchConfig(grid=(1, 1), block_threads=32)
        ) == 5

    def test_kwarg_and_assignment_still_override(self):
        self._save_by_warps_profile({1: 5}, default=7)
        launch = LaunchConfig(grid=(1, 1), block_threads=32)
        sim = FunctionalSimulator(self._kernel(), grid_batch_blocks=3)
        assert sim.grid_batch_blocks_for(launch) == 3
        sim.grid_batch_blocks = 2
        assert sim.grid_batch_blocks_for(launch) == 2
        assert sim.grid_batch_blocks == 2
        sim.grid_batch_blocks = None
        assert sim.grid_batch_blocks_for(launch) == 5

    def test_engine_cache_key_uses_per_launch_width(self):
        self._save_by_warps_profile({1: 5, 4: 9}, default=7)
        engine = SimulationEngine(self._kernel())
        narrow = LaunchConfig(grid=(1, 1), block_threads=32)
        wide = LaunchConfig(grid=(1, 1), block_threads=128)
        # Same grid, different block shape: the slab width (and hence
        # cross-block visibility) differs, so the keys must too.
        assert engine._cache_key(narrow, None, True) != engine._cache_key(
            wide, None, True
        )
