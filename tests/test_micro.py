"""Microbenchmarks: codegen, sweeps, calibration tables."""

import pytest

from repro.errors import CalibrationError, IsaError
from repro.hw import HardwareGpu
from repro.isa import Opcode, validate_kernel
from repro.micro import (
    CalibrationTables,
    blocks_for_warps,
    buffer_words_for_stream,
    global_stream_benchmark,
    instruction_benchmark,
    peak_table,
    run_synthetic,
    shared_copy_benchmark,
    single_warp_stream,
)
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig
from repro.sim.trace import EV_ARITH, EV_GLOBAL_LD, TYPE_INDEX


class TestCodegen:
    @pytest.mark.parametrize("type_name", ["I", "II", "III", "IV"])
    def test_instruction_kernel_is_pure(self, type_name):
        kernel = instruction_benchmark(type_name, unroll=4)
        validate_kernel(kernel)
        trace = FunctionalSimulator(kernel).run(
            LaunchConfig(grid=(1, 1), block_threads=32, params={"iters": 5})
        )
        counts = trace.totals.instr_by_type
        assert counts[type_name] >= 5 * 4  # the measured chain dominates

    def test_instruction_kernel_loop_overhead_is_three(self):
        kernel = instruction_benchmark("II", unroll=16)
        trace = FunctionalSimulator(kernel).run(
            LaunchConfig(grid=(1, 1), block_threads=32, params={"iters": 10})
        )
        # per iteration: 16 chain + iadd + isetp + bra
        assert trace.totals.instructions["bra"] == 10
        assert trace.totals.instructions["isetp"] == 10

    def test_unknown_type_rejected(self):
        with pytest.raises(IsaError):
            instruction_benchmark("V")

    def test_shared_copy_conflict_free(self):
        kernel = shared_copy_benchmark(unroll=4)
        trace = FunctionalSimulator(kernel).run(
            LaunchConfig(grid=(1, 1), block_threads=32, params={"iters": 6})
        )
        totals = trace.totals
        assert totals.bank_conflict_factor == 1.0
        # 2 transactions per memory instruction, lds+sts per word
        assert totals.shared_transactions == 6 * 4 * 2 * 2

    def test_shared_copy_unroll_bounds(self):
        with pytest.raises(IsaError):
            shared_copy_benchmark(unroll=9)

    def test_global_stream_fully_coalesced(self):
        kernel = global_stream_benchmark()
        gmem = GlobalMemory()
        base = gmem.alloc(buffer_words_for_stream(32, 10), "stream")
        trace = FunctionalSimulator(kernel, gmem).run(
            LaunchConfig(
                grid=(1, 1),
                block_threads=32,
                params={"buf": base, "iters": 10},
            )
        )
        totals = trace.totals
        assert totals.global_transactions[32] == 10 * 2
        assert totals.coalescing_efficiency(32) == 1.0

    def test_global_stream_strided_wastes_bandwidth(self):
        kernel = global_stream_benchmark(stride_words=8)
        gmem = GlobalMemory()
        base = gmem.alloc(buffer_words_for_stream(32, 5, 8), "stream")
        trace = FunctionalSimulator(kernel, gmem).run(
            LaunchConfig(
                grid=(1, 1), block_threads=32, params={"buf": base, "iters": 5}
            )
        )
        assert trace.totals.coalescing_efficiency(32) < 0.5


class TestRunnerHelpers:
    def test_blocks_for_warps_partitions(self):
        for warps in range(1, 33):
            blocks = blocks_for_warps(warps)
            assert sum(blocks) == warps
            assert len(blocks) <= 8
            assert max(blocks) <= 16

    def test_blocks_for_warps_bounds(self):
        with pytest.raises(CalibrationError):
            blocks_for_warps(0)
        with pytest.raises(CalibrationError):
            blocks_for_warps(129)

    def test_single_warp_stream_matches_direct_run(self):
        kernel = instruction_benchmark("II", unroll=4)
        stream = single_warp_stream(kernel, {"iters": 3})
        arith_events = [e for e in stream if e[0] == EV_ARITH]
        # 3 iters x (4 chain + 3 loop) + prologue/epilogue movs
        assert len(arith_events) == len(stream)
        chain = [e for e in stream if e[2] == TYPE_INDEX["II"]]
        assert len(chain) >= 3 * 4


class TestCurves:
    def test_instruction_table_lookup(self, tables):
        assert tables.instruction.at("II", 8) > 0
        with pytest.raises(ValueError):
            tables.instruction.at("II", 7)  # not a sampled point

    def test_throughput_monotone_up_to_saturation(self, tables):
        for name in ("I", "II", "III", "IV"):
            series = tables.instruction.throughput[name]
            peak = max(series)
            knee = series.index(peak)
            for a, b in zip(series[:knee], series[1 : knee + 1]):
                assert b >= a * 0.98

    def test_saturated_below_theoretical_peak(self, tables):
        peaks = peak_table()
        for name in ("I", "II", "III", "IV"):
            assert tables.instruction.saturated(name) <= peaks[name] * 1.02

    def test_type_ii_saturates_near_six_warps(self, tables):
        # "the number of instruction pipeline stages is around 6"
        assert tables.instruction.saturation_warps("II", 0.9) in (4, 6, 8)

    def test_shared_needs_more_warps_than_type_ii(self, tables):
        # Paper Fig. 2: the shared pipeline is longer.
        shared_knee = tables.shared.saturation_warps(0.9)
        instr_knee = tables.instruction.saturation_warps("II", 0.9)
        assert shared_knee >= instr_knee

    def test_shared_saturated_fraction_of_peak(self, tables, gpu):
        fraction = tables.shared.saturated / gpu.spec.peak_shared_bandwidth
        assert 0.7 < fraction < 0.95  # paper: 1165/1420 = 82%


class TestGlobalSynthetic:
    def test_multiple_of_ten_blocks_beats_remainder(self, gpu):
        best = run_synthetic(30, 256, 64, gpu)
        worse = run_synthetic(31, 256, 64, gpu)
        assert best.bandwidth > worse.bandwidth

    def test_saturation_below_theoretical_peak(self, gpu):
        result = run_synthetic(60, 256, 128, gpu)
        assert result.bandwidth < gpu.spec.peak_global_bandwidth
        assert result.bandwidth > 0.6 * gpu.spec.peak_global_bandwidth

    def test_few_transactions_latency_bound(self, gpu):
        small = run_synthetic(10, 256, 2, gpu)
        big = run_synthetic(10, 256, 128, gpu)
        assert small.bandwidth < 0.6 * big.bandwidth

    def test_transaction_accounting(self, gpu):
        result = run_synthetic(10, 64, 16, gpu)
        assert result.transactions == 10 * 2 * 2 * 16
        assert result.useful_bytes == 10 * 64 * 16 * 4


class TestCalibrationTables:
    def test_json_roundtrip(self, tables, gpu):
        text = tables.to_json()
        again = CalibrationTables.from_json(text, gpu=gpu)
        assert again.instruction.throughput == tables.instruction.throughput
        assert again.shared.bandwidth == tables.shared.bandwidth

    def test_global_cache_persisted(self, tables, gpu):
        result = tables.global_benchmark(10, 64, 4)
        again = CalibrationTables.from_json(tables.to_json(), gpu=gpu)
        cached = again.global_benchmark(10, 64, 4)
        assert cached.seconds == result.seconds

    def test_global_benchmark_memoized(self, tables):
        first = tables.global_benchmark(20, 64, 4)
        second = tables.global_benchmark(20, 64, 4)
        assert first is second

    def test_malformed_json_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationTables.from_json("{}")

    def test_loaded_without_gpu_cannot_run_synthetics(self, tables):
        detached = CalibrationTables.from_json(tables.to_json())
        with pytest.raises(CalibrationError):
            detached.global_benchmark(99, 64, 4)
