"""The ``repro specs`` command group and the generated docs."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main
from repro.arch.registry import render_markdown, spec_names

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Cheap crossval arguments for CLI wiring tests.
FAST = [
    "--specs", "fermi-like",
    "--kernel", "reduction",
    "--warp-counts", "1", "2", "4", "8",
    "--iterations", "20",
    "--no-cache",
]


class TestParser:
    def test_specs_list(self):
        args = build_parser().parse_args(["specs", "list"])
        assert args.command == "specs"
        assert args.specs_command == "list"

    def test_specs_show_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["specs", "show"])

    def test_markdown_defaults_to_stdout(self):
        args = build_parser().parse_args(["specs", "list", "--markdown"])
        assert args.markdown == "-"

    def test_crossval_flags(self):
        args = build_parser().parse_args(["specs", "crossval", *FAST])
        assert args.specs == ["fermi-like"]
        assert args.kernels == ["reduction"]
        assert args.warp_counts == [1, 2, 4, 8]
        assert args.no_cache

    def test_spec_flag_on_case_studies(self):
        for name in ("info", "calibrate", "matmul", "tridiag", "spmv"):
            args = build_parser().parse_args([name, "--spec", "kepler-like"])
            assert args.spec == "kepler-like"


class TestSpecsList:
    def test_lists_every_registered_name(self, capsys):
        assert main(["specs", "list"]) == 0
        out = capsys.readouterr().out
        for name in spec_names():
            assert name in out

    def test_json_is_valid_and_complete(self, capsys):
        assert main(["specs", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["specs"]) == set(spec_names())

    def test_markdown_to_stdout(self, capsys):
        assert main(["specs", "list", "--markdown"]) == 0
        assert "# Architecture reference" in capsys.readouterr().out

    def test_markdown_to_file(self, capsys, tmp_path):
        target = tmp_path / "ARCHITECTURES.md"
        assert main(["specs", "list", "--markdown", str(target)]) == 0
        assert target.read_text() == render_markdown()


class TestSpecsShow:
    def test_text_output(self, capsys):
        assert main(["specs", "show", "fermi-like"]) == 0
        out = capsys.readouterr().out
        assert "fermi-like" in out
        assert "min_segment_bytes" in out

    def test_json_output(self, capsys):
        assert main(["specs", "show", "modern-wide", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "modern-wide"
        assert payload["sm"]["max_warps"] == 64

    def test_unknown_name_is_a_clean_error(self, capsys):
        assert main(["specs", "show", "gtx-9999"]) == 2
        assert "unknown architecture" in capsys.readouterr().err


class TestInfoSpec:
    def test_info_renders_selected_spec(self, capsys):
        assert main(["info", "--spec", "kepler-like"]) == 0
        assert "Kepler-like" in capsys.readouterr().out

    def test_info_defaults_to_baseline(self, capsys):
        assert main(["info"]) == 0
        assert "GTX 285" in capsys.readouterr().out

    def test_unknown_spec_is_a_clean_error(self, capsys):
        assert main(["info", "--spec", "nope"]) == 2
        assert "unknown architecture" in capsys.readouterr().err


class TestCrossvalCommand:
    @pytest.fixture(scope="class")
    def outputs(self, tmp_path_factory):
        """One CLI crossval run shared by the assertions below."""
        tmp = tmp_path_factory.mktemp("crossval")
        json_path = tmp / "BENCH_crossval.json"
        markdown_path = tmp / "crossval.md"
        code = main(
            [
                "specs", "crossval", *FAST,
                "--json", str(json_path),
                "--markdown", str(markdown_path),
            ]
        )
        return code, json_path, markdown_path

    def test_exit_code(self, outputs):
        assert outputs[0] == 0

    def test_json_artifact(self, outputs):
        payload = json.loads(outputs[1].read_text())
        assert payload["schema"] == "crossval/1"
        assert payload["targets"] == {"fermi-like": {"source": "gt200"}}
        (prediction,) = payload["predictions"]
        assert prediction["kernel"] == "reduction"
        assert prediction["analytical_error"] >= 0

    def test_markdown_artifact(self, outputs):
        assert "# Cross-GPU validation" in outputs[2].read_text()


class TestDocsInSync:
    def test_architectures_md_matches_registry(self):
        """docs/ARCHITECTURES.md is generated -- regenerate on drift.

        CI enforces this with `repro specs list --markdown` + git diff;
        this test catches the drift locally first.
        """
        path = REPO_ROOT / "docs" / "ARCHITECTURES.md"
        assert path.exists(), "run: python -m repro specs list --markdown docs/ARCHITECTURES.md"
        assert path.read_text() == render_markdown()
