"""Jacobi stencil app: numerics, halo staging, engine dedup, and
grid-batched execution of its barrier stage -- in both boundary
layouts (ghost cells and guarded edge loads)."""

import pickle

import numpy as np
import pytest

from repro.apps.common import execute
from repro.apps.stencil import (
    build_stencil_kernel,
    prepare_problem,
    run_stencil,
    validate_stencil,
)
from repro.errors import LaunchError
from repro.sim import FunctionalSimulator
from repro.sim.engine import SimulationEngine, analyze_dependence


class TestNumerics:
    def test_matches_float32_reference_exactly(self):
        assert validate_stencil(n=256, block_threads=64) == 0.0

    def test_asymmetric_weights(self):
        err = validate_stencil(
            n=128, block_threads=32, weights=(0.1, 0.7, 0.2)
        )
        assert err == 0.0

    def test_indivisible_grid_rejected(self):
        with pytest.raises(LaunchError):
            prepare_problem(n=100, block_threads=64)


class TestTraceStructure:
    def test_two_stages_split_by_the_halo_barrier(self):
        run = run_stencil(n=256, block_threads=64, measure=False)
        assert run.trace.num_stages == 2

    def test_shared_traffic_reused_three_reads_per_point(self):
        run = run_stencil(n=256, block_threads=64, measure=False)
        totals = run.trace.totals
        blocks, warps_per_block = 256 // 64, 2
        # Warp-level counts: every warp issues the 3 compute-phase lds
        # and 1 staging sts; each block's two halo sts ride on the warp
        # holding the respective boundary thread.
        assert totals.instructions["lds"] == 3 * blocks * warps_per_block
        assert (
            totals.instructions["sts"]
            == blocks * warps_per_block + 2 * blocks
        )


class TestEngine:
    def test_dedups_to_single_probe_verified_class(self):
        problem = prepare_problem(n=64 * 12, block_threads=64)
        kernel = build_stencil_kernel(64)
        dependence = analyze_dependence(kernel)
        assert not dependence.data_dependent
        assert not dependence.block_in_control
        engine = SimulationEngine(kernel, gmem=problem.gmem)
        trace = engine.run(problem.launch())
        stats = trace.engine_stats
        assert stats.block_classes == 1
        assert stats.simulated_blocks <= 4
        assert trace.exact

    def test_grid_batch_bit_identical_to_oracle(self):
        kernel = build_stencil_kernel(32)
        launch = prepare_problem(n=32 * 7, block_threads=32).launch()
        blocks = launch.all_blocks()
        oracle = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=32 * 7, block_threads=32).gmem,
            batched=False,
        )
        reference = [oracle.run_block(launch, block) for block in blocks]
        batched = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=32 * 7, block_threads=32).gmem,
            batched=True,
        )
        got = batched.run_blocks(launch, blocks)
        for expected, actual in zip(reference, got):
            assert pickle.dumps(expected) == pickle.dumps(actual)


class TestGuardedVariant:
    """Satellite: no ghost cells; edge threads predicate their loads,
    so boundary-role partitioning is exercised by a real app."""

    def test_matches_float32_reference_exactly(self):
        assert validate_stencil(n=256, block_threads=64, guarded=True) == 0.0

    def test_small_blocks_and_asymmetric_weights(self):
        err = validate_stencil(
            n=128, block_threads=32, weights=(0.1, 0.7, 0.2), guarded=True
        )
        assert err == 0.0

    def test_differential_against_ghost_layout(self):
        # Same interior field, ghost cells pinned to the guarded
        # layout's implicit zero boundary: outputs must be bit-equal.
        n, t = 6 * 32, 32
        inner = np.random.default_rng(5).uniform(-1, 1, n)
        problems = {
            True: prepare_problem(n=n, block_threads=t, guarded=True, values=inner),
            False: prepare_problem(n=n, block_threads=t, values=inner),
        }
        for guarded, problem in problems.items():
            execute(
                name="diff",
                kernel=build_stencil_kernel(t, guarded),
                gmem=problem.gmem,
                launch=problem.launch(),
                sample_blocks=None,
                measure=False,
                engine=False,
            )
        assert np.array_equal(
            problems[True].result(), problems[False].result()
        )

    def test_dedups_into_boundary_role_classes(self):
        kernel = build_stencil_kernel(64, guarded=True)
        dependence = analyze_dependence(kernel)
        assert not dependence.data_dependent
        assert dependence.block_in_control  # ctaid guards the halo loads
        problem = prepare_problem(n=64 * 12, block_threads=64, guarded=True)
        trace = SimulationEngine(kernel, gmem=problem.gmem).run(
            problem.launch()
        )
        stats = trace.engine_stats
        assert stats.block_classes == 3  # first / interior / last
        assert stats.probe_fallbacks == 0
        assert trace.exact

    def test_grid_batch_bit_identical_to_oracle(self):
        kernel = build_stencil_kernel(32, guarded=True)
        launch = prepare_problem(
            n=32 * 7, block_threads=32, guarded=True
        ).launch()
        blocks = launch.all_blocks()
        oracle = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=32 * 7, block_threads=32, guarded=True).gmem,
            batched=False,
        )
        reference = [oracle.run_block(launch, block) for block in blocks]
        batched = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=32 * 7, block_threads=32, guarded=True).gmem,
            batched=True,
        )
        got = batched.run_blocks(launch, blocks)
        for expected, actual in zip(reference, got):
            assert pickle.dumps(expected) == pickle.dumps(actual)

    def test_values_length_checked(self):
        with pytest.raises(LaunchError):
            prepare_problem(n=64, block_threads=32, values=np.zeros(10))


class TestWorkflow:
    def test_measured_run_and_report(self):
        from repro.model.performance import PerformanceModel

        run = run_stencil(n=512, block_threads=64, model=PerformanceModel())
        assert run.measured is not None and run.measured.cycles > 0
        assert run.predicted_seconds > 0

    def test_guarded_measured_run(self):
        run = run_stencil(n=512, block_threads=64, guarded=True)
        assert run.measured is not None and run.measured.cycles > 0
