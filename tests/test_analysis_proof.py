"""Dedup soundness proof: zero-probe runs, differential traces, audits."""

import pickle

import pytest

from repro.analysis.dedup_proof import prove_block_class
from repro.analysis.report import analysis_case
from repro.errors import AnalysisError, ReproError
from repro.isa import Imm, KernelBuilder
from repro.sim.engine import (
    BlockClass,
    SimulationEngine,
    analyze_dependence,
    partition_blocks,
)
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

AFFINE_KERNELS = (
    "matmul",
    "scan",
    "stencil",
    "stencil_guarded",
    "reduction",
    "tridiag",
    "tridiag_nbc",
)


class TestProofCoverage:
    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_every_affine_class_proves(self, name):
        case = analysis_case(name)
        dependence = analyze_dependence(case.kernel)
        classes = partition_blocks(case.launch, dependence)
        for cls in classes:
            result = prove_block_class(
                case.kernel, case.launch, cls.members, case.gmem
            )
            assert result.proved, (name, result.reason)

    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_engine_skips_all_probes(self, name):
        case = analysis_case(name)
        # trace_mode="interpret" isolates the proof's probe skipping
        # from trace synthesis (which drops simulated_blocks to zero;
        # see test_sim_symbolic.py).
        engine = SimulationEngine(
            case.kernel, gmem=case.gmem, trace_mode="interpret"
        )
        trace = engine.run(case.launch)
        stats = trace.engine_stats
        # Every multi-member class proved: exactly one simulation per
        # class, zero verifier probes, zero fallbacks.
        assert stats.simulated_blocks == stats.block_classes
        assert stats.probe_fallbacks == 0
        multi = sum(
            1
            for cls in partition_blocks(
                case.launch, analyze_dependence(case.kernel)
            )
            if len(cls.members) > 1
        )
        assert stats.proved_classes == multi

    def test_data_dependent_spmv_is_all_singletons(self):
        case = analysis_case("spmv")
        engine = SimulationEngine(case.kernel, gmem=case.gmem)
        stats = engine.run(case.launch).engine_stats
        assert stats.proved_classes == 0
        assert stats.simulated_blocks == stats.total_blocks


class TestDifferentialProofVsProbe:
    @pytest.mark.parametrize("name", AFFINE_KERNELS + ("spmv",))
    def test_traces_are_pickle_identical(self, name):
        payloads = {}
        for mode in ("proof", "probe", "both"):
            case = analysis_case(name)
            engine = SimulationEngine(
                case.kernel, gmem=case.gmem, dedup_verify=mode
            )
            trace = engine.run(case.launch)
            trace.engine_stats = None  # stats legitimately differ
            payloads[mode] = pickle.dumps(trace)
        assert payloads["proof"] == payloads["probe"] == payloads["both"]


class TestProofProbeContradiction:
    def _parity_kernel(self, gmem):
        # Work depends on ctaid parity: any single-class claim over the
        # interior is wrong, and honest probes catch it.
        out = gmem.alloc(32 * 4, "out")
        b = KernelBuilder("parity", params=("out",))
        even = b.reg()
        b.iand(even, b.ctaid_x, Imm(1))
        p = b.pred()
        b.isetp(p, "eq", even, Imm(0))
        v = b.reg()
        b.mov(v, Imm(1.0))
        with b.if_then(p):
            b.fadd(v, v, v)
        addr = b.reg()
        b.imad(addr, b.tid, Imm(4), b.param("out"))
        b.stg(addr, v)
        b.exit()
        return b.build(), {"out": out}

    def test_both_mode_raises_on_lying_prover(self, monkeypatch):
        import repro.analysis.dedup_proof as dedup_proof

        gmem = GlobalMemory()
        kernel, params = self._parity_kernel(gmem)
        launch = LaunchConfig(grid=(10, 1), block_threads=32, params=params)
        monkeypatch.setattr(
            dedup_proof,
            "prove_block_class",
            lambda *a, **k: dedup_proof.ProofResult(True, "lie"),
        )
        engine = SimulationEngine(kernel, gmem=gmem, dedup_verify="both")
        with pytest.raises(AnalysisError, match="probe simulations disagree"):
            engine.run(launch)

    def test_honest_prover_refuses_parity_kernel(self):
        gmem = GlobalMemory()
        kernel, params = self._parity_kernel(gmem)
        launch = LaunchConfig(grid=(10, 1), block_threads=32, params=params)
        classes = partition_blocks(launch, analyze_dependence(kernel))
        interior = next(c for c in classes if len(c.members) > 1)
        result = prove_block_class(kernel, launch, interior.members, gmem)
        assert not result.proved

    def test_proof_mode_still_probes_unproved_classes(self):
        gmem = GlobalMemory()
        kernel, params = self._parity_kernel(gmem)
        launch = LaunchConfig(grid=(10, 1), block_threads=32, params=params)
        engine = SimulationEngine(kernel, gmem=gmem)
        stats = engine.run(launch).engine_stats
        assert stats.proved_classes == 0
        assert stats.probe_fallbacks >= 1


class TestEngineParameter:
    def test_unknown_mode_rejected(self):
        case = analysis_case("stencil")
        with pytest.raises(ReproError, match="dedup_verify"):
            SimulationEngine(case.kernel, dedup_verify="trust-me")


class TestMemberOrderDeterminism:
    def test_members_are_canonically_sorted(self):
        shuffled = [(7, 0), (1, 0), (4, 0), (0, 0), (3, 0), (6, 0), (2, 0), (5, 0)]
        cls = BlockClass(shuffled)
        assert cls.members == sorted(shuffled)
        assert cls.representative == (0, 0)
        assert cls.verifiers == ((1, 0), (4, 0), (7, 0))

    def test_probe_picks_survive_reordering(self):
        members = [(x, y) for y in range(2) for x in range(3)]
        forward = BlockClass(list(members))
        backward = BlockClass(list(reversed(members)))
        assert forward.representative == backward.representative
        assert forward.verifiers == backward.verifiers
