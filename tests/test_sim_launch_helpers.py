"""Launch helpers and the application harness plumbing."""

import pytest

from repro.apps.common import execute, kernel_resources
from repro.isa import Imm, KernelBuilder
from repro.sim import (
    FunctionalSimulator,
    GlobalMemory,
    LaunchConfig,
    evenly_spaced_blocks,
    run_full,
    run_representative,
)


def tiny_kernel():
    b = KernelBuilder("tiny")
    r = b.reg()
    b.mov(r, Imm(1))
    b.fmad(r, r, r, r)
    b.exit()
    return b.build()


class TestBlockSampling:
    def test_evenly_spaced_covers_extremes(self):
        launch = LaunchConfig(grid=(100, 1), block_threads=32)
        sample = evenly_spaced_blocks(launch, 5)
        assert len(sample) == 5
        assert sample[0] == (0, 0)
        assert all(b in launch.all_blocks() for b in sample)

    def test_request_larger_than_grid(self):
        launch = LaunchConfig(grid=(3, 1), block_threads=32)
        assert evenly_spaced_blocks(launch, 10) == launch.all_blocks()

    def test_2d_grid_ordering(self):
        launch = LaunchConfig(grid=(2, 3), block_threads=32)
        blocks = launch.all_blocks()
        assert blocks[0] == (0, 0)
        assert blocks[1] == (1, 0)  # x fastest, CUDA linearization
        assert len(blocks) == 6

    def test_representative_defaults_to_origin(self):
        sim = FunctionalSimulator(tiny_kernel())
        launch = LaunchConfig(grid=(6, 1), block_threads=32)
        trace = run_representative(sim, launch)
        assert len(trace.block_traces) == 1
        assert trace.num_blocks == 6

    def test_full_equals_scaled_representative_for_homogeneous(self):
        sim = FunctionalSimulator(tiny_kernel())
        launch = LaunchConfig(grid=(6, 1), block_threads=32)
        full = run_full(sim, launch)
        rep = run_representative(sim, launch)
        assert (
            full.totals.total_instructions == rep.totals.total_instructions
        )


class TestExecuteHarness:
    def test_kernel_resources_derived(self):
        kernel = tiny_kernel()
        launch = LaunchConfig(grid=(1, 1), block_threads=64)
        res = kernel_resources(kernel, launch)
        assert res.threads_per_block == 64
        assert res.registers_per_thread == kernel.num_registers
        assert res.shared_memory_per_block == kernel.shared_memory_bytes

    def test_execute_without_model_or_measure(self):
        run = execute(
            "t",
            tiny_kernel(),
            GlobalMemory(),
            LaunchConfig(grid=(2, 1), block_threads=32),
            measure=False,
        )
        assert run.report is None
        assert run.measured is None
        assert run.trace.num_blocks == 2

    def test_execute_measures_by_default(self):
        run = execute(
            "t",
            tiny_kernel(),
            GlobalMemory(),
            LaunchConfig(grid=(2, 1), block_threads=32),
        )
        assert run.measured is not None
        assert run.measured.seconds > 0

    def test_execute_with_model(self, model):
        run = execute(
            "t",
            tiny_kernel(),
            GlobalMemory(),
            LaunchConfig(grid=(2, 1), block_threads=32),
            model=model,
            measure=True,
        )
        assert run.report is not None
        assert run.model_error >= 0
