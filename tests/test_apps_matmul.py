"""Dense matrix multiply: numerics, Table 2 resources, Fig. 4a counts."""

import numpy as np
import pytest

from repro.apps.matmul import (
    BLOCK_THREADS,
    build_matmul_kernel,
    gflops,
    prepare_problem,
    run_matmul,
    validate_matmul,
)
from repro.arch import GTX285, KernelResources, compute_occupancy
from repro.errors import LaunchError


class TestNumerics:
    @pytest.mark.parametrize("tile", [8, 16, 32])
    def test_small_matrix_correct(self, tile):
        assert validate_matmul(64, tile) < 1e-4

    def test_rectangular_grid(self):
        assert validate_matmul(128, 32, seed=1) < 1e-4

    def test_result_reshapes_column_major(self):
        problem = prepare_problem(64, 16, seed=5)
        ref = problem.reference()
        assert ref.shape == (64, 64)


class TestKernelShape:
    def test_bad_dimensions_rejected(self):
        with pytest.raises(LaunchError):
            build_matmul_kernel(100, 16)
        with pytest.raises(LaunchError):
            build_matmul_kernel(128, 48)

    def test_block_is_64_threads(self):
        problem = prepare_problem(128, 16)
        assert problem.launch().block_threads == BLOCK_THREADS

    def test_grid_shape(self):
        problem = prepare_problem(128, 16)
        assert problem.launch().grid == (2, 8)

    def test_register_counts_match_table2(self):
        # NVCC reported 30 and 58 registers (paper Table 2).
        assert build_matmul_kernel(1024, 16).num_registers == 30
        assert build_matmul_kernel(1024, 32).num_registers == 58

    def test_shared_footprint_matches_table2_ceilings(self):
        for tile, expected_blocks in ((8, 8), (16, 8), (32, 3)):
            kernel = build_matmul_kernel(1024, tile)
            occ = compute_occupancy(
                GTX285,
                KernelResources(64, kernel.num_registers, kernel.shared_memory_bytes),
            )
            assert occ.blocks_per_sm == expected_blocks

    def test_warps_match_table2(self):
        for tile, warps in ((8, 16), (16, 16), (32, 6)):
            kernel = build_matmul_kernel(1024, tile)
            occ = compute_occupancy(
                GTX285,
                KernelResources(64, kernel.num_registers, kernel.shared_memory_bytes),
            )
            assert occ.warps_per_sm == warps


class TestDynamicCounts:
    """Fig. 4(a) at a reduced size (n=256; counts scale as n^3/32)."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {
            tile: run_matmul(256, tile, measure=False) for tile in (8, 16, 32)
        }

    def test_mad_count_is_n_cubed_over_warpsize(self, runs):
        expected = 256**3 / 32
        for run in runs.values():
            assert run.trace.totals.mad_instructions == pytest.approx(
                expected, rel=0.001
            )

    def test_total_instructions_decrease_with_tile(self, runs):
        totals = [runs[t].trace.totals.total_instructions for t in (8, 16, 32)]
        assert totals[0] > totals[1] > totals[2]

    def test_global_transactions_drop_roughly_in_half(self, runs):
        txns = [runs[t].trace.totals.global_transactions[32] for t in (8, 16, 32)]
        assert txns[1] / txns[0] == pytest.approx(0.55, abs=0.08)  # paper: -45%
        assert txns[2] / txns[1] == pytest.approx(0.60, abs=0.08)  # paper: -40%

    def test_shared_transactions_roughly_constant(self, runs):
        shared = [runs[t].trace.totals.shared_transactions for t in (8, 16, 32)]
        assert max(shared) / min(shared) < 1.05  # paper: 34.4M vs 34.2M

    def test_density_rises_with_tile_size(self, runs):
        densities = [
            runs[t].trace.totals.computational_density for t in (8, 16, 32)
        ]
        assert densities[0] < densities[1] < densities[2]
        assert densities[1] == pytest.approx(0.80, abs=0.07)  # paper: "80%"

    def test_no_bank_conflicts(self, runs):
        for run in runs.values():
            assert run.trace.totals.bank_conflict_factor == pytest.approx(
                1.0, abs=0.01
            )

    def test_fully_coalesced(self, runs):
        for run in runs.values():
            assert run.trace.totals.coalescing_efficiency(32) == pytest.approx(
                1.0, abs=0.01
            )


class TestHelpers:
    def test_gflops(self):
        assert gflops(1024, 1e-3) == pytest.approx(2 * 1024**3 / 1e-3 / 1e9)
