"""Layout transforms: padding and interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.memory import (
    deinterleave,
    interleave,
    interleave_permutation,
    pad_array,
    pad_index,
    padded_length,
)


class TestPadding:
    def test_pad_index_first_group_unchanged(self):
        assert [pad_index(i) for i in range(16)] == list(range(16))

    def test_pad_index_inserts_gap_every_16(self):
        assert pad_index(16) == 17
        assert pad_index(32) == 34
        assert pad_index(511) == 511 + 31

    def test_padded_length(self):
        assert padded_length(16) == 16
        assert padded_length(17) == 18
        assert padded_length(512) == 543  # 511 + 511 // 16 + 1

    def test_pad_array_scatter(self):
        values = np.arange(20.0)
        padded = pad_array(values, fill=-1.0)
        assert padded[16] == -1.0  # the pad word
        assert padded[17] == 16.0

    def test_pad_index_injective(self):
        seen = {pad_index(i) for i in range(1000)}
        assert len(seen) == 1000

    def test_bad_inputs(self):
        with pytest.raises(ModelError):
            pad_index(-1)
        with pytest.raises(ModelError):
            pad_index(3, every=0)

    def test_zero_length(self):
        assert padded_length(0) == 0


class TestInterleave:
    def test_paper_figure_9d_grouping(self):
        # Rows 0..11 in 3 groups: group members stored together.
        perm = interleave_permutation(12, 3)
        # row 0 -> 0, row 1 -> 4, row 2 -> 8, row 3 -> 1, ...
        assert list(perm[:6]) == [0, 4, 8, 1, 5, 9]

    def test_interleave_values(self):
        x = np.arange(6.0)
        out = interleave(x, 3)
        assert list(out) == [0, 3, 1, 4, 2, 5]

    def test_group_must_divide(self):
        with pytest.raises(ModelError):
            interleave_permutation(10, 3)

    def test_group_positive(self):
        with pytest.raises(ModelError):
            interleave_permutation(9, 0)

    def test_identity_group_one(self):
        x = np.arange(8.0)
        assert np.array_equal(interleave(x, 1), x)

    @given(
        st.integers(1, 8),
        st.integers(1, 30),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, group, blocks):
        n = group * blocks
        x = np.arange(float(n))
        assert np.array_equal(deinterleave(interleave(x, group), group), x)

    @given(st.integers(2, 6), st.integers(2, 20))
    @settings(max_examples=60, deadline=None)
    def test_permutation_is_bijection(self, group, blocks):
        n = group * blocks
        perm = interleave_permutation(n, group)
        assert sorted(perm) == list(range(n))

    def test_vector_semantics_match_spmv_layout(self):
        # x'[j * nbr + c] must equal x[3c + j] (paper Fig. 10b).
        nbr = 5
        x = np.arange(15.0)
        stored = interleave(x, 3)
        for c in range(nbr):
            for j in range(3):
                assert stored[j * nbr + c] == x[3 * c + j]
