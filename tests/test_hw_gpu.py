"""Whole-GPU measurement: distribution, waves, sawtooth."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import HardwareGpu
from repro.hw.gpu import HardwareGpu as _Gpu
from repro.sim.trace import BlockTrace, EV_ARITH, EV_GLOBAL_LD


def block_trace(stream, warps=2):
    return BlockTrace(block=(0, 0), stages=[], warp_streams=[stream] * warps)


def arith_block(n=50, warps=2):
    return block_trace([(EV_ARITH, 1, 1, 0, None)] * n, warps)


def load_block(n=20, warps=2):
    return block_trace([(EV_GLOBAL_LD, 0, 2, 128, None)] * n, warps)


def cacheable_load_block(n=20, warps=2):
    """Loads carrying texture-cacheable segment payloads."""
    payload = (True, ((4096, 128),))
    return block_trace([(EV_GLOBAL_LD, 0, 2, 128, payload)] * n, warps)


class TestDistribution:
    def test_block_counts_round_robin(self):
        counts = _Gpu._block_counts(35, 10, 3)
        # 35 blocks over 10 clusters: clusters 0-4 get 4, 5-9 get 3.
        assert [sum(c) for c in counts] == [4, 4, 4, 4, 4, 3, 3, 3, 3, 3]

    def test_block_counts_within_cluster(self):
        counts = _Gpu._block_counts(30, 10, 3)
        assert all(c == [1, 1, 1] for c in counts)

    def test_total_preserved(self):
        for n in (1, 7, 29, 30, 31, 59, 123):
            counts = _Gpu._block_counts(n, 10, 3)
            assert sum(sum(c) for c in counts) == n


class TestMeasurement:
    def test_single_block(self):
        gpu = HardwareGpu()
        run = gpu.measure(arith_block(), num_blocks=1, resident_per_sm=8)
        assert run.cycles > 0
        assert run.seconds == run.cycles / gpu.spec.core_clock_hz

    def test_more_blocks_take_longer_when_saturated(self):
        gpu = HardwareGpu()
        t30 = gpu.measure(load_block(100), 30, 8).cycles
        t60 = gpu.measure(load_block(100), 60, 8).cycles
        assert t60 > 1.5 * t30

    def test_sawtooth_at_cluster_multiples(self):
        # Blocks beyond a multiple of 10 cause a leftover wave: the
        # paper's "for the best throughput, the number of blocks should
        # be a multiple of 10".
        gpu = HardwareGpu()
        trace = load_block(200, warps=2)
        t30 = gpu.measure(trace, 30, 1).cycles
        t31 = gpu.measure(trace, 31, 1).cycles
        t40 = gpu.measure(trace, 40, 1).cycles
        assert t31 > 1.15 * t30
        assert abs(t40 - t31) / t40 < 0.35  # 31..40 share the 4-deep cluster

    def test_wave_extrapolation_close_to_exact(self):
        gpu = HardwareGpu()
        trace = arith_block(60)
        exact = gpu.measure(
            trace, 300, resident_per_sm=2, wave_extrapolation=False
        )
        extrapolated = gpu.measure(trace, 300, resident_per_sm=2)
        assert extrapolated.extrapolated
        assert extrapolated.cycles == pytest.approx(exact.cycles, rel=0.15)

    def test_heterogeneous_traces_cycle(self):
        gpu = HardwareGpu()
        light = arith_block(10)
        heavy = arith_block(200)
        mixed = gpu.measure([light, heavy], 20, 8)
        uniform = gpu.measure(light, 20, 8)
        assert mixed.cycles > uniform.cycles

    def test_zero_blocks_rejected(self):
        with pytest.raises(HardwareModelError):
            HardwareGpu().measure(arith_block(), 0, 1)

    def test_empty_traces_rejected(self):
        with pytest.raises(HardwareModelError):
            HardwareGpu().measure([], 10, 1)

    def test_measure_uniform_sm(self):
        gpu = HardwareGpu()
        stream = [(EV_ARITH, 1, 1, 0, None)] * 40
        result = gpu.measure_uniform_sm([[stream] * 4], resident_per_sm=8)
        assert result.cycles > 0

    def test_milliseconds_property(self):
        gpu = HardwareGpu()
        run = gpu.measure(arith_block(), 1, 1)
        assert run.milliseconds == pytest.approx(run.seconds * 1e3)


class TestExtrapolatedCacheStats:
    def test_extrapolated_run_reports_cache_hits(self):
        # Regression: the wave-extrapolation path used to discard its
        # ClusterResults' cache_hits/cache_misses, reporting a 0.0 hit
        # rate for every extrapolated run even with use_cache=True.
        gpu = HardwareGpu()
        trace = cacheable_load_block()
        run = gpu.measure(trace, 300, resident_per_sm=2, use_cache=True)
        assert run.extrapolated
        assert run.cache_hit_rate > 0.0

    def test_extrapolated_rate_tracks_the_exact_path(self):
        gpu = HardwareGpu()
        trace = cacheable_load_block()
        exact = gpu.measure(
            trace, 300, 2, use_cache=True, wave_extrapolation=False
        )
        fast = gpu.measure(trace, 300, 2, use_cache=True)
        assert exact.cache_hit_rate > 0.0
        assert fast.cache_hit_rate == pytest.approx(
            exact.cache_hit_rate, abs=0.05
        )

    def test_no_cache_still_reports_zero(self):
        run = HardwareGpu().measure(arith_block(60), 300, 2)
        assert run.extrapolated
        assert run.cache_hit_rate == 0.0
