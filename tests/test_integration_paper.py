"""End-to-end reproduction of the paper's headline narratives.

Scaled-down problem sizes keep the suite fast; the benchmark harness in
``benchmarks/`` regenerates the full-size tables and figures.
"""

import pytest

from repro.apps.matmul import gflops as mm_gflops, run_matmul
from repro.apps.matrices import qcd_like
from repro.apps.spmv import gflops as spmv_gflops, run_spmv
from repro.apps.tridiag import forward_stage_count, run_cr
from repro.model import (
    predict_with_granularity,
    predict_without_bank_conflicts,
)


@pytest.fixture(scope="module")
def matmul_runs(model, gpu):
    return {
        tile: run_matmul(512, tile, model=model, gpu=gpu) for tile in (8, 16, 32)
    }


class TestMatmulNarrative:
    """Section 5.1: bottlenecks across tile sizes (Fig. 4b, Table 2)."""

    def test_16x16_instruction_bound(self, matmul_runs):
        assert matmul_runs[16].report.bottleneck == "instruction"

    def test_32x32_shifts_to_shared(self, matmul_runs):
        # Occupancy collapse (6 warps) makes shared memory the
        # bottleneck at 32x32 -- the paper's key Fig. 4(b) observation.
        assert matmul_runs[32].report.bottleneck == "shared"

    def test_32x32_runs_at_six_warps(self, matmul_runs):
        assert matmul_runs[32].occupancy.warps_per_sm == 6
        assert matmul_runs[16].occupancy.warps_per_sm == 16

    def test_16x16_is_fastest_measured(self, matmul_runs):
        # At n=512 the 8x8/16x16 gap narrows (global traffic scales as
        # n^3/s); allow a 2% tie here -- the full-size n=1024 benchmark
        # shows the paper's decisive ordering.
        measured = {t: matmul_runs[t].measured.seconds for t in (8, 16, 32)}
        assert measured[16] <= 1.02 * min(measured.values())

    def test_model_error_within_bounds_for_16x16(self, matmul_runs):
        # The paper reports 5-15% (with a known ~14% underestimate).
        assert matmul_runs[16].model_error < 0.30

    def test_larger_tiles_do_not_win(self, matmul_runs):
        assert (
            matmul_runs[32].measured.seconds > matmul_runs[16].measured.seconds
        )

    def test_gflops_sane(self, matmul_runs):
        for run in matmul_runs.values():
            rate = mm_gflops(512, run.measured.seconds)
            assert 50 < rate < 710.4  # below theoretical peak


@pytest.fixture(scope="module")
def cr_runs(model, gpu):
    return {
        padded: run_cr(512, 64, padded=padded, model=model, gpu=gpu)
        for padded in (False, True)
    }


class TestTridiagNarrative:
    """Section 5.2: CR is shared-bound; padding shifts it (Figs. 6-8)."""

    def test_cr_shared_bound(self, cr_runs):
        assert cr_runs[False].report.bottleneck == "shared"

    def test_nbc_instruction_bound(self, cr_runs):
        assert cr_runs[True].report.bottleneck == "instruction"

    def test_stages_serialized_single_block(self, cr_runs):
        assert cr_runs[False].report.serialized
        assert cr_runs[False].occupancy.blocks_per_sm == 1

    def test_load_stage_global_bound(self, cr_runs):
        assert cr_runs[False].report.stages[0].bottleneck == "global"

    def test_middle_steps_shared_bound_with_conflicts(self, cr_runs):
        fwd = cr_runs[False].report.stages[: forward_stage_count(512)]
        shared_bound = [s for s in fwd[2:] if s.bottleneck == "shared"]
        assert len(shared_bound) >= 2

    def test_nbc_compute_steps_instruction_bound(self, cr_runs):
        fwd = cr_runs[True].report.stages[1 : forward_stage_count(512)]
        assert all(s.bottleneck == "instruction" for s in fwd)

    def test_padding_speeds_up_measured(self, cr_runs):
        speedup = (
            cr_runs[False].measured.seconds / cr_runs[True].measured.seconds
        )
        assert 1.2 < speedup < 2.2  # paper: 1.6x

    def test_model_predicts_the_win_before_writing_nbc(self, cr_runs, model):
        run = cr_runs[False]
        inputs = model.extract(run.trace, run.launch, run.resources)
        prediction = predict_without_bank_conflicts(model, inputs)
        assert prediction.speedup > 1.2

    def test_predicted_speedup_close_to_measured(self, cr_runs):
        predicted = (
            cr_runs[False].report.predicted_seconds
            / cr_runs[True].report.predicted_seconds
        )
        measured = (
            cr_runs[False].measured.seconds / cr_runs[True].measured.seconds
        )
        assert predicted == pytest.approx(measured, rel=0.35)


@pytest.fixture(scope="module")
def spmv_runs(model, gpu):
    matrix = qcd_like(dims=(8, 8, 16, 8))  # 8192 block rows
    runs = {
        fmt: run_spmv(matrix, fmt, model=model, gpu=gpu, sample_blocks=8)
        for fmt in ("ell", "bell_im", "bell_imiv")
    }
    return matrix, runs


class TestSpmvNarrative:
    """Section 5.3: global-bound; IM and IV each help (Figs. 11-12)."""

    def test_all_formats_global_bound(self, spmv_runs):
        _, runs = spmv_runs
        for run in runs.values():
            assert run.report.bottleneck == "global"

    def test_format_ordering_measured(self, spmv_runs):
        _, runs = spmv_runs
        assert (
            runs["bell_imiv"].measured.seconds
            < runs["bell_im"].measured.seconds
            < runs["ell"].measured.seconds
        )

    def test_model_error_small(self, spmv_runs):
        # Paper: "the error ... of bottleneck factor is within 5%".
        _, runs = spmv_runs
        for run in runs.values():
            assert run.model_error < 0.25

    def test_gflops_improvements(self, spmv_runs):
        matrix, runs = spmv_runs
        rates = {
            fmt: spmv_gflops(matrix, run.measured.seconds)
            for fmt, run in runs.items()
        }
        assert rates["bell_im"] > 1.2 * rates["ell"]
        assert rates["bell_imiv"] > 1.15 * rates["bell_im"]

    def test_smaller_granularity_helps_ell(self, spmv_runs, model):
        _, runs = spmv_runs
        run = runs["ell"]
        inputs = model.extract(run.trace, run.launch, run.resources)
        result = predict_with_granularity(model, inputs, 16)
        assert result.speedup >= 1.0

    def test_texture_cache_speeds_up(self, model, gpu):
        matrix = qcd_like(dims=(4, 4, 4, 4))
        plain = run_spmv(matrix, "bell_imiv", gpu=gpu, sample_blocks=6)
        cached = run_spmv(
            matrix, "bell_imiv", gpu=gpu, sample_blocks=6, use_cache=True
        )
        assert cached.measured.seconds < plain.measured.seconds

    def test_low_density_explains_low_gflops(self, spmv_runs):
        # "only about 1/10 of total instructions ... actual computations"
        _, runs = spmv_runs
        density = runs["ell"].trace.totals.computational_density
        assert density < 0.25
