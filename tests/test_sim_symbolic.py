"""Symbolic trace synthesis: byte-identity, fallbacks, and the ladder.

The synthesis contract is strict: a synthesized :class:`BlockTrace`
must pickle to *exactly* the bytes the interpreters produce, for every
affine zoo kernel at more than one grid size.  Data-dependent kernels
must refuse cleanly and leave a visible ``EngineStats`` signal.
"""

import pickle

import pytest

from repro.analysis.report import analysis_case
from repro.analysis.symbolic import (
    TraceSynthesizer,
    synthesis_coverage,
    synthesize_block_trace,
)
from repro.apps import matmul, reduction, scan, stencil, tridiag
from repro.errors import AnalysisError, ReproError
from repro.sim.engine import SimulationEngine
from repro.sim.functional import FunctionalSimulator

AFFINE_KERNELS = (
    "matmul",
    "scan",
    "stencil",
    "stencil_guarded",
    "reduction",
    "tridiag",
    "tridiag_nbc",
)

#: Each zoo kernel at two grid sizes -- synthesis must be exact at
#: both, not just at the analysis-case default.
_SIZED = {
    "matmul": {
        "small": lambda: (
            matmul.build_matmul_kernel(64, 8),
            matmul.prepare_problem(64, 8),
        ),
        "large": lambda: (
            matmul.build_matmul_kernel(128, 8),
            matmul.prepare_problem(128, 8),
        ),
    },
    "scan": {
        "small": lambda: (
            scan.build_scan_kernel(128, "f32"),
            scan.prepare_problem(500, block_threads=128),
        ),
        "large": lambda: (
            scan.build_scan_kernel(128, "f32"),
            scan.prepare_problem(4000, block_threads=128),
        ),
    },
    "stencil": {
        "small": lambda: (
            stencil.build_stencil_kernel(64, guarded=False),
            stencil.prepare_problem(256, block_threads=64),
        ),
        "large": lambda: (
            stencil.build_stencil_kernel(64, guarded=False),
            stencil.prepare_problem(2048, block_threads=64),
        ),
    },
    "stencil_guarded": {
        "small": lambda: (
            stencil.build_stencil_kernel(64, guarded=True),
            stencil.prepare_problem(256, block_threads=64, guarded=True),
        ),
        "large": lambda: (
            stencil.build_stencil_kernel(64, guarded=True),
            stencil.prepare_problem(2048, block_threads=64, guarded=True),
        ),
    },
    "reduction": {
        "small": lambda: (
            reduction.build_reduction_kernel(64),
            reduction.prepare_problem(block_threads=64, num_blocks=8),
        ),
        "large": lambda: (
            reduction.build_reduction_kernel(64),
            reduction.prepare_problem(block_threads=64, num_blocks=96),
        ),
    },
    "tridiag": {
        "small": lambda: (
            tridiag.build_cr_kernel(64),
            tridiag.prepare_problem(64, 4),
        ),
        "large": lambda: (
            tridiag.build_cr_kernel(64),
            tridiag.prepare_problem(64, 24),
        ),
    },
    "tridiag_nbc": {
        "small": lambda: (
            tridiag.build_cr_kernel(64, padded=True),
            tridiag.prepare_problem(64, 4),
        ),
        "large": lambda: (
            tridiag.build_cr_kernel(64, padded=True),
            tridiag.prepare_problem(64, 24),
        ),
    },
}


def _probe_blocks(launch):
    """First, a middle, and the last block of the grid."""
    gx, gy = launch.grid
    total = gx * gy
    picks = {0, total // 2, total - 1}
    return sorted((i % gx, i // gx) for i in picks)


class TestDifferentialByteIdentity:
    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    @pytest.mark.parametrize("size", ("small", "large"))
    def test_synthesis_matches_interpreter(self, name, size):
        kernel, problem = _SIZED[name][size]()
        launch = problem.launch()
        assert synthesis_coverage(kernel, launch)
        synthesizer = TraceSynthesizer(kernel, problem.gmem)
        interpreter = FunctionalSimulator(
            kernel, gmem=problem.gmem, batched=True
        )
        for block in _probe_blocks(launch):
            synthesized = synthesizer.synthesize(launch, block)
            interpreted = interpreter.run_block(launch, block)
            assert pickle.dumps(
                synthesized, pickle.HIGHEST_PROTOCOL
            ) == pickle.dumps(interpreted, pickle.HIGHEST_PROTOCOL), (
                name,
                size,
                block,
            )

    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_matches_per_warp_oracle_too(self, name):
        case = analysis_case(name)
        synthesized = synthesize_block_trace(
            case.kernel, case.launch, (0, 0), case.gmem
        )
        oracle = FunctionalSimulator(case.kernel, gmem=case.gmem, batched=False)
        expected = oracle.run_block(case.launch, (0, 0))
        assert pickle.dumps(synthesized, 5) == pickle.dumps(expected, 5)


class TestCoverageGate:
    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_affine_zoo_is_covered(self, name):
        case = analysis_case(name)
        coverage = synthesis_coverage(case.kernel, case.launch)
        assert coverage
        assert coverage.covered

    def test_spmv_refuses_with_data_reason(self):
        case = analysis_case("spmv")
        coverage = synthesis_coverage(case.kernel, case.launch)
        assert not coverage
        assert "contents" in coverage.reason


class TestEngineLadder:
    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_both_mode_audits_whole_zoo(self, name):
        case = analysis_case(name)
        engine = SimulationEngine(
            case.kernel, gmem=case.gmem, trace_mode="both"
        )
        stats = engine.run(case.launch).engine_stats
        # Every class synthesized -- and every one byte-compared
        # against its interpreted twin without raising.
        assert stats.synthesized_classes == stats.block_classes >= 1
        assert stats.interpreted_classes == 0

    @pytest.mark.parametrize("name", AFFINE_KERNELS)
    def test_symbolic_default_skips_the_interpreter(self, name):
        case = analysis_case(name)
        engine = SimulationEngine(case.kernel, gmem=case.gmem)
        stats = engine.run(case.launch).engine_stats
        assert stats.synthesized_classes == stats.block_classes
        assert stats.simulated_blocks == 0
        assert "synthesized" in stats.summary()

    @pytest.mark.parametrize("mode", ("symbolic", "both"))
    def test_spmv_falls_back_to_interpreter(self, mode):
        case = analysis_case("spmv")
        engine = SimulationEngine(
            case.kernel, gmem=case.gmem, trace_mode=mode
        )
        stats = engine.run(case.launch).engine_stats
        # The clear fallback signal: zero synthesized classes, every
        # class interpreted, every block simulated for real.
        assert stats.synthesized_classes == 0
        assert stats.interpreted_classes == stats.block_classes
        assert stats.simulated_blocks == stats.total_blocks

    @pytest.mark.parametrize("name", ("matmul", "spmv"))
    def test_modes_agree_on_the_trace(self, name):
        payloads = {}
        for mode in ("symbolic", "interpret", "both"):
            case = analysis_case(name)
            engine = SimulationEngine(
                case.kernel, gmem=case.gmem, trace_mode=mode
            )
            trace = engine.run(case.launch)
            trace.engine_stats = None  # stats legitimately differ
            payloads[mode] = pickle.dumps(trace)
        assert (
            payloads["symbolic"] == payloads["interpret"] == payloads["both"]
        )

    def test_unknown_trace_mode_rejected(self):
        case = analysis_case("stencil")
        with pytest.raises(ReproError, match="trace_mode"):
            SimulationEngine(case.kernel, trace_mode="guess")

    def test_both_mode_raises_on_divergence(self, monkeypatch):
        import repro.analysis.symbolic as symbolic_mod

        case = analysis_case("stencil")
        original = symbolic_mod.TraceSynthesizer.synthesize

        def corrupted(self, launch, block):
            trace = original(self, launch, block)
            trace.stages[0].shared_transactions += 1
            return trace

        monkeypatch.setattr(
            symbolic_mod.TraceSynthesizer, "synthesize", corrupted
        )
        engine = SimulationEngine(
            case.kernel, gmem=case.gmem, trace_mode="both"
        )
        with pytest.raises(AnalysisError, match="diverges"):
            engine.run(case.launch)


class TestCacheKeying:
    def test_trace_mode_changes_cache_key(self):
        case = analysis_case("stencil")
        keys = {
            SimulationEngine(
                case.kernel, gmem=case.gmem, trace_mode=mode
            )._cache_key(case.launch, None, True)
            for mode in ("symbolic", "interpret", "both")
        }
        assert len(keys) == 3

    def test_symbolic_stats_survive_the_cache(self, tmp_path):
        case = analysis_case("stencil")

        def engine():
            return SimulationEngine(
                case.kernel, gmem=case.gmem, cache_dir=tmp_path
            )

        cold = engine().run(case.launch).engine_stats
        warm = engine().run(case.launch).engine_stats
        assert not cold.cache_hit and warm.cache_hit
        assert warm.synthesized_classes == cold.synthesized_classes == 1
