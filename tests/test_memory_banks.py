"""Bank-conflict analyzer: the paper's Fig. 5 patterns."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.memory import (
    BankConfig,
    conflict_degree,
    stride_conflict_degree,
    warp_transactions,
)
from repro.memory.layout import pad_index


class TestConflictDegree:
    def test_conflict_free_unit_stride(self):
        addrs = [i * 4 for i in range(16)]
        assert conflict_degree(addrs) == 1

    def test_broadcast_is_free(self):
        # All threads reading the same word use the broadcast path.
        assert conflict_degree([64] * 16) == 1

    def test_stride_two_paper_value(self):
        assert stride_conflict_degree(2) == 2

    def test_stride_four_paper_value(self):
        assert stride_conflict_degree(4) == 4

    def test_stride_eight_paper_value(self):
        assert stride_conflict_degree(8) == 8

    def test_stride_sixteen_saturates_at_bank_count(self):
        assert stride_conflict_degree(16) == 16
        assert stride_conflict_degree(32) == 16

    def test_cr_doubling_pattern(self):
        # "from 2-way bank conflicts in step one, to 4-way in step two,
        # to 8-way in step three, and so on"
        degrees = [stride_conflict_degree(2**k) for k in (1, 2, 3, 4)]
        assert degrees == [2, 4, 8, 16]

    def test_fewer_threads_cap_the_degree(self):
        assert stride_conflict_degree(16, threads=4) == 4

    def test_empty_access_costs_nothing(self):
        assert conflict_degree([]) == 0

    def test_odd_stride_is_conflict_free(self):
        assert stride_conflict_degree(17) == 1

    def test_padding_removes_power_of_two_conflicts(self):
        # The paper's CR-NBC trick: one pad word per 16 elements.
        for stride in (2, 4, 8):
            padded = [4 * pad_index(i * stride) for i in range(16)]
            assert conflict_degree(padded) == 1


class TestWarpTransactions:
    def test_conflict_free_warp(self):
        addrs = [i * 4 for i in range(32)]
        actual, ideal = warp_transactions(addrs)
        assert (actual, ideal) == (2, 2)

    def test_two_way_conflicts_double_transactions(self):
        addrs = [i * 8 for i in range(32)]
        actual, ideal = warp_transactions(addrs)
        assert (actual, ideal) == (4, 2)

    def test_active_mask_respected(self):
        addrs = [0] * 32
        active = [i == 3 for i in range(32)]
        assert warp_transactions(addrs, active) == (1, 1)

    def test_half_empty_warp(self):
        addrs = [i * 4 for i in range(32)]
        active = [i < 16 for i in range(32)]
        assert warp_transactions(addrs, active) == (1, 1)

    def test_all_inactive(self):
        assert warp_transactions([0] * 32, [False] * 32) == (0, 0)


class TestConfig:
    def test_bad_bank_count(self):
        with pytest.raises(ModelError):
            BankConfig(num_banks=0)

    def test_bank_mapping(self):
        config = BankConfig()
        assert config.bank_of(0) == 0
        assert config.bank_of(4) == 1
        assert config.bank_of(64) == 0

    def test_prime_banks_kill_power_of_two_conflicts(self):
        # The paper's architectural suggestion: a prime bank count.
        prime = BankConfig(num_banks=17)
        for stride in (2, 4, 8, 16):
            addrs = [i * stride * 4 for i in range(16)]
            assert conflict_degree(addrs, prime) == 1


addresses = st.lists(
    st.integers(0, 1023).map(lambda w: w * 4), min_size=1, max_size=16
)


class TestProperties:
    @given(addresses)
    @settings(max_examples=150, deadline=None)
    def test_degree_bounds(self, addrs):
        degree = conflict_degree(addrs)
        assert 1 <= degree <= min(16, len(addrs))

    @given(addresses)
    @settings(max_examples=150, deadline=None)
    def test_degree_equals_max_bank_load(self, addrs):
        per_bank = {}
        for a in addrs:
            per_bank.setdefault((a // 4) % 16, set()).add(a // 4)
        assert conflict_degree(addrs) == max(len(v) for v in per_bank.values())

    @given(addresses)
    @settings(max_examples=100, deadline=None)
    def test_actual_never_below_ideal(self, addrs):
        padded = addrs + [0] * (32 - len(addrs))
        active = [True] * len(addrs) + [False] * (32 - len(addrs))
        actual, ideal = warp_transactions(padded, active)
        assert actual >= ideal


class TestAffineClosedForm:
    """The closed-form counters must equal the exact protocol."""

    @given(
        st.integers(0, 64).map(lambda w: w * 4),
        st.integers(-16, 16).map(lambda w: w * 4),
        st.integers(1, 16),
    )
    @settings(max_examples=300, deadline=None)
    def test_degree_matches_materialized_progression(
        self, start, stride, count
    ):
        from repro.memory import affine_conflict_degree

        addrs = [start + stride * i for i in range(count)]
        # Keep addresses non-negative for the materialized reference.
        if min(addrs) < 0:
            shift = -min(addrs)
            addrs = [a + shift for a in addrs]
            start += shift
        assert affine_conflict_degree(start, stride, count) == conflict_degree(
            addrs
        )

    def test_non_word_stride_rejected(self):
        from repro.memory import affine_conflict_degree

        with pytest.raises(ModelError, match="whole-word"):
            affine_conflict_degree(0, 6, 8)

    @given(addresses)
    @settings(max_examples=200, deadline=None)
    def test_warp_counts_match_exact_protocol(self, addrs):
        from repro.memory import warp_transactions_affine

        padded = addrs + [0] * (32 - len(addrs))
        active = [True] * len(addrs) + [False] * (32 - len(addrs))
        assert warp_transactions_affine(padded, active) == warp_transactions(
            padded, active
        )

    @given(st.integers(0, 33), st.integers(1, 32))
    @settings(max_examples=200, deadline=None)
    def test_strided_warp_matches_exact_protocol(self, stride_words, count):
        from repro.memory import warp_transactions_affine

        addrs = [i * stride_words * 4 for i in range(32)]
        active = [i < count for i in range(32)]
        assert warp_transactions_affine(addrs, active) == warp_transactions(
            addrs, active
        )
