"""Cross-GPU validation: calibration transfer and the held-out harness."""

import dataclasses
import json

import pytest

from repro.arch.registry import BASELINE, get_spec
from repro.arch.specs import GTX285
from repro.errors import ModelError, SpecError
from repro.micro.calibration import CalibrationTables
from repro.model.components import ZERO_TIMES
from repro.model.crossval import (
    CROSSVAL_SCHEMA,
    CrossPrediction,
    cross_validate,
    transfer_tables,
)
from repro.model.report import PerformanceReport
from repro.model.whatif import WhatIfResult
from repro.sim.trace import TYPE_NAMES

#: Reduced sweep: knee plus saturation, cheap enough for a test session.
SWEEP = (1, 2, 4, 8, 16, 24, 32)


class TestTransferTables:
    def test_identity_transfer_keeps_curves(self, tables):
        same = transfer_tables(tables, GTX285)
        for name in TYPE_NAMES:
            assert same.instruction.throughput[name] == pytest.approx(
                tables.instruction.throughput[name]
            )
        assert same.shared.bandwidth == pytest.approx(
            tables.shared.bandwidth
        )

    def test_core_clock_scales_instruction_and_shared(self, tables):
        double = dataclasses.replace(GTX285, core_clock_ghz=2.96)
        scaled = transfer_tables(tables, double)
        for name in TYPE_NAMES:
            assert scaled.instruction.throughput[name] == pytest.approx(
                tuple(2 * v for v in tables.instruction.throughput[name])
            )
        assert scaled.shared.bandwidth == pytest.approx(
            tuple(2 * v for v in tables.shared.bandwidth)
        )

    def test_memory_clock_scales_global_seconds(self, tables):
        fast = dataclasses.replace(
            GTX285,
            memory=dataclasses.replace(
                GTX285.memory, clock_ghz=GTX285.memory.clock_ghz * 2
            ),
        )
        scaled = transfer_tables(tables, fast)
        base = tables.global_benchmark(30, 256, 8)
        moved = scaled.global_benchmark(30, 256, 8)
        assert moved.seconds == pytest.approx(base.seconds / 2)
        assert moved.transferred_bytes == base.transferred_bytes

    def test_tables_without_gpu_need_explicit_source(self, tables):
        detached = CalibrationTables(
            instruction=tables.instruction, shared=tables.shared
        )
        with pytest.raises(ModelError, match="source spec"):
            transfer_tables(detached, get_spec("fermi-like"))
        moved = transfer_tables(
            detached, get_spec("fermi-like"), source=GTX285
        )
        assert moved.shared.bandwidth[0] > 0


@pytest.fixture(scope="module")
def report():
    """One held-out run over three specs and two zoo kernels."""
    return cross_validate(
        targets=("fermi-like", "kepler-like", "gt200"),
        kernels=("reduction", "scan"),
        warp_counts=SWEEP,
        iterations=25,
        use_calibration_cache=False,
    )


class TestCrossValidate:
    def test_covers_every_pair(self, report):
        assert len(report.predictions) == 6
        assert set(report.targets) == {"fermi-like", "kepler-like", "gt200"}
        assert set(report.kernels) == {"reduction", "scan"}

    def test_held_out_sources(self, report):
        for p in report.predictions:
            assert p.source != p.target
            if p.target != BASELINE:
                assert p.source == BASELINE

    def test_times_are_positive(self, report):
        for p in report.predictions:
            assert p.measured_seconds > 0
            assert p.analytical_seconds > 0
            assert p.scaling_seconds > 0

    def test_errors_are_finite(self, report):
        for p in report.predictions:
            assert p.analytical_error >= 0
            assert p.scaling_error >= 0
            assert p.analytical_error < 10
            assert p.scaling_error < 10

    def test_json_schema(self, report):
        payload = report.to_dict()
        assert payload["schema"] == CROSSVAL_SCHEMA
        assert payload["baseline"] == BASELINE
        assert payload["summary"]["overall"]["predictions"] == 6
        assert set(payload["summary"]["by_spec"]) == set(report.targets)
        assert set(payload["summary"]["by_kernel"]) == set(report.kernels)
        for entry in payload["predictions"]:
            assert entry["analytical_error"] >= 0
            assert entry["bottleneck"] in ("instruction", "shared", "global")

    def test_json_round_trips(self, report):
        assert json.loads(report.to_json())["schema"] == CROSSVAL_SCHEMA

    def test_renderers_cover_all_pairs(self, report):
        text = report.render()
        markdown = report.render_markdown()
        for p in report.predictions:
            assert p.target in text
            assert f"`{p.target}`" in markdown
        assert "overall" in text.lower()

    def test_summary_aggregates_match_predictions(self, report):
        overall = report.summary()
        mean = sum(p.analytical_error for p in report.predictions) / 6
        assert overall["analytical_mean_abs_rel_error"] == pytest.approx(mean)


class TestDeterminism:
    def test_same_inputs_same_json(self):
        kwargs = dict(
            targets=("fermi-like",),
            kernels=("reduction",),
            warp_counts=(1, 2, 4, 8),
            iterations=20,
            use_calibration_cache=False,
        )
        assert (
            cross_validate(**kwargs).to_json()
            == cross_validate(**kwargs).to_json()
        )


class TestValidation:
    def test_source_equal_to_target_rejected(self):
        with pytest.raises(SpecError, match="held-out"):
            cross_validate(targets=("gt200",), source="gt200")

    def test_unknown_target_rejected(self):
        with pytest.raises(SpecError, match="unknown architecture"):
            cross_validate(targets=("gtx-9999",))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ModelError, match="unknown kernel"):
            cross_validate(targets=("fermi-like",), kernels=("nope",))

    def test_duplicate_targets_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            cross_validate(targets=("gt200", "gt200"))


def _report_with(seconds: float) -> PerformanceReport:
    return PerformanceReport(
        stages=(),
        serialized=False,
        component_totals=ZERO_TIMES,
        predicted_seconds=seconds,
        bottleneck="global",
        inputs=None,
        diagnostics=None,
    )


class TestWhatIfGuards:
    """Regression: render() must raise before formatting any output."""

    def test_speedup_rejects_non_positive_baseline(self):
        result = WhatIfResult("x", _report_with(0.0), _report_with(1.0))
        with pytest.raises(ModelError, match="baseline"):
            result.speedup

    def test_render_rejects_non_positive_baseline(self):
        result = WhatIfResult("x", _report_with(0.0), _report_with(1.0))
        with pytest.raises(ModelError, match="baseline"):
            result.render()

    def test_render_rejects_non_positive_hypothetical(self):
        result = WhatIfResult("x", _report_with(1.0), _report_with(0.0))
        with pytest.raises(ModelError, match="hypothetical"):
            result.render()

    def test_render_still_formats_valid_results(self):
        result = WhatIfResult("knob", _report_with(2e-3), _report_with(1e-3))
        assert "2.00x" in result.render()

    def test_prediction_rejects_non_positive_measurement(self):
        p = CrossPrediction("k", "a", "b", 0.0, 1.0, 1.0, "global")
        with pytest.raises(ModelError, match="non-positive"):
            p.analytical_error
