"""Affine domain, fixed-point summary, and the concolic class tracer."""

import numpy as np
import pytest

from repro.analysis.affine import (
    LOOP,
    TOP,
    AffineForm,
    ClassBox,
    affine_summary,
    trace_block_class,
)
from repro.isa import Imm, KernelBuilder
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory


class TestAffineForm:
    def test_plus_adds_coefficients(self):
        a = AffineForm(tid=4, bx=128, const=8.0)
        b = AffineForm(tid=1, by=2, const=-3.0)
        s = a.plus(b)
        assert (s.tid, s.bx, s.by, s.const) == (5, 128, 2, 5.0)

    def test_join_disagreeing_constants_is_loop(self):
        a = AffineForm(const=1.0)
        b = AffineForm(const=2.0)
        assert a.join(b).const is LOOP

    def test_join_disagreeing_coefficients_is_top(self):
        a = AffineForm(tid=4)
        b = AffineForm(tid=8)
        joined = a.join(b)
        assert joined.tid is TOP
        assert not joined.affine

    def test_scaled_by_zero_collapses(self):
        form = AffineForm(tid=TOP, bx=3, const=LOOP)
        assert AffineForm(data=False) == form.scaled(0)

    def test_tags(self):
        form = AffineForm(tid=1, bx=2, const=LOOP, data=True)
        assert form.tags == {"tid", "ctaid_x", "loop", "data"}

    def test_describe_mentions_every_term(self):
        text = AffineForm(tid=4, bx=128, const=16.0).describe()
        assert "4*tid" in text and "128*ctaid_x" in text and "16" in text


def _linear_store_kernel():
    """out[ctaid_x*ntid + tid] = 1.0 -- the canonical affine kernel."""
    b = KernelBuilder("linear", params=("out",))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    addr = b.reg()
    b.imad(addr, gid, Imm(4), b.param("out"))
    v = b.reg()
    b.mov(v, Imm(1.0))
    b.stg(addr, v)
    b.exit()
    return b.build()


class TestAffineSummary:
    def test_linear_store_address_is_affine(self):
        kernel = _linear_store_kernel()
        gmem = GlobalMemory()
        out = gmem.alloc(4 * 128, "out")
        launch = LaunchConfig(
            grid=(4, 1), block_threads=32, params={"out": out}
        )
        summary = affine_summary(kernel, launch)
        assert summary.affine
        (store,) = [a for a in summary.addresses if a.store]
        assert store.space == "global"
        assert store.form.tid == 4
        assert store.form.bx == 128

    def test_without_launch_param_base_stays_uniform(self):
        summary = affine_summary(_linear_store_kernel())
        (store,) = [a for a in summary.addresses if a.store]
        # ntid is unknown without a launch: the ctaid_x coefficient
        # degrades, but the form must not invent a data dependence.
        assert not store.form.data

    def test_loop_counter_becomes_loop_varying(self):
        b = KernelBuilder("looped", params=("out",))
        i = b.reg()
        b.mov(i, Imm(0))
        with b.counted_loop(4):
            b.iadd(i, i, Imm(1))
        addr = b.reg()
        b.imad(addr, i, Imm(4), b.param("out"))
        b.stg(addr, i)
        b.exit()
        kernel = b.build()
        summary = affine_summary(kernel)
        (store,) = [a for a in summary.addresses if a.store]
        assert store.form.const is LOOP or store.form.const is TOP


class TestClassBox:
    def test_rectangle_roundtrip(self):
        members = [(x, y) for x in range(2, 5) for y in range(1, 3)]
        box = ClassBox.from_members(members)
        assert box == ClassBox(2, 4, 1, 2)
        assert box.count == 6
        assert box.anchor == (2, 1)

    def test_non_rectangle_is_rejected(self):
        assert ClassBox.from_members([(0, 0), (1, 1)]) is None

    def test_extremes_at_corners(self):
        box = ClassBox(0, 3, 0, 2)
        sx = np.array([4.0, -4.0])
        sy = np.array([0.0, 8.0])
        lo, hi = box.extremes(sx, sy)
        assert lo.tolist() == [0.0, -12.0]
        assert hi.tolist() == [12.0, 16.0]


class TestClassTracer:
    def _launch(self, gmem, n_blocks=4, threads=32):
        out = gmem.alloc(4 * n_blocks * threads, "out")
        return LaunchConfig(
            grid=(n_blocks, 1), block_threads=threads, params={"out": out}
        )

    def test_linear_store_strides(self):
        kernel = _linear_store_kernel()
        gmem = GlobalMemory()
        launch = self._launch(gmem)
        trace = trace_block_class(kernel, launch, ClassBox(0, 3, 0, 0))
        assert trace.complete
        (access,) = trace.global_accesses
        assert access.store
        assert not access.unknown
        # One word per lane, tid-major; ctaid_x advances by 32 elements.
        assert (np.diff(access.addresses) == 4).all()
        assert (access.stride_x == 128).all()
        assert (access.stride_y == 0).all()

    def test_uniform_guard_stays_quiet(self):
        b = KernelBuilder("guarded", params=("out",))
        p = b.pred()
        b.isetp(p, "lt", b.tid, Imm(16))
        addr = b.reg()
        b.imad(addr, b.tid, Imm(4), b.param("out"))
        v = b.reg()
        b.mov(v, Imm(1.0))
        with b.if_then(p):
            b.stg(addr, v)
        b.exit()
        kernel = b.build()
        gmem = GlobalMemory()
        launch = self._launch(gmem)
        trace = trace_block_class(kernel, launch, ClassBox(0, 3, 0, 0))
        assert trace.complete
        assert trace.nonuniform_control == []

    def test_block_dependent_guard_is_nonuniform(self):
        b = KernelBuilder("tail", params=("out", "n"))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        p = b.pred()
        b.isetp(p, "lt", gid, b.param("n"))
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("out"))
        v = b.reg()
        b.mov(v, Imm(1.0))
        with b.if_then(p):
            b.stg(addr, v)
        b.exit()
        kernel = b.build()
        gmem = GlobalMemory()
        out = gmem.alloc(4 * 128, "out")
        launch = LaunchConfig(
            grid=(4, 1), block_threads=32, params={"out": out, "n": 100}
        )
        # The cutoff (100) falls strictly inside the 4-block box.
        trace = trace_block_class(kernel, launch, ClassBox(0, 3, 0, 0))
        assert trace.nonuniform_control

    def test_degenerate_box_matches_concrete_execution(self):
        kernel = _linear_store_kernel()
        gmem = GlobalMemory()
        launch = self._launch(gmem)
        trace = trace_block_class(kernel, launch, ClassBox(2, 2, 0, 0))
        (access,) = trace.global_accesses
        base = launch.params["out"]
        assert access.addresses[0] == base + 2 * 32 * 4
