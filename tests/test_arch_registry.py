"""The architecture registry: lookup, validation, occupancy, rendering."""

import pytest

from repro.arch import compute_occupancy
from repro.arch.occupancy import KernelResources
from repro.arch.registry import (
    BASELINE,
    default_source_for,
    describe,
    entries,
    get_entry,
    get_spec,
    register,
    registered_name,
    render_json,
    render_markdown,
    spec_names,
)
from repro.arch.specs import GTX285
from repro.errors import SpecError
from repro.util import spec_fingerprint


class TestLookup:
    def test_baseline_is_registered_first(self):
        assert spec_names()[0] == BASELINE

    def test_baseline_is_the_gtx285(self):
        assert get_spec(BASELINE) is GTX285

    def test_all_generations_present(self):
        assert set(spec_names()) >= {
            "gt200", "fermi-like", "kepler-like", "modern-wide",
        }

    def test_get_entry_round_trip(self):
        for name in spec_names():
            entry = get_entry(name)
            assert entry.name == name
            assert get_spec(name) is entry.spec

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(SpecError, match="gt200"):
            get_entry("gtx-9999")

    def test_entries_matches_names(self):
        assert tuple(e.name for e in entries()) == spec_names()

    def test_every_entry_has_provenance(self):
        for entry in entries():
            assert len(entry.provenance) > 20

    def test_non_baseline_provenance_declares_synthetic(self):
        for entry in entries():
            if entry.name != BASELINE:
                assert "ynthetic" in entry.provenance


class TestFingerprints:
    def test_fingerprint_matches_spec_fingerprint(self):
        for entry in entries():
            assert entry.fingerprint == spec_fingerprint(entry.spec)

    def test_fingerprints_are_distinct(self):
        fingerprints = [e.fingerprint for e in entries()]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_fingerprint_stable_across_calls(self):
        for name in spec_names():
            assert get_entry(name).fingerprint == get_entry(name).fingerprint

    def test_registered_name_round_trip(self):
        for entry in entries():
            assert registered_name(entry.spec) == entry.name

    def test_registered_name_unknown_spec(self):
        assert registered_name(GTX285.with_sm(max_blocks=11)) is None


class TestRegister:
    def test_duplicate_name_rejected(self):
        with pytest.raises(SpecError, match="already registered"):
            register(BASELINE, GTX285, "dup")

    def test_non_slug_name_rejected(self):
        with pytest.raises(SpecError, match="lowercase"):
            register("Fermi Like", GTX285, "bad name")


class TestHeldOutPairing:
    def test_non_baseline_predicted_from_baseline(self):
        for name in spec_names():
            if name != BASELINE:
                assert default_source_for(name) == BASELINE

    def test_baseline_predicted_from_non_baseline(self):
        source = default_source_for(BASELINE)
        assert source != BASELINE
        assert source in spec_names()

    def test_unknown_target_raises(self):
        with pytest.raises(SpecError):
            default_source_for("nope")


class TestOccupancyAcrossGenerations:
    """Every registered spec supports the zoo's launch shapes."""

    RESOURCES = KernelResources(
        threads_per_block=256,
        registers_per_thread=16,
        shared_memory_per_block=2048,
    )

    @pytest.mark.parametrize("name", spec_names())
    def test_at_least_one_resident_block(self, name):
        occupancy = compute_occupancy(get_spec(name), self.RESOURCES)
        assert occupancy.blocks_per_sm >= 1

    @pytest.mark.parametrize("name", spec_names())
    def test_warps_within_spec_ceiling(self, name):
        spec = get_spec(name)
        occupancy = compute_occupancy(spec, self.RESOURCES)
        assert occupancy.warps_per_sm <= spec.sm.max_warps

    def test_wider_generations_hold_more_warps(self):
        gt200 = compute_occupancy(get_spec("gt200"), self.RESOURCES)
        kepler = compute_occupancy(get_spec("kepler-like"), self.RESOURCES)
        assert kepler.warps_per_sm > gt200.warps_per_sm


class TestRendering:
    def test_describe_covers_all_fields(self):
        payload = describe(get_entry("fermi-like"))
        assert payload["sm"]["shared_memory_banks"] == 32
        assert payload["memory"]["min_segment_bytes"] == 128
        assert payload["derived"]["peak_gflops"] == pytest.approx(
            get_spec("fermi-like").peak_gflops
        )
        assert payload["provenance"]
        assert payload["fingerprint"] == get_entry("fermi-like").fingerprint

    def test_render_json_deterministic(self):
        assert render_json() == render_json()

    def test_render_markdown_deterministic(self):
        assert render_markdown() == render_markdown()

    def test_markdown_mentions_every_spec(self):
        text = render_markdown()
        for name in spec_names():
            assert f"`{name}`" in text

    def test_markdown_warns_generated(self):
        assert "Do not edit by hand" in render_markdown()
