"""Size-capped LRU eviction for the on-disk caches.

The trace and measured-run caches grow unboundedly across launches
without a cap (ROADMAP); ``repro.util.evict_lru`` bounds each cache
directory to ``$REPRO_CACHE_MAX_BYTES``, evicting oldest-mtime entries
first and failing open on every filesystem error.
"""

import os
import time

import pytest

from repro.hw import HardwareGpu
from repro.isa import Imm, KernelBuilder
from repro.sim import GlobalMemory, LaunchConfig, SimulationEngine
from repro.sim.trace import BlockTrace, EV_GLOBAL_LD
from repro.util import (
    CACHE_MAX_BYTES_ENV,
    DEFAULT_CACHE_MAX_BYTES,
    cache_max_bytes,
    evict_lru,
)


def _write(path, nbytes, age):
    path.write_bytes(b"x" * nbytes)
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))


class TestCacheMaxBytes:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        assert cache_max_bytes() == DEFAULT_CACHE_MAX_BYTES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "12345")
        assert cache_max_bytes() == 12345

    def test_garbage_env_fails_open_to_default(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "a lot")
        assert cache_max_bytes() == DEFAULT_CACHE_MAX_BYTES

    def test_nonpositive_disables_eviction(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        _write(tmp_path / "old.pkl", 100, age=60)
        assert evict_lru(tmp_path) == 0
        assert (tmp_path / "old.pkl").exists()


class TestEvictLru:
    def test_oldest_entries_go_first(self, tmp_path):
        _write(tmp_path / "oldest.pkl", 100, age=300)
        _write(tmp_path / "middle.pkl", 100, age=200)
        _write(tmp_path / "newest.pkl", 100, age=100)
        assert evict_lru(tmp_path, max_bytes=250) == 1
        assert not (tmp_path / "oldest.pkl").exists()
        assert (tmp_path / "middle.pkl").exists()
        assert (tmp_path / "newest.pkl").exists()

    def test_within_budget_is_untouched(self, tmp_path):
        _write(tmp_path / "a.pkl", 100, age=300)
        _write(tmp_path / "b.pkl", 100, age=100)
        assert evict_lru(tmp_path, max_bytes=500) == 0
        assert len(list(tmp_path.iterdir())) == 2

    def test_keep_paths_survive(self, tmp_path):
        _write(tmp_path / "old.pkl", 100, age=300)
        _write(tmp_path / "new.pkl", 100, age=100)
        evict_lru(tmp_path, max_bytes=50, keep=(tmp_path / "new.pkl",))
        assert not (tmp_path / "old.pkl").exists()
        assert (tmp_path / "new.pkl").exists()

    def test_missing_directory_fails_open(self, tmp_path):
        assert evict_lru(tmp_path / "nope", max_bytes=1) == 0


def _engine_run(cache_dir, value):
    """One cached engine run; distinct values produce distinct keys."""
    gmem = GlobalMemory()
    out = gmem.alloc(4 * 32, "out")
    b = KernelBuilder("uniform", params=("out",))
    addr = b.reg()
    b.imad(addr, b.ctaid_x, b.ntid, b.tid)
    b.imad(addr, addr, Imm(4), b.param("out"))
    v = b.reg()
    b.mov(v, Imm(float(value)))
    b.stg(addr, v)
    b.exit()
    launch = LaunchConfig(grid=(4, 1), block_threads=32, params={"out": out})
    import numpy as np

    gmem.write(np.array([out]), np.array([float(value)]))
    return SimulationEngine(b.build(), gmem=gmem, cache_dir=cache_dir).run(
        launch
    )


class TestTraceCacheEviction:
    def test_store_evicts_older_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "10")  # < one entry
        _engine_run(tmp_path, 1.0)
        _engine_run(tmp_path, 2.0)
        entries = list(tmp_path.iterdir())
        assert len(entries) == 1  # only the freshest entry survives
        # ... and the survivor is the second run's entry.
        assert _engine_run(tmp_path, 2.0).engine_stats.cache_hit
        assert not _engine_run(tmp_path, 1.0).engine_stats.cache_hit

    def test_generous_budget_keeps_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, str(1 << 30))
        _engine_run(tmp_path, 1.0)
        _engine_run(tmp_path, 2.0)
        assert len(list(tmp_path.iterdir())) == 2
        assert _engine_run(tmp_path, 1.0).engine_stats.cache_hit


class TestMeasuredRunCacheEviction:
    def _load_block(self, n):
        stream = [(EV_GLOBAL_LD, 0, 2, 128, None)] * n
        return BlockTrace(block=(0, 0), stages=[], warp_streams=[stream] * 2)

    def test_store_evicts_older_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "10")
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        gpu.measure(self._load_block(20), 40, 4)
        gpu.measure(self._load_block(30), 40, 4)
        assert len(list(tmp_path.iterdir())) == 1
        assert gpu.measure(self._load_block(30), 40, 4).from_cache
        assert not gpu.measure(self._load_block(20), 40, 4).from_cache
