"""SpMV: numerics for all formats, interleaving effects, Fig. 11 data."""

import numpy as np
import pytest

from repro.apps.matrices import qcd_like, random_blocked
from repro.apps.spmv import (
    FORMATS,
    build_bell_kernel,
    build_ell_kernel,
    bytes_per_entry,
    gflops,
    prepare_problem,
    run_spmv,
    validate_spmv,
)
from repro.errors import LaunchError


@pytest.fixture(scope="module")
def small_matrix():
    return random_blocked(64, 5, bandwidth=8, seed=6)  # 192 x 192


@pytest.fixture(scope="module")
def lattice():
    return qcd_like(dims=(4, 4, 4, 4))  # 768 x 768, 13 slots


class TestNumerics:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_small_matrix_correct(self, small_matrix, fmt):
        assert validate_spmv(small_matrix, fmt) < 1e-4

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_lattice_matrix_correct(self, lattice, fmt):
        assert validate_spmv(lattice, fmt) < 1e-4

    def test_formats_agree(self, small_matrix):
        outs = {}
        for fmt in FORMATS:
            problem = prepare_problem(small_matrix, fmt, seed=21)
            from repro.apps.spmv import build_kernel_for
            from repro.apps.common import execute

            execute(
                "x",
                build_kernel_for(problem),
                problem.gmem,
                problem.launch(record_segments=False),
                measure=False,
                engine=False,  # results must land in gmem
            )
            outs[fmt] = problem.result()
        assert np.allclose(outs["ell"], outs["bell_im"], atol=1e-5)
        assert np.allclose(outs["ell"], outs["bell_imiv"], atol=1e-5)


class TestKernels:
    def test_bad_width_rejected(self):
        with pytest.raises(LaunchError):
            build_ell_kernel(0, 64)
        with pytest.raises(LaunchError):
            build_bell_kernel(0, 64, False)

    def test_unknown_format_rejected(self, small_matrix):
        with pytest.raises(LaunchError):
            prepare_problem(small_matrix, "csr")

    def test_bell_has_one_index_load_per_block(self, lattice):
        run = run_spmv(lattice, "bell_im", measure=False, sample_blocks=4)
        totals = run.trace.totals
        ldg_per_thread = totals.instructions["ldg"] / (
            run.launch.num_blocks * 2
        )  # warp-level, 2 warps per block
        # 13 slots x (1 col + 9 vals + 3 x) = 169 loads per thread
        assert ldg_per_thread == pytest.approx(169, rel=0.02)

    def test_ell_three_loads_per_entry(self, lattice):
        run = run_spmv(lattice, "ell", measure=False, sample_blocks=4)
        loads = run.trace.totals.instructions["ldg"]
        warps = run.launch.num_blocks * 2
        assert loads / warps == pytest.approx(3 * 39, rel=0.02)


class TestTrafficShape:
    """Fig. 11(a): bytes per matrix entry by array and granularity."""

    @pytest.fixture(scope="class")
    def runs(self, lattice):
        return {
            fmt: run_spmv(lattice, fmt, measure=False, sample_blocks=6)
            for fmt in FORMATS
        }

    def test_matrix_entries_fully_coalesced(self, runs, lattice):
        for fmt in FORMATS:
            bpe = bytes_per_entry(runs[fmt], lattice)
            assert bpe["vals"][32] == pytest.approx(4.0, rel=0.02)

    def test_column_index_bytes(self, runs, lattice):
        ell = bytes_per_entry(runs["ell"], lattice)
        bell = bytes_per_entry(runs["bell_im"], lattice)
        assert ell["cols"][32] == pytest.approx(4.0, rel=0.02)
        assert bell["cols"][32] == pytest.approx(4.0 / 9.0, rel=0.05)  # 0.44

    def test_vector_interleaving_reduces_bytes(self, runs, lattice):
        by_fmt = {
            fmt: bytes_per_entry(runs[fmt], lattice)["x"][32] for fmt in FORMATS
        }
        assert by_fmt["bell_imiv"] < by_fmt["bell_im"] <= by_fmt["ell"] * 1.05

    def test_finer_granularity_never_worse(self, runs, lattice):
        for fmt in FORMATS:
            x = bytes_per_entry(runs[fmt], lattice)["x"]
            assert x[4] <= x[16] + 1e-9 <= x[32] + 1e-9

    def test_imiv_approaches_perfect_sharing(self, runs, lattice):
        # Three rows share each block's vector words (4/3 bytes/entry,
        # the paper's 1.33); cross-thread sharing can push lower still.
        x = bytes_per_entry(runs["bell_imiv"], lattice)["x"]
        assert 0.4 < x[4] <= 4.0 / 3.0 + 0.05


class TestOutputLayouts:
    def test_imiv_vector_prepared_interleaved(self, small_matrix):
        problem = prepare_problem(small_matrix, "bell_imiv", seed=3)
        from repro.memory import interleave

        stored = problem.gmem.read_array(
            int(problem.params["x"]), small_matrix.n
        )
        assert np.allclose(stored, interleave(problem.x, 3))

    def test_gflops_helper(self, small_matrix):
        assert gflops(small_matrix, 1.0) == pytest.approx(
            2 * small_matrix.nnz / 1e9
        )

    def test_x_marked_cacheable(self, small_matrix):
        problem = prepare_problem(small_matrix, "ell")
        assert problem.gmem.is_cacheable(int(problem.params["x"]))
