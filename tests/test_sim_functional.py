"""Functional simulator: semantics, divergence, barriers, statistics."""

import numpy as np
import pytest

from repro.errors import DivergenceError, LaunchError, SimulationError
from repro.isa import Imm, KernelBuilder
from repro.sim import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_SHARED,
    FunctionalSimulator,
    GlobalMemory,
    LaunchConfig,
)


def run_simple(build, threads=32, grid=(1, 1), params=None, gmem=None):
    """Build a kernel with ``build(b)``, run one grid, return trace+sim."""
    b = KernelBuilder("t", params=tuple(params or ()))
    build(b)
    b.exit()
    kernel = b.build()
    sim = FunctionalSimulator(kernel, gmem=gmem)
    launch = LaunchConfig(grid=grid, block_threads=threads, params=params or {})
    return sim.run(launch), sim


class TestArithmeticSemantics:
    def make_unary(self, emit, value):
        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")

        def build(b):
            v = b.reg()
            b.mov(v, Imm(value))
            emit(b, v)
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, v)

        run_simple(build, params={"out": out}, gmem=gmem)
        return gmem.read_array(out, 1)[0]

    def test_rcp(self):
        assert self.make_unary(lambda b, v: b.rcp(v, v), 4.0) == pytest.approx(0.25)

    def test_float32_rounding_applied(self):
        # 1 + 2^-30 is not representable in float32.
        result = self.make_unary(
            lambda b, v: b.fadd(v, v, Imm(2.0**-30)), 1.0
        )
        assert result == 1.0

    def test_integer_shifts(self):
        assert self.make_unary(lambda b, v: b.ishl(v, v, Imm(3)), 5) == 40
        assert self.make_unary(lambda b, v: b.ishr(v, v, Imm(2)), 40) == 10

    def test_imad(self):
        assert (
            self.make_unary(lambda b, v: b.imad(v, v, Imm(3), Imm(7)), 5) == 22
        )

    def test_min_max(self):
        assert self.make_unary(lambda b, v: b.imin(v, v, Imm(3)), 9) == 3
        assert self.make_unary(lambda b, v: b.imax(v, v, Imm(3)), 9) == 9

    def test_fneg(self):
        assert self.make_unary(lambda b, v: b.fneg(v, v), 2.5) == -2.5

    def test_double_precision_exact(self):
        # Type IV ops skip the float32 rounding.
        result = self.make_unary(
            lambda b, v: b.dadd(v, v, Imm(2.0**-30)), 1.0
        )
        assert result == 1.0 + 2.0**-30

    def test_sel(self):
        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")

        def build(b):
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(16))
            v = b.reg()
            b.sel(v, p, Imm(1), Imm(2))
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, v)

        run_simple(build, params={"out": out}, gmem=gmem)
        values = gmem.read_array(out, 32)
        assert list(values[:16]) == [1.0] * 16
        assert list(values[16:]) == [2.0] * 16


class TestControlFlow:
    def test_loop_executes_n_times(self):
        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")

        def build(b):
            v = b.reg()
            b.mov(v, Imm(0))
            with b.counted_loop(7):
                b.iadd(v, v, Imm(1))
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, v)

        trace, _ = run_simple(build, params={"out": out}, gmem=gmem)
        assert gmem.read_array(out, 32).tolist() == [7.0] * 32
        # The loop branch executes once per iteration (dynamic counting).
        assert trace.totals.instructions["bra"] == 7

    def test_divergent_if_reconverges(self):
        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")

        def build(b):
            v = b.reg()
            b.mov(v, Imm(0))
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(5))
            with b.if_then(p):
                b.iadd(v, v, Imm(10))
            b.iadd(v, v, Imm(1))  # executed by all lanes after reconvergence
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, v)

        run_simple(build, params={"out": out}, gmem=gmem)
        values = gmem.read_array(out, 32)
        assert values[:5].tolist() == [11.0] * 5
        assert values[5:].tolist() == [1.0] * 27

    def test_per_lane_loop_trip_counts(self):
        # Lane i iterates i times: min-PC handles divergent back edges.
        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")

        def build(b):
            count = b.reg()
            b.mov(count, b.tid)
            total = b.reg()
            b.mov(total, Imm(0))
            p = b.pred()
            top = b.label()
            b.isetp(p, "gt", count, Imm(0))
            end = b.fresh_label("END")
            b.bra(end, guard=(p, False))
            b.iadd(total, total, Imm(2))
            b.iadd(count, count, Imm(-1))
            b.bra(top)
            b.label(end)
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, total)

        run_simple(build, params={"out": out}, gmem=gmem)
        values = gmem.read_array(out, 32)
        assert values.tolist() == [2.0 * i for i in range(32)]

    def test_guarded_all_false_instruction_still_issues(self):
        from repro.isa import Instruction, Opcode

        def build(b):
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(0))  # false everywhere
            v = b.reg()
            b.mov(v, Imm(0))
            guarded = b.reg()
            b.emit(
                Instruction(
                    Opcode.IADD, dst=guarded, srcs=(v, Imm(1)), guard=(p, True)
                )
            )

        trace, _ = run_simple(build)
        assert trace.totals.instructions["iadd"] == 1

    def test_runaway_loop_detected(self):
        b = KernelBuilder("inf")
        top = b.label()
        r = b.reg()
        b.mov(r, Imm(1))
        b.bra(top)
        b.exit()
        kernel = b.build()
        sim = FunctionalSimulator(kernel, max_warp_instructions=1000)
        with pytest.raises(SimulationError):
            sim.run(LaunchConfig(grid=(1, 1), block_threads=32))


class TestBarriersAndStages:
    def test_barriers_split_stages(self):
        def build(b):
            r = b.reg()
            b.mov(r, Imm(1))
            b.bar()
            b.mov(r, Imm(2))
            b.bar()
            b.mov(r, Imm(3))

        trace, _ = run_simple(build, threads=64)
        assert trace.num_stages == 3
        for stage in trace.stages:
            assert stage.instructions["mov"] == 2  # two warps

    def test_inter_warp_communication_through_barrier(self):
        # Warp 1 reads what warp 0 wrote before the barrier.
        gmem = GlobalMemory()
        out = gmem.alloc(64, "out")

        def build(b):
            b.alloc_shared(64)
            sa = b.reg()
            b.ishl(sa, b.tid, Imm(2))
            v = b.reg()
            b.mov(v, b.tid)
            b.sts(v, sa)
            b.bar()
            # read the mirrored position (63 - tid): crosses warps
            mirror = b.reg()
            b.mov(mirror, Imm(63))
            b.isub(mirror, mirror, b.tid)
            b.ishl(mirror, mirror, Imm(2))
            got = b.reg()
            b.lds(got, mirror)
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, got)

        run_simple(build, threads=64, params={"out": out}, gmem=gmem)
        values = gmem.read_array(out, 64)
        assert values.tolist() == [63.0 - i for i in range(64)]

    def test_divergent_barrier_rejected(self):
        def build(b):
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(5))
            with b.if_then(p):
                b.bar()

        with pytest.raises(DivergenceError):
            run_simple(build)

    def test_active_warps_exclude_guard_only_warps(self):
        def build(b):
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(32))  # only warp 0 works
            with b.if_then(p):
                v = b.reg()
                b.mov(v, Imm(1))
            b.bar()
            v2 = b.reg()
            b.mov(v2, Imm(2))  # all warps work here

        trace, _ = run_simple(build, threads=128)
        assert trace.stages[0].active_warps == 1
        assert trace.stages[1].active_warps == 4


class TestStatistics:
    def test_mad_counted_for_density(self):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1))
            for _ in range(8):
                b.fmad(v, v, v, v)
            b.iadd(v, v, Imm(1))

        trace, _ = run_simple(build)
        totals = trace.totals
        assert totals.mad_instructions == 8
        assert 0.5 < totals.computational_density < 0.9

    def test_shared_conflict_accounting(self):
        def build(b):
            b.alloc_shared(128)
            addr = b.reg()
            b.ishl(addr, b.tid, Imm(3))  # stride 2 words: 2-way conflicts
            v = b.reg()
            b.lds(v, addr)

        trace, _ = run_simple(build)
        totals = trace.totals
        assert totals.shared_transactions == 4  # 2 half-warps x 2-way
        assert totals.shared_transactions_ideal == 2
        assert totals.bank_conflict_factor == 2.0

    def test_shared_operand_counts_as_shared_traffic(self):
        def build(b):
            b.alloc_shared(4)
            v = b.reg()
            b.mov(v, Imm(1))
            b.fmad(v, v, b.smem(offset=0), v)

        trace, _ = run_simple(build)
        assert trace.totals.shared_transactions == 2  # broadcast per half-warp

    def test_global_transaction_recording(self):
        gmem = GlobalMemory()
        buf = gmem.alloc(64, "buf")

        def build(b):
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("buf"))
            v = b.reg()
            b.ldg(v, addr)

        trace, _ = run_simple(build, params={"buf": buf}, gmem=gmem)
        totals = trace.totals
        assert totals.global_transactions[32] == 2  # 2 coalesced half-warps
        assert totals.global_bytes[32] == 128
        assert totals.global_useful_bytes == 128
        assert totals.coalescing_efficiency(32) == 1.0

    def test_per_array_attribution(self):
        gmem = GlobalMemory()
        a = gmem.alloc(32, "a")
        c = gmem.alloc(32, "c")

        def build(b):
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("a"))
            v = b.reg()
            b.ldg(v, addr)
            b.imad(addr, b.tid, Imm(4), b.param("c"))
            b.ldg(v, addr)

        trace, _ = run_simple(build, params={"a": a, "c": c}, gmem=gmem)
        by_array = trace.totals.global_by_array
        assert by_array["a"][32] == (2, 128)
        assert by_array["c"][32] == (2, 128)

    def test_event_dependency_distances(self):
        def build(b):
            v = b.reg()
            w = b.reg()
            b.mov(v, Imm(1))  # event 0
            b.mov(w, Imm(2))  # event 1
            b.fadd(v, v, w)  # event 2: depends on event 1 (distance 1)
            b.fmul(w, v, v)  # event 3: depends on event 2 (distance 1)
            b.fadd(w, w, v)  # event 4: w from 3 (d=1), v from 2 (d=2)

        b = KernelBuilder("dep")
        build(b)
        b.exit()
        sim = FunctionalSimulator(b.build())
        block = sim.run_block(LaunchConfig(grid=(1, 1), block_threads=32), (0, 0))
        stream = block.warp_streams[0]
        deps = [e[1] for e in stream]
        assert deps[2] == 1
        assert deps[3] == 1
        assert deps[4] == 1  # nearest producer wins

    def test_representative_scaling(self):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1))

        b = KernelBuilder("scale")
        build(b)
        b.exit()
        sim = FunctionalSimulator(b.build())
        launch = LaunchConfig(grid=(10, 1), block_threads=32)
        full = sim.run(launch)
        sampled = sim.run(launch, blocks=[(0, 0)])
        assert (
            sampled.totals.instructions["mov"]
            == full.totals.instructions["mov"]
        )
        assert sampled.num_blocks == 10


class TestReentrancy:
    """run_block keeps all per-run state in a _BlockRun: interleaved or
    nested runs on one simulator instance must not corrupt each other."""

    def _counting_kernel(self, iterations=5):
        b = KernelBuilder("count", params=("out",))
        v = b.reg()
        scratch = b.reg()
        addr = b.reg()
        b.imad(addr, b.tid, Imm(4), b.param("out"))
        b.mov(v, Imm(0))
        with b.counted_loop(iterations):
            b.iadd(v, v, Imm(1))
            b.ldg(scratch, addr)  # touch global memory mid-run
            b.fadd(scratch, scratch, v)
        b.stg(addr, v)
        b.exit()
        return b.build()

    def test_nested_run_block_does_not_corrupt_outer_run(self):
        # A GlobalMemory whose first read re-enters the simulator: the
        # nested block run must leave the outer run's registers, shared
        # memory and stage accumulators untouched.
        class ReentrantMemory(GlobalMemory):
            def __init__(self):
                super().__init__()
                self.hook = None
                self.fired = False

            def read(self, addresses):
                if self.hook is not None and not self.fired:
                    self.fired = True
                    self.hook()
                return super().read(addresses)

        gmem = ReentrantMemory()
        out = gmem.alloc(32, "out")
        kernel = self._counting_kernel()
        sim = FunctionalSimulator(kernel, gmem=gmem)
        launch = LaunchConfig(grid=(2, 1), block_threads=32, params={"out": out})

        baseline = sim.run_block(launch, (0, 0))
        gmem.fired = False
        gmem.hook = lambda: sim.run_block(launch, (1, 0))
        nested = sim.run_block(launch, (0, 0))
        assert nested.stats_key() == baseline.stats_key()

    def test_threaded_run_block_interleaving(self):
        import sys
        import threading

        gmem = GlobalMemory()
        out = gmem.alloc(32, "out")
        kernel = self._counting_kernel()
        sim = FunctionalSimulator(kernel, gmem=gmem)
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params={"out": out})
        expected = sim.run_block(launch, (0, 0)).stats_key()

        results = {}
        errors = []

        def worker(block):
            try:
                traces = [
                    sim.run_block(launch, block).stats_key() for _ in range(20)
                ]
                results[block] = traces
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent interleaving
        try:
            threads = [
                threading.Thread(target=worker, args=((x, 0),))
                for x in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert not errors
        for traces in results.values():
            assert all(key == expected for key in traces)


class TestExitAccounting:
    def test_exit_counts_in_instruction_mix(self):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1))

        trace, _ = run_simple(build, threads=64)
        # One exit issue per warp, recorded as a type II instruction.
        assert trace.totals.instructions["exit"] == 2
        assert (
            trace.totals.total_instructions
            == trace.totals.instructions["mov"] + 2
        )

    def test_divergent_early_exit_counts_each_issue(self):
        def build(b):
            p = b.pred()
            b.isetp(p, "lt", b.tid, Imm(5))
            skip = b.fresh_label("SKIP")
            b.bra(skip, guard=(p, False))
            b.exit()  # lanes 0-4 leave early
            b.label(skip)
            v = b.reg()
            b.mov(v, Imm(1))

        trace, _ = run_simple(build)
        # Lanes 0-4 exit early, the rest exit at the end: two issues.
        assert trace.totals.instructions["exit"] == 2

    def test_exit_appears_in_warp_stream(self):
        # The mix and the replayed warp stream must agree on the issue
        # count, or the model and the timing simulator charge different
        # totals per warp.
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1))

        trace, _ = run_simple(build, threads=64)
        block = trace.block_traces[0]
        per_warp = trace.totals.total_instructions // block.num_warps
        for stream in block.warp_streams:
            assert len(stream) == per_warp  # mov + exit


class TestLaunchErrors:
    def test_missing_parameter(self):
        b = KernelBuilder("k", params=("x",))
        r = b.reg()
        b.mov(r, b.param("x"))
        b.exit()
        sim = FunctionalSimulator(b.build())
        with pytest.raises(LaunchError):
            sim.run(LaunchConfig(grid=(1, 1), block_threads=32))

    def test_block_too_large(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(1))
        b.exit()
        sim = FunctionalSimulator(b.build())
        with pytest.raises(LaunchError):
            sim.run(LaunchConfig(grid=(1, 1), block_threads=1024))

    def test_block_outside_grid(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(1))
        b.exit()
        sim = FunctionalSimulator(b.build())
        with pytest.raises(LaunchError):
            sim.run_block(LaunchConfig(grid=(2, 2), block_threads=32), (5, 0))

    def test_bad_grid(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(0, 1), block_threads=32)
