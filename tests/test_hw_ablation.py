"""Ablations of the hardware model's design choices (DESIGN.md §5).

These pin down *why* each timing mechanism exists by showing what
breaks without it -- the reproduction's equivalent of the paper's
modelling-methodology discussion.
"""

import pytest

from repro.errors import HardwareModelError
from repro.hw import ClusterSimulator, HardwareGpu, HwConfig
from repro.hw.config import issue_intervals
from repro.arch import GTX285
from repro.sim.trace import EV_ARITH, EV_ARITH_SHARED, EV_SHARED


def arith_chain(n, dep=1):
    return [(EV_ARITH, dep, 1, 0, None)] * n


def shared_events(n, ntrans, dep=0):
    return [(EV_SHARED, dep, ntrans, 0, None)] * n


def cycles(stream, warps=1, config=None):
    sim = ClusterSimulator(config=config or HwConfig())
    return sim.run([[[stream] * warps]], 1).cycles


class TestHwConfigValidation:
    def test_bad_issue_gap(self):
        with pytest.raises(HardwareModelError):
            HwConfig(issue_gap=0)

    def test_bad_window(self):
        with pytest.raises(HardwareModelError):
            HwConfig(ilp_window=0)

    def test_bad_latency_tuple(self):
        with pytest.raises(HardwareModelError):
            HwConfig(arith_latency=(1.0, 2.0))

    def test_bad_cache_line(self):
        with pytest.raises(HardwareModelError):
            HwConfig(texcache_line=24)

    def test_issue_intervals_from_table1(self):
        intervals = issue_intervals(GTX285)
        assert intervals == (3.2, 4.0, 8.0, 32.0)


class TestArithInOrder:
    """GT200's tiny intra-warp instruction window (paper §4.1)."""

    def test_independent_arith_serializes_when_in_order(self):
        independent = arith_chain(100, dep=0)
        strict = cycles(independent, config=HwConfig(arith_in_order=True))
        relaxed = cycles(independent, config=HwConfig(arith_in_order=False))
        assert strict > 2.0 * relaxed

    def test_dependent_chains_unaffected(self):
        chain = arith_chain(100, dep=1)
        strict = cycles(chain, config=HwConfig(arith_in_order=True))
        relaxed = cycles(chain, config=HwConfig(arith_in_order=False))
        assert strict == pytest.approx(relaxed, rel=0.02)

    def test_many_warps_hide_the_serialization(self):
        # At 8+ warps the pipe saturates either way (knee ~6 warps).
        independent = arith_chain(60, dep=0)
        strict = cycles(independent, warps=12, config=HwConfig(arith_in_order=True))
        relaxed = cycles(independent, warps=12, config=HwConfig(arith_in_order=False))
        assert strict < 1.35 * relaxed


class TestReplayStall:
    """Bank-conflict replays stall the issuing warp (CR's 1.6x)."""

    def test_stall_scales_with_conflict_degree(self):
        cfg = HwConfig(replay_warp_stall=10.0)
        t16 = cycles(shared_events(50, 16), config=cfg)
        t8 = cycles(shared_events(50, 8), config=cfg)
        t2 = cycles(shared_events(50, 2), config=cfg)
        assert t16 > 1.5 * t8 > 1.5 * t2

    def test_other_warps_fill_the_stall(self):
        cfg = HwConfig(replay_warp_stall=10.0)
        one = cycles(shared_events(50, 8), warps=1, config=cfg)
        eight = cycles(shared_events(50, 8), warps=8, config=cfg)
        # 8x the work in far less than 8x the time: stalls overlap.
        assert eight < 4.0 * one


class TestSharedInOrder:
    """The documented EXPERIMENTS.md ablation knob."""

    def test_serializes_independent_shared_accesses(self):
        stream = shared_events(80, 2, dep=0)
        strict = cycles(stream, config=HwConfig(shared_in_order=True))
        relaxed = cycles(stream, config=HwConfig(shared_in_order=False))
        assert strict > 2.0 * relaxed

    def test_applies_to_shared_operands_too(self):
        stream = [(EV_ARITH_SHARED, 0, 1, 2, None)] * 80
        strict = cycles(stream, config=HwConfig(shared_in_order=True))
        relaxed = cycles(stream, config=HwConfig(shared_in_order=False))
        assert strict >= relaxed


class TestWaveExtrapolationConsistency:
    def test_extrapolation_matches_exact_for_memory_workload(self):
        from repro.sim.trace import BlockTrace, EV_GLOBAL_LD

        trace = BlockTrace(
            block=(0, 0),
            stages=[],
            warp_streams=[[(EV_GLOBAL_LD, 0, 2, 128, None)] * 40] * 2,
        )
        gpu = HardwareGpu()
        exact = gpu.measure(trace, 240, 2, wave_extrapolation=False)
        fast = gpu.measure(trace, 240, 2, wave_extrapolation=True)
        assert fast.extrapolated
        assert fast.cycles == pytest.approx(exact.cycles, rel=0.2)
