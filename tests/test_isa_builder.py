"""KernelBuilder: register allocation, loops, labels, build checks."""

import pytest

from repro.errors import IsaError, ValidationError
from repro.isa import (
    Imm,
    KernelBuilder,
    Opcode,
    kernel_register_count,
    validate_kernel,
)


def minimal_kernel():
    b = KernelBuilder("tiny")
    r = b.reg()
    b.mov(r, Imm(1))
    b.exit()
    return b.build()


class TestRegisters:
    def test_params_claim_low_registers(self):
        b = KernelBuilder("k", params=("x", "y"))
        assert b.param("x").index == 0
        assert b.param("y").index == 1
        assert b.reg().index == 2

    def test_unknown_param(self):
        b = KernelBuilder("k", params=("x",))
        with pytest.raises(IsaError):
            b.param("z")

    def test_regs_allocates_distinct(self):
        b = KernelBuilder("k")
        regs = b.regs(5)
        assert len({r.index for r in regs}) == 5

    def test_register_count_recorded(self):
        kernel = minimal_kernel()
        assert kernel.num_registers == 1
        assert kernel_register_count(kernel) == 1

    def test_shared_allocation_offsets(self):
        b = KernelBuilder("k")
        first = b.alloc_shared(16)
        second = b.alloc_shared(8)
        assert first == 0
        assert second == 64  # byte offset after 16 words
        r = b.reg()
        b.mov(r, Imm(0))
        b.exit()
        assert b.build().shared_memory_words == 24

    def test_bad_shared_allocation(self):
        with pytest.raises(IsaError):
            KernelBuilder("k").alloc_shared(0)


class TestControlFlow:
    def test_counted_loop_emits_compiler_bookkeeping(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(0))
        with b.counted_loop(10):
            b.iadd(r, r, Imm(1))
        b.exit()
        kernel = b.build()
        mnemonics = [i.opcode.mnemonic for i in kernel.instructions]
        # counter init + body + decrement + compare + branch back
        assert mnemonics.count("isetp") == 1
        assert mnemonics.count("bra") == 1
        assert mnemonics.count("iadd") == 2

    def test_counted_loop_rejects_nonpositive(self):
        b = KernelBuilder("k")
        with pytest.raises(IsaError):
            with b.counted_loop(0):
                pass

    def test_counted_loop_accepts_register(self):
        b = KernelBuilder("k", params=("n",))
        r = b.reg()
        b.mov(r, Imm(0))
        with b.counted_loop(b.param("n")):
            b.iadd(r, r, Imm(1))
        b.exit()
        assert b.build().count_static(Opcode.BRA) == 1

    def test_if_then_guards_with_branch(self):
        b = KernelBuilder("k")
        p = b.pred()
        r = b.reg()
        b.isetp(p, "lt", b.tid, Imm(5))
        with b.if_then(p):
            b.mov(r, Imm(1))
        b.exit()
        kernel = b.build()
        branch = next(i for i in kernel.instructions if i.opcode is Opcode.BRA)
        assert branch.guard == (p, False)  # skip when predicate is false

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("k")
        b.label("L")
        with pytest.raises(IsaError):
            b.label("L")

    def test_exit_appended_automatically(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, Imm(1))
        kernel = b.build()
        assert kernel.instructions[-1].opcode is Opcode.EXIT


class TestValidation:
    def test_undefined_label_caught(self):
        b = KernelBuilder("k")
        b.bra("NOWHERE")
        with pytest.raises(ValidationError):
            b.build()

    def test_static_shared_out_of_bounds_caught(self):
        b = KernelBuilder("k")
        b.alloc_shared(4)
        r = b.reg()
        b.lds(r, base=None, offset=64)  # beyond the 16-byte footprint
        b.exit()
        with pytest.raises(ValidationError):
            b.build()

    def test_validate_rejects_missing_terminator(self):
        from repro.isa import Instruction, Kernel, Reg

        kernel = Kernel(
            name="bad",
            instructions=(
                Instruction(Opcode.MOV, dst=Reg(0), srcs=(Imm(1),)),
            ),
            num_registers=1,
        )
        with pytest.raises(ValidationError):
            validate_kernel(kernel)

    def test_register_out_of_range_caught(self):
        from repro.isa import Instruction, Kernel, Reg

        kernel = Kernel(
            name="bad",
            instructions=(
                Instruction(Opcode.MOV, dst=Reg(9), srcs=(Imm(1),)),
                Instruction(Opcode.EXIT),
            ),
            num_registers=2,
        )
        with pytest.raises(ValidationError):
            validate_kernel(kernel)

    def test_predicate_out_of_range_caught(self):
        from repro.isa import Instruction, Kernel, Pred, Reg

        kernel = Kernel(
            name="bad",
            instructions=(
                Instruction(
                    Opcode.ISETP, dst=Pred(3), srcs=(Reg(0), Imm(1)), cmp="lt"
                ),
                Instruction(Opcode.EXIT),
            ),
            num_registers=1,
            num_predicates=1,
        )
        with pytest.raises(ValidationError):
            validate_kernel(kernel)


class TestEmitters:
    def test_double_precision_emitters(self):
        b = KernelBuilder("k")
        r, c = b.regs(2)
        b.mov(r, Imm(1.5))
        b.mov(c, Imm(2.0))
        b.dadd(r, r, c)
        b.dmul(r, r, c)
        b.dfma(r, r, c, r)
        b.exit()
        kernel = b.build()
        assert kernel.count_static(Opcode.DADD) == 1
        assert kernel.count_static(Opcode.DFMA) == 1

    def test_memory_emitters(self):
        b = KernelBuilder("k", params=("buf",))
        r = b.reg()
        b.ldg(r, b.param("buf"), offset=8)
        b.stg(b.param("buf"), r, offset=8)
        b.exit()
        kernel = b.build()
        assert kernel.count_static(Opcode.LDG) == 1
        assert kernel.count_static(Opcode.STG) == 1

    def test_immediates_coerced(self):
        b = KernelBuilder("k")
        r = b.reg()
        b.mov(r, 5)
        b.fadd(r, r, 1.5)
        b.exit()
        kernel = b.build()
        assert kernel.instructions[0].srcs[0] == Imm(5)


class TestSharedFootprintLimit:
    """validate_kernel(spec=...): static shared memory vs the SM limit."""

    def _kernel(self, words):
        b = KernelBuilder("smem_heavy")
        b.alloc_shared(words)
        r = b.reg()
        b.mov(r, Imm(1))
        b.sts(b.smem(offset=0), r)
        b.exit()
        return b.build()

    def test_within_limit_passes(self):
        from repro.arch.specs import GTX285

        kernel = self._kernel(16)
        validate_kernel(kernel, GTX285)

    def test_footprint_over_limit_rejected(self):
        from repro.arch.specs import GTX285

        words = GTX285.sm.shared_memory_bytes // 4  # over once ABI overhead lands
        kernel = self._kernel(words)
        with pytest.raises(ValidationError, match="shared memory"):
            validate_kernel(kernel, GTX285)

    def test_no_spec_skips_hardware_check(self):
        from repro.arch.specs import GTX285

        kernel = self._kernel(GTX285.sm.shared_memory_bytes // 4)
        validate_kernel(kernel)  # structural checks only

    def test_simulator_enforces_spec_limit(self):
        from repro.arch.specs import GTX285
        from repro.sim.functional import FunctionalSimulator

        kernel = self._kernel(GTX285.sm.shared_memory_bytes // 4)
        with pytest.raises(ValidationError, match="shared memory"):
            FunctionalSimulator(kernel)
