"""TuningProfile persistence: fail-open stores on unwritable roots,
stale-version invalidation, and LRU eviction of the tune directory."""

import os
import pickle
import time

import pytest

from repro.tune import (
    TUNE_DIR_ENV,
    TUNE_PROFILE_VERSION,
    TuneProfileCache,
    TuningProfile,
    default_tune_dir,
    load_profile,
    machine_fingerprint,
    new_profile,
    profile_key,
    save_profile,
)
from repro.util import CACHE_MAX_BYTES_ENV


def _profile(spec_fp="spec-fp", **kwargs):
    kwargs.setdefault("default_grid_batch_blocks", 24)
    return new_profile(spec_fp, {2: 5000}, {2: 16}, **kwargs)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        profile = _profile()
        save_profile(profile, directory=tmp_path)
        loaded = load_profile("spec-fp", directory=tmp_path)
        assert loaded == profile

    def test_machine_keyed(self, tmp_path):
        save_profile(_profile(), directory=tmp_path)
        assert (
            load_profile("spec-fp", directory=tmp_path, machine="other-box")
            is None
        )

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TUNE_DIR_ENV, str(tmp_path / "custom"))
        assert default_tune_dir() == str(tmp_path / "custom")
        path = save_profile(_profile())
        assert path.startswith(str(tmp_path / "custom"))
        assert load_profile("spec-fp") is not None

    def test_default_dir_under_cache_root(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TUNE_DIR_ENV, raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_tune_dir() == os.path.join(str(tmp_path), "tune")


class TestFailOpen:
    def test_unwritable_root_fails_open(self, tmp_path):
        # A *file* where the cache root should be: makedirs fails for
        # any user (root included, where chmod-based denial is moot).
        blocked = tmp_path / "blocked"
        blocked.write_bytes(b"in the way")
        # Store must not raise; subsequent load is simply a miss.
        save_profile(_profile(), directory=blocked / "tune")
        assert load_profile("spec-fp", directory=blocked / "tune") is None

    def test_unwritable_root_via_permissions(self, tmp_path):
        blocked = tmp_path / "ro"
        blocked.mkdir()
        blocked.chmod(0o500)
        try:
            probe = blocked / "probe"
            try:
                probe.write_bytes(b"x")
            except OSError:
                save_profile(_profile(), directory=blocked / "tune")
                assert (
                    load_profile("spec-fp", directory=blocked / "tune")
                    is None
                )
            else:  # pragma: no cover - privileged user, chmod moot
                probe.unlink()
                pytest.skip("permissions not enforced for this user")
        finally:
            blocked.chmod(0o700)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        path = save_profile(_profile(), directory=tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert load_profile("spec-fp", directory=tmp_path) is None

    def test_non_profile_payload_is_a_miss(self, tmp_path):
        cache = TuneProfileCache(tmp_path)
        key = profile_key(machine_fingerprint(), "spec-fp")
        cache.store_payload(key, {"not": "a profile"})
        assert load_profile("spec-fp", directory=tmp_path) is None


class TestStaleVersion:
    def test_stale_version_profiles_are_ignored(self, tmp_path):
        profile = _profile()
        key = profile_key(profile.machine, profile.spec)
        payload = {"version": TUNE_PROFILE_VERSION - 1, "value": profile}
        path = os.path.join(tmp_path, f"{key}.tune.pkl")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert load_profile("spec-fp", directory=tmp_path) is None

    def test_current_version_loads(self, tmp_path):
        save_profile(_profile(), directory=tmp_path)
        assert isinstance(
            load_profile("spec-fp", directory=tmp_path), TuningProfile
        )


class TestLruEviction:
    def test_store_evicts_old_entries_beyond_budget(
        self, monkeypatch, tmp_path
    ):
        # Two old sibling files way over a tiny budget: storing a fresh
        # profile must evict them (oldest first) but keep the fresh one.
        old_a = tmp_path / "a.tune.pkl"
        old_b = tmp_path / "b.tune.pkl"
        for path, age in ((old_a, 500), (old_b, 400)):
            path.write_bytes(b"x" * 4096)
            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "4096")
        fresh = save_profile(_profile(), directory=tmp_path)
        assert os.path.exists(fresh)
        assert not old_a.exists()
        assert load_profile("spec-fp", directory=tmp_path) is not None

    def test_disabled_budget_keeps_everything(self, monkeypatch, tmp_path):
        junk = tmp_path / "junk.tune.pkl"
        junk.write_bytes(b"x" * 4096)
        stamp = time.time() - 500
        os.utime(junk, (stamp, stamp))
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        save_profile(_profile(), directory=tmp_path)
        assert junk.exists()


class TestEnsureProfile:
    """First-use auto-tuning, the way calibration self-populates."""

    def _spec_fp(self):
        from repro.arch.specs import GTX285
        from repro.util import spec_fingerprint

        return spec_fingerprint(GTX285)

    def test_existing_profile_returned_without_tuning(
        self, monkeypatch, tmp_path
    ):
        import repro.tune as tune

        profile = _profile(self._spec_fp())
        save_profile(profile, directory=tmp_path)
        monkeypatch.setattr(
            tune, "autotune", lambda **k: pytest.fail("must not measure")
        )
        monkeypatch.setenv(tune.TUNE_AUTO_ENV, "1")
        assert tune.ensure_profile(directory=tmp_path) == profile

    def test_missing_profile_triggers_autotune_and_persists(
        self, monkeypatch, tmp_path
    ):
        import repro.tune as tune

        monkeypatch.setenv(tune.TUNE_AUTO_ENV, "1")
        calls = []

        def fake_autotune(spec=None, save=True, directory=None, **kwargs):
            calls.append((save, directory))
            profile = _profile(self._spec_fp())
            if save:
                save_profile(profile, directory=directory)
            return profile

        monkeypatch.setattr(tune, "autotune", fake_autotune)
        announced = []
        got = tune.ensure_profile(
            directory=tmp_path, on_tune=lambda: announced.append(True)
        )
        assert calls == [(True, tmp_path)]
        assert announced == [True]
        assert got is not None
        # Second call resolves from disk: no measurement.
        monkeypatch.setattr(
            tune, "autotune", lambda **k: pytest.fail("must not re-measure")
        )
        assert tune.ensure_profile(directory=tmp_path) == got

    def test_dry_run_opts_out(self, monkeypatch, tmp_path):
        import repro.tune as tune

        monkeypatch.setenv(tune.TUNE_AUTO_ENV, "1")
        monkeypatch.setattr(
            tune, "autotune", lambda **k: pytest.fail("must not measure")
        )
        assert tune.ensure_profile(directory=tmp_path, dry_run=True) is None

    @pytest.mark.parametrize("value", ("0", "no", "false", "OFF"))
    def test_env_opts_out(self, monkeypatch, tmp_path, value):
        import repro.tune as tune

        monkeypatch.setenv(tune.TUNE_AUTO_ENV, value)
        monkeypatch.setattr(
            tune, "autotune", lambda **k: pytest.fail("must not measure")
        )
        assert tune.ensure_profile(directory=tmp_path) is None
