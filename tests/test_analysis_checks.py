"""Mutation tests: seed each bug class, assert the exact diagnostic.

Each test copies a shipped kernel, surgically plants one bug via
``dataclasses.replace`` (kernels are frozen dataclasses), and asserts
the checker names that bug and no other error.  A final test pins the
whole zoo to a clean bill of health.
"""

from dataclasses import replace

from repro.analysis.checks import check_kernel
from repro.analysis.report import BUILTIN_KERNELS, analysis_case, analyze_kernels
from repro.isa import Instruction, Opcode, Reg
from repro.isa.instructions import MemRef


def insert_instruction(kernel, index, instr, extra_registers=0):
    """A copy of ``kernel`` with ``instr`` planted at ``index``."""
    instructions = list(kernel.instructions)
    instructions.insert(index, instr)
    labels = {
        name: pos + 1 if pos >= index else pos
        for name, pos in kernel.labels.items()
    }
    return replace(
        kernel,
        instructions=tuple(instructions),
        labels=labels,
        num_registers=kernel.num_registers + extra_registers,
    )


def codes(diagnostics, severity=None):
    return [
        d.code
        for d in diagnostics
        if severity is None or d.severity == severity
    ]


class TestSeededSharedRace:
    def test_colliding_halo_store_is_flagged(self):
        # Stencil's left-halo store (thread 0 only) normally writes
        # word 0.  Redirect it onto word 33 -- the word thread 32
        # (warp 1) fills with its center store in the same barrier
        # interval: a cross-warp write-write race.
        case = analysis_case("stencil")
        kernel = case.kernel
        halo = kernel.instructions[8]  # sts s[r7], r9 after the tid==0 branch
        assert isinstance(halo.dst, MemRef) and halo.dst.space == "shared"
        mutated = replace(
            kernel,
            instructions=tuple(
                replace(ins, dst=replace(ins.dst, offset=33 * 4))
                if i == 8
                else ins
                for i, ins in enumerate(kernel.instructions)
            ),
        )
        diagnostics = check_kernel(mutated, case.launch, case.gmem)
        assert "shared-race" in codes(diagnostics, "error")
        race = next(d for d in diagnostics if d.code == "shared-race")
        assert race.index in (4, 8)  # anchored at one of the two stores


class TestSeededGlobalOob:
    def test_store_past_allocation_is_flagged(self):
        # Push matmul's last C-tile store 10 MB past every allocation.
        case = analysis_case("matmul")
        kernel = case.kernel
        last_store = max(
            i
            for i, ins in enumerate(kernel.instructions)
            if isinstance(ins.dst, MemRef) and ins.dst.space == "global"
        )
        mutated = replace(
            kernel,
            instructions=tuple(
                replace(ins, dst=replace(ins.dst, offset=ins.dst.offset + 10 * 2**20))
                if i == last_store
                else ins
                for i, ins in enumerate(kernel.instructions)
            ),
        )
        diagnostics = check_kernel(mutated, case.launch, case.gmem)
        oob = [d for d in diagnostics if d.code == "global-oob"]
        assert oob and oob[0].severity == "error"
        assert oob[0].index == last_store


class TestSeededDivergentBarrier:
    def test_barrier_under_thread_guard_is_flagged(self):
        # Scan's tid<16 reduction body runs on half of warp 0; a
        # barrier planted inside it is reached divergent.
        case = analysis_case("scan")
        kernel = case.kernel
        # Index 21 is the `@!p1 bra SKIP3` guarding the tid<16 body.
        guard_branch = kernel.instructions[21]
        assert guard_branch.opcode is Opcode.BRA
        mutated = insert_instruction(kernel, 26, Instruction(Opcode.BAR))
        diagnostics = check_kernel(mutated, case.launch, case.gmem)
        divergent = [d for d in diagnostics if d.code == "barrier-divergence"]
        assert divergent and divergent[0].severity == "error"
        assert divergent[0].index == 26


class TestSeededUninitRead:
    def test_read_before_any_write_is_flagged(self):
        case = analysis_case("matmul")
        kernel = case.kernel
        fresh = kernel.num_registers
        mutated = insert_instruction(
            kernel,
            0,
            Instruction(Opcode.FADD, dst=Reg(fresh), srcs=(Reg(fresh), Reg(fresh))),
            extra_registers=1,
        )
        diagnostics = check_kernel(mutated, case.launch, case.gmem)
        uninit = [d for d in diagnostics if d.code == "uninit-read"]
        assert uninit and uninit[0].severity == "warning"
        assert uninit[0].index == 0
        assert f"%r{fresh}" in uninit[0].message

    def test_clobbered_unread_write_is_a_dead_store(self):
        from repro.isa import Imm

        case = analysis_case("stencil")
        kernel = case.kernel
        fresh = kernel.num_registers
        mutated = insert_instruction(
            kernel,
            0,
            Instruction(Opcode.MOV, dst=Reg(fresh), srcs=(Imm(1.0),)),
            extra_registers=1,
        )
        mutated = insert_instruction(
            mutated, 1, Instruction(Opcode.MOV, dst=Reg(fresh), srcs=(Imm(2.0),))
        )
        diagnostics = check_kernel(mutated, case.launch, case.gmem)
        dead = [d for d in diagnostics if d.code == "dead-store"]
        assert dead and dead[0].severity == "warning"
        assert dead[0].index == 0


class TestShippedKernelsClean:
    def test_zoo_has_no_errors_or_warnings(self):
        reports = analyze_kernels(sorted(BUILTIN_KERNELS))
        for report in reports:
            assert report.count("error") == 0, report.name
            assert report.count("warning") == 0, report.name

    def test_data_dependent_spmv_reports_info_only(self):
        (report,) = analyze_kernels(["spmv"])
        assert report.clean
        assert {d.code for d in report.diagnostics} == {"data-addresses"}
