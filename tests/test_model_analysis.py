"""Performance model: extraction, components, bottlenecks, what-ifs."""

import pytest

from repro.arch import GTX285, KernelResources
from repro.errors import ModelError
from repro.isa import Imm, KernelBuilder
from repro.model import (
    ComponentTimes,
    PerformanceModel,
    predict_with_granularity,
    predict_with_max_blocks,
    predict_without_bank_conflicts,
    with_blocks_per_sm,
    with_granularity,
    without_bank_conflicts,
)
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig


def make_run(build, threads=64, grid=(4, 1), params=None, gmem=None, grans=(32,)):
    b = KernelBuilder("k", params=tuple(params or ()))
    build(b)
    b.exit()
    kernel = b.build()
    sim = FunctionalSimulator(kernel, gmem=gmem)
    launch = LaunchConfig(
        grid=grid,
        block_threads=threads,
        params=params or {},
        granularities=grans,
    )
    trace = sim.run(launch)
    resources = KernelResources(
        threads, kernel.num_registers, kernel.shared_memory_bytes
    )
    return trace, launch, resources


class TestComponentTimes:
    def test_bottleneck_selection(self):
        times = ComponentTimes(1.0, 3.0, 2.0)
        assert times.bottleneck == "shared"
        assert times.bottleneck_time == 3.0
        assert times.next_bottleneck() == "global"

    def test_addition(self):
        total = ComponentTimes(1, 2, 3) + ComponentTimes(4, 5, 6)
        assert (total.instruction, total.shared, total.global_) == (5, 7, 9)

    def test_get_unknown(self):
        with pytest.raises(ModelError):
            ComponentTimes(1, 2, 3).get("texture")


class TestArithmeticBoundKernel:
    def test_instruction_bottleneck_identified(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.counted_loop(50):
                for _ in range(8):
                    b.fmad(v, v, v, v)

        trace, launch, resources = make_run(build)
        report = model.analyze(trace, launch, resources)
        assert report.bottleneck == "instruction"
        assert report.component_totals.instruction > report.component_totals.shared
        assert not report.serialized  # plenty of blocks per SM

    def test_predicted_time_matches_hand_calculation(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.counted_loop(50):
                for _ in range(8):
                    b.fmad(v, v, v, v)

        trace, launch, resources = make_run(build)
        report = model.analyze(trace, launch, resources)
        inputs = model.extract(trace, launch, resources)
        stage = inputs.stages[0]
        warps = inputs.active_warps_per_sm(stage)
        by_hand = sum(
            count / model.models.instruction.curves[t].at(warps)
            for t, count in stage.instr_by_type.items()
            if count
        )
        assert report.component_totals.instruction == pytest.approx(by_hand)

    def test_density_in_diagnostics(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.counted_loop(50):
                for _ in range(8):
                    b.fmad(v, v, v, v)

        trace, launch, resources = make_run(build)
        report = model.analyze(trace, launch, resources)
        assert 0.5 < report.diagnostics.computational_density < 0.95


class TestSharedBoundKernel:
    def _build(self, b):
        b.alloc_shared(640)
        addr = b.reg()
        b.ishl(addr, b.tid, Imm(4))  # stride-4 words: 4-way conflicts
        v = b.reg()
        with b.counted_loop(40):
            b.lds(v, addr)
            b.sts(v, addr, offset=4)

    def test_shared_bottleneck_and_conflict_factor(self, model):
        trace, launch, resources = make_run(self._build, threads=128)
        report = model.analyze(trace, launch, resources)
        assert report.bottleneck == "shared"
        assert report.diagnostics.bank_conflict_factor == pytest.approx(4.0, rel=0.1)
        assert any("bank conflicts" in c for c in report.diagnostics.causes)

    def test_whatif_removing_conflicts_speeds_up(self, model):
        trace, launch, resources = make_run(self._build, threads=128)
        inputs = model.extract(trace, launch, resources)
        result = predict_without_bank_conflicts(model, inputs)
        assert result.speedup > 1.4
        assert result.baseline.bottleneck == "shared"
        shrink = (
            result.modified.component_totals.shared
            / result.baseline.component_totals.shared
        )
        assert shrink == pytest.approx(0.25, rel=0.15)  # 4-way conflicts gone

    def test_without_conflicts_transform(self, model):
        trace, launch, resources = make_run(self._build, threads=128)
        inputs = model.extract(trace, launch, resources)
        clean = without_bank_conflicts(inputs)
        for stage in clean.stages:
            assert stage.shared_transactions == stage.shared_transactions_ideal


class TestGlobalBoundKernel:
    def _gmem(self):
        gmem = GlobalMemory()
        base = gmem.alloc(64 * 64 + 64 * 20, "buf")
        return gmem, base

    def _build_scattered(self, b):
        # stride-64 words: every lane its own 128-byte line, so each
        # access costs one minimum-size segment (32 B at stock hardware,
        # 16 B at the hypothetical finer granularity).
        addr = b.reg()
        v = b.reg()
        b.imad(addr, b.tid, Imm(256), b.param("buf"))
        with b.counted_loop(20):
            b.ldg(v, addr)
            b.iadd(addr, addr, Imm(4))

    def test_global_bottleneck_and_coalescing_diagnosis(self, model):
        gmem, base = self._gmem()
        trace, launch, resources = make_run(
            self._build_scattered,
            params={"buf": base},
            gmem=gmem,
            grans=(32, 16, 4),
        )
        report = model.analyze(trace, launch, resources)
        assert report.bottleneck == "global"
        assert report.diagnostics.coalescing_efficiency < 0.5
        assert any("uncoalesced" in c for c in report.diagnostics.causes)

    def test_granularity_whatif_reduces_global_time(self, model):
        gmem, base = self._gmem()
        trace, launch, resources = make_run(
            self._build_scattered,
            params={"buf": base},
            gmem=gmem,
            grans=(32, 16, 4),
        )
        inputs = model.extract(trace, launch, resources)
        result = predict_with_granularity(model, inputs, 16)
        # Paper Fig. 11: a 16-byte granularity halves the wasted bytes
        # of this fully scattered pattern.
        assert result.modified.component_totals.global_ == pytest.approx(
            result.baseline.component_totals.global_ / 2, rel=0.1
        )
        assert result.speedup >= 1.0

    def test_missing_granularity_rejected(self, model):
        gmem, base = self._gmem()
        trace, launch, resources = make_run(
            self._build_scattered, params={"buf": base}, gmem=gmem, grans=(32,)
        )
        inputs = model.extract(trace, launch, resources)
        with pytest.raises(ModelError):
            with_granularity(inputs, 16)


class TestStageSerialization:
    def _build(self, b):
        b.alloc_shared(2200)  # 8.8 KB: forces one block per SM
        v = b.reg()
        b.mov(v, Imm(1.0))
        b.fmad(v, v, v, v)
        b.bar()
        b.fmad(v, v, v, v)

    def test_single_block_serializes(self, model):
        trace, launch, resources = make_run(self._build, threads=64, grid=(8, 1))
        report = model.analyze(trace, launch, resources)
        assert report.serialized
        assert report.predicted_seconds == pytest.approx(
            sum(s.times.bottleneck_time for s in report.stages)
        )

    def test_blocks_per_sm_whatif_overlaps_stages(self, model):
        trace, launch, resources = make_run(self._build, threads=64, grid=(8, 1))
        inputs = model.extract(trace, launch, resources)
        assert inputs.serialized
        more = with_blocks_per_sm(inputs, 4)
        assert not more.serialized
        faster = model.analyze_inputs(more)
        baseline = model.analyze_inputs(inputs)
        assert faster.predicted_seconds < baseline.predicted_seconds

    def test_max_blocks_whatif(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.counted_loop(30):
                b.fmad(v, v, v, v)

        trace, launch, resources = make_run(build, threads=32, grid=(64, 1))
        inputs = model.extract(trace, launch, resources)
        # tiny blocks: the 8-block ceiling binds at 8 warps/SM
        result = predict_with_max_blocks(model, inputs, resources, 16)
        assert result.modified.diagnostics.warps_per_sm > (
            result.baseline.diagnostics.warps_per_sm
        )

    def test_whatif_invalid_blocks(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))

        trace, launch, resources = make_run(build)
        inputs = model.extract(trace, launch, resources)
        with pytest.raises(ModelError):
            with_blocks_per_sm(inputs, 0)


class TestReportRendering:
    def test_render_mentions_key_fields(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.counted_loop(10):
                b.fmad(v, v, v, v)

        trace, launch, resources = make_run(build)
        report = model.analyze(trace, launch, resources)
        text = report.render()
        assert "bottleneck" in text
        assert "computational density" in text
        assert "warps per SM" in text

    def test_error_against(self, model):
        def build(b):
            v = b.reg()
            b.mov(v, Imm(1.0))

        trace, launch, resources = make_run(build)
        report = model.analyze(trace, launch, resources)
        assert report.error_against(report.predicted_seconds) == 0.0
