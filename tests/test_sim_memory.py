"""Device memory state: allocation, bounds, cacheability."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError
from repro.sim import GlobalMemory, SharedMemory


class TestGlobalMemory:
    def test_allocations_are_128_byte_aligned(self):
        gmem = GlobalMemory()
        for words in (1, 3, 17, 100):
            base = gmem.alloc(words)
            assert base % 128 == 0

    def test_address_zero_unmapped(self):
        gmem = GlobalMemory()
        gmem.alloc(4)
        with pytest.raises(MemoryAccessError):
            gmem.read(np.array([0]))

    def test_roundtrip_array(self):
        gmem = GlobalMemory()
        data = np.arange(10.0)
        base = gmem.alloc_array(data, "buf")
        assert np.array_equal(gmem.read_array(base, 10), data)

    def test_write_then_read(self):
        gmem = GlobalMemory()
        base = gmem.alloc(8)
        addrs = base + 4 * np.arange(8)
        gmem.write(addrs, np.arange(8.0))
        assert np.array_equal(gmem.read(addrs), np.arange(8.0))

    def test_misaligned_access_rejected(self):
        gmem = GlobalMemory()
        base = gmem.alloc(4)
        with pytest.raises(MemoryAccessError):
            gmem.read(np.array([base + 2]))

    def test_out_of_bounds_rejected(self):
        gmem = GlobalMemory()
        base = gmem.alloc(4)
        with pytest.raises(MemoryAccessError):
            gmem.read(np.array([base + 4 * 100]))

    def test_allocation_lookup(self):
        gmem = GlobalMemory()
        base_a = gmem.alloc(4, "a")
        base_b = gmem.alloc(4, "b")
        assert gmem.allocation_at(base_a).name == "a"
        assert gmem.allocation_at(base_b + 8).name == "b"
        assert gmem.allocation_at(10**9) is None

    def test_cacheable_marking(self):
        gmem = GlobalMemory()
        base = gmem.alloc(4, "x")
        assert not gmem.is_cacheable(base)
        gmem.mark_cacheable("x")
        assert gmem.is_cacheable(base)

    def test_mark_unknown_allocation(self):
        with pytest.raises(MemoryAccessError):
            GlobalMemory().mark_cacheable("ghost")

    def test_arena_grows_on_demand(self):
        gmem = GlobalMemory(capacity_words=64)
        base = gmem.alloc(4096, "big")
        addrs = base + 4 * np.arange(4096)
        gmem.write(addrs, np.ones(4096))
        assert gmem.read(addrs).sum() == 4096

    def test_zero_allocation_rejected(self):
        with pytest.raises(MemoryAccessError):
            GlobalMemory().alloc(0)


class TestSharedMemory:
    def test_roundtrip(self):
        smem = SharedMemory(16)
        addrs = 4 * np.arange(16)
        smem.write(addrs, np.arange(16.0))
        assert np.array_equal(smem.read(addrs), np.arange(16.0))

    def test_bounds_enforced(self):
        smem = SharedMemory(4)
        with pytest.raises(MemoryAccessError):
            smem.read(np.array([16]))

    def test_alignment_enforced(self):
        smem = SharedMemory(4)
        with pytest.raises(MemoryAccessError):
            smem.write(np.array([3]), np.array([1.0]))

    def test_size_bytes(self):
        assert SharedMemory(10).size_bytes == 40
