"""ISA core: opcodes, operands, instruction construction rules."""

import pytest

from repro.errors import IsaError
from repro.isa import (
    Imm,
    Instruction,
    MemRef,
    Opcode,
    OpKind,
    Pred,
    Reg,
    Special,
    TABLE1_EXAMPLES,
    opcode_from_mnemonic,
)


class TestTable1Classification:
    def test_mul_is_type_i(self):
        assert Opcode.FMUL.instr_type == "I"
        assert Opcode.IMUL.instr_type == "I"

    def test_mov_add_mad_are_type_ii(self):
        for op in (Opcode.MOV, Opcode.FADD, Opcode.FMAD, Opcode.IADD):
            assert op.instr_type == "II"

    def test_transcendentals_are_type_iii(self):
        for op in (Opcode.SIN, Opcode.COS, Opcode.LG2, Opcode.RCP):
            assert op.instr_type == "III"

    def test_double_precision_is_type_iv(self):
        for op in (Opcode.DADD, Opcode.DMUL, Opcode.DFMA):
            assert op.instr_type == "IV"

    def test_memory_ops_issue_as_type_ii(self):
        for op in (Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.STS):
            assert op.instr_type == "II"
            assert op.is_memory

    def test_control_flags(self):
        assert Opcode.BRA.is_control
        assert Opcode.BAR.is_control
        assert not Opcode.FMAD.is_control

    def test_table1_examples_exposed(self):
        assert TABLE1_EXAMPLES["I"] == ("mul",)
        assert "mad" in TABLE1_EXAMPLES["II"]

    def test_mnemonic_lookup(self):
        assert opcode_from_mnemonic("fmad") is Opcode.FMAD
        assert opcode_from_mnemonic("LDS") is Opcode.LDS

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            opcode_from_mnemonic("frobnicate")


class TestOperands:
    def test_register_str(self):
        assert str(Reg(5)) == "r5"

    def test_negative_register_rejected(self):
        with pytest.raises(IsaError):
            Reg(-1)

    def test_special_names(self):
        assert str(Special("tid")) == "%tid"
        with pytest.raises(IsaError):
            Special("warpid")

    def test_memref_str(self):
        assert str(MemRef("global", Reg(2), 16)) == "g[r2+0x10]"
        assert str(MemRef("shared", None, 64)) == "s[0x40]"

    def test_memref_global_needs_base(self):
        with pytest.raises(IsaError):
            MemRef("global", None, 0)

    def test_memref_bad_space(self):
        with pytest.raises(IsaError):
            MemRef("texture", Reg(0), 0)

    def test_memref_negative_offset(self):
        with pytest.raises(IsaError):
            MemRef("shared", Reg(0), -4)


class TestInstructionRules:
    def test_arith_arity_enforced(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.FMAD, dst=Reg(0), srcs=(Reg(1),))

    def test_store_requires_memref_dst(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.STG, dst=Reg(0), srcs=(Reg(1),))

    def test_store_space_must_match(self):
        with pytest.raises(IsaError):
            Instruction(
                Opcode.STG, dst=MemRef("shared", Reg(0)), srcs=(Reg(1),)
            )

    def test_load_requires_memref_src(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.LDG, dst=Reg(0), srcs=(Reg(1),))

    def test_branch_requires_target(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.BRA)

    def test_non_branch_rejects_target(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.FADD, dst=Reg(0), srcs=(Reg(1), Reg(2)), target="L")

    def test_setp_needs_comparison(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ISETP, dst=Pred(0), srcs=(Reg(0), Reg(1)))

    def test_setp_needs_pred_dst(self):
        with pytest.raises(IsaError):
            Instruction(
                Opcode.ISETP, dst=Reg(0), srcs=(Reg(0), Reg(1)), cmp="lt"
            )

    def test_one_shared_operand_allowed(self):
        instr = Instruction(
            Opcode.FMAD,
            dst=Reg(0),
            srcs=(Reg(1), MemRef("shared", None, 4), Reg(0)),
        )
        assert instr.shared_operand == MemRef("shared", None, 4)

    def test_two_shared_operands_rejected(self):
        with pytest.raises(IsaError):
            Instruction(
                Opcode.FADD,
                dst=Reg(0),
                srcs=(MemRef("shared", None, 0), MemRef("shared", None, 4)),
            )

    def test_global_arith_operand_rejected(self):
        with pytest.raises(IsaError):
            Instruction(
                Opcode.FADD,
                dst=Reg(0),
                srcs=(Reg(1), MemRef("global", Reg(2), 0)),
            )

    def test_registers_read_includes_address_bases(self):
        instr = Instruction(
            Opcode.STG, dst=MemRef("global", Reg(7)), srcs=(Reg(3),)
        )
        assert set(instr.registers_read()) == {3, 7}

    def test_registers_written(self):
        instr = Instruction(Opcode.FADD, dst=Reg(4), srcs=(Reg(1), Imm(2.0)))
        assert instr.registers_written() == (4,)

    def test_store_writes_no_registers(self):
        instr = Instruction(
            Opcode.STS, dst=MemRef("shared", Reg(1)), srcs=(Reg(2),)
        )
        assert instr.registers_written() == ()

    def test_guard_rendering(self):
        instr = Instruction(
            Opcode.BRA, target="LOOP", guard=(Pred(1), False)
        )
        assert str(instr) == "@!p1 bra LOOP"

    def test_sel_requires_pred_first(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.SEL, dst=Reg(0), srcs=(Reg(1), Reg(2), Reg(3)))

    def test_kind_partition(self):
        kinds = {op.kind for op in Opcode}
        assert OpKind.ARITH in kinds and OpKind.BARRIER in kinds
