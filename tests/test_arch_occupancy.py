"""Occupancy calculator: Table 2 and resource-ceiling properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import GTX285, KernelResources, compute_occupancy, warps_per_sm
from repro.errors import OccupancyError


class TestTable2:
    """The paper's Table 2: matrix-multiply occupancy per tile size."""

    def test_8x8_paper_row(self):
        occ = compute_occupancy(GTX285, KernelResources(64, 16, 348))
        assert occ.blocks_by_registers == 16
        assert occ.blocks_by_shared_memory == 47
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 16

    def test_16x16_paper_row(self):
        occ = compute_occupancy(GTX285, KernelResources(64, 30, 1088))
        assert occ.blocks_by_registers == 8
        assert occ.blocks_by_shared_memory == 15
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 16

    def test_32x32_paper_row(self):
        occ = compute_occupancy(GTX285, KernelResources(64, 58, 4284))
        assert occ.blocks_by_shared_memory == 3
        assert occ.blocks_per_sm == 3
        assert occ.warps_per_sm == 6

    def test_32x32_register_ceiling_documented_delta(self):
        # Paper prints 3 by registers; plain floor division gives 4.
        # The binding minimum (3, via shared memory) is unaffected.
        occ = compute_occupancy(GTX285, KernelResources(64, 58, 4284))
        assert occ.blocks_by_registers == 4
        assert occ.limiters == ("shared_memory",)


class TestCeilings:
    def test_block_limit_binds_small_kernels(self):
        occ = compute_occupancy(GTX285, KernelResources(32, 4, 0))
        assert occ.blocks_per_sm == 8
        assert "block_limit" in occ.limiters

    def test_warp_ceiling(self):
        # 512-thread blocks = 16 warps; 32-warp ceiling allows 2 blocks.
        occ = compute_occupancy(GTX285, KernelResources(512, 4, 0))
        assert occ.blocks_by_warps == 2
        assert occ.blocks_per_sm == 2

    def test_cr_like_kernel_single_block(self):
        # The paper's CR: ~10 KB shared forces one block per SM.
        occ = compute_occupancy(GTX285, KernelResources(256, 34, 10324))
        assert occ.blocks_per_sm == 1

    def test_threads_per_sm(self):
        occ = compute_occupancy(GTX285, KernelResources(64, 16, 348))
        assert occ.threads_per_sm == occ.warps_per_sm * 32

    def test_warps_per_block_rounds_up(self):
        assert KernelResources(33).warps_per_block == 2
        assert KernelResources(32).warps_per_block == 1

    def test_zero_resources_hit_block_limit(self):
        occ = compute_occupancy(GTX285, KernelResources(64))
        assert occ.blocks_per_sm == GTX285.sm.max_blocks

    def test_warps_per_sm_helper(self):
        assert warps_per_sm(GTX285, KernelResources(64, 30, 1088)) == 16


class TestErrors:
    def test_oversized_block_rejected(self):
        with pytest.raises(OccupancyError):
            compute_occupancy(GTX285, KernelResources(1024))

    def test_register_file_overflow_rejected(self):
        with pytest.raises(OccupancyError):
            compute_occupancy(GTX285, KernelResources(512, 64, 0))

    def test_shared_overflow_rejected(self):
        with pytest.raises(OccupancyError):
            compute_occupancy(GTX285, KernelResources(64, 4, 20000))

    def test_bad_thread_count(self):
        with pytest.raises(OccupancyError):
            KernelResources(0)

    def test_negative_registers(self):
        with pytest.raises(OccupancyError):
            KernelResources(64, -1)


@st.composite
def feasible_resources(draw):
    threads = draw(st.integers(1, 512))
    max_regs = GTX285.sm.registers // threads
    regs = draw(st.integers(0, min(max_regs, 124)))
    smem = draw(st.integers(0, GTX285.sm.shared_memory_bytes))
    return KernelResources(threads, regs, smem)


class TestProperties:
    @given(feasible_resources())
    @settings(max_examples=80, deadline=None)
    def test_occupancy_within_hardware_ceilings(self, resources):
        try:
            occ = compute_occupancy(GTX285, resources)
        except OccupancyError:
            return
        assert 1 <= occ.blocks_per_sm <= GTX285.sm.max_blocks
        assert occ.warps_per_sm <= GTX285.sm.max_warps
        used_regs = (
            occ.blocks_per_sm
            * resources.registers_per_thread
            * resources.threads_per_block
        )
        assert used_regs <= GTX285.sm.registers
        used_smem = occ.blocks_per_sm * resources.shared_memory_per_block
        assert used_smem <= GTX285.sm.shared_memory_bytes

    @given(feasible_resources(), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_more_registers_never_increase_occupancy(self, resources, extra):
        try:
            base = compute_occupancy(GTX285, resources)
            bigger = compute_occupancy(
                GTX285,
                KernelResources(
                    resources.threads_per_block,
                    resources.registers_per_thread + extra,
                    resources.shared_memory_per_block,
                ),
            )
        except OccupancyError:
            return
        assert bigger.blocks_per_sm <= base.blocks_per_sm

    @given(feasible_resources())
    @settings(max_examples=60, deadline=None)
    def test_limiters_name_the_binding_minimum(self, resources):
        try:
            occ = compute_occupancy(GTX285, resources)
        except OccupancyError:
            return
        assert occ.limiters
        ceilings = {
            "registers": occ.blocks_by_registers,
            "shared_memory": occ.blocks_by_shared_memory,
            "warps": occ.blocks_by_warps,
            "block_limit": occ.blocks_by_block_limit,
        }
        for name in occ.limiters:
            assert ceilings[name] == occ.blocks_per_sm
