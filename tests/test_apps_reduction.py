"""Tree-reduction app: numerics, stage structure, engine dedup, and
grid-batched execution of its per-level barriers."""

import pickle

import pytest

from repro.apps.reduction import (
    build_reduction_kernel,
    prepare_problem,
    reduction_stage_count,
    run_reduction,
    validate_reduction,
)
from repro.errors import LaunchError
from repro.sim import FunctionalSimulator
from repro.sim.engine import SimulationEngine, analyze_dependence


class TestNumerics:
    def test_matches_float32_pairwise_reference_exactly(self):
        assert validate_reduction(block_threads=128, num_blocks=8) == 0.0

    def test_small_blocks(self):
        assert validate_reduction(block_threads=32, num_blocks=3) == 0.0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(LaunchError):
            build_reduction_kernel(96)


class TestTraceStructure:
    def test_stage_count(self):
        run = run_reduction(block_threads=128, num_blocks=4, measure=False)
        assert run.trace.num_stages == reduction_stage_count(128) == 9

    def test_active_warps_halve_per_level(self):
        run = run_reduction(block_threads=128, num_blocks=4, measure=False)
        # Load stage uses all 4 warps; level h=64 uses 2; every later
        # level (and the final store) runs at single-warp parallelism.
        assert [s.active_warps for s in run.trace.stages] == [
            4, 2, 1, 1, 1, 1, 1, 1, 1,
        ]

    def test_barrier_count_in_mix(self):
        run = run_reduction(block_threads=64, num_blocks=2, measure=False)
        # One bar after the load plus one per level, per warp, per block.
        warps = 2
        blocks = 2
        bars = (1 + 6) * warps * blocks
        assert run.trace.totals.instructions["bar"] == bars


class TestEngine:
    def test_dedups_to_single_probe_verified_class(self):
        problem = prepare_problem(64, 16)
        kernel = build_reduction_kernel(64)
        dependence = analyze_dependence(kernel)
        assert not dependence.data_dependent
        assert not dependence.block_in_control
        engine = SimulationEngine(kernel, gmem=problem.gmem)
        trace = engine.run(problem.launch())
        stats = trace.engine_stats
        assert stats.block_classes == 1
        assert stats.simulated_blocks <= 4  # representative + probes
        assert trace.exact

    def test_grid_batch_bit_identical_to_oracle(self):
        kernel = build_reduction_kernel(64)
        launch = prepare_problem(64, 10).launch()
        blocks = launch.all_blocks()
        oracle = FunctionalSimulator(
            kernel, gmem=prepare_problem(64, 10).gmem, batched=False
        )
        reference = [oracle.run_block(launch, block) for block in blocks]
        batched = FunctionalSimulator(
            kernel, gmem=prepare_problem(64, 10).gmem, batched=True
        )
        got = batched.run_blocks(launch, blocks)
        for expected, actual in zip(reference, got):
            assert pickle.dumps(expected) == pickle.dumps(actual)


class TestWorkflow:
    def test_measured_run_and_report(self):
        from repro.model.performance import PerformanceModel

        run = run_reduction(
            block_threads=64, num_blocks=8, model=PerformanceModel()
        )
        assert run.measured is not None and run.measured.cycles > 0
        assert run.predicted_seconds > 0
