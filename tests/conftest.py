"""Shared fixtures: one cheap calibration per test session."""

from __future__ import annotations

import pytest

from repro.hw import HardwareGpu
from repro.micro import calibrate
from repro.model import PerformanceModel
from repro.tune import TUNE_AUTO_ENV, TUNE_DIR_ENV

#: Reduced warp grid keeps session calibration fast while covering the
#: knee and the saturated region of every curve.
TEST_WARP_COUNTS = (1, 2, 4, 6, 8, 12, 16, 24, 32)


@pytest.fixture(autouse=True)
def _isolated_tuning_profiles(monkeypatch, tmp_path):
    """Point profile resolution at an empty per-test directory.

    Simulator and timing-layer constructions resolve their knobs
    through :mod:`repro.tune`; a developer's persisted machine profile
    (``repro tune run``) must not leak into assertions about the
    built-in defaults.  Tune tests monkeypatch over this freely.
    First-use auto-tuning is likewise disabled: a test must never
    trigger a measurement run.
    """
    monkeypatch.setenv(TUNE_DIR_ENV, str(tmp_path / "tune-profiles"))
    monkeypatch.setenv(TUNE_AUTO_ENV, "0")


@pytest.fixture(scope="session")
def gpu() -> HardwareGpu:
    return HardwareGpu()


@pytest.fixture(scope="session")
def tables(gpu):
    return calibrate(gpu, warp_counts=TEST_WARP_COUNTS, iterations=30)


@pytest.fixture(scope="session")
def model(tables) -> PerformanceModel:
    return PerformanceModel(tables)
