"""Dedup-aware parallel timing layer: signature memoization, pool
fan-out determinism across the bundled kernels, and the on-disk
measured-run cache."""

import pickle

import pytest

from repro.apps.matmul import build_matmul_kernel
from repro.apps.matmul import prepare_problem as prepare_matmul
from repro.apps.matrices import random_blocked
from repro.apps.spmv import build_kernel_for
from repro.apps.spmv import prepare_problem as prepare_spmv
from repro.apps.tridiag import build_cr_kernel
from repro.apps.tridiag import prepare_problem as prepare_cr
from repro.hw import HardwareGpu
from repro.isa import Imm, KernelBuilder
from repro.sim import GlobalMemory, LaunchConfig, SimulationEngine
from repro.sim.trace import BlockTrace, EV_ARITH, EV_GLOBAL_LD


def block_trace(stream, warps=2):
    return BlockTrace(block=(0, 0), stages=[], warp_streams=[stream] * warps)


def arith_block(n=50, warps=2):
    return block_trace([(EV_ARITH, 1, 1, 0, None)] * n, warps)


def load_block(n=20, warps=2):
    return block_trace([(EV_GLOBAL_LD, 0, 2, 128, None)] * n, warps)


def _parallel_gpu(workers=4, **kwargs):
    gpu = HardwareGpu(workers=workers, **kwargs)
    gpu.min_parallel_events = 0  # tiny test grids must still hit the pool
    return gpu


def _tail_table(blocks=41, threads=64):
    """Engine-produced per-block trace table with three block classes."""
    n = blocks * threads - 13
    gmem = GlobalMemory()
    buf = gmem.alloc(n + threads, "buf")
    b = KernelBuilder("tail", params=("buf", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        v = b.reg()
        b.ldg(v, addr)
        b.fadd(v, v, Imm(1.0))
        b.stg(addr, v)
    b.exit()
    launch = LaunchConfig(
        grid=(blocks, 1), block_threads=threads, params={"buf": buf, "n": n}
    )
    trace = SimulationEngine(b.build(), gmem=gmem).run(launch)
    return trace.block_traces, launch.num_blocks


class TestSignatureMemoization:
    def test_two_class_grid_simulates_two_clusters(self):
        # Round-robin over 10 clusters with a [light, heavy] cycle puts
        # all-light queues on even clusters and all-heavy on odd ones:
        # two signatures cover ten clusters.
        light, heavy = arith_block(20), arith_block(120)
        run = HardwareGpu().measure([light, heavy], 20, 8)
        assert run.cluster_sims == 2
        assert run.signature_hits == 8
        assert len(run.cluster_cycles) == 10

    def test_dedup_matches_naive_replay(self):
        light, heavy = arith_block(20), arith_block(120)
        gpu = HardwareGpu()
        fast = gpu.measure([light, heavy], 20, 8)
        naive = gpu.measure([light, heavy], 20, 8, dedup=False)
        assert naive.cluster_sims == 10
        assert naive.signature_hits == 0
        assert fast.cycles == naive.cycles
        assert fast.cluster_cycles == naive.cluster_cycles
        assert fast.events == naive.events

    def test_content_equal_traces_unify(self):
        # Distinct objects with identical streams are one class: the
        # grid collapses to a single signature, matching the genuinely
        # homogeneous measurement bit for bit.
        a, b = arith_block(50), arith_block(50)
        gpu = HardwareGpu()
        mixed = gpu.measure([a, b], 20, 8)
        uniform = gpu.measure(a, 20, 8, wave_extrapolation=False)
        assert mixed.cluster_sims == 1
        assert mixed.signature_hits == 9
        assert mixed.cycles == uniform.cycles
        assert mixed.cluster_cycles == uniform.cluster_cycles

    def test_mixed_class_queues_match_naive_when_signatures_differ(self):
        # Regression: the representative of a signature must simulate
        # its *natural* queue arrangement, not a canonically sorted one.
        # 61 blocks cycling 7 distinct stream lengths give every cluster
        # SM queues of mixed classes in non-sorted order; with (almost)
        # all signatures unique, no permutation-merge fires and dedup
        # must match the naive per-cluster replay bit for bit.
        table = [arith_block(10 + 7 * k) for k in range(7)]
        gpu = HardwareGpu()
        fast = gpu.measure(table, 61, 2)
        naive = gpu.measure(table, 61, 2, dedup=False)
        assert fast.cycles == naive.cycles
        assert fast.cluster_cycles == naive.cluster_cycles
        assert fast.events == naive.events

    def test_engine_table_dedups_interior_clusters(self):
        # 41 blocks: cluster 0 holds both boundary blocks, clusters 1-9
        # share one all-interior signature.
        table, num_blocks = _tail_table(blocks=41)
        assert num_blocks == 41
        run = HardwareGpu().measure(table, num_blocks, 8)
        assert len(run.cluster_cycles) == 10  # exact tables time all
        assert run.cluster_sims == 2
        assert run.signature_hits == 8

    def test_extrapolated_runs_report_shared_tails(self):
        run = HardwareGpu().measure(arith_block(60), 300, resident_per_sm=2)
        assert run.extrapolated
        # one-wave + two-wave + one shared tail pattern.
        assert run.cluster_sims == 3
        assert run.signature_hits == 9


class TestParallelTiming:
    """Pooled cluster fan-out must be bit-identical to serial."""

    def _assert_parallel_identical(self, traces, num_blocks, resident,
                                   use_cache=False):
        serial = HardwareGpu().measure(
            traces, num_blocks, resident, use_cache=use_cache
        )
        parallel = _parallel_gpu().measure(
            traces, num_blocks, resident, use_cache=use_cache
        )
        assert parallel == serial  # every MeasuredRun field
        return serial

    def test_matmul_homogeneous_table(self):
        n, tile = 128, 8
        kernel = build_matmul_kernel(n, tile)
        problem = prepare_matmul(n, tile)
        launch = problem.launch()
        trace = SimulationEngine(kernel, gmem=problem.gmem).run(launch)
        run = self._assert_parallel_identical(
            trace.block_traces, launch.num_blocks, 8
        )
        assert run.cycles > 0

    @pytest.mark.parametrize("use_cache", (False, True))
    def test_spmv_heterogeneous_table(self, use_cache):
        matrix = random_blocked(block_rows=200, slots=3)
        problem = prepare_spmv(matrix, "bell_imiv")
        launch = problem.launch()
        trace = SimulationEngine(
            build_kernel_for(problem), gmem=problem.gmem
        ).run(launch)
        assert len(trace.block_traces) == launch.num_blocks  # data-dep
        self._assert_parallel_identical(
            trace.block_traces, launch.num_blocks, 8, use_cache=use_cache
        )

    def test_tridiag_table(self):
        n, systems = 64, 6
        kernel = build_cr_kernel(n)
        problem = prepare_cr(n, systems)
        launch = problem.launch()
        trace = SimulationEngine(kernel, gmem=problem.gmem).run(launch)
        self._assert_parallel_identical(
            trace.block_traces, launch.num_blocks, 4
        )

    def test_parallel_tail_table_matches_serial(self):
        table, num_blocks = _tail_table(blocks=41)
        self._assert_parallel_identical(table, num_blocks, 8)

    def test_parallel_extrapolation_matches_serial(self):
        trace = arith_block(60)
        serial = HardwareGpu().measure(trace, 300, resident_per_sm=2)
        parallel = _parallel_gpu().measure(trace, 300, resident_per_sm=2)
        assert serial.extrapolated and parallel == serial

    def test_event_floor_keeps_tiny_runs_serial(self):
        gpu = HardwareGpu(workers=4)  # default min_parallel_events
        jobs = [([[[(EV_ARITH, 1, 1, 0, None)]]], 1)] * 4
        assert gpu._effective_workers(jobs) == 0
        gpu.min_parallel_events = 0
        assert gpu._effective_workers(jobs) == 4


class TestMeasuredRunCache:
    def test_second_measure_hits_the_cache(self, tmp_path):
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        first = gpu.measure(load_block(30), 40, 4)
        assert not first.from_cache
        second = gpu.measure(load_block(30), 40, 4)
        assert second.from_cache
        import dataclasses

        assert dataclasses.replace(second, from_cache=False) == first

    def test_key_sensitivity(self, tmp_path):
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        gpu.measure(load_block(30), 40, 4)
        assert not gpu.measure(load_block(30), 40, 5).from_cache  # resident
        assert not gpu.measure(load_block(30), 41, 4).from_cache  # blocks
        assert not gpu.measure(load_block(31), 40, 4).from_cache  # content
        assert not gpu.measure(
            load_block(30), 40, 4, use_cache=True
        ).from_cache

    def test_extrapolated_runs_are_cached(self, tmp_path):
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        first = gpu.measure(arith_block(60), 300, 2)
        assert first.extrapolated and not first.from_cache
        second = gpu.measure(arith_block(60), 300, 2)
        assert second.extrapolated and second.from_cache
        assert second.cycles == first.cycles

    def test_sim_clusters_subsets_bypass_the_cache(self, tmp_path):
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        gpu.measure(load_block(30), 40, 4, sim_clusters=[0])
        assert not list(tmp_path.iterdir())

    @pytest.mark.parametrize(
        "junk",
        [
            b"not a pickle",
            b"",
            pickle.dumps(["valid pickle", "but not a dict"]),
            pickle.dumps({"version": -1, "run": None}),
        ],
        ids=["opcode-error", "empty", "non-dict-root", "bad-version"],
    )
    def test_corrupt_cache_files_are_ignored(self, tmp_path, junk):
        gpu = HardwareGpu(cache_dir=str(tmp_path))
        gpu.measure(load_block(30), 40, 4)
        for path in tmp_path.iterdir():
            path.write_bytes(junk)
        rerun = gpu.measure(load_block(30), 40, 4)
        assert not rerun.from_cache

    def test_cache_round_trip_through_parallel_gpu(self, tmp_path):
        # Any pool width may share an entry: results are bit-identical.
        serial = HardwareGpu(cache_dir=str(tmp_path))
        stored = serial.measure(load_block(30), 40, 4)
        parallel = _parallel_gpu(cache_dir=str(tmp_path))
        replayed = parallel.measure(load_block(30), 40, 4)
        assert replayed.from_cache
        assert replayed.cycles == stored.cycles
