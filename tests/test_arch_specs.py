"""Architecture specs: the paper's published GTX 285 numbers."""

import pytest

from repro.arch import GTX285, GpuSpec, MemorySpec, SmSpec, WARP_SIZE, HALF_WARP
from repro.errors import SpecError


class TestConstants:
    def test_warp_size(self):
        assert WARP_SIZE == 32

    def test_half_warp(self):
        assert HALF_WARP == 16


class TestGtx285:
    def test_sm_count(self):
        assert GTX285.num_sms == 30

    def test_core_clock(self):
        assert GTX285.core_clock_ghz == pytest.approx(1.48)

    def test_sms_per_cluster(self):
        # "the 3 SMs in a cluster share a single memory pipeline"
        assert GTX285.sms_per_cluster == 3

    def test_cluster_count(self):
        assert GTX285.memory.num_clusters == 10

    def test_registers_per_sm(self):
        assert GTX285.sm.registers == 16384

    def test_shared_memory_per_sm(self):
        assert GTX285.sm.shared_memory_bytes == 16384

    def test_resource_ceilings(self):
        assert GTX285.sm.max_threads_per_block == 512
        assert GTX285.sm.max_blocks == 8
        assert GTX285.sm.max_warps == 32

    def test_shared_banks(self):
        assert GTX285.sm.shared_memory_banks == 16

    def test_functional_units_table1(self):
        assert GTX285.units_for_type("I") == 10
        assert GTX285.units_for_type("II") == 8
        assert GTX285.units_for_type("III") == 4
        assert GTX285.units_for_type("IV") == 1


class TestDerivedPeaks:
    def test_mad_throughput_paper_value(self):
        # 8 * 1.48 GHz * 30 / 32 = 11.1 Giga instructions/s
        assert GTX285.peak_instruction_throughput("II") / 1e9 == pytest.approx(
            11.1, abs=0.01
        )

    def test_peak_gflops_paper_value(self):
        # 11.1 * 32 * 2 = 710.4 GFLOPS
        assert GTX285.peak_gflops == pytest.approx(710.4, abs=0.5)

    def test_peak_shared_bandwidth_paper_value(self):
        # 1.48 GHz * 8 * 30 * 4 B = 1420.8 GB/s
        assert GTX285.peak_shared_bandwidth / 1e9 == pytest.approx(1420.8, abs=1)

    def test_peak_global_bandwidth_paper_value(self):
        # 2.484 GHz * 512 bits / 8 = 158.98 GB/s ("160 GB/s")
        assert GTX285.peak_global_bandwidth / 1e9 == pytest.approx(158.98, abs=0.1)

    def test_type_i_throughput_exceeds_type_ii(self):
        assert GTX285.peak_instruction_throughput(
            "I"
        ) > GTX285.peak_instruction_throughput("II")

    def test_type_iv_is_slowest(self):
        rates = [GTX285.peak_instruction_throughput(t) for t in "I II III IV".split()]
        assert min(rates) == GTX285.peak_instruction_throughput("IV")

    def test_shared_bytes_per_cycle_per_sm(self):
        assert GTX285.shared_bytes_per_cycle_per_sm == 32

    def test_global_bytes_per_cycle(self):
        assert GTX285.global_bytes_per_cycle == pytest.approx(107.4, abs=0.5)


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(SpecError):
            GTX285.units_for_type("V")

    def test_negative_sms_rejected(self):
        with pytest.raises(SpecError):
            GpuSpec(num_sms=-1)

    def test_sms_must_divide_into_clusters(self):
        with pytest.raises(SpecError):
            GpuSpec(num_sms=31)

    def test_zero_clock_rejected(self):
        with pytest.raises(SpecError):
            GpuSpec(core_clock_ghz=0)

    def test_bad_sm_spec(self):
        with pytest.raises(SpecError):
            SmSpec(num_sps=0)

    def test_bad_dram_efficiency(self):
        with pytest.raises(SpecError):
            MemorySpec(dram_efficiency=1.5)

    def test_bad_bus_width(self):
        with pytest.raises(SpecError):
            MemorySpec(bus_width_bits=100)

    def test_missing_functional_units(self):
        with pytest.raises(SpecError):
            GpuSpec(functional_units={"I": 10})

    def test_segment_order(self):
        with pytest.raises(SpecError):
            MemorySpec(min_segment_bytes=256, max_segment_bytes=128)


class TestWhatIfCopies:
    def test_with_sm_changes_only_target_field(self):
        bigger = GTX285.with_sm(max_blocks=16)
        assert bigger.sm.max_blocks == 16
        assert bigger.sm.registers == GTX285.sm.registers
        assert GTX285.sm.max_blocks == 8  # original untouched

    def test_with_memory_changes_only_target_field(self):
        fast = GTX285.with_memory(dram_efficiency=1.0)
        assert fast.memory.dram_efficiency == 1.0
        assert fast.memory.bus_width_bits == GTX285.memory.bus_width_bits

    def test_scaled_register_file_raises_peak_nothing(self):
        bigger = GTX285.with_sm(registers=32768)
        assert bigger.peak_gflops == GTX285.peak_gflops
