"""Spec-keyed calibration caching (the CLI's default-path cache)."""

import dataclasses
import json

import pytest

from repro.arch.specs import GTX285
from repro.hw import HardwareGpu
from repro.micro import cache as micro_cache
from repro.micro.cache import (
    default_cache_dir,
    default_calibration_path,
    load_or_calibrate,
    spec_fingerprint,
)

WARPS = (1, 4, 32)


@pytest.fixture()
def counted_calibrate(monkeypatch):
    """Count real calibrations behind load_or_calibrate."""
    calls = []
    real = micro_cache.calibrate

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(micro_cache, "calibrate", counting)
    return calls


class TestDefaultPaths:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert default_calibration_path().name == "calibration.json"

    def test_defaults_to_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_cache_dir()).endswith(".cache/repro")


class TestLoadOrCalibrate:
    def test_second_call_reuses_cache(self, tmp_path, counted_calibrate):
        path = tmp_path / "calibration.json"
        gpu = HardwareGpu()
        first = load_or_calibrate(
            gpu, path=path, warp_counts=WARPS, iterations=10
        )
        assert path.exists()
        second = load_or_calibrate(
            gpu, path=path, warp_counts=WARPS, iterations=10
        )
        assert len(counted_calibrate) == 1
        assert second.instruction.throughput == first.instruction.throughput
        assert second.gpu is gpu  # hardware handle re-attached on load

    def test_spec_change_invalidates(self, tmp_path, counted_calibrate):
        path = tmp_path / "calibration.json"
        load_or_calibrate(
            HardwareGpu(), path=path, warp_counts=WARPS, iterations=10
        )
        other_spec = dataclasses.replace(GTX285, core_clock_ghz=2.0)
        load_or_calibrate(
            HardwareGpu(spec=other_spec),
            path=path,
            warp_counts=WARPS,
            iterations=10,
        )
        assert len(counted_calibrate) == 2
        assert spec_fingerprint(other_spec) != spec_fingerprint(GTX285)

    def test_fingerprint_ignores_dict_insertion_order(self):
        units = dict(GTX285.functional_units)
        reordered = dataclasses.replace(
            GTX285,
            functional_units=dict(sorted(units.items(), reverse=True)),
        )
        assert spec_fingerprint(reordered) == spec_fingerprint(GTX285)

    def test_sweep_change_invalidates(self, tmp_path, counted_calibrate):
        path = tmp_path / "calibration.json"
        gpu = HardwareGpu()
        load_or_calibrate(gpu, path=path, warp_counts=WARPS, iterations=10)
        load_or_calibrate(gpu, path=path, warp_counts=WARPS, iterations=20)
        assert len(counted_calibrate) == 2

    def test_corrupt_cache_recalibrates(self, tmp_path, counted_calibrate):
        path = tmp_path / "calibration.json"
        gpu = HardwareGpu()
        load_or_calibrate(gpu, path=path, warp_counts=WARPS, iterations=10)
        path.write_text("{not json")
        load_or_calibrate(gpu, path=path, warp_counts=WARPS, iterations=10)
        assert len(counted_calibrate) == 2

    def test_on_calibrate_fires_only_on_slow_path(
        self, tmp_path, counted_calibrate
    ):
        path = tmp_path / "calibration.json"
        gpu = HardwareGpu()
        notices = []
        kwargs = dict(
            path=path,
            warp_counts=WARPS,
            iterations=10,
            on_calibrate=lambda: notices.append(1),
        )
        load_or_calibrate(gpu, **kwargs)  # cold: calibrates
        load_or_calibrate(gpu, **kwargs)  # warm: silent
        assert notices == [1]
        path.write_text("{not json")  # stale/invalid cache: calibrates
        load_or_calibrate(gpu, **kwargs)
        assert notices == [1, 1]
        assert len(counted_calibrate) == 2

    def test_unwritable_cache_root_fails_open(
        self, tmp_path, counted_calibrate
    ):
        # A file where a directory is needed makes mkdir raise; the
        # freshly calibrated tables must still come back.
        (tmp_path / "blocker").write_text("")
        path = tmp_path / "blocker" / "sub" / "calibration.json"
        tables = load_or_calibrate(
            HardwareGpu(), path=path, warp_counts=WARPS, iterations=10
        )
        assert tables is not None
        assert len(counted_calibrate) == 1
        assert not path.exists()

    def test_cached_payload_is_versioned_and_keyed(self, tmp_path):
        path = tmp_path / "calibration.json"
        load_or_calibrate(
            HardwareGpu(), path=path, warp_counts=WARPS, iterations=10
        )
        payload = json.loads(path.read_text())
        assert payload["spec"] == spec_fingerprint(GTX285)
        assert payload["sweep"] == [list(WARPS), 10]

    def test_cache_file_loads_as_explicit_calibration(self, tmp_path):
        # `--calibration` pointing at the default cache file must work:
        # CalibrationTables.load unwraps the spec-keyed payload.
        from repro.micro import CalibrationTables

        path = tmp_path / "calibration.json"
        cached = load_or_calibrate(
            HardwareGpu(), path=path, warp_counts=WARPS, iterations=10
        )
        explicit = CalibrationTables.load(path, gpu=HardwareGpu())
        assert (
            explicit.instruction.throughput == cached.instruction.throughput
        )

    def test_stale_cache_file_rejected_as_explicit_calibration(
        self, tmp_path
    ):
        # A wrapped cache file keyed to another spec or schema version
        # must not be silently accepted via --calibration.
        from repro.errors import CalibrationError
        from repro.micro import CalibrationTables

        path = tmp_path / "calibration.json"
        load_or_calibrate(
            HardwareGpu(), path=path, warp_counts=WARPS, iterations=10
        )
        payload = json.loads(path.read_text())

        payload["spec"] = "deadbeef"
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError, match="different architecture"):
            CalibrationTables.load(path, gpu=HardwareGpu())

        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError, match="schema version"):
            CalibrationTables.load(path, gpu=HardwareGpu())
