"""Resolution precedence of the tuning parameters (repro.tune.resolve):
kwarg beats env beats profile beats built-in default, and invalid
env/profile values fail open with a warning."""

import pytest

from repro.arch.specs import GTX285
from repro.hw import HardwareGpu
from repro.isa import Imm, KernelBuilder
from repro.sim import FunctionalSimulator
from repro.tune import (
    BUILTIN_DEFAULTS,
    new_profile,
    resolve,
    resolve_with_source,
    save_profile,
)
from repro.util import spec_fingerprint

SPEC_FP = spec_fingerprint(GTX285)


def _kernel():
    b = KernelBuilder("k")
    r = b.reg()
    b.mov(r, Imm(1.0))
    b.exit()
    return b.build()


def _save(monkeypatch, tmp_path, **kwargs):
    """Persist a profile into an isolated tune dir and point env at it."""
    monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
    profile = new_profile(SPEC_FP, {}, {}, **kwargs)
    save_profile(profile)
    return profile


class TestPrecedenceOrder:
    def test_default_without_any_source(self):
        value, source = resolve_with_source("grid_batch_blocks", spec=GTX285)
        assert (value, source) == (BUILTIN_DEFAULTS["grid_batch_blocks"], "default")

    def test_profile_beats_default(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=24)
        value, source = resolve_with_source("grid_batch_blocks", spec=GTX285)
        assert (value, source) == (24, "profile")

    def test_env_beats_profile(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=24)
        monkeypatch.setenv("REPRO_GRID_BATCH_BLOCKS", "7")
        value, source = resolve_with_source("grid_batch_blocks", spec=GTX285)
        assert value == 7
        assert source.startswith("env:")

    def test_kwarg_beats_env_and_profile(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=24)
        monkeypatch.setenv("REPRO_GRID_BATCH_BLOCKS", "7")
        value, source = resolve_with_source(
            "grid_batch_blocks", kwarg=4, spec=GTX285
        )
        assert (value, source) == (4, "kwarg")

    def test_tune_env_spelling_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_GRID_BATCH_BLOCKS", "9")
        assert resolve("grid_batch_blocks", spec=GTX285) == 9

    def test_min_parallel_events_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_MIN_PARALLEL_EVENTS", "123")
        assert resolve("min_parallel_events", spec=GTX285) == 123

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            resolve("not_a_knob")


class TestFailOpen:
    def test_invalid_env_warns_and_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_BATCH_BLOCKS", "not-a-number")
        with pytest.warns(RuntimeWarning):
            value = resolve("grid_batch_blocks", spec=GTX285)
        assert value == BUILTIN_DEFAULTS["grid_batch_blocks"]

    def test_invalid_env_falls_through_to_profile(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=24)
        monkeypatch.setenv("REPRO_GRID_BATCH_BLOCKS", "junk")
        with pytest.warns(RuntimeWarning):
            value, source = resolve_with_source(
                "grid_batch_blocks", spec=GTX285
            )
        assert (value, source) == (24, "profile")

    def test_invalid_profile_value_warns_and_falls_through(
        self, monkeypatch, tmp_path
    ):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks="wide")
        with pytest.warns(RuntimeWarning):
            value = resolve("grid_batch_blocks", spec=GTX285)
        assert value == BUILTIN_DEFAULTS["grid_batch_blocks"]

    def test_numeric_values_clamp_to_floor(self):
        assert resolve("grid_batch_blocks", kwarg=0) == 1
        assert resolve("min_parallel_events", kwarg=-5) == 0


class TestProfileLookupShapes:
    def test_grid_batch_blocks_by_warps(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        profile = new_profile(
            SPEC_FP, {}, {2: 16, 4: 48}, default_grid_batch_blocks=24
        )
        save_profile(profile)
        assert resolve("grid_batch_blocks", spec=GTX285, warps_per_block=2) == 16
        assert resolve("grid_batch_blocks", spec=GTX285, warps_per_block=4) == 48
        # Unmeasured shape: the profile-wide default.
        assert resolve("grid_batch_blocks", spec=GTX285, warps_per_block=8) == 24

    def test_min_parallel_events_nearest_measured_width(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        profile = new_profile(
            SPEC_FP,
            {2: 9000, 8: 1000},
            {},
            default_min_parallel_events=9000,
        )
        save_profile(profile)
        # Widest measured pool not wider than the request.
        assert resolve("min_parallel_events", spec=GTX285, workers=4) == 9000
        assert resolve("min_parallel_events", spec=GTX285, workers=8) == 1000
        assert resolve("min_parallel_events", spec=GTX285, workers=16) == 1000
        # No pool context: the profile-wide default.
        assert resolve("min_parallel_events", spec=GTX285, workers=0) == 9000

    def test_other_spec_does_not_see_this_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        save_profile(
            new_profile("other-spec-fp", {}, {}, default_grid_batch_blocks=5)
        )
        assert (
            resolve("grid_batch_blocks", spec=GTX285)
            == BUILTIN_DEFAULTS["grid_batch_blocks"]
        )


class TestConsumptionSites:
    """The engine layers resolve through repro.tune (no hard-coded
    crossover constants left at the call sites)."""

    def test_functional_simulator_consumes_profile(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=13)
        assert FunctionalSimulator(_kernel()).grid_batch_blocks == 13

    def test_functional_simulator_kwarg_still_wins(self, monkeypatch, tmp_path):
        _save(monkeypatch, tmp_path, default_grid_batch_blocks=13)
        sim = FunctionalSimulator(_kernel(), grid_batch_blocks=4)
        assert sim.grid_batch_blocks == 4

    def test_hardware_gpu_consumes_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        save_profile(
            new_profile(
                SPEC_FP, {2: 777, 4: 555}, {}, default_min_parallel_events=999
            )
        )
        assert HardwareGpu().min_parallel_events == 999
        assert HardwareGpu(workers=4).min_parallel_events == 555

    def test_hardware_gpu_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_MIN_PARALLEL_EVENTS", "111")
        gpu = HardwareGpu(min_parallel_events=42)
        assert gpu.min_parallel_events == 42

    def test_engine_kwarg_reaches_simulator_through_resolution(self):
        from repro.sim import SimulationEngine

        engine = SimulationEngine(_kernel(), grid_batch_blocks=3)
        assert engine.simulator.grid_batch_blocks == 3

    def test_no_hardcoded_constants_at_consumption_sites(self):
        """The old magic numbers live only in repro.tune's defaults."""
        import inspect

        import repro.hw.gpu as gpu_mod
        import repro.sim.functional as functional_mod

        assert "50_000\n" not in inspect.getsource(gpu_mod.HardwareGpu)
        assert "50000" not in inspect.getsource(gpu_mod.HardwareGpu)
        # Slab resolution moved out of __init__ into the per-launch
        # grid_batch_blocks_for (and the launch-free property).
        for accessor in (
            functional_mod.FunctionalSimulator.grid_batch_blocks.fget,
            functional_mod.FunctionalSimulator.grid_batch_blocks_for,
        ):
            source = inspect.getsource(accessor)
            assert "= 32" not in source
            assert "tune_resolve" in source
