"""Command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_matmul_defaults(self):
        args = build_parser().parse_args(["matmul"])
        assert args.n == 512
        assert args.tile == 16

    def test_tile_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matmul", "--tile", "24"])

    def test_spmv_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spmv", "--format", "csr"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["matmul", "--workers", "4", "--full", "--no-cache"]
        )
        assert args.workers == 4
        assert args.full
        assert args.no_cache

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["spmv"])
        assert args.workers == 0
        assert not args.full
        assert not args.no_cache

    def test_tune_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])

    def test_tune_run_flags(self):
        args = build_parser().parse_args(
            ["tune", "run", "--repeats", "3", "--workers-counts", "2", "4",
             "--dry-run"]
        )
        assert args.tune_command == "run"
        assert args.repeats == 3
        assert args.workers_counts == [2, 4]
        assert args.dry_run

    def test_tune_show_defaults(self):
        args = build_parser().parse_args(["tune", "show"])
        assert args.tune_command == "show"
        assert args.workers == 0 and args.warps == 0

    def test_tune_trend_flags(self):
        args = build_parser().parse_args(
            ["tune", "trend", "a.json", "b.json", "--threshold", "0.3",
             "--markdown", "out.md", "--github-warnings"]
        )
        assert args.tune_command == "trend"
        assert args.inputs == ["a.json", "b.json"]
        assert args.threshold == 0.3
        assert args.markdown == "out.md"
        assert args.github_warnings and not args.fail_on_regression


class TestTuneWiring:
    def test_tune_run_dry_run_and_show(self, tmp_path, monkeypatch, capsys):
        # A dry run measures but must not persist; a real run persists
        # and `show` then reports profile provenance.
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        import repro.tune.slab as slab_mod
        from repro.__main__ import main
        from repro.tune.slab import _streaming_workload

        monkeypatch.setattr(
            slab_mod,
            "default_workloads",
            lambda: [_streaming_workload(num_blocks=4, block_threads=32)],
        )
        assert main(["tune", "run", "--repeats", "1", "--dry-run"]) == 0
        assert not list((tmp_path / "tune").glob("*.tune.pkl")) if (
            tmp_path / "tune"
        ).exists() else True

        assert main(["tune", "run", "--repeats", "1"]) == 0
        assert list((tmp_path / "tune").glob("*.tune.pkl"))

        assert main(["tune", "show", "--workers", "2", "--warps", "1"]) == 0
        out = capsys.readouterr().out
        assert "(from profile)" in out


def _tiny_tables(gpu=None, **_kwargs):
    # Shrink the sweep: these tests exercise wiring, not curves.
    from repro.micro.calibration import calibrate

    return calibrate(gpu, warp_counts=(1, 4, 32), iterations=10)


class TestGpuWiring:
    def test_workers_and_measure_cache_reach_the_gpu(
        self, tmp_path, monkeypatch
    ):
        # --workers governs both layers; the measured-run cache sits
        # under the same root as calibration and traces.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.__main__ import _make_model
        from repro.micro import cache as micro_cache

        monkeypatch.setattr(micro_cache, "calibrate", _tiny_tables)
        args = build_parser().parse_args(["matmul", "--workers", "3"])
        gpu, _ = _make_model(args)
        assert gpu.workers == 3
        assert gpu.cache is not None
        assert gpu.cache.directory == str(tmp_path / "measured")

    def test_no_cache_disables_measured_run_memoization(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import repro.micro

        from repro.__main__ import _make_model

        monkeypatch.setattr(repro.micro, "calibrate", _tiny_tables)
        args = build_parser().parse_args(["matmul", "--no-cache"])
        gpu, _ = _make_model(args)
        assert gpu.workers == 0
        assert gpu.cache is None


class TestCalibrationCaching:
    def test_default_path_calibration_is_cached(self, tmp_path, monkeypatch):
        # Regression: without --calibration the CLI used to recalibrate
        # on every case-study invocation; now tables are cached at the
        # default spec-keyed path.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.__main__ import _make_model
        from repro.micro import cache as micro_cache

        calls = []
        real = micro_cache.calibrate

        def counting(gpu=None, **_kwargs):
            calls.append(1)
            # Shrink the sweep: the test exercises caching, not curves.
            return real(gpu, warp_counts=(1, 4, 32), iterations=10)

        monkeypatch.setattr(micro_cache, "calibrate", counting)

        args = build_parser().parse_args(["matmul"])
        _make_model(args)
        assert (tmp_path / "calibration.json").exists()
        _make_model(args)
        assert len(calls) == 1


class TestCommands:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "710.4 GFLOPS" in out
        assert "1420.8 GB/s" in out
        assert "GeForce GTX 285" in out

    def test_calibrate_saves_json(self, tmp_path, capsys):
        out = tmp_path / "cal.json"
        assert main(["calibrate", "-o", str(out), "--iterations", "10"]) == 0
        assert out.exists()
        from repro.micro import CalibrationTables

        tables = CalibrationTables.load(out)
        assert tables.instruction.saturated("II") > 0


class TestAnalyzeCommand:
    def test_analyze_parses(self):
        args = build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.kernel is None
        assert not args.json

    def test_kernel_repeatable(self):
        args = build_parser().parse_args(
            ["analyze", "--kernel", "matmul", "--kernel", "scan"]
        )
        assert args.kernel == ["matmul", "scan"]

    def test_kernel_and_all_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--kernel", "matmul", "--all"]
            )

    def test_clean_kernel_exits_zero(self, capsys):
        assert main(["analyze", "--kernel", "stencil"]) == 0
        out = capsys.readouterr().out
        assert "stencil: clean" in out

    def test_json_output(self, capsys):
        import json

        assert main(["analyze", "--kernel", "scan", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["kernels"]["scan"]["clean"]

    def test_unknown_kernel_is_a_clean_error(self, capsys):
        # Domain errors exit 2 with a message instead of a traceback.
        assert main(["analyze", "--kernel", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err
