"""Command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_matmul_defaults(self):
        args = build_parser().parse_args(["matmul"])
        assert args.n == 512
        assert args.tile == 16

    def test_tile_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matmul", "--tile", "24"])

    def test_spmv_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spmv", "--format", "csr"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "710.4 GFLOPS" in out
        assert "1420.8 GB/s" in out
        assert "GeForce GTX 285" in out

    def test_calibrate_saves_json(self, tmp_path, capsys):
        out = tmp_path / "cal.json"
        assert main(["calibrate", "-o", str(out), "--iterations", "10"]) == 0
        assert out.exists()
        from repro.micro import CalibrationTables

        tables = CalibrationTables.load(out)
        assert tables.instruction.saturated("II") > 0
