"""Coalescing transaction simulator: the CUDA 1.2/1.3 protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.memory import (
    Transaction,
    TransactionConfig,
    bytes_transferred,
    coalesce_halfwarp,
    coalesce_warp,
    transaction_count,
)


class TestProtocol:
    def test_sequential_halfwarp_is_one_64b_segment(self):
        addrs = [base * 4 for base in range(16)]
        txns = coalesce_halfwarp(addrs)
        assert txns == [Transaction(0, 64)]

    def test_sequential_misaligned_uses_full_segment(self):
        # Words 8..23 span both halves of the 128-byte line, so the
        # 1.2/1.3 protocol issues one unshrinkable 128-byte transaction
        # (unlike CUDA 1.0/1.1, which would split it).
        addrs = [(8 + i) * 4 for i in range(16)]
        txns = coalesce_halfwarp(addrs)
        assert txns == [Transaction(0, 128)]

    def test_broadcast_same_word_single_min_segment(self):
        txns = coalesce_halfwarp([128] * 16)
        assert txns == [Transaction(128, 32)]

    def test_scattered_worst_case(self):
        # One 32-byte segment per thread: the paper's uncoalesced case.
        addrs = [i * 512 for i in range(16)]
        txns = coalesce_halfwarp(addrs)
        assert len(txns) == 16
        assert all(t.size == 32 for t in txns)

    def test_segment_shrinking_to_lower_half(self):
        # Four words at the start of a 128-byte line shrink to 32 bytes.
        txns = coalesce_halfwarp([0, 4, 8, 12])
        assert txns == [Transaction(0, 32)]

    def test_segment_shrinking_to_upper_half(self):
        txns = coalesce_halfwarp([96, 100, 104, 108])
        assert txns == [Transaction(96, 32)]

    def test_no_shrink_when_both_halves_used(self):
        txns = coalesce_halfwarp([0, 124])
        assert txns == [Transaction(0, 128)]

    def test_stride_two_fills_128_bytes(self):
        addrs = [i * 8 for i in range(16)]  # words 0,2,...,30
        txns = coalesce_halfwarp(addrs)
        assert txns == [Transaction(0, 128)]
        assert bytes_transferred(txns) == 128  # half the bytes wasted

    def test_16_byte_granularity_reduces_waste(self):
        addrs = [i * 512 for i in range(16)]
        small = coalesce_halfwarp(
            addrs, config=TransactionConfig(min_segment=16)
        )
        assert all(t.size == 16 for t in small)
        assert bytes_transferred(small) == 256

    def test_word_granularity_counts_distinct_words(self):
        config = TransactionConfig(min_segment=4, max_segment=4)
        txns = coalesce_halfwarp([0, 0, 4, 4, 8, 8], config=config)
        assert bytes_transferred(txns) == 12

    def test_order_of_service_follows_lowest_thread(self):
        txns = coalesce_halfwarp([256, 0])
        assert txns[0].address == 256  # lowest-numbered thread first


class TestWarpLevel:
    def test_two_halfwarps_served_independently(self):
        # Full warp of consecutive words: 2 transactions (one per half).
        addrs = [i * 4 for i in range(32)]
        assert transaction_count(addrs) == 2

    def test_inactive_lanes_ignored(self):
        addrs = [i * 4 for i in range(32)]
        active = [i < 16 for i in range(32)]
        assert transaction_count(addrs, active) == 1

    def test_fully_inactive_warp_is_free(self):
        assert transaction_count([0] * 32, [False] * 32) == 0

    def test_halfwarps_do_not_merge_across_boundary(self):
        # Same segment requested by both halves: two transactions (the
        # hardware issues per half-warp).
        addrs = [0] * 32
        assert transaction_count(addrs) == 2


class TestValidation:
    def test_min_segment_power_of_two(self):
        with pytest.raises(ModelError):
            TransactionConfig(min_segment=24)

    def test_min_above_max_rejected(self):
        with pytest.raises(ModelError):
            TransactionConfig(min_segment=256, max_segment=128)

    def test_access_bytes_positive(self):
        with pytest.raises(ModelError):
            coalesce_halfwarp([0], access_bytes=0)

    def test_initial_segment_sizes_by_access_width(self):
        from repro.memory.coalescing import initial_segment_size

        config = TransactionConfig()
        assert initial_segment_size(1, config) == 32
        assert initial_segment_size(2, config) == 64
        assert initial_segment_size(4, config) == 128


word_addresses = st.lists(
    st.integers(0, 4096).map(lambda w: w * 4), min_size=1, max_size=16
)


class TestProperties:
    @given(word_addresses)
    @settings(max_examples=150, deadline=None)
    def test_every_address_is_covered(self, addrs):
        txns = coalesce_halfwarp(addrs)
        for address in addrs:
            assert any(t.contains(address, 4) for t in txns)

    @given(word_addresses)
    @settings(max_examples=150, deadline=None)
    def test_segments_are_aligned_and_sized(self, addrs):
        config = TransactionConfig()
        for t in coalesce_halfwarp(addrs, config=config):
            assert t.size in (32, 64, 128)
            assert t.address % t.size == 0

    @given(word_addresses)
    @settings(max_examples=100, deadline=None)
    def test_bytes_at_least_useful_bytes(self, addrs):
        txns = coalesce_halfwarp(addrs)
        distinct_words = len({a // 4 for a in addrs})
        assert bytes_transferred(txns) >= distinct_words * 4

    @given(word_addresses)
    @settings(max_examples=100, deadline=None)
    def test_finer_granularity_never_moves_more_bytes(self, addrs):
        coarse = bytes_transferred(coalesce_halfwarp(addrs))
        fine = bytes_transferred(
            coalesce_halfwarp(addrs, config=TransactionConfig(min_segment=16))
        )
        ideal = bytes_transferred(
            coalesce_halfwarp(
                addrs, config=TransactionConfig(min_segment=4, max_segment=4)
            )
        )
        assert ideal <= fine <= coarse

    @given(word_addresses)
    @settings(max_examples=100, deadline=None)
    def test_transaction_count_at_most_active_threads(self, addrs):
        assert len(coalesce_halfwarp(addrs)) <= len(addrs)


class TestAffineClosedForm:
    """The closed-form counters must equal the greedy protocol."""

    @given(
        st.integers(0, 256).map(lambda w: w * 4),
        st.integers(-32, 32).map(lambda w: w * 4),
        st.integers(1, 16),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_materialized_progression(self, start, stride, count):
        from repro.memory import affine_transactions

        addrs = [start + stride * i for i in range(count)]
        if min(addrs) < 0:
            shift = -min(addrs)
            addrs = [a + shift for a in addrs]
            start += shift
        txns = coalesce_halfwarp(sorted(addrs))
        assert affine_transactions(start, stride, count) == (
            len(txns),
            bytes_transferred(txns),
        )

    def test_misaligned_progression_rejected(self):
        from repro.memory import affine_transactions

        with pytest.raises(ModelError, match="aligned"):
            affine_transactions(2, 4, 8)

    @given(word_addresses)
    @settings(max_examples=200, deadline=None)
    def test_warp_counts_match_exact_protocol(self, addrs):
        from repro.memory import coalesce_warp_affine

        padded = addrs + [0] * (32 - len(addrs))
        active = [True] * len(addrs) + [False] * (32 - len(addrs))
        txns = coalesce_warp(padded, active)
        assert coalesce_warp_affine(padded, active) == (
            len(txns),
            bytes_transferred(txns),
        )

    @given(st.integers(0, 65), st.integers(1, 32))
    @settings(max_examples=200, deadline=None)
    def test_strided_warp_matches_exact_protocol(self, stride_words, count):
        from repro.memory import coalesce_warp_affine

        addrs = [i * stride_words * 4 for i in range(32)]
        active = [i < count for i in range(32)]
        txns = coalesce_warp(addrs, active)
        assert coalesce_warp_affine(addrs, active) == (
            len(txns),
            bytes_transferred(txns),
        )
