"""Measured tuners: the per-event cost model's crossover arithmetic,
the slab tuner's deterministic selection, and one end-to-end autotune
producing a consumable profile."""

import math

import pytest

from repro.tune import autotune, load_profile, resolve
from repro.tune.events import (
    EventCostModel,
    measure_event_costs,
    tune_min_parallel_events,
)
from repro.tune.profile import BUILTIN_DEFAULTS
from repro.tune.slab import (
    SlabWorkload,
    _streaming_workload,
    measure_slab_timings,
    pick_widths,
    tune_grid_batch_blocks,
)


class TestEventCostModel:
    def test_crossover_is_startup_over_savings(self):
        model = EventCostModel(
            seconds_per_event=2e-6,
            pool_startup_seconds=0.01,
            probe_events=1000,
            probe_seconds=0.002,
        )
        # With 2 workers, each event saves half its serial cost.
        assert model.crossover_events(2) == math.ceil(0.01 / 1e-6)
        # Wider pools save more per event: smaller crossover.
        assert model.crossover_events(8) < model.crossover_events(2)

    def test_serial_context_returns_builtin_default(self):
        model = EventCostModel(2e-6, 0.01, 1000, 0.002)
        assert (
            model.crossover_events(1)
            == BUILTIN_DEFAULTS["min_parallel_events"]
        )

    def test_degenerate_measurement_fails_open(self):
        model = EventCostModel(0.0, 0.01, 1000, 0.0)
        assert (
            model.crossover_events(4)
            == BUILTIN_DEFAULTS["min_parallel_events"]
        )

    def test_measured_costs_are_positive(self):
        cost = measure_event_costs(repeats=1)
        assert cost.seconds_per_event > 0
        assert cost.pool_startup_seconds > 0
        assert cost.probe_events > 0

    def test_tuned_crossovers_per_width(self):
        cost, crossovers = tune_min_parallel_events(
            workers_counts=(2, 4, 1), repeats=1
        )
        assert set(crossovers) == {2, 4}  # width 1 never pools
        assert all(v >= 1 for v in crossovers.values())
        assert crossovers[4] <= crossovers[2]


class TestSlabSelection:
    def test_pick_widths_minimizes_group_totals(self):
        timings = {
            "a2w": {8: 0.4, 16: 0.2, 32: 0.3},
            "b2w": {8: 0.4, 16: 0.3, 32: 0.2},
            "c4w": {8: 0.1, 16: 0.2, 32: 0.3},
        }
        warps_of = {"a2w": 2, "b2w": 2, "c4w": 4}
        by_warps, default = pick_widths(timings, warps_of)
        assert by_warps == {2: 16, 4: 8}
        assert default in (8, 16)  # geometric-mean compromise

    def test_pick_widths_tie_breaks_to_smaller_width(self):
        timings = {"a2w": {8: 0.2, 32: 0.2}}
        by_warps, default = pick_widths(timings, {"a2w": 2})
        assert by_warps == {2: 8}
        assert default == 8

    def test_pick_widths_empty_fails_open_to_builtin(self):
        by_warps, default = pick_widths({}, {})
        assert by_warps == {}
        assert default == BUILTIN_DEFAULTS["grid_batch_blocks"]

    def test_measured_grid_covers_all_candidates(self):
        workload = _streaming_workload(num_blocks=8, block_threads=32)
        timings, warps_of = measure_slab_timings(
            [workload], candidates=(2, 4), repeats=1
        )
        assert set(timings[workload.name]) == {2, 4}
        assert warps_of[workload.name] == 1
        assert all(v > 0 for v in timings[workload.name].values())

    def test_tuner_end_to_end_on_tiny_workload(self):
        workload = _streaming_workload(num_blocks=6, block_threads=32)
        tuning = tune_grid_batch_blocks(
            [workload], candidates=(2, 4), repeats=1
        )
        assert tuning.default in (2, 4)
        assert tuning.by_warps.get(1) in (2, 4)

    def test_workload_dataclass_shape(self):
        workload = _streaming_workload(num_blocks=4, block_threads=64)
        assert isinstance(workload, SlabWorkload)
        assert workload.warps_per_block == 2
        assert not workload.barriered


class TestAutotuneEndToEnd:
    @pytest.fixture()
    def tiny_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tune"))
        # Shrink everything: this exercises wiring, not measurement
        # quality.
        import repro.tune.slab as slab_mod

        monkeypatch.setattr(
            slab_mod,
            "default_workloads",
            lambda: [_streaming_workload(num_blocks=6, block_threads=32)],
        )
        return autotune(
            workers_counts=(2,),
            slab_candidates=(2, 4),
            slab_repeats=1,
            events_repeats=1,
        )

    def test_profile_persisted_and_resolvable(self, tiny_profile):
        from repro.arch.specs import GTX285
        from repro.util import spec_fingerprint

        stored = load_profile(spec_fingerprint(GTX285))
        assert stored == tiny_profile
        # Fresh constructions now consume the measured values.
        value = resolve("grid_batch_blocks", spec=GTX285)
        assert value == tiny_profile.default_grid_batch_blocks
        value = resolve("min_parallel_events", spec=GTX285, workers=2)
        assert value == tiny_profile.min_parallel_events[2]

    def test_profile_meta_carries_measurements(self, tiny_profile):
        assert tiny_profile.meta["seconds_per_event"] > 0
        assert tiny_profile.meta["pool_startup_seconds"] > 0
        assert "slab_timings" in tiny_profile.meta
