"""Assembler: text round-trips (the Decuda/cudasm analogue)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError
from repro.isa import (
    COMPARISONS,
    Imm,
    Instruction,
    Kernel,
    KernelBuilder,
    MemRef,
    Opcode,
    Pred,
    Reg,
    Special,
    format_kernel,
    parse_kernel,
)


def roundtrip(kernel: Kernel) -> Kernel:
    return parse_kernel(format_kernel(kernel))


class TestBasics:
    def test_minimal_kernel_roundtrip(self):
        b = KernelBuilder("mini")
        r = b.reg()
        b.mov(r, Imm(1))
        b.exit()
        kernel = b.build()
        again = roundtrip(kernel)
        assert again.name == "mini"
        assert format_kernel(again) == format_kernel(kernel)

    def test_directives_parsed(self):
        text = (
            ".kernel k\n.params a b\n.regs 4\n.preds 2\n.smem 8\n"
            "    mov r2, r0\n    exit\n"
        )
        kernel = parse_kernel(text)
        assert kernel.params == ("a", "b")
        assert kernel.num_registers == 4
        assert kernel.num_predicates == 2
        assert kernel.shared_memory_words == 8

    def test_labels_and_branches(self):
        text = (
            ".kernel k\n.regs 2\n.preds 1\n.smem 0\n"
            "TOP:\n    iadd r1, r1, -1\n    isetp.gt p0, r1, 0\n"
            "    @p0 bra TOP\n    exit\n"
        )
        kernel = parse_kernel(text)
        assert kernel.labels == {"TOP": 0}
        branch = kernel.instructions[2]
        assert branch.target == "TOP"
        assert branch.guard == (Pred(0), True)

    def test_negated_guard(self):
        text = ".kernel k\n.regs 1\n.preds 1\n.smem 0\n    @!p0 bra END\nEND:\n    exit\n"
        kernel = parse_kernel(text)
        assert kernel.instructions[0].guard == (Pred(0), False)

    def test_memref_forms(self):
        text = (
            ".kernel k\n.regs 3\n.preds 0\n.smem 16\n"
            "    ldg r2, g[r0+0x10]\n    lds r2, s[0x4]\n"
            "    sts s[r1], r2\n    stg g[r0], r2\n    exit\n"
        )
        kernel = parse_kernel(text)
        assert kernel.instructions[0].srcs[0] == MemRef("global", Reg(0), 16)
        assert kernel.instructions[1].srcs[0] == MemRef("shared", None, 4)
        assert kernel.instructions[2].dst == MemRef("shared", Reg(1), 0)

    def test_specials(self):
        text = ".kernel k\n.regs 1\n.preds 0\n.smem 0\n    mov r0, %ctaid_x\n    exit\n"
        kernel = parse_kernel(text)
        assert kernel.instructions[0].srcs[0] == Special("ctaid_x")

    def test_comments_ignored(self):
        text = (
            ".kernel k  \n.regs 1\n.preds 0\n.smem 0\n"
            "    mov r0, 1  # set one\n"
            "    exit  // done\n"
        )
        assert len(parse_kernel(text).instructions) == 2

    def test_shared_operand_in_arith(self):
        b = KernelBuilder("k")
        b.alloc_shared(4)
        r = b.reg()
        b.mov(r, Imm(0))
        b.fmad(r, r, b.smem(offset=8), r)
        b.exit()
        again = roundtrip(b.build())
        mad = again.instructions[1]
        assert mad.shared_operand == MemRef("shared", None, 8)


class TestErrors:
    def test_missing_kernel_directive(self):
        with pytest.raises(AssemblyError):
            parse_kernel("    exit\n")

    def test_unknown_operand(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k\n.regs 1\n    mov r0, ???\n    exit\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k\n.regs 1\nA:\nA:\n    exit\n")

    def test_bra_operand_count(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k\n.regs 1\n    bra A, B\nA:\n    exit\n")

    def test_bar_takes_no_operands(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k\n.regs 1\n    bar r0\n    exit\n")

    def test_store_operand_shape(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k\n.regs 2\n    stg r0, r1\n    exit\n")


# ----------------------------------------------------------------------
# property-based round trip over randomly generated straight-line kernels
# ----------------------------------------------------------------------
_NUM_REGS = 8

_reg = st.integers(0, _NUM_REGS - 1).map(Reg)
_imm = st.one_of(
    st.integers(-1000, 1000).map(Imm),
    st.floats(
        min_value=-100,
        max_value=100,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(lambda v: Imm(round(v, 3))),
)
_special = st.sampled_from(
    ["tid", "ntid", "ctaid_x", "ctaid_y", "nctaid_x", "nctaid_y"]
).map(Special)
_operand = st.one_of(_reg, _imm, _special)


@st.composite
def _arith_instruction(draw):
    opcode = draw(
        st.sampled_from(
            [
                Opcode.FADD,
                Opcode.FMUL,
                Opcode.FMAD,
                Opcode.MOV,
                Opcode.IADD,
                Opcode.IMUL,
                Opcode.IMAD,
                Opcode.ISHL,
                Opcode.RCP,
                Opcode.DADD,
            ]
        )
    )
    srcs = tuple(draw(_operand) for _ in range(opcode.info.num_srcs))
    guard = draw(
        st.one_of(st.none(), st.tuples(st.just(Pred(0)), st.booleans()))
    )
    return Instruction(opcode, dst=draw(_reg), srcs=srcs, guard=guard)


@st.composite
def _setp_instruction(draw):
    return Instruction(
        Opcode.ISETP,
        dst=Pred(0),
        srcs=(draw(_reg), draw(_operand)),
        cmp=draw(st.sampled_from(COMPARISONS)),
    )


@st.composite
def straight_line_kernel(draw):
    body = draw(
        st.lists(
            st.one_of(_arith_instruction(), _setp_instruction()),
            min_size=1,
            max_size=12,
        )
    )
    return Kernel(
        name="prop",
        instructions=tuple(body) + (Instruction(Opcode.EXIT),),
        num_registers=_NUM_REGS,
        num_predicates=1,
    )


class TestRoundTripProperty:
    @given(straight_line_kernel())
    @settings(max_examples=120, deadline=None)
    def test_format_parse_is_identity_on_text(self, kernel):
        text = format_kernel(kernel)
        again = parse_kernel(text)
        assert format_kernel(again) == text
        assert len(again.instructions) == len(kernel.instructions)
        for a, b in zip(again.instructions, kernel.instructions):
            assert a.opcode is b.opcode
            assert a.guard == b.guard
            assert a.cmp == b.cmp
