"""Trend reporter over fixture BENCH_engine_smoke.json files: the
report must be deterministic, carry per-gate deltas, and flag >20%
regressions without failing."""

import json

import pytest

from repro.tune.trend import (
    build_report,
    collect_files,
    load_entries,
    render_markdown,
    trend_report,
)


def _payload(
    engine_speedup=4.0,
    timing_speedup=5.0,
    functional_speedup=16.0,
    matmul_speedup=12.0,
    cr_speedup=5.5,
    timestamp="2026-07-01T00:00:00Z",
    identical=True,
    engine_seconds=0.5,
):
    return {
        "schema": "engine_smoke/1",
        "timestamp": timestamp,
        "engine": {
            "speedup": engine_speedup,
            "engine_seconds": engine_seconds,
            "identical": identical,
        },
        "timing": {"speedup": timing_speedup, "identical": identical},
        "functional": {
            "speedup": functional_speedup,
            "batched_ips": 130_000.0,
            "identical": identical,
        },
        "barrier": {
            "matmul": {
                "speedup": matmul_speedup,
                "batched_ips": 220_000.0,
                "identical": identical,
            },
            "cyclic_reduction": {
                "speedup": cr_speedup,
                "batched_ips": 140_000.0,
                "identical": identical,
            },
        },
    }


@pytest.fixture()
def fixtures_dir(tmp_path):
    directory = tmp_path / "artifacts"
    directory.mkdir()

    def write(name, payload):
        (directory / name).write_text(json.dumps(payload))

    write("BENCH_old.json", _payload(timestamp="2026-07-01T00:00:00Z"))
    write(
        "BENCH_new.json",
        _payload(
            timestamp="2026-07-02T00:00:00Z",
            engine_speedup=2.0,  # -50%: must be flagged
            timing_speedup=4.5,  # -10%: inside the threshold
            engine_seconds=0.55,
        ),
    )
    return directory


class TestIngestion:
    def test_directory_and_files_mix(self, fixtures_dir, tmp_path):
        extra = tmp_path / "extra.json"
        extra.write_text(json.dumps(_payload()))
        paths = collect_files([fixtures_dir, extra])
        assert [p.split("/")[-1] for p in paths] == [
            "BENCH_new.json",
            "BENCH_old.json",
            "extra.json",
        ]

    def test_entries_ordered_by_timestamp(self, fixtures_dir):
        entries = load_entries([fixtures_dir])
        assert [e.label for e in entries] == [
            "BENCH_old.json",
            "BENCH_new.json",
        ]

    def test_foreign_and_broken_files_skipped(self, fixtures_dir):
        (fixtures_dir / "junk.json").write_text("{ not json")
        (fixtures_dir / "other.json").write_text(
            json.dumps({"schema": "something_else/1"})
        )
        assert len(load_entries([fixtures_dir])) == 2


class TestReport:
    def test_per_gate_deltas_and_regression_flags(self, fixtures_dir):
        report = build_report(load_entries([fixtures_dir]), threshold=0.2)
        engine = report["gates"]["engine.speedup"]
        assert engine["previous"] == 4.0
        assert engine["latest"] == 2.0
        assert engine["delta_vs_previous"] == pytest.approx(-0.5)
        assert engine["regressed"]
        timing = report["gates"]["timing.speedup"]
        assert timing["delta_vs_previous"] == pytest.approx(-0.1)
        assert not timing["regressed"]
        # Lower-is-better: +10% seconds is within a 20% threshold.
        seconds = report["gates"]["engine.engine_seconds"]
        assert not seconds["regressed"]
        assert report["regressions"] == ["engine.speedup"]
        assert report["latest_bit_identity_ok"]

    def test_seconds_regression_direction(self, tmp_path):
        for name, ts, secs in (
            ("a.json", "2026-07-01T00:00:00Z", 0.5),
            ("b.json", "2026-07-02T00:00:00Z", 0.8),
        ):
            (tmp_path / name).write_text(
                json.dumps(_payload(timestamp=ts, engine_seconds=secs))
            )
        report = build_report(load_entries([tmp_path]), threshold=0.2)
        assert report["gates"]["engine.engine_seconds"]["regressed"]
        assert "engine.engine_seconds" in report["regressions"]

    def test_bit_identity_failure_is_reported(self, tmp_path):
        (tmp_path / "a.json").write_text(
            json.dumps(_payload(identical=False))
        )
        report = build_report(load_entries([tmp_path]))
        assert not report["latest_bit_identity_ok"]
        assert "bit_identity" in report["regressions"]

    def test_deterministic_over_reruns(self, fixtures_dir):
        first_report, first_md = trend_report([fixtures_dir])
        second_report, second_md = trend_report([fixtures_dir])
        assert first_report == second_report
        assert first_md == second_md
        assert json.dumps(first_report, sort_keys=True) == json.dumps(
            second_report, sort_keys=True
        )

    def test_gate_missing_from_newest_run_reads_as_missing(self, tmp_path):
        # A metric that vanishes from the newest artifact must not
        # inherit an older run's value as "latest".
        old = _payload(timestamp="2026-07-01T00:00:00Z")
        new = _payload(timestamp="2026-07-02T00:00:00Z")
        del new["timing"]["speedup"]
        (tmp_path / "a.json").write_text(json.dumps(old))
        (tmp_path / "b.json").write_text(json.dumps(new))
        report = build_report(load_entries([tmp_path]))
        gate = report["gates"]["timing.speedup"]
        assert gate["latest"] is None
        assert gate["previous"] == 5.0
        assert not gate["regressed"]
        markdown = render_markdown(report)
        assert "| timing.speedup | 5.00 | 5.00 | - | - | missing |" in markdown

    def test_single_run_has_no_deltas(self, tmp_path):
        (tmp_path / "only.json").write_text(json.dumps(_payload()))
        report = build_report(load_entries([tmp_path]))
        gate = report["gates"]["engine.speedup"]
        assert gate["previous"] is None
        assert gate["delta_vs_previous"] is None
        assert report["regressions"] == []

    def test_empty_inputs(self, tmp_path):
        report, markdown = trend_report([tmp_path])
        assert report["runs"] == []
        assert "No engine_smoke measurements" in markdown


class TestMarkdown:
    def test_table_and_warning_lines(self, fixtures_dir):
        _, markdown = trend_report([fixtures_dir])
        assert "| engine.speedup | 4.00 | 4.00 | 2.00 | -50.0% |" in markdown
        assert "**REGRESSION**" in markdown
        assert "WARNING: 1 gate(s) regressed more than 20%" in markdown
        assert "`BENCH_old.json`" in markdown and "`BENCH_new.json`" in markdown

    def test_clean_run_reports_no_regressions(self, tmp_path):
        for name, ts in (
            ("a.json", "2026-07-01T00:00:00Z"),
            ("b.json", "2026-07-02T00:00:00Z"),
        ):
            (tmp_path / name).write_text(json.dumps(_payload(timestamp=ts)))
        _, markdown = trend_report([tmp_path])
        assert "No gate regressed" in markdown


class TestCli:
    def test_trend_subcommand_end_to_end(self, fixtures_dir, tmp_path, capsys):
        from repro.__main__ import main

        md_path = tmp_path / "report.md"
        json_path = tmp_path / "report.json"
        code = main(
            [
                "tune",
                "trend",
                str(fixtures_dir),
                "--markdown",
                str(md_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0  # warn, don't fail
        captured = capsys.readouterr()
        assert "perf trajectory" in captured.out
        assert "engine.speedup regressed" in captured.err
        assert md_path.exists() and json_path.exists()
        report = json.loads(json_path.read_text())
        assert report["regressions"] == ["engine.speedup"]

    def test_fail_on_regression_flag(self, fixtures_dir):
        from repro.__main__ import main

        assert (
            main(["tune", "trend", str(fixtures_dir), "--fail-on-regression"])
            == 1
        )

    def test_real_repo_artifact_parses(self):
        # The repository keeps one real artifact at its root; the
        # reporter must ingest the production schema.
        from pathlib import Path

        artifact = Path(__file__).parent.parent / "BENCH_engine_smoke.json"
        report, markdown = trend_report([artifact])
        assert len(report["runs"]) == 1
        assert report["gates"]["engine.speedup"]["latest"] is not None


def _crossval_payload(
    analytical=0.12,
    scaling=0.35,
    wins=20,
    predictions=24,
    timestamp="2026-07-01T00:00:00Z",
):
    return {
        "schema": "crossval/1",
        "timestamp": timestamp,
        "summary": {
            "overall": {
                "predictions": predictions,
                "analytical_mean_abs_rel_error": analytical,
                "scaling_mean_abs_rel_error": scaling,
                "analytical_wins": wins,
            }
        },
    }


class TestCrossvalIngestion:
    def test_crossval_artifact_becomes_entry(self, tmp_path):
        path = tmp_path / "BENCH_crossval.json"
        path.write_text(json.dumps(_crossval_payload()))
        (entry,) = load_entries([path])
        assert entry.kind == "crossval"
        assert entry.values[
            "crossval.analytical_mean_abs_rel_error"
        ] == 0.12
        assert entry.identical  # vacuous: no identity flags to fail

    def test_mixed_families_keep_series_apart(self, tmp_path):
        (tmp_path / "a_engine.json").write_text(
            json.dumps(_payload(timestamp="2026-07-01T00:00:00Z"))
        )
        (tmp_path / "b_crossval.json").write_text(
            json.dumps(
                _crossval_payload(timestamp="2026-07-01T12:00:00Z")
            )
        )
        (tmp_path / "c_engine.json").write_text(
            json.dumps(_payload(timestamp="2026-07-02T00:00:00Z"))
        )
        report = build_report(load_entries([tmp_path]))
        # Engine gates span only the two engine runs; the crossval run
        # in between never reads as a missing engine measurement.
        assert len(report["gates"]["engine.speedup"]["series"]) == 2
        assert len(
            report["gates"]["crossval.predictions"]["series"]
        ) == 1
        kinds = [run["kind"] for run in report["runs"]]
        assert kinds == ["engine_smoke", "crossval", "engine_smoke"]

    def test_crossval_error_regression_is_flagged(self, tmp_path):
        (tmp_path / "old.json").write_text(
            json.dumps(
                _crossval_payload(
                    analytical=0.10, timestamp="2026-07-01T00:00:00Z"
                )
            )
        )
        (tmp_path / "new.json").write_text(
            json.dumps(
                _crossval_payload(
                    analytical=0.20, timestamp="2026-07-02T00:00:00Z"
                )
            )
        )
        report = build_report(load_entries([tmp_path]))
        # Error doubled: lower-is-better, so this is a regression.
        assert (
            "crossval.analytical_mean_abs_rel_error"
            in report["regressions"]
        )
        _, markdown = trend_report([tmp_path])
        assert "crossval.analytical_mean_abs_rel_error" in markdown

    def test_engine_only_reports_omit_crossval_gates(self, tmp_path):
        (tmp_path / "only.json").write_text(json.dumps(_payload()))
        report = build_report(load_entries([tmp_path]))
        assert not any(
            gate.startswith("crossval.") for gate in report["gates"]
        )

    def test_real_crossval_cli_artifact_round_trips(self, tmp_path):
        from repro.__main__ import main

        artifact = tmp_path / "BENCH_crossval.json"
        code = main(
            [
                "specs", "crossval",
                "--specs", "fermi-like",
                "--kernel", "reduction",
                "--warp-counts", "1", "2", "4", "8",
                "--iterations", "20",
                "--no-cache",
                "--json", str(artifact),
            ]
        )
        assert code == 0
        report, _ = trend_report([artifact])
        assert report["gates"]["crossval.predictions"]["latest"] >= 1
