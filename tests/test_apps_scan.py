"""Blelloch scan app: numerics (f32/i32), per-level barrier structure,
heterogeneous engine dedup (boundary roles + tail guard), and
grid-batched execution."""

import pickle

import numpy as np
import pytest

from repro.apps.scan import (
    build_scan_kernel,
    prepare_problem,
    run_scan,
    scan_stage_count,
    validate_scan,
)
from repro.errors import LaunchError
from repro.sim import FunctionalSimulator
from repro.sim.engine import SimulationEngine, analyze_dependence


class TestNumerics:
    def test_f32_matches_blelloch_reference_exactly(self):
        assert validate_scan(n=500, block_threads=64, dtype="f32") == 0.0

    def test_i32_matches_integer_reference_exactly(self):
        assert validate_scan(n=300, block_threads=32, dtype="i32") == 0.0

    def test_full_blocks_no_tail(self):
        assert validate_scan(n=4 * 64, block_threads=64, dtype="f32") == 0.0

    def test_single_block(self):
        assert validate_scan(n=40, block_threads=64, dtype="f32") == 0.0

    def test_exclusive_semantics(self):
        problem = prepare_problem(n=64, block_threads=64, dtype="i32")
        reference = problem.reference()
        assert reference[0] == 0.0
        assert reference[3] == float(np.sum(problem.data[:3]))

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(LaunchError):
            build_scan_kernel(block_threads=48)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(LaunchError):
            build_scan_kernel(dtype="f64")


class TestTraceStructure:
    def test_stage_count_from_per_level_barriers(self):
        run = run_scan(n=256, block_threads=64, measure=False)
        assert run.trace.num_stages == scan_stage_count(64) == 15


class TestEngine:
    """The ROADMAP's 'genuinely heterogeneous classes' scenario."""

    def test_dedups_into_boundary_role_classes(self):
        # 12 blocks, tail cutoff inside the last one: the guard routes
        # ctaid into control flow, so the engine must refuse
        # single-class dedup and partition by boundary role.
        n = 64 * 12 - 17
        problem = prepare_problem(n=n, block_threads=64)
        kernel = build_scan_kernel(64)
        dependence = analyze_dependence(kernel)
        assert not dependence.data_dependent
        assert dependence.block_in_control
        engine = SimulationEngine(kernel, gmem=problem.gmem)
        trace = engine.run(problem.launch())
        stats = trace.engine_stats
        assert stats.block_classes > 1
        assert stats.block_classes == 3  # first / interior / last
        assert stats.probe_fallbacks == 0  # probe verification passed
        assert stats.simulated_blocks < stats.total_blocks
        assert trace.exact

    def test_dedup_aggregates_match_serial_full_grid(self):
        n = 64 * 9 - 5
        kernel = build_scan_kernel(64)
        serial = FunctionalSimulator(
            kernel, gmem=prepare_problem(n=n, block_threads=64).gmem
        ).run(prepare_problem(n=n, block_threads=64).launch())
        problem = prepare_problem(n=n, block_threads=64)
        fast = SimulationEngine(kernel, gmem=problem.gmem).run(
            problem.launch()
        )
        assert [s.canonical() for s in serial.stages] == [
            s.canonical() for s in fast.stages
        ]

    def test_grid_batch_bit_identical_to_oracle(self):
        n = 32 * 7 - 9
        kernel = build_scan_kernel(32)
        launch = prepare_problem(n=n, block_threads=32).launch()
        blocks = launch.all_blocks()
        oracle = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=n, block_threads=32).gmem,
            batched=False,
        )
        reference = [oracle.run_block(launch, block) for block in blocks]
        batched = FunctionalSimulator(
            kernel,
            gmem=prepare_problem(n=n, block_threads=32).gmem,
            batched=True,
            grid_batch_blocks=3,  # ragged slabs across the role classes
        )
        got = batched.run_blocks(launch, blocks)
        for expected, actual in zip(reference, got):
            assert pickle.dumps(expected) == pickle.dumps(actual)


class TestWorkflow:
    def test_measured_run_and_report(self):
        from repro.model.performance import PerformanceModel

        run = run_scan(n=512, block_threads=64, model=PerformanceModel())
        assert run.measured is not None and run.measured.cycles > 0
        assert run.predicted_seconds > 0
