"""Simulation engine: taint analysis, deduplication, parallel fan-out,
cross-block read-after-write detection, and the on-disk trace memo
cache.

The load-bearing guarantee -- engine runs are *bit-identical* to serial
full-grid simulation in aggregate statistics and model predictions --
is asserted differentially for every case-study kernel family in
:class:`TestDifferentialEquivalence`.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.apps.matmul import build_matmul_kernel
from repro.apps.matmul import prepare_problem as prepare_matmul
from repro.apps.matrices import random_blocked
from repro.apps.spmv import build_kernel_for
from repro.apps.spmv import prepare_problem as prepare_spmv
from repro.apps.tridiag import build_cr_kernel
from repro.apps.tridiag import prepare_problem as prepare_cr
from repro.arch.occupancy import KernelResources
from repro.isa import Imm, KernelBuilder
from repro.sim import (
    FunctionalSimulator,
    GlobalMemory,
    LaunchConfig,
    SimulationEngine,
    analyze_dependence,
    partition_blocks,
)
from repro.sim.engine import (
    EngineStats,
    find_cross_block_raw,
    kernel_fingerprint,
)
from repro.sim.trace import BlockTrace


def _canonical(trace):
    return [stage.canonical() for stage in trace.stages]


def _uniform_kernel(gmem, words=64):
    """A block-uniform kernel: ctaid only shifts global bases."""
    out = gmem.alloc(words, "out")
    b = KernelBuilder("uniform", params=("out",))
    addr = b.reg()
    b.imad(addr, b.ctaid_x, b.ntid, b.tid)
    b.imad(addr, addr, Imm(4), b.param("out"))
    v = b.reg()
    b.mov(v, Imm(2.0))
    b.fmul(v, v, v)
    b.stg(addr, v)
    b.exit()
    return b.build(), {"out": out}


def _tail_guarded_kernel(gmem, n):
    """Vector-scale kernel with a `gid < n` tail guard."""
    buf = gmem.alloc(n + 64, "buf")
    b = KernelBuilder("tail", params=("buf", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        v = b.reg()
        b.ldg(v, addr)
        b.fadd(v, v, Imm(1.0))
        b.stg(addr, v)
    b.exit()
    return b.build(), {"buf": buf, "n": n}


class TestDependenceAnalysis:
    def test_matmul_is_block_uniform(self):
        dep = analyze_dependence(build_matmul_kernel(128, 16))
        assert not dep.data_dependent
        assert not dep.block_in_control
        assert dep.block_in_addresses  # tile bases shift with ctaid

    def test_cr_is_block_uniform(self):
        for padded in (False, True):
            dep = analyze_dependence(build_cr_kernel(64, padded))
            assert not dep.data_dependent
            assert not dep.block_in_control

    def test_spmv_is_data_dependent(self):
        matrix = random_blocked(block_rows=40, slots=3)
        for fmt in ("ell", "bell_im", "bell_imiv"):
            problem = prepare_spmv(matrix, fmt)
            dep = analyze_dependence(build_kernel_for(problem))
            assert dep.data_dependent  # x-gather addresses come from cols

    def test_tail_guard_taints_control_not_data(self):
        gmem = GlobalMemory()
        kernel, _ = _tail_guarded_kernel(gmem, 100)
        dep = analyze_dependence(kernel)
        assert dep.block_in_control
        assert not dep.data_dependent

    def test_register_reuse_does_not_smear_data_taint(self):
        # matmul reuses B-staging registers as prologue address scratch;
        # only flow-sensitivity keeps its addresses DATA-free.
        dep = analyze_dependence(build_matmul_kernel(256, 8))
        assert not dep.data_dependent


class TestPartitioning:
    def test_uniform_kernel_is_one_class(self):
        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=8 * 32)
        launch = LaunchConfig(grid=(8, 1), block_threads=32, params=params)
        classes = partition_blocks(launch, analyze_dependence(kernel))
        assert len(classes) == 1
        assert len(classes[0].members) == 8
        # Three verifiers: the representative's neighbour, the median,
        # and the last member (monotone-cutoff soundness).
        assert classes[0].verifiers == ((1, 0), (4, 0), (7, 0))
        assert classes[0].representative not in classes[0].verifiers

    def test_tail_guard_partitions_by_boundary_role(self):
        gmem = GlobalMemory()
        kernel, params = _tail_guarded_kernel(gmem, 100)
        launch = LaunchConfig(grid=(6, 1), block_threads=32, params=params)
        classes = partition_blocks(launch, analyze_dependence(kernel))
        # first / interior / last blocks along x.
        assert sorted(len(c.members) for c in classes) == [1, 1, 4]

    def test_data_dependent_grids_never_dedup(self):
        matrix = random_blocked(block_rows=200, slots=3)
        problem = prepare_spmv(matrix, "bell_im")
        launch = problem.launch()
        classes = partition_blocks(
            launch, analyze_dependence(build_kernel_for(problem))
        )
        assert len(classes) == launch.num_blocks


class TestDifferentialEquivalence:
    """Engine output must be bit-identical to serial full-grid runs."""

    def _assert_equivalent(self, kernel, gmem_factory, launch, model,
                           workers=0):
        serial = FunctionalSimulator(kernel, gmem=gmem_factory()).run(launch)
        engine = SimulationEngine(kernel, gmem=gmem_factory(), workers=workers)
        fast = engine.run(launch)

        assert _canonical(fast) == _canonical(serial)
        assert fast.num_blocks == serial.num_blocks
        assert fast.exact and serial.exact

        resources = KernelResources(
            threads_per_block=launch.block_threads,
            registers_per_thread=kernel.num_registers,
            shared_memory_per_block=kernel.shared_memory_bytes,
        )
        predicted_serial = model.analyze(serial, launch, resources)
        predicted_fast = model.analyze(fast, launch, resources)
        assert (
            predicted_fast.predicted_seconds
            == predicted_serial.predicted_seconds
        )
        assert predicted_fast.bottleneck == predicted_serial.bottleneck
        return fast

    def test_matmul_dedup_matches_serial(self, model):
        n, tile = 128, 8
        kernel = build_matmul_kernel(n, tile)
        launch = prepare_matmul(n, tile).launch()
        fast = self._assert_equivalent(
            kernel, lambda: prepare_matmul(n, tile).gmem, launch, model
        )
        stats = fast.engine_stats
        assert stats.block_classes == 1
        # The dedup proof certifies the class and trace synthesis
        # covers the kernel: no interpreter pass at all.
        assert stats.proved_classes == 1
        assert stats.synthesized_classes == 1
        assert stats.simulated_blocks == 0
        assert stats.replicated_blocks == launch.num_blocks

    def test_tridiag_dedup_matches_serial(self, model):
        n, systems = 64, 6
        kernel = build_cr_kernel(n)
        launch = prepare_cr(n, systems).launch()
        fast = self._assert_equivalent(
            kernel, lambda: prepare_cr(n, systems).gmem, launch, model
        )
        assert fast.engine_stats.proved_classes == 1
        assert fast.engine_stats.synthesized_classes == 1
        assert fast.engine_stats.simulated_blocks == 0

    @pytest.mark.parametrize("fmt", ("ell", "bell_im", "bell_imiv"))
    def test_spmv_parallel_matches_serial(self, model, fmt):
        matrix = random_blocked(block_rows=200, slots=3)
        problem = prepare_spmv(matrix, fmt)
        kernel = build_kernel_for(problem)
        launch = problem.launch()
        fast = self._assert_equivalent(
            kernel,
            lambda: prepare_spmv(matrix, fmt).gmem,
            launch,
            model,
            workers=2,
        )
        # Data-dependent: every block must really be simulated.
        assert fast.engine_stats.simulated_blocks == launch.num_blocks

    def test_sample_path_matches_simulator_run(self):
        n, tile = 128, 8
        kernel = build_matmul_kernel(n, tile)
        launch = prepare_matmul(n, tile).launch()
        sample = [(0, 0)]
        serial = FunctionalSimulator(
            kernel, gmem=prepare_matmul(n, tile).gmem
        ).run(launch, blocks=sample)
        engine = SimulationEngine(kernel, gmem=prepare_matmul(n, tile).gmem)
        fast = engine.run(launch, blocks=sample)
        assert _canonical(fast) == _canonical(serial)
        assert not fast.exact
        assert fast.engine_stats.mode == "sample"

    def test_empty_block_sample_raises_like_simulator(self):
        from repro.errors import LaunchError

        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=2 * 32)
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params=params)
        with pytest.raises(LaunchError):
            SimulationEngine(kernel, gmem=gmem).run(launch, blocks=[])


class TestProbeVerification:
    def test_misclassified_grid_falls_back_to_full_simulation(self):
        # Force a wrong single-class claim: a tail-guarded kernel whose
        # dependence is overridden to look block-uniform.  The verifier
        # probe must catch the mismatch and demote the class.
        gmem = GlobalMemory()
        kernel, params = _tail_guarded_kernel(gmem, 100)
        launch = LaunchConfig(grid=(6, 1), block_threads=32, params=params)
        serial = FunctionalSimulator(kernel, gmem=gmem).run(launch)

        gmem2 = GlobalMemory()
        kernel2, _ = _tail_guarded_kernel(gmem2, 100)
        engine = SimulationEngine(kernel2, gmem=gmem2)
        # deliberately wrong claim: pretend the grid is block-uniform
        engine.dependence = analyze_dependence(build_matmul_kernel(128, 8))
        fast = engine.run(launch)

        assert fast.engine_stats.probe_fallbacks == 1
        assert fast.engine_stats.simulated_blocks == launch.num_blocks
        assert _canonical(fast) == _canonical(serial)

    def test_mid_class_tail_cutoff_is_caught_by_last_probe(self):
        # Guard cutoff strictly inside the interior role class: blocks
        # 1-12 fully active, 13 partial, 14 inactive, and the first /
        # median probes all land on fully active members.  Only the
        # last-member probe separates the class; without it the engine
        # silently replicated an over-counting representative.
        gmem = GlobalMemory()
        kernel, params = _tail_guarded_kernel(gmem, 432)
        launch = LaunchConfig(grid=(16, 1), block_threads=32, params=params)
        serial = FunctionalSimulator(kernel, gmem=gmem).run(launch)

        gmem2 = GlobalMemory()
        kernel2, _ = _tail_guarded_kernel(gmem2, 432)
        fast = SimulationEngine(kernel2, gmem=gmem2).run(launch)
        assert fast.engine_stats.probe_fallbacks >= 1
        assert _canonical(fast) == _canonical(serial)

    def test_parity_pattern_is_caught_by_neighbour_verifier(self):
        # A kernel whose work depends on ctaid_x parity: the median
        # verifier of the interior class shares the representative's
        # parity, so only the neighbour probe can expose the mismatch.
        def build(gmem):
            out = gmem.alloc(32, "out")
            b = KernelBuilder("parity", params=("out",))
            even = b.reg()
            b.iand(even, b.ctaid_x, Imm(1))
            p = b.pred()
            b.isetp(p, "eq", even, Imm(0))
            v = b.reg()
            b.mov(v, Imm(1.0))
            with b.if_then(p):  # extra work on even blocks only
                b.fadd(v, v, v)
                b.fadd(v, v, v)
            addr = b.reg()
            b.imad(addr, b.tid, Imm(4), b.param("out"))
            b.stg(addr, v)
            b.exit()
            return b.build(), {"out": out}

        gmem = GlobalMemory()
        kernel, params = build(gmem)
        launch = LaunchConfig(grid=(10, 1), block_threads=32, params=params)
        serial = FunctionalSimulator(kernel, gmem=gmem).run(launch)

        gmem2 = GlobalMemory()
        kernel2, _ = build(gmem2)
        engine = SimulationEngine(kernel2, gmem=gmem2)
        fast = engine.run(launch)
        assert fast.engine_stats.probe_fallbacks >= 1
        assert _canonical(fast) == _canonical(serial)


def _range_trace(block, loads=(), stores=()):
    return BlockTrace(
        block=block,
        stages=[],
        warp_streams=[],
        global_load_ranges=tuple(loads),
        global_store_ranges=tuple(stores),
    )


class TestCrossBlockRawCheck:
    def test_find_overlapping_ranges(self):
        traces = [
            _range_trace((0, 0), loads=[(128, 256)], stores=[(0, 128)]),
            _range_trace((1, 0), loads=[(256, 384)], stores=[(128, 256)]),
        ]
        conflicts = find_cross_block_raw(traces)
        assert conflicts == [((0, 0), (128, 256), (1, 0), (128, 256))]

    def test_same_block_overlap_is_not_a_conflict(self):
        traces = [_range_trace((0, 0), loads=[(0, 64)], stores=[(0, 64)])]
        assert find_cross_block_raw(traces) == []

    def test_disjoint_ranges_are_clean(self):
        traces = [
            _range_trace(
                (b, 0),
                loads=[(1000, 2000)],
                stores=[(b * 64, b * 64 + 64)],
            )
            for b in range(8)
        ]
        assert find_cross_block_raw(traces) == []

    def test_multiple_hulls_per_block(self):
        # Per-allocation hulls: a store-only region between two
        # load-only regions must not read as overlapped.
        clean = [
            _range_trace(
                (b, 0),
                loads=[(0, 128), (512, 640)],
                stores=[(256 + b * 32, 256 + b * 32 + 32)],
            )
            for b in range(4)
        ]
        assert find_cross_block_raw(clean) == []
        dirty = clean + [
            _range_trace((9, 0), loads=[(256, 288)])  # reads block 0's out
        ]
        conflicts = find_cross_block_raw(dirty)
        assert conflicts == [((9, 0), (256, 288), (0, 0), (256, 288))]

    def _raw_kernel(self, blocks, threads=32):
        """Each block gathers through indices pointing into the data the
        *next* block overwrites: a genuine cross-block global RAW whose
        statistics depend on the schedule."""
        total = blocks * threads
        gmem = GlobalMemory()
        pointers = (np.arange(total, dtype=np.float64) + threads) % total
        base_idx = gmem.alloc_array(pointers, "idx")
        base_data = gmem.alloc_array(np.zeros(total), "data")
        b = KernelBuilder("raw", params=("idx", "data"))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        a = b.reg()
        b.imad(a, gid, Imm(4), b.param("idx"))
        v = b.reg()
        b.ldg(v, a)
        addr = b.reg()
        b.imad(addr, v, Imm(4), b.param("data"))
        w = b.reg()
        b.ldg(w, addr)  # data-dependent gather into other blocks' output
        out = b.reg()
        b.imad(out, gid, Imm(4), b.param("data"))
        b.stg(out, w)
        b.exit()
        launch = LaunchConfig(
            grid=(blocks, 1),
            block_threads=threads,
            params={"idx": base_idx, "data": base_data},
        )
        return b.build(), gmem, launch

    def test_engine_warns_on_cross_block_raw(self):
        kernel, gmem, launch = self._raw_kernel(blocks=4)
        engine = SimulationEngine(kernel, gmem=gmem)
        assert engine.dependence.data_dependent
        with pytest.warns(RuntimeWarning, match="read-after-write"):
            engine.run(launch)

    def test_warning_names_the_overlapping_array(self):
        kernel, gmem, launch = self._raw_kernel(blocks=4)
        with pytest.warns(RuntimeWarning, match="'data'"):
            SimulationEngine(kernel, gmem=gmem).run(launch)

    def test_warm_cache_hits_still_warn(self, tmp_path):
        # Cached traces carry their footprints, so the diagnostic must
        # not vanish on the second (memoized) run.
        kernel, gmem, launch = self._raw_kernel(blocks=4)
        engine = SimulationEngine(kernel, gmem=gmem, cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="read-after-write"):
            engine.run(launch)
        with pytest.warns(RuntimeWarning, match="read-after-write"):
            warm = engine.run(launch)
        assert warm.engine_stats.cache_hit

    def test_store_only_output_between_inputs_is_clean(self):
        # Regression: with one hull per block the store-only 'out'
        # allocation sat inside the [idx, data] load hull and every
        # block spuriously conflicted; per-allocation hulls keep fully
        # disjoint load/store sets silent.
        blocks, threads = 4, 32
        total = blocks * threads
        gmem = GlobalMemory()
        base_idx = gmem.alloc_array(
            np.arange(total, dtype=np.float64), "idx"
        )
        base_out = gmem.alloc(total, "out")
        base_data = gmem.alloc_array(np.zeros(total), "data")
        b = KernelBuilder("gather", params=("idx", "out", "data"))
        gid = b.reg()
        b.imad(gid, b.ctaid_x, b.ntid, b.tid)
        a = b.reg()
        b.imad(a, gid, Imm(4), b.param("idx"))
        v = b.reg()
        b.ldg(v, a)
        addr = b.reg()
        b.imad(addr, v, Imm(4), b.param("data"))
        w = b.reg()
        b.ldg(w, addr)  # data-dependent: the check runs
        out = b.reg()
        b.imad(out, gid, Imm(4), b.param("out"))
        b.stg(out, w)
        b.exit()
        launch = LaunchConfig(
            grid=(blocks, 1),
            block_threads=threads,
            params={"idx": base_idx, "out": base_out, "data": base_data},
        )
        engine = SimulationEngine(b.build(), gmem=gmem)
        assert engine.dependence.data_dependent
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            engine.run(launch)

    def test_spmv_disjoint_outputs_stay_silent(self):
        # SpMV gathers x through cols but only ever stores y: loads and
        # stores never overlap across blocks, so no warning fires.
        matrix = random_blocked(block_rows=100, slots=3)
        problem = prepare_spmv(matrix, "ell")
        kernel = build_kernel_for(problem)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            SimulationEngine(kernel, gmem=problem.gmem).run(problem.launch())

    def test_block_uniform_kernels_are_not_checked(self):
        # Block-uniform kernels replicate one representative; their
        # statistics are schedule-independent by construction even when
        # footprints of replicated members would overlap on paper.
        gmem = GlobalMemory()
        kernel, params = _tail_guarded_kernel(gmem, 100)
        launch = LaunchConfig(grid=(6, 1), block_threads=32, params=params)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            SimulationEngine(kernel, gmem=gmem).run(launch)


class TestTraceCache:
    def _run(self, tmp_path, gmem_value=2.0):
        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=4 * 32)
        base = params["out"]
        gmem.write(
            np.array([base]), np.array([gmem_value])
        )  # perturbable input
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params=params)
        engine = SimulationEngine(kernel, gmem=gmem, cache_dir=tmp_path)
        return engine.run(launch)

    def test_second_run_hits_the_cache(self, tmp_path):
        first = self._run(tmp_path)
        assert not first.engine_stats.cache_hit
        second = self._run(tmp_path)
        assert second.engine_stats.cache_hit
        assert _canonical(second) == _canonical(first)

    def test_data_change_invalidates(self, tmp_path):
        self._run(tmp_path, gmem_value=2.0)
        other = self._run(tmp_path, gmem_value=3.0)
        assert not other.engine_stats.cache_hit

    @pytest.mark.parametrize(
        "junk",
        [
            b"not a pickle",
            b"garbage\n",
            b"",
            pickle.dumps(["valid pickle", "but not a dict"]),
        ],
        ids=["opcode-error", "valueerror-payload", "empty", "non-dict-root"],
    )
    def test_corrupt_cache_files_are_ignored(self, tmp_path, junk):
        self._run(tmp_path)
        for path in tmp_path.iterdir():
            path.write_bytes(junk)
        rerun = self._run(tmp_path)
        assert not rerun.engine_stats.cache_hit


class TestFingerprints:
    def test_kernel_fingerprint_is_content_sensitive(self):
        a = build_matmul_kernel(128, 8)
        b = build_matmul_kernel(128, 16)
        assert kernel_fingerprint(a) == kernel_fingerprint(
            build_matmul_kernel(128, 8)
        )
        assert kernel_fingerprint(a) != kernel_fingerprint(b)

    def test_cache_key_separates_parallel_visibility(self):
        # Pooled workers see pickled gmem copies (cross-block writes
        # invisible), so serial and parallel runs must never share a
        # cache entry.
        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=2 * 32)
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params=params)
        serial = SimulationEngine(kernel, gmem=gmem, cache_dir="unused")
        pooled = SimulationEngine(
            kernel, gmem=gmem, cache_dir="unused", workers=4
        )
        wider = SimulationEngine(
            kernel, gmem=gmem, cache_dir="unused", workers=8
        )
        keys = {
            e._cache_key(launch, None, True) for e in (serial, pooled, wider)
        }
        assert len(keys) == 3  # every pool width gets its own entry
        # workers=0 and workers=1 both simulate in-process: same key.
        one = SimulationEngine(
            kernel, gmem=gmem, cache_dir="unused", workers=1
        )
        assert one._cache_key(launch, None, True) == serial._cache_key(
            launch, None, True
        )

    def test_cache_key_ignores_spec_dict_order(self):
        import dataclasses

        from repro.arch.specs import GTX285

        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=2 * 32)
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params=params)
        reordered = dataclasses.replace(
            GTX285,
            functional_units=dict(
                sorted(GTX285.functional_units.items(), reverse=True)
            ),
        )
        a = SimulationEngine(kernel, gmem=gmem, cache_dir="unused")
        b = SimulationEngine(
            kernel, gmem=gmem, cache_dir="unused", spec=reordered
        )
        assert a._cache_key(launch, None, True) == b._cache_key(
            launch, None, True
        )

    def test_cache_key_includes_instruction_limit(self):
        # A warm cache must not bypass the runaway-instruction guard.
        gmem = GlobalMemory()
        kernel, params = _uniform_kernel(gmem, words=2 * 32)
        launch = LaunchConfig(grid=(4, 1), block_threads=32, params=params)
        default = SimulationEngine(kernel, gmem=gmem, cache_dir="unused")
        bounded = SimulationEngine(
            kernel, gmem=gmem, cache_dir="unused", max_warp_instructions=10
        )
        assert default._cache_key(launch, None, True) != bounded._cache_key(
            launch, None, True
        )

    def test_gmem_digest_tracks_contents(self):
        gmem = GlobalMemory()
        base = gmem.alloc_array(np.arange(8.0), "a")
        before = gmem.digest()
        assert before == gmem.digest()
        gmem.write(np.array([base]), np.array([99.0]))
        assert gmem.digest() != before


class TestEngineStatsReporting:
    def test_stats_render_in_reports(self, model):
        from repro.apps.matmul import run_matmul

        run = run_matmul(128, 8, model=model, measure=False)
        assert isinstance(run.report.engine_stats, EngineStats)
        assert "engine" in run.report.render()
        assert "blocks simulated" in run.report.render()
