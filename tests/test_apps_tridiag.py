"""Tridiagonal solver: numerics, conflict patterns, stage structure."""

import numpy as np
import pytest

from repro.apps.tridiag import (
    build_cr_kernel,
    forward_stage_count,
    prepare_problem,
    run_cr,
    thomas_solve,
    validate_cr,
)
from repro.arch import GTX285, KernelResources, compute_occupancy
from repro.errors import LaunchError


class TestThomasReference:
    def test_against_numpy_solve(self):
        rng = np.random.default_rng(3)
        n = 32
        sub = rng.uniform(-1, 1, n)
        sup = rng.uniform(-1, 1, n)
        sub[0] = sup[-1] = 0
        main = 4 + rng.uniform(0, 1, n)
        rhs = rng.uniform(-1, 1, n)
        full = np.diag(main) + np.diag(sub[1:], -1) + np.diag(sup[:-1], 1)
        expected = np.linalg.solve(full, rhs)
        got = thomas_solve(sub, main, sup, rhs)
        assert np.allclose(got, expected, atol=1e-10)


class TestNumerics:
    @pytest.mark.parametrize("n", [8, 64, 256])
    @pytest.mark.parametrize("padded", [False, True])
    def test_cr_solves_systems(self, n, padded):
        assert validate_cr(n, num_systems=3, padded=padded) < 1e-4

    def test_padded_matches_unpadded(self):
        a = validate_cr(128, 2, padded=False, seed=17)
        b = validate_cr(128, 2, padded=True, seed=17)
        assert a == pytest.approx(b, abs=1e-7)

    def test_power_of_two_required(self):
        with pytest.raises(LaunchError):
            build_cr_kernel(100)


class TestResources:
    def test_one_block_per_sm_via_shared_memory(self):
        # "Due to the limited amount of shared memory, we can only fit
        # one block per multiprocessor" (paper Section 5.2).
        kernel = build_cr_kernel(512)
        occ = compute_occupancy(
            GTX285,
            KernelResources(256, kernel.num_registers, kernel.shared_memory_bytes),
        )
        assert occ.blocks_per_sm == 1

    def test_block_is_eight_warps(self):
        problem = prepare_problem(512, 4)
        assert problem.launch().block_threads == 256

    def test_padded_footprint_larger(self):
        assert (
            build_cr_kernel(512, padded=True).shared_memory_bytes
            > build_cr_kernel(512, padded=False).shared_memory_bytes
        )


class TestDynamicBehaviour:
    @pytest.fixture(scope="class")
    def cr_run(self):
        return run_cr(512, 8, padded=False, measure=False)

    @pytest.fixture(scope="class")
    def nbc_run(self):
        return run_cr(512, 8, padded=True, measure=False)

    def test_stage_count(self, cr_run):
        # load + 9 forward + solve + 9 backward + store-merged tail
        assert cr_run.trace.num_stages == 21

    def test_forward_active_warps_halve(self, cr_run):
        warps = [s.active_warps for s in cr_run.trace.stages[:10]]
        assert warps == [8, 8, 4, 2, 1, 1, 1, 1, 1, 1]

    def test_conflict_degrees_double_per_step(self, cr_run):
        # Fig. 7b: transactions constant while conflicts double, until
        # the 16-bank ceiling; conflict-free counts halve each step.
        stages = cr_run.trace.stages
        factors = [
            stages[k].shared_transactions / stages[k].shared_transactions_ideal
            for k in (1, 2, 3)
        ]
        assert factors == [2.0, 4.0, 8.0]

    def test_transactions_constant_with_conflicts(self, cr_run):
        stages = cr_run.trace.stages
        values = [stages[k].shared_transactions for k in (1, 2, 3)]
        assert max(values) == min(values)

    def test_ideal_transactions_halve(self, cr_run):
        stages = cr_run.trace.stages
        values = [stages[k].shared_transactions_ideal for k in (1, 2, 3, 4)]
        for a, b in zip(values, values[1:]):
            assert b == a // 2

    def test_padding_removes_most_conflicts(self, cr_run, nbc_run):
        assert cr_run.trace.totals.bank_conflict_factor > 3.0
        assert nbc_run.trace.totals.bank_conflict_factor < 1.4

    def test_padding_adds_modest_instruction_overhead(self, cr_run, nbc_run):
        # "CR-NBC has a similar instruction count to CR."
        ratio = (
            nbc_run.trace.totals.total_instructions
            / cr_run.trace.totals.total_instructions
        )
        assert 1.0 < ratio < 1.25

    def test_global_traffic_identical(self, cr_run, nbc_run):
        assert (
            cr_run.trace.totals.global_useful_bytes
            == nbc_run.trace.totals.global_useful_bytes
        )

    def test_forward_stage_count_helper(self):
        assert forward_stage_count(512) == 10
