"""Timing parameters of the hardware simulator (the silicon stand-in).

These constants play the role the GTX 285's microarchitecture played in
the paper: they are *not* inputs to the performance model.  The model
only ever observes the hardware through microbenchmarks, so changing a
number here changes "measured reality" and the calibration tables
together, exactly as moving to a different GPU would.

Defaults are chosen so the simulator reproduces the paper's measured
shapes (see DESIGN.md): a type II issue interval of 4 cycles with ~24
cycles of latency saturates near 6 warps (paper: "the number of
instruction pipeline stages is around 6"); the shared-memory pipeline is
longer, needing more warps (Fig. 2 right); the global-memory path has a
~500-cycle latency and a per-cluster bandwidth slice.

One :class:`HwConfig` is shared by every registered architecture
generation (:mod:`repro.arch.registry`): specs vary the *structural*
axes (units, banks, clocks, segment sizes, occupancy ceilings) while
the pipeline-depth constants stay fixed.  That is the modelling
assumption behind cross-GPU validation
(:mod:`repro.model.crossval`) -- throughput curves keep their shape
across generations and only their ceilings move -- and it is also why
transferring calibration by peak ratios works as well as it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.specs import WARP_SIZE, GpuSpec, GTX285
from repro.errors import HardwareModelError
from repro.util import spec_fingerprint

#: Pipeline latency in cycles by instruction type index (I, II, III, IV).
#: A type II latency of 20 with a 4-cycle issue interval saturates at
#: (20 + 4) / 4 = 6 warps -- the paper's "the number of instruction
#: pipeline stages is around 6".
_DEFAULT_LATENCY = (20.0, 20.0, 24.0, 44.0)


@dataclass(frozen=True)
class HwConfig:
    """All knobs of the event-driven timing simulator."""

    #: Cycles between consecutive issues from one warp (front-end limit).
    issue_gap: float = 1.0
    #: Completion latency per instruction type (cycles after pipe).
    arith_latency: tuple[float, float, float, float] = _DEFAULT_LATENCY
    #: Maximum in-flight instructions per warp (scoreboard depth).
    #: Only memory operations pipeline within a warp; see arith_in_order.
    ilp_window: int = 12
    #: Arithmetic executes strictly in order within a warp, one at a
    #: time: "the instruction window inside a warp is very small"
    #: (paper Section 4.1).  Memory operations still overlap.
    arith_in_order: bool = True
    #: Shared-memory accesses of one warp serialize against each other
    #: (single load/store unit per warp on GT200); global loads keep
    #: pipelining through the scoreboard window.
    shared_in_order: bool = False
    #: Deterministic jitter added to arithmetic completion (cycles).
    arith_jitter: float = 4.0

    #: Cycles the shared pipeline is busy per half-warp transaction.
    shared_halfwarp_cycles: float = 2.0
    #: Extra in-order stall of the *issuing warp* per replayed (bank-
    #: conflicted or uncoalesced) transaction.  Other warps can fill the
    #: pipe during the stall, so this is what makes conflicts brutal at
    #: low occupancy (CR's late steps) yet amortized at high occupancy.
    replay_warp_stall: float = 10.0
    #: Shared-memory load-to-use latency (cycles).  Deeper than the
    #: arithmetic pipeline: shared memory "needs more parallel warps to
    #: cover its latency" (paper Fig. 2, right).
    shared_latency: float = 64.0
    shared_jitter: float = 8.0
    #: Extra latency of an arithmetic instruction whose operand comes
    #: straight from shared memory (operand-collector stage, not a full
    #: shared round trip).
    smem_operand_latency: float = 8.0

    #: Global-memory round-trip latency (cycles).
    global_latency: float = 520.0
    global_jitter: float = 40.0

    #: Texture cache (per cluster): capacity, line size, associativity.
    #: Deliberately small: our synthetic QCD matrix has stronger lattice
    #: locality than the original, so a realistic-size cache would
    #: absorb *all* vector traffic and erase the paper's Fig. 12
    #: contrast between formats (see EXPERIMENTS.md).
    texcache_bytes: int = 1024
    texcache_line: int = 32
    texcache_ways: int = 8
    texcache_hit_latency: float = 96.0

    #: Barrier release overhead and block launch overhead (cycles).
    barrier_latency: float = 12.0
    block_launch_overhead: float = 60.0

    #: Re-queue threshold: if a warp must wait longer than this for a
    #: resource, it is pushed back instead of reserving into the future.
    repush_slack: float = 4.0

    def __post_init__(self) -> None:
        if self.issue_gap <= 0:
            raise HardwareModelError("issue_gap must be positive")
        if self.ilp_window < 1:
            raise HardwareModelError("ilp_window must be at least 1")
        if len(self.arith_latency) != 4:
            raise HardwareModelError("arith_latency needs four entries")
        if self.texcache_line <= 0 or self.texcache_line & (self.texcache_line - 1):
            raise HardwareModelError("texcache_line must be a power of two")


def issue_intervals(spec: GpuSpec) -> tuple[float, float, float, float]:
    """Pipe occupancy per warp-instruction, by type (cycles).

    A warp of 32 lanes on ``u`` functional units occupies its pipe for
    ``32 / u`` cycles -- 3.2 for type I, 4 for type II, 8 for type III,
    32 for type IV on the GTX 285.
    """
    return tuple(
        WARP_SIZE / spec.units_for_type(name) for name in ("I", "II", "III", "IV")
    )


def cluster_bytes_per_cycle(spec: GpuSpec) -> float:
    """DRAM service rate of one cluster in bytes per core cycle.

    The chip-wide peak is divided over the clusters and derated by the
    DRAM efficiency (row conflicts, refresh), which is what bounds the
    *measured* peak of Fig. 3 below the theoretical 160 GB/s.
    """
    per_cluster = spec.global_bytes_per_cycle / spec.memory.num_clusters
    return per_cluster * spec.memory.dram_efficiency


def config_fingerprint(config: HwConfig) -> str:
    """Content hash of a timing configuration.

    Part of every measured-run cache key: editing a latency here changes
    "measured reality", so memoized timings must be invalidated exactly
    like re-flashing the silicon would.
    """
    return spec_fingerprint(config)


DEFAULT_HW = HwConfig()


def deterministic_jitter(key: int, amplitude: float) -> float:
    """Hash-based jitter in [0, amplitude): reproducible randomness."""
    if amplitude <= 0:
        return 0.0
    h = (key * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 2246822519) & 0xFFFFFFFF
    return (h & 0xFFFF) / 65536.0 * amplitude
