"""Whole-GPU measurement: schedule a grid of blocks and time it.

This is the reproduction's "run it on the GTX 285" entry point.  Blocks
are dispatched round-robin across the 10 clusters (then across the 3 SMs
inside a cluster), which is what produces the paper's period-10 sawtooth
in global bandwidth (Fig. 3).  For very large homogeneous grids the
steady state is extrapolated from two simulated waves -- block waves are
statistically identical, so per-wave time converges immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec, GTX285
from repro.errors import HardwareModelError
from repro.hw.cluster import BlockWork, ClusterResult, ClusterSimulator
from repro.hw.config import HwConfig
from repro.sim.trace import BlockTrace


@dataclass(frozen=True)
class MeasuredRun:
    """A hardware measurement of one kernel launch."""

    cycles: float
    seconds: float
    cluster_cycles: tuple[float, ...]
    events: int
    cache_hit_rate: float = 0.0
    extrapolated: bool = False

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class HardwareGpu:
    """The silicon stand-in: times kernel launches from warp traces."""

    def __init__(
        self, spec: GpuSpec = GTX285, config: HwConfig | None = None
    ) -> None:
        self.spec = spec
        self.config = config or HwConfig()

    # ------------------------------------------------------------------
    # microbenchmark-style measurement: identical SMs, one cluster
    # ------------------------------------------------------------------
    def measure_uniform_sm(
        self,
        sm_blocks: list[BlockWork],
        resident_per_sm: int,
        use_cache: bool = False,
    ) -> ClusterResult:
        """Time one cluster whose SMs all run the same block queue."""
        cluster = ClusterSimulator(self.spec, self.config, use_cache)
        queues = [list(sm_blocks) for _ in range(self.spec.sms_per_cluster)]
        return cluster.run(queues, resident_per_sm)

    # ------------------------------------------------------------------
    # full launches
    # ------------------------------------------------------------------
    def measure(
        self,
        traces: list[BlockTrace] | BlockTrace,
        num_blocks: int,
        resident_per_sm: int,
        use_cache: bool = False,
        wave_extrapolation: bool = True,
        sim_clusters: list[int] | None = None,
    ) -> MeasuredRun:
        """Time a launch of ``num_blocks`` blocks.

        ``traces`` supplies per-block warp streams; a single trace means
        a homogeneous grid, a list is cycled across block indices (the
        representative-sample methodology).
        """
        if num_blocks <= 0:
            raise HardwareModelError("num_blocks must be positive")
        if isinstance(traces, BlockTrace):
            traces = [traces]
        if not traces:
            raise HardwareModelError("at least one block trace is required")
        works = [t.warp_streams for t in traces]
        homogeneous = len(works) == 1

        num_clusters = self.spec.memory.num_clusters
        sms_per_cluster = self.spec.sms_per_cluster
        counts = self._block_counts(num_blocks, num_clusters, sms_per_cluster)

        if homogeneous and wave_extrapolation:
            run = self._measure_homogeneous(
                works[0], counts, resident_per_sm, use_cache
            )
            if run is not None:
                return run

        chosen = sim_clusters
        if chosen is None:
            if homogeneous or num_blocks <= 30 * num_clusters:
                chosen = list(range(num_clusters))
            else:
                # Cycled samples make clusters statistically identical;
                # the extremes of the block distribution bound the time.
                chosen = [0, num_clusters - 1]

        cluster_cycles: list[float] = []
        events = 0
        hits = misses = 0
        signature_cache: dict[tuple, ClusterResult] = {}
        for c in range(num_clusters):
            if c not in chosen:
                continue
            queues = self._cluster_queues(c, counts[c], works, num_clusters)
            if homogeneous:
                signature = tuple(len(q) for q in queues)
                result = signature_cache.get(signature)
                if result is None:
                    result = ClusterSimulator(
                        self.spec, self.config, use_cache
                    ).run(queues, resident_per_sm)
                    signature_cache[signature] = result
            else:
                result = ClusterSimulator(self.spec, self.config, use_cache).run(
                    queues, resident_per_sm
                )
            cluster_cycles.append(result.cycles)
            events += result.events
            hits += result.cache_hits
            misses += result.cache_misses

        cycles = max(cluster_cycles)
        return MeasuredRun(
            cycles=cycles,
            seconds=cycles / self.spec.core_clock_hz,
            cluster_cycles=tuple(cluster_cycles),
            events=events,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _block_counts(
        num_blocks: int, num_clusters: int, sms_per_cluster: int
    ) -> list[list[int]]:
        """counts[cluster][sm] = number of blocks assigned there.

        Block ``b`` goes to cluster ``b % num_clusters`` and, within it,
        to SM ``(b // num_clusters) % sms_per_cluster``.
        """
        counts = [[0] * sms_per_cluster for _ in range(num_clusters)]
        for cluster in range(num_clusters):
            assigned = (num_blocks - cluster + num_clusters - 1) // num_clusters
            for sm in range(sms_per_cluster):
                counts[cluster][sm] = (
                    assigned - sm + sms_per_cluster - 1
                ) // sms_per_cluster
        return counts

    @staticmethod
    def _cluster_queues(
        cluster: int,
        counts: list[int],
        works: list[BlockWork],
        num_clusters: int,
    ) -> list[list[BlockWork]]:
        """Build per-SM block queues, cycling the sample traces."""
        queues: list[list[BlockWork]] = []
        sms_per_cluster = len(counts)
        for sm, count in enumerate(counts):
            queue = []
            for k in range(count):
                block_index = cluster + num_clusters * (sm + sms_per_cluster * k)
                queue.append(works[block_index % len(works)])
            queues.append(queue)
        return queues

    def _measure_homogeneous(
        self,
        work: BlockWork,
        counts: list[list[int]],
        resident_per_sm: int,
        use_cache: bool,
    ) -> MeasuredRun | None:
        """Steady-state wave extrapolation for big homogeneous grids.

        Simulates one and two full waves; each further wave adds the
        (two-wave minus one-wave) delta.  Requires every SM to have at
        least three full waves queued, otherwise exact simulation is
        cheap enough and ``None`` is returned.
        """
        resident = resident_per_sm
        min_count = min(min(c) for c in counts)
        if min_count < 3 * resident:
            return None

        def uniform_time(blocks_per_sm: int) -> ClusterResult:
            queues = [
                [work] * blocks_per_sm
                for _ in range(self.spec.sms_per_cluster)
            ]
            return ClusterSimulator(self.spec, self.config, use_cache).run(
                queues, resident
            )

        one = uniform_time(resident)
        two = uniform_time(2 * resident)
        delta = two.cycles - one.cycles

        cluster_cycles = []
        events = one.events + two.events
        tail_cache: dict[tuple, float] = {}
        for per_sm in counts:
            full_waves = min(count // resident for count in per_sm)
            skip = max(full_waves - 2, 0)
            tail_counts = tuple(count - skip * resident for count in per_sm)
            tail_time = tail_cache.get(tail_counts)
            if tail_time is None:
                queues = [[work] * count for count in tail_counts]
                result = ClusterSimulator(self.spec, self.config, use_cache).run(
                    queues, resident
                )
                tail_time = result.cycles
                events += result.events
                tail_cache[tail_counts] = tail_time
            cluster_cycles.append(skip * delta + tail_time)

        cycles = max(cluster_cycles)
        return MeasuredRun(
            cycles=cycles,
            seconds=cycles / self.spec.core_clock_hz,
            cluster_cycles=tuple(cluster_cycles),
            events=events,
            extrapolated=True,
        )
