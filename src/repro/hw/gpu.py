"""Whole-GPU measurement: schedule a grid of blocks and time it.

This is the reproduction's "run it on the GTX 285" entry point.  Blocks
are dispatched round-robin across the 10 clusters (then across the 3 SMs
inside a cluster), which is what produces the paper's period-10 sawtooth
in global bandwidth (Fig. 3).  For very large homogeneous grids the
steady state is extrapolated from two simulated waves -- block waves are
statistically identical, so per-wave time converges immediately.

Heterogeneous grids are timed through a dedup-aware cluster layer: every
block is assigned a *class* by the content of its warp streams (the
engine's per-block trace table maps equivalent blocks to one shared
representative, so classing is nearly free), each cluster's per-SM
queues reduce to a *signature* of class-ID sequences, and only one
cluster per distinct signature is simulated -- permuted queue
assignments included (exactly-equal queues replay bit-identically;
permuted ones reuse the representative within jitter).  The
genuinely distinct cluster simulations fan out across the shared process
pool (:mod:`repro.pool`), and whole measurements are memoized on disk
(:class:`repro.hw.engine.MeasuredRunCache`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.arch.specs import GpuSpec, GTX285
from repro.errors import HardwareModelError
from repro.hw.cluster import BlockWork, ClusterResult, ClusterSimulator
from repro.hw.config import HwConfig, config_fingerprint
from repro.hw.engine import (
    HW_CACHE_VERSION,
    MeasuredRunCache,
    simulate_clusters,
)
from repro.pool import HealthRecord, PoolHealth
from repro.sim.trace import BlockTrace
from repro.tune import resolve as tune_resolve
from repro.util import spec_fingerprint


@dataclass(frozen=True)
class MeasuredRun:
    """A hardware measurement of one kernel launch.

    ``cluster_sims`` counts the cluster simulations actually executed;
    ``signature_hits`` the clusters served from a memoized signature
    (plus, for extrapolated runs, tail patterns shared across clusters).
    ``from_cache`` marks runs replayed from the on-disk measured-run
    cache without simulating anything.
    """

    cycles: float
    seconds: float
    cluster_cycles: tuple[float, ...]
    events: int
    cache_hit_rate: float = 0.0
    extrapolated: bool = False
    cluster_sims: int = 0
    signature_hits: int = 0
    from_cache: bool = False
    #: Degradation record for this measurement (pool retries/timeouts/
    #: serial fallbacks, cache quarantines); all-zero when healthy.
    health: HealthRecord = HealthRecord()

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class HardwareGpu:
    """The silicon stand-in: times kernel launches from warp traces.

    Parameters
    ----------
    spec, config:
        The modelled architecture and its timing constants.
    workers:
        Process-pool width for fanning distinct cluster simulations out
        (0/1 = in-process).  Parallel runs are bit-identical to serial.
    cache_dir:
        Directory for the on-disk :class:`MeasuredRun` memo cache;
        ``None`` disables memoization.
    min_parallel_events:
        Serial/pool crossover: measurements whose queues replay fewer
        events than this stay serial even with ``workers > 1`` (results
        are bit-identical either way; this is purely wall-clock).
        ``None`` resolves through :func:`repro.tune.resolve` --
        ``$REPRO_TUNE_MIN_PARALLEL_EVENTS``, then the machine's
        persisted tuning profile (``repro tune run``), then the
        built-in default.
    task_timeout:
        Per-task watchdog budget (seconds) for pooled cluster jobs; a
        hung worker is killed after this long and its job re-executed
        in-process.  ``None`` defers to ``$REPRO_POOL_TIMEOUT``.
    """

    def __init__(
        self,
        spec: GpuSpec = GTX285,
        config: HwConfig | None = None,
        workers: int = 0,
        cache_dir: str | None = None,
        min_parallel_events: int | None = None,
        task_timeout: float | None = None,
    ) -> None:
        self.spec = spec
        self.config = config or HwConfig()
        self.workers = max(0, int(workers))
        self.task_timeout = task_timeout
        self.min_parallel_events = tune_resolve(
            "min_parallel_events",
            kwarg=min_parallel_events,
            spec=spec,
            workers=self.workers,
        )
        self.cache = (
            MeasuredRunCache(cache_dir) if cache_dir is not None else None
        )

    # ------------------------------------------------------------------
    # microbenchmark-style measurement: identical SMs, one cluster
    # ------------------------------------------------------------------
    def measure_uniform_sm(
        self,
        sm_blocks: list[BlockWork],
        resident_per_sm: int,
        use_cache: bool = False,
    ) -> ClusterResult:
        """Time one cluster whose SMs all run the same block queue."""
        cluster = ClusterSimulator(self.spec, self.config, use_cache)
        queues = [list(sm_blocks) for _ in range(self.spec.sms_per_cluster)]
        return cluster.run(queues, resident_per_sm)

    # ------------------------------------------------------------------
    # full launches
    # ------------------------------------------------------------------
    def measure(
        self,
        traces: list[BlockTrace] | BlockTrace,
        num_blocks: int,
        resident_per_sm: int,
        use_cache: bool = False,
        wave_extrapolation: bool = True,
        sim_clusters: list[int] | None = None,
        dedup: bool = True,
    ) -> MeasuredRun:
        """Time a launch of ``num_blocks`` blocks.

        ``traces`` supplies per-block warp streams; a single trace means
        a homogeneous grid, a list is cycled across block indices -- a
        full per-block table (one entry per block, as the engine's exact
        trace tables provide) or a shorter representative sample.
        ``dedup=False`` disables signature memoization and replays every
        chosen cluster (the pre-dedup behaviour, kept for differential
        benchmarks).
        """
        from repro import obs

        if num_blocks <= 0:
            raise HardwareModelError("num_blocks must be positive")
        if isinstance(traces, BlockTrace):
            traces = [traces]
        if not traces:
            raise HardwareModelError("at least one block trace is required")
        with obs.span(
            "hw.measure",
            blocks=num_blocks,
            traces=len(traces),
            resident_per_sm=resident_per_sm,
        ):
            run = self._measure(
                traces,
                num_blocks,
                resident_per_sm,
                use_cache,
                wave_extrapolation,
                sim_clusters,
                dedup,
            )
        if obs.enabled():
            obs.metrics.inc("hw.measures")
            obs.metrics.inc("hw.blocks", num_blocks)
            obs.metrics.inc("hw.events", run.events)
            obs.metrics.inc("hw.cluster_sims", run.cluster_sims)
            obs.metrics.inc("hw.signature_hits", run.signature_hits)
            obs.metrics.absorb_health("hw", run.health)
        return run

    def _measure(
        self,
        traces: list[BlockTrace],
        num_blocks: int,
        resident_per_sm: int,
        use_cache: bool,
        wave_extrapolation: bool,
        sim_clusters: list[int] | None,
        dedup: bool,
    ) -> MeasuredRun:
        works = [t.warp_streams for t in traces]
        homogeneous = len(works) == 1

        num_clusters = self.spec.memory.num_clusters
        sms_per_cluster = self.spec.sms_per_cluster
        counts = self._block_counts(num_blocks, num_clusters, sms_per_cluster)
        class_ids, class_digests = self._class_table(traces)

        pool_health = PoolHealth()
        cache_quarantines = self.cache.quarantines if self.cache else 0
        cache_write_errors = self.cache.write_errors if self.cache else 0
        key = None
        if self.cache is not None and sim_clusters is None:
            key = self._measure_key(
                class_digests,
                class_ids,
                num_blocks,
                resident_per_sm,
                use_cache,
                wave_extrapolation,
                dedup,
            )
            cached = self.cache.load(key)
            if cached is not None:
                return cached

        run = None
        if homogeneous and wave_extrapolation:
            run = self._measure_homogeneous(
                works[0], counts, resident_per_sm, use_cache, pool_health
            )
        if run is None:
            run = self._measure_clusters(
                works,
                class_ids,
                counts,
                num_blocks,
                resident_per_sm,
                use_cache,
                sim_clusters,
                dedup,
                pool_health,
            )
        if key is not None:
            self.cache.store(key, run)
        # Attached after the store: a failed store must show, and the
        # cached copy's health is replaced on every hit anyway.
        record = pool_health.record(
            cache_quarantines=(
                (self.cache.quarantines - cache_quarantines)
                if self.cache
                else 0
            ),
            cache_write_errors=(
                (self.cache.write_errors - cache_write_errors)
                if self.cache
                else 0
            ),
        )
        if record != HealthRecord():
            run = replace(run, health=record)
        return run

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _block_counts(
        num_blocks: int, num_clusters: int, sms_per_cluster: int
    ) -> list[list[int]]:
        """counts[cluster][sm] = number of blocks assigned there.

        Block ``b`` goes to cluster ``b % num_clusters`` and, within it,
        to SM ``(b // num_clusters) % sms_per_cluster``.
        """
        counts = [[0] * sms_per_cluster for _ in range(num_clusters)]
        for cluster in range(num_clusters):
            assigned = (num_blocks - cluster + num_clusters - 1) // num_clusters
            for sm in range(sms_per_cluster):
                counts[cluster][sm] = (
                    assigned - sm + sms_per_cluster - 1
                ) // sms_per_cluster
        return counts

    @staticmethod
    def _cluster_index_queues(
        cluster: int,
        counts: list[int],
        num_traces: int,
        num_clusters: int,
    ) -> list[list[int]]:
        """Per-SM queues of trace indices, cycling the trace table."""
        queues: list[list[int]] = []
        sms_per_cluster = len(counts)
        for sm, count in enumerate(counts):
            queues.append(
                [
                    (cluster + num_clusters * (sm + sms_per_cluster * k))
                    % num_traces
                    for k in range(count)
                ]
            )
        return queues

    @staticmethod
    def _class_table(traces: list[BlockTrace]) -> tuple[list[int], list[str]]:
        """Class IDs (dense ints) and content digests for a trace table.

        Digests are memoized on each :class:`BlockTrace`
        (:meth:`~repro.sim.trace.BlockTrace.stream_digest`), so repeat
        measurements over one trace table -- e.g. resident-block sweeps
        against a large data-dependent grid -- stop re-hashing every
        stream on every ``MeasuredRunCache`` lookup.  An identity
        short-circuit additionally skips the memo's own validation for
        the engine's replicated class members (every member shares one
        trace object).  Content-equal traces from *distinct* objects
        still unify, which lets hand-built trace lists dedup too.
        """
        digest_by_id: dict[int, str] = {}
        class_of_digest: dict[str, int] = {}
        class_ids: list[int] = []
        digests: list[str] = []
        for trace in traces:
            digest = digest_by_id.get(id(trace))
            if digest is None:
                digest = trace.stream_digest()
                digest_by_id[id(trace)] = digest
            class_id = class_of_digest.get(digest)
            if class_id is None:
                class_id = len(digests)
                class_of_digest[digest] = class_id
                digests.append(digest)
            class_ids.append(class_id)
        return class_ids, digests

    def _measure_key(
        self,
        class_digests: list[str],
        class_ids: list[int],
        num_blocks: int,
        resident_per_sm: int,
        use_cache: bool,
        wave_extrapolation: bool,
        dedup: bool,
    ) -> str:
        """On-disk cache key for one measurement.

        The pool width is deliberately absent: parallel runs are
        bit-identical to serial ones, so any width may share an entry.
        """
        h = hashlib.sha256()
        h.update(f"hw-v{HW_CACHE_VERSION};".encode())
        h.update(spec_fingerprint(self.spec).encode())
        h.update(config_fingerprint(self.config).encode())
        h.update(
            f"blocks={num_blocks};resident={resident_per_sm};"
            f"cache={use_cache};wave={wave_extrapolation};"
            f"dedup={dedup};".encode()
        )
        for digest in class_digests:
            h.update(digest.encode())
        h.update(repr(tuple(class_ids)).encode())
        return h.hexdigest()

    def _effective_workers(self, jobs: list) -> int:
        """Serial below the event floor: pool startup would dominate."""
        if self.workers <= 1 or len(jobs) <= 1:
            return 0
        total_events = sum(
            len(stream)
            for queues, _ in jobs
            for queue in queues
            for work in queue
            for stream in work
        )
        return self.workers if total_events >= self.min_parallel_events else 0

    def _measure_clusters(
        self,
        works: list[BlockWork],
        class_ids: list[int],
        counts: list[list[int]],
        num_blocks: int,
        resident_per_sm: int,
        use_cache: bool,
        sim_clusters: list[int] | None,
        dedup: bool,
        health: PoolHealth | None = None,
    ) -> MeasuredRun:
        """Signature-deduplicated, optionally parallel cluster timing."""
        num_clusters = self.spec.memory.num_clusters
        uniform = len(set(class_ids)) == 1
        exact_table = len(works) == num_blocks

        chosen = sim_clusters
        if chosen is None:
            if uniform or exact_table or num_blocks <= 30 * num_clusters:
                # Exact per-block tables always time every cluster: with
                # dedup and the pool, the full sweep is affordable.
                chosen = list(range(num_clusters))
            else:
                # Cycled samples make clusters statistically identical;
                # the extremes of the block distribution bound the time.
                chosen = [0, num_clusters - 1]
        chosen = sorted(set(chosen))

        jobs: list[tuple] = []
        job_of_signature: dict[tuple, int] = {}
        job_for_cluster: dict[int, int] = {}
        for cluster in chosen:
            index_queues = self._cluster_index_queues(
                cluster, counts[cluster], len(works), num_clusters
            )
            payload = (
                [[works[i] for i in queue] for queue in index_queues],
                resident_per_sm,
            )
            if dedup:
                # Memo key: per-SM class sequences sorted descending, so
                # clusters whose queues are *permutations* of a
                # simulated one are never replayed.  The representative
                # simulates its natural arrangement: clusters whose
                # queues exactly equal the representative's then match
                # naive replay bit for bit (ClusterSimulator is a pure
                # function of its queues); genuinely permuted clusters
                # reuse the representative's result, exact in the
                # jitter-free model and bounded by the jitter amplitude
                # otherwise (completion jitter is keyed by launch-order
                # warp ids, so SMs are symmetric only up to jitter).
                signature = tuple(
                    sorted(
                        (
                            tuple(class_ids[i] for i in queue)
                            for queue in index_queues
                        ),
                        reverse=True,
                    )
                )
                job = job_of_signature.get(signature)
                if job is None:
                    job = len(jobs)
                    job_of_signature[signature] = job
                    jobs.append(payload)
            else:
                job = len(jobs)
                jobs.append(payload)
            job_for_cluster[cluster] = job

        results = simulate_clusters(
            jobs,
            self.spec,
            self.config,
            use_cache,
            self._effective_workers(jobs),
            task_timeout=self.task_timeout,
            health=health,
        )

        cluster_cycles: list[float] = []
        events = 0
        hits = misses = 0
        for cluster in chosen:
            result = results[job_for_cluster[cluster]]
            cluster_cycles.append(result.cycles)
            events += result.events
            hits += result.cache_hits
            misses += result.cache_misses

        cycles = max(cluster_cycles)
        return MeasuredRun(
            cycles=cycles,
            seconds=cycles / self.spec.core_clock_hz,
            cluster_cycles=tuple(cluster_cycles),
            events=events,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            cluster_sims=len(jobs),
            signature_hits=len(chosen) - len(jobs),
        )

    def _measure_homogeneous(
        self,
        work: BlockWork,
        counts: list[list[int]],
        resident_per_sm: int,
        use_cache: bool,
        health: PoolHealth | None = None,
    ) -> MeasuredRun | None:
        """Steady-state wave extrapolation for big homogeneous grids.

        Simulates one and two full waves; each further wave adds the
        (two-wave minus one-wave) delta.  Requires every SM to have at
        least three full waves queued, otherwise exact simulation is
        cheap enough and ``None`` is returned.  The wave and tail
        simulations are independent, so they run through the shared
        cluster pool, and their texture-cache statistics are aggregated
        per cluster exactly like the non-extrapolated path's.
        """
        resident = resident_per_sm
        min_count = min(min(c) for c in counts)
        if min_count < 3 * resident:
            return None
        sms = self.spec.sms_per_cluster

        # Per-cluster tail patterns; distinct ones become pool jobs
        # alongside the one-wave and two-wave steady-state probes.
        per_cluster: list[tuple[int, tuple[int, ...]]] = []
        job_of_tail: dict[tuple[int, ...], int] = {}
        jobs: list[tuple] = [
            ([[work] * resident for _ in range(sms)], resident),
            ([[work] * (2 * resident) for _ in range(sms)], resident),
        ]
        for per_sm in counts:
            full_waves = min(count // resident for count in per_sm)
            skip = max(full_waves - 2, 0)
            tail_counts = tuple(count - skip * resident for count in per_sm)
            per_cluster.append((skip, tail_counts))
            if tail_counts not in job_of_tail:
                job_of_tail[tail_counts] = len(jobs)
                jobs.append(
                    ([[work] * count for count in tail_counts], resident)
                )

        results = simulate_clusters(
            jobs,
            self.spec,
            self.config,
            use_cache,
            self._effective_workers(jobs),
            task_timeout=self.task_timeout,
            health=health,
        )
        one, two = results[0], results[1]
        delta = two.cycles - one.cycles

        events = one.events + two.events
        hits = one.cache_hits + two.cache_hits
        misses = one.cache_misses + two.cache_misses
        cluster_cycles = []
        for skip, tail_counts in per_cluster:
            result = results[job_of_tail[tail_counts]]
            cluster_cycles.append(skip * delta + result.cycles)
            events += result.events
            hits += result.cache_hits
            misses += result.cache_misses

        cycles = max(cluster_cycles)
        return MeasuredRun(
            cycles=cycles,
            seconds=cycles / self.spec.core_clock_hz,
            cluster_cycles=tuple(cluster_cycles),
            events=events,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            extrapolated=True,
            cluster_sims=len(jobs),
            signature_hits=len(counts) - len(job_of_tail),
        )
