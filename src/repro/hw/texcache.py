"""Texture cache model (per cluster, set-associative LRU).

The paper does not *model* the texture cache -- it only measures kernels
that bind the SpMV vector to a texture (Fig. 12).  This cache lives in
the hardware simulator for the same purpose: the "+Cache" bars.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import HardwareModelError


class TextureCache:
    """Set-associative LRU cache over aligned lines."""

    def __init__(self, capacity: int, line: int, ways: int) -> None:
        if capacity <= 0 or line <= 0 or ways <= 0:
            raise HardwareModelError("cache geometry must be positive")
        if capacity % (line * ways):
            raise HardwareModelError("capacity must divide into line*ways sets")
        self.line = line
        self.ways = ways
        self.num_sets = capacity // (line * ways)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _lines_of(self, address: int, size: int) -> range:
        first = address // self.line
        last = (address + size - 1) // self.line
        return range(first, last + 1)

    def access(self, address: int, size: int) -> tuple[int, int]:
        """Touch a segment; returns (hit_bytes, miss_bytes)."""
        hit_bytes = 0
        miss_bytes = 0
        for line_tag in self._lines_of(address, size):
            entry = self._sets[line_tag % self.num_sets]
            if line_tag in entry:
                entry.move_to_end(line_tag)
                self.hits += 1
                hit_bytes += self.line
            else:
                self.misses += 1
                miss_bytes += self.line
                entry[line_tag] = None
                if len(entry) > self.ways:
                    entry.popitem(last=False)
        return hit_bytes, miss_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        for entry in self._sets:
            entry.clear()
        self.hits = 0
        self.misses = 0
