"""Parallel, memoizing backend of the hardware timing layer.

:class:`repro.hw.gpu.HardwareGpu` used to replay heterogeneous grids
cluster by cluster, serially, in-process -- the last serial stage of the
pipeline.  This module supplies the two mechanisms that removed it:

* :func:`simulate_clusters` fans independent cluster simulations across
  the same process pool the functional-simulation engine uses
  (:mod:`repro.pool`), preserving job order so the parallel reduction is
  bit-identical to a serial loop;
* :class:`MeasuredRunCache` memoizes whole :class:`~repro.hw.gpu
  .MeasuredRun` results on disk, keyed by the hardware version, the
  launch's class-signature table, the architecture spec, the timing
  configuration and the resident-block count -- so benchmark harnesses
  replay Fig. 3/4/11/12-scale measurements instantly.

Worker processes receive ``(spec, config, use_cache)`` once through the
pool initializer and per-task ``(sm_queues, resident)`` jobs; cluster
results are tiny, so the transfer cost is dominated by the queues'
event streams (pickled once per job thanks to pickle memoization of the
shared ``BlockWork`` objects).
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.arch.specs import GpuSpec
from repro.hw.cluster import BlockWork, ClusterResult, simulate_cluster
from repro.hw.config import HwConfig
from repro.pool import PoolHealth, map_tasks
from repro.sim.trace import stream_digest
from repro.util import VersionedPickleCache

__all__ = [
    "HW_CACHE_VERSION",
    "MeasuredRunCache",
    "simulate_clusters",
    "stream_digest",
]

#: Bump when timing semantics or MeasuredRun's schema change: a stale
#: memoized measurement must never masquerade as current silicon.
#: v2: MeasuredRun carries a ``health`` degradation record.
HW_CACHE_VERSION = 2

#: One timing job: per-SM block queues plus the residency limit.
ClusterJob = tuple  # (sm_queues, resident_per_sm)

_WORKER_STATE: tuple[GpuSpec, HwConfig | None, bool] | None = None


def _init_worker(spec, config, use_cache) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (spec, config, use_cache)


def _run_cluster_task(job: ClusterJob) -> ClusterResult:
    spec, config, use_cache = _WORKER_STATE
    queues, resident = job
    return simulate_cluster(spec, config, use_cache, queues, resident)


def simulate_clusters(
    jobs: list[ClusterJob],
    spec: GpuSpec,
    config: HwConfig | None,
    use_cache: bool,
    workers: int = 0,
    task_timeout: float | None = None,
    health: PoolHealth | None = None,
) -> list[ClusterResult]:
    """Simulate cluster jobs, preserving order; parallel when configured.

    Every job is an independent pure function of its arguments, so the
    pooled results are bit-identical to a serial loop and the caller can
    aggregate them deterministically in job order.  Worker deaths and
    hung tasks (``task_timeout``) degrade to in-process re-execution of
    the affected jobs -- still bit-identical -- with the counters
    recorded in ``health`` (see :mod:`repro.pool`).
    """
    from repro import obs

    with obs.span(
        "hw.simulate_clusters", jobs=len(jobs), workers=workers
    ):
        return map_tasks(
            jobs,
            workers,
            serial_fn=lambda job: simulate_cluster(
                spec, config, use_cache, job[0], job[1]
            ),
            worker_fn=_run_cluster_task,
            initializer=_init_worker,
            initargs=(spec, config, use_cache),
            task_timeout=task_timeout,
            health=health,
        )


# stream_digest now lives in repro.sim.trace (next to BlockTrace, which
# memoizes it per trace); it is re-exported here because the timing
# layer's callers and cache keys treat it as this module's API.


class MeasuredRunCache(VersionedPickleCache):
    """Pickled MeasuredRun results keyed by content hashes.

    The timing sibling of the engine's ``TraceCache``; the shared
    fail-open/LRU/atomic-store protocol lives in
    :class:`repro.util.VersionedPickleCache`.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        super().__init__(directory, HW_CACHE_VERSION, ".run.pkl")

    def load(self, key: str):
        from repro.hw.gpu import MeasuredRun
        from repro.pool import HealthRecord

        run = self.load_payload(key)
        if not isinstance(run, MeasuredRun):
            return None
        # Health describes the current run, not the one that populated
        # the cache: a hit simulated nothing, so nothing degraded.
        return replace(run, from_cache=True, health=HealthRecord())

    def store(self, key: str, run) -> None:
        self.store_payload(key, run)
