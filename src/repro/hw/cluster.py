"""Event-driven timing simulation of one memory cluster (3 SMs).

On the GTX 285, 30 SMs are grouped into 10 clusters whose 3 SMs share a
single memory pipeline -- the cause of the sawtooth with period 10 in
the paper's Fig. 3.  This module simulates one cluster: per-SM issue
ports, per-type arithmetic pipes and the banked shared-memory pipe, plus
the cluster-wide DRAM service timeline and optional texture cache.

Warps replay the event streams recorded by the functional simulator.
Each event issues in order, no earlier than: its register dependence's
completion, the scoreboard window, the SM issue port, and its pipe.
Completion happens a latency after pipe occupancy, with deterministic
hash jitter (which is what smooths the throughput curves near their
saturation knee, as on real silicon).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.specs import GpuSpec, GTX285
from repro.errors import HardwareModelError
from repro.hw.config import (
    HwConfig,
    cluster_bytes_per_cycle,
    deterministic_jitter,
    issue_intervals,
)
from repro.hw.texcache import TextureCache
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
)

#: A block of work: one event stream per warp.
BlockWork = list  # list[list[Event]]


def simulate_cluster(
    spec: GpuSpec,
    config: HwConfig | None,
    use_cache: bool,
    sm_queues: list[list[BlockWork]],
    resident_per_sm: int,
) -> "ClusterResult":
    """One-shot cluster simulation: a pure, picklable entry point.

    The timing layer's process-pool workers (:mod:`repro.hw.engine`)
    need a module-level function; keeping it here, next to
    :class:`ClusterSimulator`, pins the invariant that a cluster's
    result is a deterministic function of exactly these arguments --
    which is what makes signature memoization and the parallel fan-out
    bit-identical to serial replay.
    """
    return ClusterSimulator(spec, config, use_cache).run(
        sm_queues, resident_per_sm
    )


class _Warp:
    __slots__ = (
        "stream",
        "idx",
        "completions",
        "maxcomp",
        "block",
        "sm",
        "gwid",
        "waiting",
        "last_arith",
        "last_shared",
    )

    def __init__(self, stream, block, sm: int, gwid: int) -> None:
        self.stream = stream
        self.idx = 0
        self.completions: list[float] = []
        self.maxcomp = 0.0
        self.block = block
        self.sm = sm
        self.gwid = gwid
        self.waiting = False
        self.last_arith = 0.0
        self.last_shared = 0.0


class _Block:
    __slots__ = ("warps", "alive", "arrivals", "sm", "done_time")

    def __init__(self, sm: int) -> None:
        self.warps: list[_Warp] = []
        self.alive = 0
        self.arrivals: list[float] = []
        self.sm = sm
        self.done_time = 0.0


class _Sm:
    __slots__ = ("issue_free", "pipe_free", "shared_free", "queue", "resident")

    def __init__(self) -> None:
        self.issue_free = 0.0
        self.pipe_free = [0.0, 0.0, 0.0, 0.0]
        self.shared_free = 0.0
        self.queue: list[BlockWork] = []
        self.resident = 0


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    cycles: float
    events: int
    cache_hits: int = 0
    cache_misses: int = 0
    dram_busy_cycles: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class ClusterSimulator:
    """Simulate the SMs of one cluster executing queued blocks."""

    def __init__(
        self,
        spec: GpuSpec = GTX285,
        config: HwConfig | None = None,
        use_cache: bool = False,
    ) -> None:
        self.spec = spec
        self.config = config or HwConfig()
        self.use_cache = use_cache
        self.intervals = issue_intervals(spec)
        self.dram_rate = cluster_bytes_per_cycle(spec)
        self.num_sms = spec.sms_per_cluster

    def run(
        self,
        sm_queues: list[list[BlockWork]],
        resident_per_sm: int,
    ) -> ClusterResult:
        """Execute block queues on each SM; returns total cycles.

        ``sm_queues[i]`` is the ordered list of blocks SM ``i`` must run;
        at most ``resident_per_sm`` are resident concurrently.
        """
        if len(sm_queues) > self.num_sms:
            raise HardwareModelError(
                f"cluster has {self.num_sms} SMs, got {len(sm_queues)} queues"
            )
        if resident_per_sm < 1:
            raise HardwareModelError("resident_per_sm must be at least 1")

        cfg = self.config
        sms = [_Sm() for _ in range(self.num_sms)]
        cache = (
            TextureCache(cfg.texcache_bytes, cfg.texcache_line, cfg.texcache_ways)
            if self.use_cache
            else None
        )
        heap: list[tuple[float, int, _Warp]] = []
        seq = 0
        gwid = 0
        dram_free = 0.0
        dram_busy = 0.0
        events_processed = 0

        def launch_block(sm_index: int, work: BlockWork, at: float) -> None:
            nonlocal seq, gwid
            block = _Block(sm_index)
            start = at + cfg.block_launch_overhead
            for stream in work:
                warp = _Warp(stream, block, sm_index, gwid)
                gwid += 1
                block.warps.append(warp)
                if stream:
                    block.alive += 1
                    heapq.heappush(heap, (start, seq, warp))
                    seq += 1
            sms[sm_index].resident += 1
            if block.alive == 0:
                finish_block(block, start)

        def finish_block(block: _Block, at: float) -> None:
            nonlocal seq
            block.done_time = at
            sm = sms[block.sm]
            sm.resident -= 1
            if sm.queue:
                launch_block(block.sm, sm.queue.pop(0), at)

        def warp_finished(warp: _Warp) -> None:
            block = warp.block
            block.alive -= 1
            if block.alive == 0 and not block.arrivals:
                done = max(w.maxcomp for w in block.warps)
                finish_block(block, done)
            elif block.arrivals and block.alive == len(block.arrivals):
                _release_barrier(block)

        def _release_barrier(block: _Block) -> None:
            nonlocal seq
            release = max(block.arrivals) + cfg.barrier_latency
            block.arrivals = []
            for warp in block.warps:
                if warp.waiting:
                    warp.waiting = False
                    warp.completions.append(release)
                    if release > warp.maxcomp:
                        warp.maxcomp = release
                    warp.idx += 1
                    if warp.idx < len(warp.stream):
                        heapq.heappush(heap, (release, seq, warp))
                        seq += 1
                    else:
                        warp_finished(warp)

        for sm_index, queue in enumerate(sm_queues):
            sm = sms[sm_index]
            sm.queue = list(queue)
            while sm.queue and sm.resident < resident_per_sm:
                launch_block(sm_index, sm.queue.pop(0), 0.0)

        window = cfg.ilp_window
        slack = cfg.repush_slack
        intervals = self.intervals
        latencies = cfg.arith_latency
        halfwarp_cycles = cfg.shared_halfwarp_cycles
        arith_in_order = cfg.arith_in_order
        shared_in_order = cfg.shared_in_order
        end_time = 0.0

        while heap:
            t, _, warp = heapq.heappop(heap)
            idx = warp.idx
            stream = warp.stream
            event = stream[idx]
            kind = event[0]
            dep = event[1]

            ready = t
            completions = warp.completions
            if dep > 0 and dep <= idx:
                dep_time = completions[idx - dep]
                if dep_time > ready:
                    ready = dep_time
            if idx >= window:
                window_time = completions[idx - window]
                if window_time > ready:
                    ready = window_time
            if (
                arith_in_order
                and (kind == EV_ARITH or kind == EV_ARITH_SHARED)
                and warp.last_arith > ready
            ):
                ready = warp.last_arith
            if (
                shared_in_order
                and (kind == EV_SHARED or kind == EV_ARITH_SHARED)
                and warp.last_shared > ready
            ):
                ready = warp.last_shared
            if ready > t + 1e-9:
                heapq.heappush(heap, (ready, seq, warp))
                seq += 1
                continue

            if kind == EV_BAR:
                block = warp.block
                arrival = max(t, warp.maxcomp)
                warp.waiting = True
                block.arrivals.append(arrival)
                if len(block.arrivals) == block.alive:
                    _release_barrier(block)
                continue

            sm = sms[warp.sm]
            issue = t if t > sm.issue_free else sm.issue_free
            if kind == EV_ARITH or kind == EV_ARITH_SHARED:
                pipe_free = sm.pipe_free[event[2]]
                if kind == EV_ARITH_SHARED and event[3]:
                    # The operand collector cannot accept the shared
                    # operand while the shared pipe is backlogged.
                    if sm.shared_free > pipe_free:
                        pipe_free = sm.shared_free
            else:
                # Memory instructions generate addresses on the SPs, so
                # they occupy the type II pipe like any other instruction.
                pipe_free = sm.pipe_free[1]
            if pipe_free > issue:
                issue = pipe_free
            if issue > t + slack:
                heapq.heappush(heap, (issue, seq, warp))
                seq += 1
                continue

            events_processed += 1
            sm.issue_free = issue + cfg.issue_gap
            jkey = (warp.gwid << 20) ^ idx
            next_gap = cfg.issue_gap

            if kind == EV_ARITH:
                type_index = event[2]
                interval = intervals[type_index]
                sm.pipe_free[type_index] = issue + interval
                comp = (
                    issue
                    + interval
                    + latencies[type_index]
                    + deterministic_jitter(jkey, cfg.arith_jitter)
                )
            elif kind == EV_ARITH_SHARED:
                type_index = event[2]
                ntrans = event[3]
                interval = intervals[type_index]
                sm.pipe_free[type_index] = issue + interval
                comp = (
                    issue
                    + interval
                    + latencies[type_index]
                    + deterministic_jitter(jkey, cfg.arith_jitter)
                )
                if ntrans:
                    # issue already waited for shared_free (see above),
                    # so the shared pipe starts serving at issue time.
                    sm.shared_free = issue + halfwarp_cycles * ntrans
                    comp += cfg.smem_operand_latency
                    # Conflicted accesses replay: the issuing warp stalls
                    # in order until the serialization drains.
                    extra = ntrans - min(ntrans, 2)
                    if extra:
                        stall = cfg.replay_warp_stall * extra
                        if stall > next_gap:
                            next_gap = stall
            elif kind == EV_SHARED:
                ntrans = event[2]
                sm.pipe_free[1] = issue + intervals[1]
                if ntrans:
                    start = issue if issue > sm.shared_free else sm.shared_free
                    sm.shared_free = start + halfwarp_cycles * ntrans
                    comp = (
                        sm.shared_free
                        + cfg.shared_latency
                        + deterministic_jitter(jkey, cfg.shared_jitter)
                    )
                    extra = ntrans - min(ntrans, 2)
                    if extra:
                        stall = cfg.replay_warp_stall * extra
                        if stall > next_gap:
                            next_gap = stall
                else:
                    comp = issue + 1.0
            elif kind == EV_GLOBAL_LD or kind == EV_GLOBAL_ST:
                sm.pipe_free[1] = issue + intervals[1]
                # Split (uncoalesced) requests replay like bank conflicts:
                # the issuing warp stalls per extra transaction.
                extra_txn = event[2] - min(event[2], 2)
                if extra_txn:
                    stall = cfg.replay_warp_stall * extra_txn
                    if stall > next_gap:
                        next_gap = stall
                nbytes = event[3]
                payload = event[4]
                hit_time = 0.0
                if (
                    cache is not None
                    and payload is not None
                    and payload[0]
                    and payload[1] is not None
                ):
                    miss_bytes = 0
                    hit_any = False
                    for address, size in payload[1]:
                        hits, misses = cache.access(address, size)
                        miss_bytes += min(misses, size)
                        if hits:
                            hit_any = True
                    nbytes = miss_bytes
                    if hit_any:
                        hit_time = issue + cfg.texcache_hit_latency
                if nbytes > 0:
                    start = issue if issue > dram_free else dram_free
                    service = nbytes / self.dram_rate
                    dram_free = start + service
                    dram_busy += service
                    comp = (
                        dram_free
                        + cfg.global_latency
                        + deterministic_jitter(jkey, cfg.global_jitter)
                    )
                else:
                    comp = issue + 1.0
                if hit_time > comp:
                    comp = hit_time
                if kind == EV_GLOBAL_ST:
                    # Stores are fire-and-forget: the warp does not wait
                    # for DRAM, only bandwidth is consumed.
                    comp = issue + 1.0
            else:  # pragma: no cover - unknown kinds rejected upstream
                raise HardwareModelError(f"unknown event kind {kind}")

            completions.append(comp)
            if kind == EV_ARITH or kind == EV_ARITH_SHARED:
                warp.last_arith = comp
            if kind == EV_SHARED or kind == EV_ARITH_SHARED:
                warp.last_shared = comp
            if comp > warp.maxcomp:
                warp.maxcomp = comp
            if comp > end_time:
                end_time = comp
            warp.idx = idx + 1
            if warp.idx < len(stream):
                heapq.heappush(heap, (issue + next_gap, seq, warp))
                seq += 1
            else:
                warp_finished(warp)

        for sm in sms:
            if sm.queue or sm.resident:
                raise HardwareModelError(
                    "cluster simulation ended with unfinished blocks "
                    "(barrier deadlock in the event streams?)"
                )

        return ClusterResult(
            cycles=end_time,
            events=events_processed,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            dram_busy_cycles=dram_busy,
        )
