"""Cycle-approximate hardware timing simulator (the silicon stand-in)."""

from repro.hw.cluster import ClusterResult, ClusterSimulator, simulate_cluster
from repro.hw.config import (
    DEFAULT_HW,
    HwConfig,
    cluster_bytes_per_cycle,
    config_fingerprint,
    deterministic_jitter,
    issue_intervals,
)
from repro.hw.engine import (
    HW_CACHE_VERSION,
    MeasuredRunCache,
    simulate_clusters,
    stream_digest,
)
from repro.hw.gpu import HardwareGpu, MeasuredRun
from repro.hw.texcache import TextureCache

__all__ = [
    "ClusterResult",
    "ClusterSimulator",
    "DEFAULT_HW",
    "HW_CACHE_VERSION",
    "HardwareGpu",
    "HwConfig",
    "MeasuredRun",
    "MeasuredRunCache",
    "TextureCache",
    "cluster_bytes_per_cycle",
    "config_fingerprint",
    "deterministic_jitter",
    "issue_intervals",
    "simulate_cluster",
    "simulate_clusters",
    "stream_digest",
]
