"""Cycle-approximate hardware timing simulator (the silicon stand-in)."""

from repro.hw.cluster import ClusterResult, ClusterSimulator
from repro.hw.config import (
    DEFAULT_HW,
    HwConfig,
    cluster_bytes_per_cycle,
    deterministic_jitter,
    issue_intervals,
)
from repro.hw.gpu import HardwareGpu, MeasuredRun
from repro.hw.texcache import TextureCache

__all__ = [
    "ClusterResult",
    "ClusterSimulator",
    "DEFAULT_HW",
    "HardwareGpu",
    "HwConfig",
    "MeasuredRun",
    "TextureCache",
    "cluster_bytes_per_cycle",
    "deterministic_jitter",
    "issue_intervals",
]
