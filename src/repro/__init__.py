"""repro: a quantitative performance analysis model for GPU architectures.

A from-scratch reproduction of Zhang & Owens, "A Quantitative
Performance Analysis Model for GPU Architectures" (HPCA 2011):

* :mod:`repro.arch` -- GTX 285 architecture specs + occupancy;
* :mod:`repro.isa` -- native instruction set, builder, assembler;
* :mod:`repro.sim` -- Barra-style SIMT functional simulator;
* :mod:`repro.memory` -- coalescing and bank-conflict analyzers;
* :mod:`repro.hw` -- cycle-approximate hardware timing simulator
  (the stand-in for the physical GPU; see DESIGN.md);
* :mod:`repro.micro` -- microbenchmarks and calibration tables;
* :mod:`repro.model` -- the paper's performance model: per-component
  time estimates, bottleneck identification, what-if predictions;
* :mod:`repro.apps` -- the three case studies (dense matrix multiply,
  cyclic-reduction tridiagonal solver, SpMV).

Quickstart::

    from repro import GTX285, PerformanceModel, run_matmul

    model = PerformanceModel()            # calibrates microbenchmarks
    run = run_matmul(256, 16, model=model)
    print(run.report.render())
"""

from repro.arch import (
    GTX285,
    GpuSpec,
    KernelResources,
    Occupancy,
    compute_occupancy,
)
from repro.apps import (
    qcd_like,
    run_cr,
    run_matmul,
    run_spmv,
)
from repro.errors import ReproError
from repro.hw import HardwareGpu, HwConfig
from repro.isa import Kernel, KernelBuilder
from repro.micro import CalibrationTables, calibrate, default_tables
from repro.model import PerformanceModel, PerformanceReport
from repro.sim import FunctionalSimulator, GlobalMemory, LaunchConfig

__version__ = "1.0.0"

__all__ = [
    "CalibrationTables",
    "FunctionalSimulator",
    "GTX285",
    "GlobalMemory",
    "GpuSpec",
    "HardwareGpu",
    "HwConfig",
    "Kernel",
    "KernelBuilder",
    "KernelResources",
    "LaunchConfig",
    "Occupancy",
    "PerformanceModel",
    "PerformanceReport",
    "ReproError",
    "calibrate",
    "compute_occupancy",
    "default_tables",
    "qcd_like",
    "run_cr",
    "run_matmul",
    "run_spmv",
    "__version__",
]
