"""GPU architecture specifications.

A :class:`GpuSpec` holds everything the model needs to know about a
chip: clock rates, per-SM resource ceilings, the shared-memory bank
layout, and the global-memory cluster organization.  The paper's own
machine is the NVIDIA GeForce GTX 285 (GT200), registered here as
:data:`GTX285` and used as the default spec throughout; other
generations live in :mod:`repro.arch.registry`, each built through
this module's validation path.  Derived quantities use the paper's
own formulas (Section 4), evaluated against whichever spec they are
asked about -- the worked numbers below are the GTX 285's:

* peak instruction throughput of an instruction with ``u`` functional
  units per SM: ``u * core_clock * num_sms / warp_size`` warp-instructions
  per second (e.g. MAD: ``8 * 1.48e9 * 30 / 32 = 11.1`` Giga-instr/s);
* peak single-precision rate: ``mad_throughput * warp_size * 2``
  (= 710.4 GFLOPS);
* peak shared-memory bandwidth:
  ``sps_per_sm * num_sms * core_clock * 4 B`` (= 1420.8 GB/s);
* peak global-memory bandwidth: ``memory_clock * bus_width / 8``
  (= 158.98 GB/s, quoted as 160 GB/s in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SpecError

#: Number of threads that execute in lockstep (a warp).
WARP_SIZE = 32

#: Number of threads in a memory-transaction issue group (half-warp).
HALF_WARP = 16


@dataclass(frozen=True)
class SmSpec:
    """Per-streaming-multiprocessor resources and ceilings."""

    num_sps: int = 8
    registers: int = 16384
    shared_memory_bytes: int = 16384
    shared_memory_banks: int = 16
    bank_width_bytes: int = 4
    max_threads_per_block: int = 512
    max_blocks: int = 8
    max_warps: int = 32

    def __post_init__(self) -> None:
        for name in (
            "num_sps",
            "registers",
            "shared_memory_bytes",
            "shared_memory_banks",
            "bank_width_bytes",
            "max_threads_per_block",
            "max_blocks",
            "max_warps",
        ):
            if getattr(self, name) <= 0:
                raise SpecError(f"SmSpec.{name} must be positive")

    @property
    def max_threads(self) -> int:
        """Maximum resident threads per SM (warp ceiling times warp size)."""
        return self.max_warps * WARP_SIZE


@dataclass(frozen=True)
class MemorySpec:
    """Off-chip (global) memory system parameters."""

    clock_ghz: float = 2.484
    bus_width_bits: int = 512
    num_clusters: int = 10
    min_segment_bytes: int = 32
    max_segment_bytes: int = 128
    dram_efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise SpecError("MemorySpec.clock_ghz must be positive")
        if self.bus_width_bits % 8:
            raise SpecError("MemorySpec.bus_width_bits must be a byte multiple")
        if self.num_clusters <= 0:
            raise SpecError("MemorySpec.num_clusters must be positive")
        if not 0.0 < self.dram_efficiency <= 1.0:
            raise SpecError("MemorySpec.dram_efficiency must be in (0, 1]")
        if self.min_segment_bytes > self.max_segment_bytes:
            raise SpecError("min_segment_bytes exceeds max_segment_bytes")

    @property
    def peak_bandwidth(self) -> float:
        """Theoretical peak global bandwidth in bytes per second."""
        return self.clock_ghz * 1e9 * self.bus_width_bits / 8


#: Functional-unit counts per instruction type (paper Table 1).
DEFAULT_FUNCTIONAL_UNITS = {
    "I": 10,  # mul: 8 FPU multipliers + 2 in the SFUs
    "II": 8,  # mov, add, mad
    "III": 4,  # sin, cos, log, rcp (special function units)
    "IV": 1,  # double-precision floating point
}


@dataclass(frozen=True)
class GpuSpec:
    """A whole GPU: SM array, clocks, and the memory system."""

    name: str = "GeForce GTX 285"
    num_sms: int = 30
    core_clock_ghz: float = 1.48
    sm: SmSpec = field(default_factory=SmSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    functional_units: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_FUNCTIONAL_UNITS)
    )

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise SpecError("GpuSpec.num_sms must be positive")
        if self.core_clock_ghz <= 0:
            raise SpecError("GpuSpec.core_clock_ghz must be positive")
        if self.num_sms % self.memory.num_clusters:
            raise SpecError(
                "num_sms must divide evenly into memory clusters: "
                f"{self.num_sms} SMs, {self.memory.num_clusters} clusters"
            )
        missing = {"I", "II", "III", "IV"} - set(self.functional_units)
        if missing:
            raise SpecError(f"functional_units missing types: {sorted(missing)}")

    @property
    def sms_per_cluster(self) -> int:
        """SMs sharing one global-memory pipeline (3 on the GTX 285)."""
        return self.num_sms // self.memory.num_clusters

    @property
    def core_clock_hz(self) -> float:
        return self.core_clock_ghz * 1e9

    def units_for_type(self, instr_type: str) -> int:
        """Functional units per SM for an instruction type ('I'..'IV')."""
        try:
            return self.functional_units[instr_type]
        except KeyError:
            raise SpecError(f"unknown instruction type: {instr_type!r}") from None

    def peak_instruction_throughput(self, instr_type: str) -> float:
        """Peak warp-instructions/second for a type (paper Section 4.1)."""
        units = self.units_for_type(instr_type)
        return units * self.core_clock_hz * self.num_sms / WARP_SIZE

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOPS via MAD (2 flops per lane)."""
        mad = self.peak_instruction_throughput("II")
        return mad * WARP_SIZE * 2 / 1e9

    @property
    def peak_shared_bandwidth(self) -> float:
        """Peak shared-memory bandwidth in bytes/second (paper Section 4.2)."""
        return (
            self.sm.num_sps
            * self.num_sms
            * self.core_clock_hz
            * self.sm.bank_width_bytes
        )

    @property
    def peak_global_bandwidth(self) -> float:
        """Peak global-memory bandwidth in bytes/second."""
        return self.memory.peak_bandwidth

    @property
    def shared_bytes_per_cycle_per_sm(self) -> float:
        """Shared-memory bytes one SM moves per core cycle when saturated."""
        return self.sm.num_sps * self.sm.bank_width_bytes

    @property
    def global_bytes_per_cycle(self) -> float:
        """Global-memory bytes per core cycle across the whole chip."""
        return self.peak_global_bandwidth / self.core_clock_hz

    def with_sm(self, **changes) -> "GpuSpec":
        """Return a copy with modified SM parameters (what-if studies)."""
        return replace(self, sm=replace(self.sm, **changes))

    def with_memory(self, **changes) -> "GpuSpec":
        """Return a copy with modified memory parameters (what-if studies)."""
        return replace(self, memory=replace(self.memory, **changes))


#: The paper's target device.
GTX285 = GpuSpec()
