"""Occupancy calculation: how many blocks and warps fit on one SM.

This reimplements the resource-ceiling arithmetic the paper uses in
Table 2.  A kernel declares per-thread register usage, per-block shared
memory, and block size; the SM imposes five ceilings (registers, shared
memory, threads per block, resident blocks, resident warps).  The number
of resident blocks is the minimum over the ceilings, e.g. for the 32x32
matrix-multiply tile: ``min(4, 3, 8) = 3`` blocks = 6 warps.

The paper uses plain floor division (no allocation-granularity rounding),
which this module follows; see DESIGN.md for the one Table 2 entry where
the paper's register ceiling differs (the binding minimum is unaffected).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.specs import WARP_SIZE, GpuSpec
from repro.errors import OccupancyError


@dataclass(frozen=True)
class KernelResources:
    """Static per-kernel resource demands (what NVCC would report)."""

    threads_per_block: int
    registers_per_thread: int = 0
    shared_memory_per_block: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise OccupancyError("threads_per_block must be positive")
        if self.registers_per_thread < 0:
            raise OccupancyError("registers_per_thread must be non-negative")
        if self.shared_memory_per_block < 0:
            raise OccupancyError("shared_memory_per_block must be non-negative")

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / WARP_SIZE)


@dataclass(frozen=True)
class Occupancy:
    """Resident blocks/warps per SM and which ceilings were binding."""

    blocks_per_sm: int
    warps_per_block: int
    blocks_by_registers: int
    blocks_by_shared_memory: int
    blocks_by_warps: int
    blocks_by_block_limit: int

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    @property
    def threads_per_sm(self) -> int:
        return self.warps_per_sm * WARP_SIZE

    @property
    def limiters(self) -> tuple[str, ...]:
        """Names of the ceilings equal to the binding minimum."""
        ceilings = {
            "registers": self.blocks_by_registers,
            "shared_memory": self.blocks_by_shared_memory,
            "warps": self.blocks_by_warps,
            "block_limit": self.blocks_by_block_limit,
        }
        return tuple(
            name for name, value in ceilings.items() if value == self.blocks_per_sm
        )


def compute_occupancy(spec: GpuSpec, resources: KernelResources) -> Occupancy:
    """Compute resident blocks per SM for a kernel on a GPU.

    Raises :class:`OccupancyError` if the kernel cannot launch at all
    (e.g. one block already exceeds the register file).
    """
    sm = spec.sm
    if resources.threads_per_block > sm.max_threads_per_block:
        raise OccupancyError(
            f"block of {resources.threads_per_block} threads exceeds the "
            f"{sm.max_threads_per_block}-thread block limit"
        )

    regs_per_block = resources.registers_per_thread * resources.threads_per_block
    if regs_per_block > sm.registers:
        raise OccupancyError(
            f"one block needs {regs_per_block} registers; the SM has {sm.registers}"
        )
    if resources.shared_memory_per_block > sm.shared_memory_bytes:
        raise OccupancyError(
            f"one block needs {resources.shared_memory_per_block} B of shared "
            f"memory; the SM has {sm.shared_memory_bytes} B"
        )

    no_limit = sm.max_blocks  # a ceiling that never binds below the block limit
    by_registers = (
        sm.registers // regs_per_block if regs_per_block else no_limit
    )
    by_shared = (
        sm.shared_memory_bytes // resources.shared_memory_per_block
        if resources.shared_memory_per_block
        else no_limit
    )
    by_warps = sm.max_warps // resources.warps_per_block
    blocks = min(by_registers, by_shared, by_warps, sm.max_blocks)
    if blocks < 1:
        raise OccupancyError("kernel resources allow zero resident blocks")
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_block=resources.warps_per_block,
        blocks_by_registers=by_registers,
        blocks_by_shared_memory=by_shared,
        blocks_by_warps=by_warps,
        blocks_by_block_limit=sm.max_blocks,
    )


def warps_per_sm(spec: GpuSpec, resources: KernelResources) -> int:
    """Convenience wrapper: resident warps per SM for a kernel."""
    return compute_occupancy(spec, resources).warps_per_sm
