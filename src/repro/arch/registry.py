"""Registry of named GPU architecture generations.

The paper models one machine (the GTX 285); everything downstream of
:mod:`repro.arch.specs` is parameterized on a :class:`GpuSpec`, so the
only thing standing between the reproduction and cross-GPU prediction
is a catalogue of machines to point it at.  This module is that
catalogue: a registry of *named*, frozen, validated specs -- the
paper's GT200 baseline plus synthetic generation profiles that vary
every axis the model is sensitive to (warps/blocks per SM, shared
memory banks and capacity, register file, core and memory clocks, bus
width, and the min/max memory-transaction segment sizes).

Every entry is constructed through the ordinary :class:`GpuSpec`
validation path (``__post_init__`` invariants, cluster divisibility,
functional-unit completeness) and carries a provenance note.  The
non-baseline profiles are deliberately "-like": they are illustrative
generation profiles for the cross-GPU validation harness
(:mod:`repro.model.crossval`), not calibrated models of real boards --
the registered numbers are chosen to span the architecture space, and
the provenance note on each entry says exactly that.

``python -m repro specs list|show`` renders the registry; the
``--markdown`` form generates ``docs/ARCHITECTURES.md`` (CI regenerates
it and fails on drift, so the reference can never diverge from this
file).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.arch.specs import GTX285, GpuSpec, MemorySpec, SmSpec
from repro.errors import SpecError
from repro.sim.trace import TYPE_NAMES
from repro.util import spec_fingerprint

#: Name of the paper's machine -- the default spec everywhere.
BASELINE = "gt200"


@dataclass(frozen=True)
class RegisteredSpec:
    """A named architecture generation: spec plus provenance."""

    name: str
    spec: GpuSpec
    provenance: str

    @property
    def fingerprint(self) -> str:
        """Content hash of the spec (the cache-invalidation key)."""
        return spec_fingerprint(self.spec)


_REGISTRY: dict[str, RegisteredSpec] = {}


def register(name: str, spec: GpuSpec, provenance: str) -> RegisteredSpec:
    """Register a named spec (validated by GpuSpec construction).

    The spec argument has already been through ``GpuSpec.__post_init__``
    by the time it arrives here, so every registered entry satisfies
    the same invariants the model relies on; this function only guards
    the registry itself (unique, well-formed names).
    """
    if not name or name != name.strip().lower():
        raise SpecError(f"registry names are lowercase slugs, got {name!r}")
    if name in _REGISTRY:
        raise SpecError(f"spec {name!r} is already registered")
    entry = RegisteredSpec(name=name, spec=spec, provenance=provenance)
    _REGISTRY[name] = entry
    return entry


def get_entry(name: str) -> RegisteredSpec:
    """Look up a registered spec by name (raises SpecError if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(spec_names())
        raise SpecError(
            f"unknown architecture spec {name!r}; registered specs: {known}"
        ) from None


def get_spec(name: str) -> GpuSpec:
    """The named architecture's :class:`GpuSpec`."""
    return get_entry(name).spec


def spec_names() -> tuple[str, ...]:
    """Registered names, in registration order (baseline first)."""
    return tuple(_REGISTRY)


def entries() -> tuple[RegisteredSpec, ...]:
    """All registered entries, in registration order."""
    return tuple(_REGISTRY.values())


def registered_name(spec: GpuSpec) -> str | None:
    """The registry name of a spec, matched by fingerprint (or None)."""
    fingerprint = spec_fingerprint(spec)
    for entry in _REGISTRY.values():
        if entry.fingerprint == fingerprint:
            return entry.name
    return None


def default_source_for(target: str) -> str:
    """Held-one-out calibration source for a target spec.

    Cross-validation predicts each spec with a model calibrated on a
    *different* machine: every non-baseline target is predicted from
    the baseline, and the baseline itself is predicted from the first
    non-baseline entry, so no spec is ever predicted from its own
    calibration.
    """
    get_entry(target)  # raise early on unknown names
    if target != BASELINE:
        return BASELINE
    for name in spec_names():
        if name != BASELINE:
            return name
    raise SpecError("registry holds no spec other than the baseline")


# ----------------------------------------------------------------------
# The registered generations
# ----------------------------------------------------------------------

register(
    BASELINE,
    GTX285,
    "Paper baseline: NVIDIA GeForce GTX 285 (GT200), the machine of "
    "Zhang & Owens, HPCA 2011 (Table 1 / Section 4).",
)

register(
    "fermi-like",
    GpuSpec(
        name="Fermi-like generation profile",
        num_sms=16,
        core_clock_ghz=1.15,
        sm=SmSpec(
            num_sps=32,
            registers=32768,
            shared_memory_bytes=49152,
            shared_memory_banks=32,
            bank_width_bytes=4,
            max_threads_per_block=1024,
            max_blocks=8,
            max_warps=48,
        ),
        memory=MemorySpec(
            clock_ghz=1.9,
            bus_width_bits=384,
            num_clusters=8,
            min_segment_bytes=128,
            max_segment_bytes=128,
            dram_efficiency=0.85,
        ),
        functional_units={"I": 36, "II": 32, "III": 4, "IV": 16},
    ),
    "Illustrative Fermi-generation profile (GF100-era shape): 32-bank "
    "shared memory, 48 resident warps, cache-line-only (128 B) global "
    "transactions.  Synthetic -- spans the architecture axes for "
    "cross-GPU validation, not a calibrated model of a real board.",
)

register(
    "kepler-like",
    GpuSpec(
        name="Kepler-like generation profile",
        num_sms=15,
        core_clock_ghz=0.88,
        sm=SmSpec(
            num_sps=64,
            registers=65536,
            shared_memory_bytes=49152,
            shared_memory_banks=32,
            bank_width_bytes=4,
            max_threads_per_block=1024,
            max_blocks=16,
            max_warps=64,
        ),
        memory=MemorySpec(
            clock_ghz=3.0,
            bus_width_bits=384,
            num_clusters=5,
            min_segment_bytes=32,
            max_segment_bytes=128,
            dram_efficiency=0.85,
        ),
        functional_units={"I": 72, "II": 64, "III": 16, "IV": 8},
    ),
    "Illustrative Kepler-generation profile (GK110-era shape): wide "
    "SMs at a lower clock, 64 resident warps, 16 resident blocks, "
    "32-128 B transaction segments.  Synthetic generation profile for "
    "cross-GPU validation.",
)

register(
    "modern-wide",
    GpuSpec(
        name="Modern wide-warp-count profile",
        num_sms=60,
        core_clock_ghz=1.7,
        sm=SmSpec(
            num_sps=64,
            registers=65536,
            shared_memory_bytes=98304,
            shared_memory_banks=32,
            bank_width_bytes=4,
            max_threads_per_block=1024,
            max_blocks=32,
            max_warps=64,
        ),
        memory=MemorySpec(
            clock_ghz=7.0,
            bus_width_bits=256,
            num_clusters=12,
            min_segment_bytes=32,
            max_segment_bytes=128,
            dram_efficiency=0.90,
        ),
        functional_units={"I": 68, "II": 64, "III": 16, "IV": 32},
    ),
    "Illustrative modern profile: many narrow-ish SMs, 64 resident "
    "warps and 32 resident blocks per SM, sectored (32 B) transactions "
    "on a fast, narrow bus.  Synthetic generation profile for "
    "cross-GPU validation.",
)


# ----------------------------------------------------------------------
# Rendering (``repro specs list``, docs/ARCHITECTURES.md)
# ----------------------------------------------------------------------

def describe(entry: RegisteredSpec) -> dict:
    """JSON-ready description: every spec field plus derived peaks."""
    spec = entry.spec
    return {
        "name": entry.name,
        "device": spec.name,
        "provenance": entry.provenance,
        "fingerprint": entry.fingerprint,
        "num_sms": spec.num_sms,
        "core_clock_ghz": spec.core_clock_ghz,
        "functional_units": dict(sorted(spec.functional_units.items())),
        "sm": asdict(spec.sm),
        "memory": asdict(spec.memory),
        "derived": {
            "sms_per_cluster": spec.sms_per_cluster,
            "max_threads_per_sm": spec.sm.max_threads,
            "peak_instruction_gis": {
                name: spec.peak_instruction_throughput(name) / 1e9
                for name in TYPE_NAMES
            },
            "peak_gflops": spec.peak_gflops,
            "peak_shared_bandwidth_gbs": spec.peak_shared_bandwidth / 1e9,
            "peak_global_bandwidth_gbs": spec.peak_global_bandwidth / 1e9,
        },
    }


def render_json() -> str:
    """The whole registry as deterministic JSON."""
    import json

    payload = {
        "baseline": BASELINE,
        "specs": {entry.name: describe(entry) for entry in entries()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SmSpec field -> row label for the per-spec tables.
_SM_LABELS = {
    "num_sps": "SPs per SM",
    "registers": "registers per SM",
    "shared_memory_bytes": "shared memory per SM (B)",
    "shared_memory_banks": "shared-memory banks",
    "bank_width_bytes": "bank width (B)",
    "max_threads_per_block": "max threads per block",
    "max_blocks": "max resident blocks",
    "max_warps": "max resident warps",
}

#: MemorySpec field -> row label.
_MEMORY_LABELS = {
    "clock_ghz": "memory clock (GHz)",
    "bus_width_bits": "bus width (bits)",
    "num_clusters": "memory clusters",
    "min_segment_bytes": "min transaction segment (B)",
    "max_segment_bytes": "max transaction segment (B)",
    "dram_efficiency": "DRAM efficiency",
}


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_markdown() -> str:
    """Generate the full ``docs/ARCHITECTURES.md`` reference.

    Deterministic: registration order for specs, declaration order for
    fields.  CI regenerates the file with
    ``python -m repro specs list --markdown docs/ARCHITECTURES.md``
    and fails on any diff, so the reference cannot drift from the
    registry.
    """
    lines = [
        "# Architecture reference",
        "",
        "Generated by `python -m repro specs list --markdown "
        "docs/ARCHITECTURES.md` from `repro.arch.registry`.",
        "**Do not edit by hand** -- CI regenerates this file and fails "
        "on drift.",
        "",
        "Every registered spec is a frozen, validated `GpuSpec`; the "
        "derived peaks below come from the paper's Section 4 formulas "
        "(peak warp-instruction throughput `u * f_core * SMs / 32`, "
        "peak shared bandwidth `SPs * SMs * f_core * bank_width`, peak "
        "global bandwidth `f_mem * bus_width / 8`).  Cross-GPU "
        "validation over these specs: `python -m repro specs crossval`.",
        "",
        "## Registered specs",
        "",
        "| name | device | SMs | core clock | warps/SM | blocks/SM | "
        "banks | shared/SM | registers/SM | global peak |",
        "| --- | --- | --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for entry in entries():
        spec = entry.spec
        lines.append(
            f"| `{entry.name}` | {spec.name} | {spec.num_sms} "
            f"| {_fmt(spec.core_clock_ghz)} GHz | {spec.sm.max_warps} "
            f"| {spec.sm.max_blocks} | {spec.sm.shared_memory_banks} "
            f"| {spec.sm.shared_memory_bytes} B | {spec.sm.registers} "
            f"| {spec.peak_global_bandwidth / 1e9:.1f} GB/s |"
        )
    for entry in entries():
        spec = entry.spec
        description = describe(entry)
        lines += [
            "",
            f"## `{entry.name}` -- {spec.name}",
            "",
            f"> {entry.provenance}",
            "",
            f"Spec fingerprint: `{entry.fingerprint[:16]}`",
            "",
            "### Chip",
            "",
            "| field | value |",
            "| --- | --- |",
            f"| SMs | {spec.num_sms} |",
            f"| core clock (GHz) | {_fmt(spec.core_clock_ghz)} |",
            f"| SMs per memory cluster | {spec.sms_per_cluster} |",
        ]
        lines += [
            "",
            "### SM (`SmSpec`)",
            "",
            "| field | value |",
            "| --- | --- |",
        ]
        for field_name, label in _SM_LABELS.items():
            lines.append(
                f"| {label} (`{field_name}`) "
                f"| {_fmt(description['sm'][field_name])} |"
            )
        lines += [
            "",
            "### Memory system (`MemorySpec`)",
            "",
            "| field | value |",
            "| --- | --- |",
        ]
        for field_name, label in _MEMORY_LABELS.items():
            lines.append(
                f"| {label} (`{field_name}`) "
                f"| {_fmt(description['memory'][field_name])} |"
            )
        lines += [
            "",
            "### Functional units per SM",
            "",
            "| type | units | peak (GI/s) |",
            "| --- | --- | --- |",
        ]
        for type_name in TYPE_NAMES:
            lines.append(
                f"| {type_name} | {spec.units_for_type(type_name)} "
                f"| {spec.peak_instruction_throughput(type_name) / 1e9:.2f} |"
            )
        derived = description["derived"]
        lines += [
            "",
            "### Derived peaks (Section 4 formulas)",
            "",
            "| quantity | value |",
            "| --- | --- |",
            f"| peak single precision | {derived['peak_gflops']:.1f} GFLOPS |",
            "| peak shared bandwidth "
            f"| {derived['peak_shared_bandwidth_gbs']:.1f} GB/s |",
            "| peak global bandwidth "
            f"| {derived['peak_global_bandwidth_gbs']:.1f} GB/s |",
            f"| max threads per SM | {derived['max_threads_per_sm']} |",
        ]
    lines.append("")
    return "\n".join(lines)
