"""GPU architecture descriptions, the spec registry, and occupancy."""

from repro.arch.occupancy import (
    KernelResources,
    Occupancy,
    compute_occupancy,
    warps_per_sm,
)
from repro.arch.registry import (
    BASELINE,
    RegisteredSpec,
    default_source_for,
    entries,
    get_entry,
    get_spec,
    registered_name,
    spec_names,
)
from repro.arch.specs import (
    GTX285,
    HALF_WARP,
    WARP_SIZE,
    GpuSpec,
    MemorySpec,
    SmSpec,
)

__all__ = [
    "BASELINE",
    "GTX285",
    "HALF_WARP",
    "WARP_SIZE",
    "GpuSpec",
    "MemorySpec",
    "RegisteredSpec",
    "SmSpec",
    "KernelResources",
    "Occupancy",
    "compute_occupancy",
    "default_source_for",
    "entries",
    "get_entry",
    "get_spec",
    "registered_name",
    "spec_names",
    "warps_per_sm",
]
