"""GPU architecture descriptions and the occupancy calculator."""

from repro.arch.occupancy import (
    KernelResources,
    Occupancy,
    compute_occupancy,
    warps_per_sm,
)
from repro.arch.specs import (
    GTX285,
    HALF_WARP,
    WARP_SIZE,
    GpuSpec,
    MemorySpec,
    SmSpec,
)

__all__ = [
    "GTX285",
    "HALF_WARP",
    "WARP_SIZE",
    "GpuSpec",
    "MemorySpec",
    "SmSpec",
    "KernelResources",
    "Occupancy",
    "compute_occupancy",
    "warps_per_sm",
]
