"""``repro analyze``: run the static checker over the kernel zoo.

Each built-in case pairs an app kernel with a representative problem
instance (the checker and the dedup proof both reason about one launch
configuration at a time).  The report renders per-kernel diagnostics
plus the affine summary's verdict, as text or JSON, and the CLI exits
nonzero when any error-severity diagnostic fires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.apps import matmul, reduction, scan, spmv, stencil, tridiag
from repro.apps.matrices import random_blocked
from repro.errors import ReproError
from repro.isa.program import Kernel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.analysis.affine import affine_summary
from repro.analysis.checks import SEVERITIES, Diagnostic, check_kernel


@dataclass(frozen=True)
class AnalysisCase:
    """One kernel + launch + memory image to analyze."""

    name: str
    kernel: Kernel
    launch: LaunchConfig
    gmem: GlobalMemory


def _case_matmul() -> AnalysisCase:
    problem = matmul.prepare_problem(128, 16)
    kernel = matmul.build_matmul_kernel(128, 16)
    return AnalysisCase("matmul", kernel, problem.launch(), problem.gmem)


def _case_scan() -> AnalysisCase:
    problem = scan.prepare_problem(1000)
    kernel = scan.build_scan_kernel(problem.block_threads, problem.dtype)
    return AnalysisCase("scan", kernel, problem.launch(), problem.gmem)


def _case_stencil() -> AnalysisCase:
    problem = stencil.prepare_problem(512)
    kernel = stencil.build_stencil_kernel(problem.block_threads, guarded=False)
    return AnalysisCase("stencil", kernel, problem.launch(), problem.gmem)


def _case_stencil_guarded() -> AnalysisCase:
    problem = stencil.prepare_problem(512, guarded=True)
    kernel = stencil.build_stencil_kernel(problem.block_threads, guarded=True)
    return AnalysisCase(
        "stencil_guarded", kernel, problem.launch(), problem.gmem
    )


def _case_reduction() -> AnalysisCase:
    problem = reduction.prepare_problem()
    kernel = reduction.build_reduction_kernel(problem.block_threads)
    return AnalysisCase("reduction", kernel, problem.launch(), problem.gmem)


def _case_tridiag() -> AnalysisCase:
    problem = tridiag.prepare_problem(128, 8)
    kernel = tridiag.build_cr_kernel(128)
    return AnalysisCase("tridiag", kernel, problem.launch(), problem.gmem)


def _case_tridiag_nbc() -> AnalysisCase:
    problem = tridiag.prepare_problem(128, 8)
    kernel = tridiag.build_cr_kernel(128, padded=True)
    return AnalysisCase("tridiag_nbc", kernel, problem.launch(), problem.gmem)


def _case_spmv() -> AnalysisCase:
    matrix = random_blocked(block_rows=40, slots=3)
    problem = spmv.prepare_problem(matrix, "ell")
    kernel = spmv.build_ell_kernel(matrix.slots * matrix.block_size, matrix.n)
    return AnalysisCase("spmv", kernel, problem.launch(), problem.gmem)


#: Name -> case factory for every kernel in the zoo.
BUILTIN_KERNELS = {
    "matmul": _case_matmul,
    "scan": _case_scan,
    "stencil": _case_stencil,
    "stencil_guarded": _case_stencil_guarded,
    "reduction": _case_reduction,
    "tridiag": _case_tridiag,
    "tridiag_nbc": _case_tridiag_nbc,
    "spmv": _case_spmv,
}


def analysis_case(name: str) -> AnalysisCase:
    """Build the named built-in case."""
    try:
        factory = BUILTIN_KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_KERNELS))
        raise ReproError(
            f"unknown kernel {name!r}; built-in kernels: {known}"
        ) from None
    return factory()


@dataclass(frozen=True)
class KernelReport:
    """Checker output for one case."""

    name: str
    diagnostics: tuple[Diagnostic, ...]
    affine: bool  # affine_summary: every address affine, guards data-free

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def clean(self) -> bool:
        return self.count("error") == 0


def analyze_kernels(names: list[str] | None = None) -> list[KernelReport]:
    """Run the checker over the named (default: all) built-in kernels."""
    selected = names if names else sorted(BUILTIN_KERNELS)
    reports = []
    for name in selected:
        case = analysis_case(name)
        diagnostics = check_kernel(case.kernel, case.launch, case.gmem)
        summary = affine_summary(case.kernel, case.launch)
        reports.append(KernelReport(name, tuple(diagnostics), summary.affine))
    return reports


def error_count(reports: list[KernelReport]) -> int:
    return sum(report.count("error") for report in reports)


def render_text(reports: list[KernelReport]) -> str:
    lines = []
    for report in reports:
        addressing = "affine" if report.affine else "non-affine"
        if not report.diagnostics:
            lines.append(f"{report.name}: clean ({addressing} addressing)")
            continue
        counts = ", ".join(
            f"{report.count(sev)} {sev}{'s' if report.count(sev) != 1 else ''}"
            for sev in SEVERITIES
            if report.count(sev)
        )
        lines.append(f"{report.name}: {counts} ({addressing} addressing)")
        for diag in report.diagnostics:
            lines.extend("  " + line for line in diag.format().splitlines())
    total = error_count(reports)
    lines.append(
        f"{len(reports)} kernels analyzed, {total} error"
        f"{'s' if total != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(reports: list[KernelReport]) -> str:
    payload = {
        "kernels": {
            report.name: {
                "affine": report.affine,
                "clean": report.clean,
                "diagnostics": [
                    {
                        "severity": diag.severity,
                        "code": diag.code,
                        "instruction_index": diag.index,
                        "instruction": diag.instruction,
                        "message": diag.message,
                    }
                    for diag in report.diagnostics
                ],
            }
            for report in reports
        },
        "errors": error_count(reports),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
