"""Soundness proof for single-class block dedup.

The engine's dedup (``sim/engine.py``) claims that every member of a
:class:`~repro.sim.engine.BlockClass` produces the representative's
trace.  Probe members spot-check the claim; this module *proves* it for
affine kernels, so proved classes need zero probe simulations.

The argument is translation invariance.  The concolic tracer
(:mod:`repro.analysis.affine`) executes the class's anchor member and
derives, for every value, exact strides per unit of ``ctaid``.  The
trace of any member at offset ``(dx, dy)`` inside the class box is then
the anchor's trace with every global byte address shifted by
``sx*dx + sy*dy`` -- provided control flow and shared addresses carry no
stride at all, which the tracer certifies.  The trace *statistics*
(``BlockTrace.stats_key``) are invariant under that shift when, per
half-warp (the coalescing unit, see ``memory/coalescing.py``), one of:

1. the stride is zero -- the addresses are literally identical;
2. the stride is a multiple of 128 bytes -- every supported transaction
   config has ``max_segment <= 128`` and power-of-two segments, so the
   greedy dyadic coalescer's output translates segment-for-segment;
3. the half-warp touches a single distinct address and the stride keeps
   4-byte alignment -- the coalescer's shrink loop always lands on
   exactly one ``min_segment`` transaction for a lone address, at any
   position.

On top of that, every shifted access range must stay inside the anchor
address's allocation (same array name, cacheability, and arena bounds),
and a launch recording absolute segment addresses
(``record_segments``) cannot shift at all.  Anything the rules do not
cover is *refused*, never guessed: the engine then falls back to the
probe ladder, which is the status quo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import HALF_WARP
from repro.isa.program import Kernel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.analysis.affine import ClassBox, ClassTrace, trace_block_class

#: All supported transaction configs have power-of-two segments capped
#: at this size; address shifts that are multiples of it translate the
#: dyadic segment cover exactly.
_SEGMENT_MODULUS = 128


@dataclass(frozen=True)
class ProofResult:
    """Outcome of one class proof attempt."""

    proved: bool
    reason: str
    #: Global accesses whose translation invariance was established
    #: (0 when refused before the access scan).
    checked_accesses: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.proved


def _refuse(reason: str, checked: int = 0) -> ProofResult:
    return ProofResult(False, reason, checked)


def prove_block_class(
    kernel: Kernel,
    launch: LaunchConfig,
    members: list[tuple[int, int]],
    gmem: GlobalMemory,
    *,
    trace: ClassTrace | None = None,
    max_warp_instructions: int = 2_000_000,
) -> ProofResult:
    """Try to prove every member of a class traces like the anchor.

    ``members`` is the class's full member list; the anchor (minimum
    ctaid) must be the member the engine actually simulates.  Returns a
    :class:`ProofResult`; ``proved=False`` is always sound (the caller
    falls back to probes) and carries the first obstruction found.
    """
    if len(members) < 2:
        return ProofResult(True, "singleton class", 0)

    box = ClassBox.from_members(members)
    if box is None:
        return _refuse("class members do not tile a ctaid rectangle")

    if trace is None:
        trace = trace_block_class(
            kernel,
            launch,
            box,
            max_warp_instructions=max_warp_instructions,
            # The proof reads global accesses, control evidence and the
            # shared_strided flag only; skip the checker's register
            # provenance and per-warp shared access records.
            track_registers=False,
            record_shared_accesses=False,
        )

    if not trace.complete:
        index, code, message = trace.incomplete
        return _refuse(f"analysis incomplete at instruction {index}: {message} ({code})")
    if trace.nonuniform_control:
        index, kind = trace.nonuniform_control[0]
        return _refuse(
            f"control flow varies across the class ({kind} at instruction {index})"
        )

    if trace.shared_strided is not None:
        return _refuse(
            "shared address at instruction "
            f"{trace.shared_strided[0]} varies across the class"
        )

    checked = 0
    for access in trace.global_accesses:
        if access.unknown:
            return _refuse(
                f"global address at instruction {access.index} is data-dependent"
            )
        result = _check_global_access(access, box, launch, gmem)
        if result is not None:
            return _refuse(result, checked)
        checked += 1
    return ProofResult(True, "affine translation invariance", checked)


def _check_global_access(access, box: ClassBox, launch, gmem) -> str | None:
    """One access's obstruction to translation invariance, or None."""
    # Degenerate box dimensions never shift: zero the irrelevant stride.
    sx = access.stride_x if box.x1 > box.x0 else np.zeros_like(access.stride_x)
    sy = access.stride_y if box.y1 > box.y0 else np.zeros_like(access.stride_y)

    for half in (access.lanes < HALF_WARP, access.lanes >= HALF_WARP):
        if not half.any():
            continue
        hx, hy = sx[half], sy[half]
        if (hx != hx[0]).any() or (hy != hy[0]).any():
            return (
                f"instruction {access.index}: mixed ctaid strides "
                "within one half-warp"
            )
        stride_x, stride_y = int(hx[0]), int(hy[0])
        if stride_x == 0 and stride_y == 0:
            continue
        if launch.record_segments:
            return (
                f"instruction {access.index}: absolute segment addresses "
                "are recorded and the address shifts across members"
            )
        aligned = (
            stride_x % _SEGMENT_MODULUS == 0
            and stride_y % _SEGMENT_MODULUS == 0
        )
        addresses = access.addresses[half]
        lone = (
            len(set(addresses.tolist())) == 1
            and stride_x % 4 == 0
            and stride_y % 4 == 0
        )
        if not (aligned or lone):
            return (
                f"instruction {access.index}: ctaid stride "
                f"({stride_x}, {stride_y}) neither segment-aligned nor a "
                "lone-address shift"
            )

    # Containment: every member's access range must stay inside the
    # allocation the anchor touches, so array names, cacheability, and
    # arena bounds replicate exactly.
    lo, hi = box.extremes(sx.astype(float), sy.astype(float))
    span_lo = access.addresses + lo.astype(np.int64)
    span_hi = access.addresses + hi.astype(np.int64) + 4
    for k in range(len(access.addresses)):
        allocation = gmem.allocation_at(int(access.addresses[k]))
        if allocation is None:
            return (
                f"instruction {access.index}: anchor address "
                f"{int(access.addresses[k])} is outside every allocation"
            )
        if int(span_lo[k]) < allocation.base or int(span_hi[k]) > allocation.end:
            return (
                f"instruction {access.index}: shifted access range "
                f"[{int(span_lo[k])}, {int(span_hi[k])}) escapes "
                f"allocation {allocation.name!r}"
            )
    return None
