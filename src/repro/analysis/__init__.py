"""Static analysis over the kernel ISA.

Three layers, bottom to top:

- :mod:`repro.analysis.affine` -- an abstract interpreter that runs the
  kernel in an affine domain, deriving for every register, predicate,
  and address a symbolic form ``a*tid + b*ctaid_x + c*ctaid_y + d`` or
  top, plus a concolic per-class tracer that executes one symbolic
  block per dedup class.
- :mod:`repro.analysis.dedup_proof` -- a segment-alignment proof over
  global-address ctaid strides that certifies block-dedup classes
  without probe simulations.
- :mod:`repro.analysis.symbolic` -- closed-form trace synthesis: under
  a data-freedom coverage gate, a dedup class's representative
  :class:`BlockTrace` is produced without interpreting memory contents,
  byte-identical to the interpreters' output.
- :mod:`repro.analysis.checks` / :mod:`repro.analysis.report` -- the
  kernel static checker (races, OOB, barrier divergence, uninitialized
  reads, dead stores) and the ``repro analyze`` report front-end.
"""

from repro.analysis.affine import (
    LOOP,
    TOP,
    AffineForm,
    ClassBox,
    ClassTrace,
    KernelAffineSummary,
    affine_summary,
    trace_block_class,
)
from repro.analysis.checks import Diagnostic, check_kernel
from repro.analysis.dedup_proof import ProofResult, prove_block_class
from repro.analysis.report import (
    BUILTIN_KERNELS,
    AnalysisCase,
    analysis_case,
    analyze_kernels,
    render_json,
    render_text,
)
from repro.analysis.symbolic import (
    SynthesisCoverage,
    TraceSynthesizer,
    synthesis_coverage,
    synthesize_block_trace,
)

__all__ = [
    "LOOP",
    "TOP",
    "AffineForm",
    "AnalysisCase",
    "BUILTIN_KERNELS",
    "ClassBox",
    "ClassTrace",
    "Diagnostic",
    "KernelAffineSummary",
    "ProofResult",
    "SynthesisCoverage",
    "TraceSynthesizer",
    "affine_summary",
    "analysis_case",
    "analyze_kernels",
    "check_kernel",
    "prove_block_class",
    "render_json",
    "render_text",
    "synthesis_coverage",
    "synthesize_block_trace",
    "trace_block_class",
]
