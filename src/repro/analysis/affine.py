"""Affine abstract interpretation over the kernel ISA.

Two cooperating interpreters share the instruction semantics of the
functional simulator:

1. :func:`affine_summary` -- a launch-independent fixed-point pass
   (same worklist/join skeleton as ``analyze_dependence`` in
   ``sim/engine.py``) that derives for every register a symbolic form
   ``a*tid + b*ctaid_x + c*ctaid_y + d``, where each coefficient is an
   integer or ``TOP`` and the constant may additionally be ``LOOP``
   (loop-varying).  It summarizes every memory address and guard in
   those terms.

2. :func:`trace_block_class` -- a concolic tracer that executes ONE
   symbolic block per dedup class.  Each lane carries a concrete
   *anchor* value (the class's minimum-ctaid member, evaluated with the
   exact float32/int64 semantics of ``_EVAL_TABLE``) plus two exact
   integer strides ``d(value)/d(ctaid_x)`` and ``d(value)/d(ctaid_y)``
   and a ``top`` flag.  Affine values are exact for every member of the
   class; anything nonlinear in ctaid degrades to ``top``.  Predicates
   additionally track *class uniformity*, decided by evaluating the
   comparison at the corners of the class's ctaid box (an affine
   function attains its extremes at box corners, so corner agreement
   is a proof, not a heuristic).

The tracer is the evidence source for both the dedup soundness proof
(:mod:`repro.analysis.dedup_proof`) and the static checker
(:mod:`repro.analysis.checks`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import WARP_SIZE, GpuSpec
from repro.isa.opcodes import Opcode, OpKind
from repro.isa.program import Kernel
from repro.sim.functional import (
    _CMP_FUNCS,
    _EVAL_TABLE,
    _Decoded,
    LaunchConfig,
)


class _Sentinel:
    """A singleton lattice element (``TOP`` / ``LOOP``)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return self.label


#: Unknown coefficient / constant: the value varies with the index in a
#: way the affine domain cannot express.
TOP = _Sentinel("top")
#: Loop-varying constant: uniform across threads and blocks at any one
#: program point, but different across loop iterations.
LOOP = _Sentinel("loop")


def _is_num(value) -> bool:
    return not isinstance(value, _Sentinel)


def _coeff_join(a, b):
    return a if a == b else TOP


def _const_join(a, b):
    if a == b:
        return a
    if a is TOP or b is TOP:
        return TOP
    return LOOP


def _coeff_add(a, b, sign=1):
    if a is TOP or b is TOP:
        return TOP
    return a + sign * b


def _const_add(a, b, sign=1):
    if a is TOP or b is TOP:
        return TOP
    if a is LOOP or b is LOOP:
        return LOOP
    return a + sign * b


def _coeff_scale(coeff, k):
    if coeff == 0:
        return 0
    if coeff is TOP:
        return TOP
    return coeff * k


def _const_scale(const, k):
    if const is TOP:
        return TOP
    if const is LOOP:
        return LOOP
    return const * k


@dataclass(frozen=True)
class AffineForm:
    """``tid*t + bx*ctaid_x + by*ctaid_y + const`` with TOP/LOOP holes.

    ``data`` marks a (transitive) dependence on memory contents.
    """

    tid: object = 0
    bx: object = 0
    by: object = 0
    const: object = 0.0
    data: bool = False

    @property
    def is_number(self) -> bool:
        """A single concrete scalar: all coefficients zero, known const."""
        return (
            self.tid == 0
            and self.bx == 0
            and self.by == 0
            and _is_num(self.const)
        )

    @property
    def affine(self) -> bool:
        """No TOP coefficient and no memory dependence."""
        return (
            self.tid is not TOP
            and self.bx is not TOP
            and self.by is not TOP
            and not self.data
        )

    @property
    def tags(self) -> frozenset[str]:
        """Which launch indices the value depends on."""
        out = set()
        if self.tid != 0:
            out.add("tid")
        if self.bx != 0:
            out.add("ctaid_x")
        if self.by != 0:
            out.add("ctaid_y")
        if self.const is LOOP:
            out.add("loop")
        if self.data:
            out.add("data")
        return frozenset(out)

    def join(self, other: AffineForm) -> AffineForm:
        return AffineForm(
            _coeff_join(self.tid, other.tid),
            _coeff_join(self.bx, other.bx),
            _coeff_join(self.by, other.by),
            _const_join(self.const, other.const),
            self.data or other.data,
        )

    def plus(self, other: AffineForm, sign: int = 1) -> AffineForm:
        return AffineForm(
            _coeff_add(self.tid, other.tid, sign),
            _coeff_add(self.bx, other.bx, sign),
            _coeff_add(self.by, other.by, sign),
            _const_add(self.const, other.const, sign),
            self.data or other.data,
        )

    def scaled(self, k: float) -> AffineForm:
        if k == 0:
            return AffineForm(data=self.data)
        return AffineForm(
            _coeff_scale(self.tid, k),
            _coeff_scale(self.bx, k),
            _coeff_scale(self.by, k),
            _const_scale(self.const, k),
            self.data,
        )

    def widened(self, tags: frozenset[str]) -> AffineForm:
        """Poison the dimensions named by ``tags`` (guarded writes)."""
        return AffineForm(
            TOP if "tid" in tags else self.tid,
            TOP if "ctaid_x" in tags else self.bx,
            TOP if "ctaid_y" in tags else self.by,
            LOOP if "loop" in tags and _is_num(self.const) else self.const,
            self.data or "data" in tags,
        )

    def describe(self) -> str:
        parts = []
        coeffs = ((self.tid, "tid"), (self.bx, "ctaid_x"), (self.by, "ctaid_y"))
        for coeff, name in coeffs:
            if coeff is TOP:
                parts.append(f"top*{name}")
            elif coeff != 0:
                parts.append(f"{_fmt_num(coeff)}*{name}")
        if self.const is TOP:
            parts.append("top")
        elif self.const is LOOP:
            parts.append("loop")
        elif self.const != 0 or not parts:
            parts.append(_fmt_num(self.const))
        text = " + ".join(parts)
        if self.data:
            text += " [data]"
        return text


def _fmt_num(value) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


_TOP_FORM = AffineForm(TOP, TOP, TOP, TOP, data=True)
_SPECIAL_FORMS = {
    "tid": AffineForm(tid=1),
    "ctaid_x": AffineForm(bx=1),
    "ctaid_y": AffineForm(by=1),
}
#: Launch-uniform but statically unknown scalar.
_UNIFORM_UNKNOWN = AffineForm(const=TOP)

_LINEAR_SIGN = {Opcode.IADD: 1, Opcode.ISUB: -1}

_LOAD_KINDS = (OpKind.LOAD_GLOBAL, OpKind.LOAD_SHARED)
_STORE_KINDS = (OpKind.STORE_GLOBAL, OpKind.STORE_SHARED)


# --------------------------------------------------------------------------
# Launch-independent fixed-point pass
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AddressSummary:
    """Symbolic form of one memory instruction's byte address."""

    index: int
    space: str  # 'global' | 'shared'
    store: bool
    form: AffineForm


@dataclass(frozen=True)
class KernelAffineSummary:
    """What the affine fixed point proved about a kernel."""

    kernel: str
    addresses: tuple[AddressSummary, ...]
    guards: dict[int, frozenset[str]]

    @property
    def affine(self) -> bool:
        """Every address affine and every guard memory-independent."""
        return all(a.form.affine for a in self.addresses) and all(
            "data" not in deps for deps in self.guards.values()
        )


class _AffineState:
    """Join-semilattice state at one program point."""

    __slots__ = ("regs", "preds", "smem")

    def __init__(self, regs, preds, smem):
        self.regs = regs
        self.preds = preds
        self.smem = smem

    def copy(self) -> _AffineState:
        return _AffineState(list(self.regs), list(self.preds), self.smem)

    def join(self, other: _AffineState) -> bool:
        changed = False
        for i, form in enumerate(other.regs):
            merged = self.regs[i].join(form)
            if merged != self.regs[i]:
                self.regs[i] = merged
                changed = True
        for i, deps in enumerate(other.preds):
            merged = self.preds[i] | deps
            if merged != self.preds[i]:
                self.preds[i] = merged
                changed = True
        merged = self.smem.join(other.smem)
        if merged != self.smem:
            self.smem = merged
            changed = True
        return changed


def _static_operand(state: _AffineState, launch, src) -> AffineForm:
    kind = src[0]
    if kind == "reg":
        return state.regs[src[1]]
    if kind == "imm":
        return AffineForm(const=src[1])
    if kind == "special":
        name = src[1]
        if name in _SPECIAL_FORMS:
            return _SPECIAL_FORMS[name]
        if launch is not None:
            if name == "ntid":
                return AffineForm(const=float(launch.block_threads))
            if name == "nctaid_x":
                return AffineForm(const=float(launch.grid[0]))
            if name == "nctaid_y":
                return AffineForm(const=float(launch.grid[1]))
        return _UNIFORM_UNKNOWN
    if kind == "mem":  # shared operand of an arithmetic instruction
        return state.smem
    raise AssertionError(f"unexpected static operand {src!r}")


def _static_transfer(op: Opcode, forms: list[AffineForm]) -> AffineForm:
    """Abstract version of one ``_EVAL_TABLE`` entry."""
    if op is Opcode.MOV:
        return forms[0]
    if op in _LINEAR_SIGN:
        return forms[0].plus(forms[1], _LINEAR_SIGN[op])
    if op in (Opcode.IMUL, Opcode.IMAD):
        a, b = forms[0], forms[1]
        if b.is_number:
            prod = a.scaled(float(b.const))
        elif a.is_number:
            prod = b.scaled(float(a.const))
        else:
            prod = _opaque(a, b)
        if op is Opcode.IMAD:
            prod = prod.plus(forms[2])
        return prod
    if op is Opcode.ISHL and forms[1].is_number:
        return forms[0].scaled(float(2 ** int(forms[1].const)))
    return _opaque(*forms)


def _opaque(*forms: AffineForm) -> AffineForm:
    """Nonlinear combination: keep only which-index-it-varies-with."""
    tid = 0 if all(f.tid == 0 for f in forms) else TOP
    bx = 0 if all(f.bx == 0 for f in forms) else TOP
    by = 0 if all(f.by == 0 for f in forms) else TOP
    if any(f.const is TOP for f in forms) or TOP in (tid, bx, by):
        const: object = TOP
    elif any(f.const is LOOP for f in forms):
        const = LOOP
    else:
        const = TOP  # concrete folding is the tracer's job
    return AffineForm(tid, bx, by, const, any(f.data for f in forms))


def _mem_operand(instr: _Decoded):
    """The (space, base, offset) a decoded instruction touches, if any."""
    if instr.dst_mem is not None:
        return instr.dst_mem
    if instr.kind in _LOAD_KINDS:
        _, base, offset = instr.srcs[0]
        space = "global" if instr.kind == OpKind.LOAD_GLOBAL else "shared"
        return (space, base, offset)
    for src in instr.srcs:
        if src[0] == "mem":  # arithmetic shared operand
            return ("shared", src[1], src[2])
    return None


def _weak_write(
    state: _AffineState, reg: int, result: AffineForm, guard_tags: frozenset[str]
) -> None:
    """Guarded writes widen by the guard's tags and weak-join the old value."""
    result = result.widened(guard_tags)
    if guard_tags:
        result = state.regs[reg].join(result)
    state.regs[reg] = result


def affine_summary(
    kernel: Kernel, launch: LaunchConfig | None = None
) -> KernelAffineSummary:
    """Run the affine fixed point over the kernel CFG.

    ``launch`` optionally binds parameter registers and grid specials to
    concrete values, sharpening multiplications by runtime scalars
    (e.g. ``row * n``); without it those factors stay symbolic.
    """
    decoded = [_Decoded(instr, kernel.labels) for instr in kernel.instructions]
    nregs = max(kernel.num_registers, 1)
    npreds = max(kernel.num_predicates, 1)

    init_regs = [AffineForm() for _ in range(nregs)]
    for name in kernel.params:
        reg = kernel.param_regs[name]
        if launch is not None and name in launch.params:
            init_regs[reg] = AffineForm(const=float(launch.params[name]))
        else:
            init_regs[reg] = _UNIFORM_UNKNOWN
    entry = _AffineState(init_regs, [frozenset()] * npreds, AffineForm())

    states: list[_AffineState | None] = [None] * (len(decoded) + 1)
    states[0] = entry
    worklist = [0]
    addresses: dict[int, AddressSummary] = {}
    guards: dict[int, frozenset[str]] = {}

    while worklist:
        index = worklist.pop()
        if index >= len(decoded):
            continue
        state = states[index].copy()
        instr = decoded[index]
        kind = instr.kind

        guard_tags: frozenset[str] = frozenset()
        if instr.guard is not None:
            guard_tags = state.preds[instr.guard[0]]
            guards[index] = guards.get(index, frozenset()) | guard_tags

        mem = _mem_operand(instr)
        if mem is not None:
            space, base, offset = mem
            form = AffineForm(const=float(offset))
            if base >= 0:
                form = form.plus(state.regs[base])
            prev = addresses.get(index)
            if prev is not None:
                form = prev.form.join(form)
            addresses[index] = AddressSummary(
                index, space, instr.dst_mem is not None, form
            )

        new = state

        if kind in (OpKind.ARITH, OpKind.SELECT):
            if instr.opcode is Opcode.SEL:
                pdeps = state.preds[instr.srcs[0][1]]
                a = _static_operand(state, launch, instr.srcs[1])
                b = _static_operand(state, launch, instr.srcs[2])
                result = a.join(b).widened(pdeps)
            else:
                forms = [_static_operand(state, launch, s) for s in instr.srcs]
                result = _static_transfer(instr.opcode, forms)
            _weak_write(new, instr.dst_reg, result, guard_tags)
        elif kind == OpKind.LOAD_GLOBAL:
            _weak_write(new, instr.dst_reg, _TOP_FORM, guard_tags)
        elif kind == OpKind.LOAD_SHARED:
            _weak_write(new, instr.dst_reg, state.smem, guard_tags)
        elif kind == OpKind.STORE_SHARED:
            stored = _static_operand(state, launch, instr.srcs[0])
            addr_tags = addresses[index].form.tags
            new.smem = new.smem.join(stored.widened(guard_tags | addr_tags))
        elif kind == OpKind.SETP:
            a = _static_operand(state, launch, instr.srcs[0])
            b = _static_operand(state, launch, instr.srcs[1])
            deps = a.plus(b, -1).tags | guard_tags
            if guard_tags:
                deps |= state.preds[instr.dst_pred]
            new.preds[instr.dst_pred] = deps
        # STORE_GLOBAL / BRANCH / BARRIER / EXIT / NOP: no state change.

        succs = [index + 1]
        if kind == OpKind.BRANCH and instr.target >= 0:
            succs = [instr.target] if instr.guard is None else [index + 1, instr.target]
        elif kind == OpKind.EXIT:
            succs = []
        for succ in succs:
            if states[succ] is None:
                states[succ] = new.copy()
                worklist.append(succ)
            elif states[succ].join(new):
                worklist.append(succ)

    ordered = tuple(addresses[i] for i in sorted(addresses))
    return KernelAffineSummary(kernel.name, ordered, guards)


# --------------------------------------------------------------------------
# Concolic per-class tracer
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassBox:
    """Inclusive ctaid rectangle covered by one dedup class."""

    x0: int
    x1: int
    y0: int
    y1: int

    @classmethod
    def from_members(cls, members) -> ClassBox | None:
        """The bounding box, or None if members don't tile a rectangle."""
        xs = [m[0] for m in members]
        ys = [m[1] for m in members]
        box = cls(min(xs), max(xs), min(ys), max(ys))
        if box.count != len(set(members)):
            return None
        return box

    @property
    def count(self) -> int:
        return (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)

    @property
    def anchor(self) -> tuple[int, int]:
        return (self.x0, self.y0)

    @property
    def deltas(self) -> tuple[tuple[int, int], ...]:
        """Corner offsets relative to the anchor."""
        dx, dy = self.x1 - self.x0, self.y1 - self.y0
        corners = {(0, 0), (dx, 0), (0, dy), (dx, dy)}
        return tuple(sorted(corners))

    def extremes(self, sx: np.ndarray, sy: np.ndarray):
        """Min/max over the box of ``sx*dx + sy*dy`` (affine => corners)."""
        offsets = np.stack([sx * dx + sy * dy for dx, dy in self.deltas])
        return offsets.min(axis=0), offsets.max(axis=0)


@dataclass
class GlobalAccess:
    """One global-memory instruction issue observed by the tracer."""

    index: int
    warp: int
    store: bool
    lanes: np.ndarray  # active lane indices within the warp
    addresses: np.ndarray  # anchor byte addresses, int64, one per lane
    stride_x: np.ndarray  # d(address)/d(ctaid_x) per lane, int64
    stride_y: np.ndarray
    unknown: bool = False  # some active lane's address is top


@dataclass
class SharedAccess:
    """One shared-memory touch (load / store / arithmetic operand)."""

    stage: int
    index: int
    warp: int
    kind: str  # 'load' | 'store' | 'operand'
    lanes: np.ndarray
    addresses: np.ndarray  # anchor byte addresses, int64
    strided: bool = False  # address varies across class members
    unknown: bool = False

    @property
    def store(self) -> bool:
        return self.kind == "store"


@dataclass
class ClassTrace:
    """Everything the symbolic execution of one class observed."""

    kernel: str
    box: ClassBox
    stages: int = 0
    global_accesses: list = field(default_factory=list)
    shared_accesses: list = field(default_factory=list)
    #: (index, kind) pairs where control varies across class members.
    nonuniform_control: list = field(default_factory=list)
    #: (index,) of the first shared access whose address varies across
    #: class members, or None.  Recorded even when per-warp shared
    #: access records are disabled (the dedup proof's lean mode).
    shared_strided: tuple | None = None
    #: (index, warp) if a barrier was reached by a divergent warp.
    divergent_barrier: tuple | None = None
    #: (index, code, message) if the trace aborted early.
    incomplete: tuple | None = None
    #: (index, register) pairs reading a never-written register.
    uninit_reads: list = field(default_factory=list)
    #: static instruction -> dynamic register-write instances.
    register_writes: dict = field(default_factory=dict)
    #: static instruction -> instances overwritten before any read.
    clobbered_writes: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.incomplete is None


class _Abort(Exception):
    """Internal: the tracer cannot continue soundly."""

    def __init__(self, index: int, code: str, message: str) -> None:
        super().__init__(message)
        self.index = index
        self.code = code
        self.message = message


class _TracerWarp:
    __slots__ = (
        "index",
        "rows",
        "pc",
        "exited",
        "at_barrier",
        "issued",
        "cur",
        "converged",
    )

    def __init__(self, index: int, alive: np.ndarray) -> None:
        self.index = index
        self.rows = np.arange(
            index * WARP_SIZE, (index + 1) * WARP_SIZE, dtype=np.intp
        )
        self.pc = np.zeros(WARP_SIZE, dtype=np.int64)
        self.exited = ~alive
        self.at_barrier = False
        self.issued = 0
        #: Cached min PC over live lanes; maintained incrementally
        #: (straight-line steps advance it without a reduction).
        self.cur = 0
        #: True while every lane is alive at the same PC -- the step
        #: mask is then all-ones and never needs to be computed.  Sticky
        #: False once the warp diverges or loses a lane (conservative:
        #: reconvergence is not detected, only costs the fast path).
        self.converged = bool(alive.all())

    @property
    def done(self) -> bool:
        return bool(self.exited.all())

    def recompute_cur(self) -> None:
        if not self.done:
            self.cur = int(self.pc[~self.exited].min())


class _Group:
    """Warps executing the same instruction in one batched step.

    ``rows`` stacks the member warps' register-file rows (warp-index
    order), so every array in a step is ``(len(warps) * 32,)`` and the
    slice ``[i*32:(i+1)*32]`` recovers warp ``warps[i]``.  Built by
    :meth:`_ClassTracer._make_group`, which caches ``rows`` per warp
    combination and shares a read-only all-ones ``mask`` whenever every
    member warp is converged (``converged`` is then True).
    """

    __slots__ = ("warps", "rows", "mask", "n", "converged")

    def __init__(
        self, warps: list, rows: np.ndarray, mask: np.ndarray, converged: bool
    ) -> None:
        self.warps = warps
        self.rows = rows
        self.mask = mask
        self.n = len(warps) * WARP_SIZE
        self.converged = converged


#: Lane indices of a fully-active warp, shared by every access record.
_FULL_WARP_LANES = np.arange(WARP_SIZE)
_FULL_WARP_LANES.setflags(write=False)


class _Sym:
    """A per-lane symbolic value: anchor + ctaid strides + top mask.

    ``strided`` is computed lazily and cached: callers must not rebind
    ``sx``/``sy`` after the first ``strided`` access (in practice the
    arrays are only assigned while a sym is being constructed).
    """

    __slots__ = ("val", "sx", "sy", "top", "_strided")

    def __init__(self, val, sx=None, sy=None, top=None):
        self.val = val
        self.sx = np.zeros(val.shape) if sx is None else sx
        self.sy = np.zeros(val.shape) if sy is None else sy
        self.top = np.zeros(val.shape, dtype=bool) if top is None else top
        self._strided = None

    @property
    def strided(self) -> np.ndarray:
        if self._strided is None:
            self._strided = (self.sx != 0) | (self.sy != 0)
        return self._strided


#: Comparison -> class-uniformity test given the (lo, hi) range over the
#: class box of the operand difference ``f = a - b``.  An order
#: comparison cuts a half-space, so the box lies wholly inside or
#: outside iff its corners do.  Equality needs the zero-crossing tests:
#: ``f == 0`` everywhere (corner-pinned) or ``f != 0`` everywhere (the
#: box range excludes zero) -- corner *agreement* alone would miss an
#: interior zero crossing.
_UNIFORM_TESTS = {
    "lt": lambda lo, hi: (hi < 0) | (lo >= 0),
    "le": lambda lo, hi: (hi <= 0) | (lo > 0),
    "gt": lambda lo, hi: (lo > 0) | (hi <= 0),
    "ge": lambda lo, hi: (lo >= 0) | (hi < 0),
    "eq": lambda lo, hi: ((lo == 0) & (hi == 0)) | (lo > 0) | (hi < 0),
    "ne": lambda lo, hi: ((lo == 0) & (hi == 0)) | (lo > 0) | (hi < 0),
}


class _ClassTracer:
    def __init__(
        self,
        kernel: Kernel,
        launch: LaunchConfig,
        box: ClassBox,
        max_warp_instructions: int,
        track_registers: bool = True,
        record_shared_accesses: bool = True,
    ) -> None:
        self.kernel = kernel
        self.launch = launch
        self.box = box
        self.max_warp_instructions = max_warp_instructions
        self.track_registers = track_registers
        self.record_shared_accesses = record_shared_accesses
        self.decoded = [_Decoded(i, kernel.labels) for i in kernel.instructions]

        threads = launch.block_threads
        num_warps = launch.warps_per_block
        padded = num_warps * WARP_SIZE
        nregs = max(kernel.num_registers, 1)
        npreds = max(kernel.num_predicates, 1)
        lane_ids = np.arange(WARP_SIZE)

        self.R = np.zeros((padded, nregs))
        self.RSX = np.zeros((padded, nregs))
        self.RSY = np.zeros((padded, nregs))
        self.RTOP = np.zeros((padded, nregs), dtype=bool)
        self.RW = np.zeros((padded, nregs), dtype=bool)
        for name, value in launch.params.items():
            reg = kernel.param_regs[name]
            self.R[:, reg] = float(value)
            self.RW[:, reg] = True

        # Predicates default to False on every member, hence uniform and
        # known: guarded-SETP-then-branch is an established idiom.
        self.P = np.zeros((padded, npreds), dtype=bool)
        self.PU = np.ones((padded, npreds), dtype=bool)
        self.PK = np.ones((padded, npreds), dtype=bool)

        # Monotone dirty flags: once a register column (or predicate)
        # may carry a stride / top / nonuniformity, its flag sticks.
        # A False flag lets operand fetches and guard checks skip the
        # gather entirely and reuse a shared read-only zero array --
        # the dominant per-step saving on affine kernels, where almost
        # every register is stride-free.
        self.reg_sx_dirty = [False] * nregs
        self.reg_sy_dirty = [False] * nregs
        self.reg_top_dirty = [False] * nregs
        self.pred_unknown = [False] * npreds
        self.pred_nonuniform = [False] * npreds
        self._zero_f: dict = {}
        self._zero_b: dict = {}
        self._one_b: dict = {}
        #: Concatenated row indices per warp combination, built once.
        self._rows_cache: dict = {}

        words = kernel.shared_memory_words
        self.smem_bytes = words * 4
        self.SM = np.zeros(max(words, 1))
        self.SMSX = np.zeros(max(words, 1))
        self.SMSY = np.zeros(max(words, 1))
        self.SMTOP = np.zeros(max(words, 1), dtype=bool)
        #: Set once a store lands at a class-varying address; every
        #: later load is top.
        self.smem_poisoned = False
        #: Monotone: some shared word may carry a stride / top value.
        self.smem_sxy_dirty = False
        self.smem_top_dirty = False

        self.tid = np.arange(padded, dtype=float)
        self.special_scalars = {
            "ntid": float(threads),
            "ctaid_x": float(box.x0),
            "ctaid_y": float(box.y0),
            "nctaid_x": float(launch.grid[0]),
            "nctaid_y": float(launch.grid[1]),
        }

        self.warps = [
            _TracerWarp(w, (w * WARP_SIZE + lane_ids) < threads)
            for w in range(num_warps)
        ]
        self.stage = 0
        self.trace = ClassTrace(kernel.name, box)
        self._nonuniform_seen: set = set()
        self._uninit_seen: set = set()
        # Dead-store bookkeeping: which static instruction last wrote
        # each (lane, register), and whether that write was read since.
        self.last_writer = np.full((padded, nregs), -1, dtype=np.int64)
        self.read_since = np.zeros((padded, nregs), dtype=bool)

    # -- shared immutable scratch ------------------------------------------

    def _zeros(self, n: int) -> np.ndarray:
        arr = self._zero_f.get(n)
        if arr is None:
            arr = np.zeros(n)
            arr.setflags(write=False)
            self._zero_f[n] = arr
        return arr

    def _zerob(self, n: int) -> np.ndarray:
        arr = self._zero_b.get(n)
        if arr is None:
            arr = np.zeros(n, dtype=bool)
            arr.setflags(write=False)
            self._zero_b[n] = arr
        return arr

    def _oneb(self, n: int) -> np.ndarray:
        arr = self._one_b.get(n)
        if arr is None:
            arr = np.ones(n, dtype=bool)
            arr.setflags(write=False)
            self._one_b[n] = arr
        return arr

    # -- driver ------------------------------------------------------------

    def run(self) -> ClassTrace:
        try:
            with np.errstate(all="ignore"):
                while True:
                    self._run_interval()
                    waiting = [w for w in self.warps if w.at_barrier]
                    if not waiting:
                        break
                    for warp in waiting:
                        warp.at_barrier = False
                    self.stage += 1
        except _Abort as abort:
            self.trace.incomplete = (abort.index, abort.code, abort.message)
        self.trace.stages = self.stage + 1
        return self.trace

    def _run_interval(self) -> None:
        """Run every warp to its next barrier (or exit), in lockstep.

        Warps whose current PC coincides execute as one batched step
        over their stacked rows -- for uniform-control kernels every
        warp of the block shares each step, so the NumPy dispatch
        overhead is paid once per *instruction*, not once per warp.
        Warps at distinct PCs simply land in distinct groups; order
        between groups within one pass is fixed (ascending PC) so
        traces stay deterministic.
        """
        while True:
            groups: dict = {}
            for warp in self.warps:
                if warp.done or warp.at_barrier:
                    continue
                groups.setdefault(warp.cur, []).append(warp)
            if not groups:
                return
            for cur in sorted(groups):
                self._step(cur, groups[cur])

    def _make_group(self, warps: list, cur: int) -> _Group:
        converged = all(w.converged for w in warps)
        if len(warps) == 1:
            warp = warps[0]
            if converged:
                return _Group(warps, warp.rows, self._oneb(WARP_SIZE), True)
            mask = ~warp.exited & (warp.pc == cur)
            return _Group(warps, warp.rows, mask, False)
        key = tuple(w.index for w in warps)
        rows = self._rows_cache.get(key)
        if rows is None:
            rows = np.concatenate([w.rows for w in warps])
            rows.setflags(write=False)
            self._rows_cache[key] = rows
        if converged:
            return _Group(warps, rows, self._oneb(len(warps) * WARP_SIZE), True)
        mask = np.concatenate(
            [
                np.ones(WARP_SIZE, dtype=bool)
                if w.converged
                else ~w.exited & (w.pc == cur)
                for w in warps
            ]
        )
        return _Group(warps, rows, mask, False)

    def _step(self, cur: int, warps: list) -> None:
        decoded = self.decoded[cur]
        kind = decoded.kind

        for warp in warps:
            warp.issued += 1
            if warp.issued > self.max_warp_instructions:
                raise _Abort(
                    cur,
                    "runaway",
                    f"warp {warp.index} exceeded "
                    f"{self.max_warp_instructions} instructions",
                )

        if kind == OpKind.EXIT:
            for warp in warps:
                warp.exited |= warp.pc == cur
                warp.recompute_cur()
            return
        if kind == OpKind.BARRIER:
            for warp in warps:
                if warp.converged:
                    # Every lane alive at the same PC: trivially
                    # converged at the barrier.
                    warp.at_barrier = True
                    warp.pc.fill(cur + 1)
                    warp.cur = cur + 1
                    continue
                alive = ~warp.exited
                mask = alive & (warp.pc == cur)
                if not np.array_equal(mask, alive):
                    self.trace.divergent_barrier = (cur, warp.index)
                    raise _Abort(
                        cur,
                        "barrier-divergence",
                        f"warp {warp.index} reached bar.sync with "
                        f"{int(mask.sum())} of {int(alive.sum())} "
                        "threads converged",
                    )
                warp.at_barrier = True
                warp.pc[alive] = cur + 1
                warp.cur = cur + 1
            return

        group = self._make_group(warps, cur)
        mask = group.mask
        active = self._guard_active(group, decoded, mask, cur)
        if kind == OpKind.BRANCH:
            # A guarded branch taken by only part of a converged warp
            # splits its lanes (sticky: reconvergence is not detected).
            if decoded.target >= 0 and active is not mask:
                for i, warp in enumerate(warps):
                    if not warp.converged:
                        continue
                    taken = active[i * WARP_SIZE : (i + 1) * WARP_SIZE]
                    if not (taken.all() or not taken.any()):
                        warp.converged = False
            for i, warp in enumerate(warps):
                part = slice(i * WARP_SIZE, (i + 1) * WARP_SIZE)
                warp.pc[mask[part]] = cur + 1
                if decoded.target >= 0:
                    warp.pc[active[part]] = decoded.target
                warp.recompute_cur()
            return

        if group.converged:
            for warp in warps:
                warp.cur = cur + 1
                warp.pc.fill(cur + 1)
        else:
            for warp in warps:
                warp.cur = cur + 1
            for i, warp in enumerate(warps):
                warp.pc[mask[i * WARP_SIZE : (i + 1) * WARP_SIZE]] = cur + 1
        if not active.any():
            return
        if self.track_registers:
            self._note_reads(group, decoded, active, cur)
        if kind in (OpKind.ARITH, OpKind.SELECT):
            self._exec_arith(group, decoded, active, cur)
        elif kind == OpKind.SETP:
            self._exec_setp(group, decoded, active, cur)
        elif kind in _LOAD_KINDS:
            self._exec_load(group, decoded, active, cur)
        elif kind in _STORE_KINDS:
            self._exec_store(group, decoded, active, cur)
        # NOP: nothing to do.

    # -- bookkeeping -------------------------------------------------------

    def _guard_active(self, group, decoded, mask, cur) -> np.ndarray:
        if decoded.guard is None:
            return mask
        pidx, want = decoded.guard
        rows = group.rows
        if self.pred_unknown[pidx] and bool(
            (mask & ~self.PK[rows, pidx]).any()
        ):
            raise _Abort(
                cur,
                "data-control",
                f"control depends on a data-dependent predicate %p{pidx}",
            )
        if self.pred_nonuniform[pidx] and bool(
            (mask & ~self.PU[rows, pidx]).any()
        ):
            key = (cur, "guard")
            if key not in self._nonuniform_seen:
                self._nonuniform_seen.add(key)
                self.trace.nonuniform_control.append(key)
        if want:
            return mask & self.P[rows, pidx]
        return mask & ~self.P[rows, pidx]

    def _note_reads(self, group, decoded, active, cur) -> None:
        rows = group.rows
        act_rows = rows[active]
        for reg in decoded.reads:
            unwritten = active & ~self.RW[rows, reg]
            if unwritten.any() and (cur, reg) not in self._uninit_seen:
                self._uninit_seen.add((cur, reg))
                self.trace.uninit_reads.append((cur, reg))
            self.read_since[act_rows, reg] = True

    def _write_reg(self, group, reg, active, sym: _Sym, cur) -> None:
        rows = group.rows
        full = bool(active.all())
        act_rows = rows if full else rows[active]
        if self.track_registers:
            # Dead-store accounting: a write clobbered before any read.
            last = self.last_writer[rows, reg]
            clobbered = active & (last >= 0) & ~self.read_since[rows, reg]
            if clobbered.any():
                writers, counts = np.unique(
                    last[clobbered], return_counts=True
                )
                for writer, count in zip(writers.tolist(), counts.tolist()):
                    self.trace.clobbered_writes[writer] = (
                        self.trace.clobbered_writes.get(writer, 0) + count
                    )
            self.trace.register_writes[cur] = self.trace.register_writes.get(
                cur, 0
            ) + int(active.sum())
            self.last_writer[act_rows, reg] = cur
            self.read_since[act_rows, reg] = False
            self.RW[act_rows, reg] = True

        self.R[act_rows, reg] = sym.val if full else sym.val[active]
        sx, sy, top = sym.sx, sym.sy, sym.top
        if self.reg_sx_dirty[reg] or sx.any():
            self.RSX[act_rows, reg] = sx if full else sx[active]
            self.reg_sx_dirty[reg] = True
        if self.reg_sy_dirty[reg] or sy.any():
            self.RSY[act_rows, reg] = sy if full else sy[active]
            self.reg_sy_dirty[reg] = True
        if self.reg_top_dirty[reg] or top.any():
            self.RTOP[act_rows, reg] = top if full else top[active]
            self.reg_top_dirty[reg] = True

    # -- operand fetch -----------------------------------------------------

    def _operand(self, group, src, active, cur) -> _Sym:
        kind = src[0]
        rows = group.rows
        n = group.n
        if kind == "reg":
            # Fancy-index gathers copy, so the _Sym owns its arrays;
            # clean columns reuse the shared read-only zeros instead.
            reg = src[1]
            return _Sym(
                self.R[rows, reg],
                self.RSX[rows, reg]
                if self.reg_sx_dirty[reg]
                else self._zeros(n),
                self.RSY[rows, reg]
                if self.reg_sy_dirty[reg]
                else self._zeros(n),
                self.RTOP[rows, reg]
                if self.reg_top_dirty[reg]
                else self._zerob(n),
            )
        if kind == "imm":
            return _Sym(
                np.full(n, src[1], dtype=float),
                self._zeros(n),
                self._zeros(n),
                self._zerob(n),
            )
        if kind == "special":
            name = src[1]
            if name == "tid":
                val = self.tid[rows]
            else:
                val = np.full(n, self.special_scalars[name])
            sym = _Sym(val, self._zeros(n), self._zeros(n), self._zerob(n))
            if name == "ctaid_x":
                sym.sx = np.ones(n)
            elif name == "ctaid_y":
                sym.sy = np.ones(n)
            return sym
        if kind == "mem":  # arithmetic shared operand
            return self._read_shared(group, src[1], src[2], active, cur, "operand")
        raise AssertionError(f"unexpected operand {src!r}")

    def _address_sym(self, group, base, offset, active, cur) -> _Sym:
        n = group.n
        if base < 0:
            return _Sym(
                np.full(n, float(offset)),
                self._zeros(n),
                self._zeros(n),
                self._zerob(n),
            )
        addr = self._operand(group, ("reg", base), active, cur)
        if offset:
            addr.val = addr.val + offset
        return addr

    # -- shared memory -----------------------------------------------------

    def _record_shared(
        self, group, addr: _Sym, active, cur, kind, full: bool
    ) -> tuple[np.ndarray, bool]:
        addresses = addr.val.astype(np.int64)
        any_strided = bool(addr.strided[active].any())
        any_top = bool(addr.top[active].any())
        if any_strided and self.trace.shared_strided is None:
            self.trace.shared_strided = (cur,)
        warps = group.warps
        if self.record_shared_accesses:
            for i, warp in enumerate(warps):
                if len(warps) == 1:
                    act, addrs = active, addresses
                    strided, top = addr.strided, addr.top
                else:
                    part = slice(i * WARP_SIZE, (i + 1) * WARP_SIZE)
                    act, addrs = active[part], addresses[part]
                    strided, top = addr.strided[part], addr.top[part]
                if full:
                    lanes = _FULL_WARP_LANES
                else:
                    if not act.any():
                        continue
                    lanes = np.flatnonzero(act)
                    addrs = addrs[lanes]
                self.trace.shared_accesses.append(
                    SharedAccess(
                        self.stage,
                        cur,
                        warp.index,
                        kind,
                        lanes,
                        addrs,
                        any_strided and bool(strided[act].any()),
                        any_top and bool(top[act].any()),
                    )
                )
        if any_top:
            raise _Abort(
                cur, "data-shared", "shared address depends on memory contents"
            )
        hot = addresses if full else addresses[active]
        bad = (hot < 0) | (hot + 4 > self.smem_bytes) | (hot % 4 != 0)
        if bad.any():
            raise _Abort(
                cur,
                "shared-oob",
                f"shared access at byte {int(hot[bad][0])} outside "
                f"[0, {self.smem_bytes}) or misaligned",
            )
        return addresses, any_strided

    def _read_shared(self, group, base, offset, active, cur, kind) -> _Sym:
        addr = self._address_sym(group, base, offset, active, cur)
        full = bool(active.all())
        addresses, any_strided = self._record_shared(
            group, addr, active, cur, kind, full
        )
        n = group.n
        words = (addresses if full else addresses[active]) >> 2
        sxy = self.smem_sxy_dirty
        topd = self.smem_top_dirty or self.smem_poisoned
        if full:
            result = _Sym(
                self.SM[words],
                self.SMSX[words] if sxy else self._zeros(n),
                self.SMSY[words] if sxy else self._zeros(n),
                self.SMTOP[words].copy() if topd else np.zeros(n, dtype=bool),
            )
        else:
            result = _Sym(np.zeros(n))
            result.val[active] = self.SM[words]
            if sxy:
                result.sx[active] = self.SMSX[words]
                result.sy[active] = self.SMSY[words]
            if topd:
                result.top[active] = self.SMTOP[words]
        if self.smem_poisoned:
            result.top[active] = True
        # A class-varying address reads different words per member.
        if any_strided:
            result.top[active] |= addr.strided[active]
        return result

    def _write_shared(self, group, base, offset, value: _Sym, active, cur) -> None:
        addr = self._address_sym(group, base, offset, active, cur)
        full = bool(active.all())
        addresses, any_strided = self._record_shared(
            group, addr, active, cur, "store", full
        )
        if any_strided:
            # Different members write different words: all bets off.
            self.smem_poisoned = True
            self.SMTOP[:] = True
            return
        words = (addresses if full else addresses[active]) >> 2
        self.SM[words] = value.val if full else value.val[active]
        if self.smem_sxy_dirty or value.sx.any() or value.sy.any():
            self.SMSX[words] = value.sx if full else value.sx[active]
            self.SMSY[words] = value.sy if full else value.sy[active]
            self.smem_sxy_dirty = True
        top = value.top if full else value.top[active]
        if self.smem_top_dirty or self.smem_poisoned or top.any():
            self.SMTOP[words] = top | self.smem_poisoned
            self.smem_top_dirty = True

    # -- global memory -----------------------------------------------------

    def _record_global(self, group, addr: _Sym, active, cur, store) -> None:
        addresses = addr.val.astype(np.int64)
        stride_x = addr.sx.astype(np.int64)
        stride_y = addr.sy.astype(np.int64)
        full = bool(active.all())
        any_top = bool(addr.top[active].any())
        warps = group.warps
        for i, warp in enumerate(warps):
            if len(warps) == 1:
                act = active
                addrs, sx, sy, top = addresses, stride_x, stride_y, addr.top
            else:
                part = slice(i * WARP_SIZE, (i + 1) * WARP_SIZE)
                act = active[part]
                addrs, sx, sy = addresses[part], stride_x[part], stride_y[part]
                top = addr.top[part]
            if full:
                lanes = _FULL_WARP_LANES
            else:
                if not act.any():
                    continue
                lanes = np.flatnonzero(act)
                addrs, sx, sy = addrs[lanes], sx[lanes], sy[lanes]
            self.trace.global_accesses.append(
                GlobalAccess(
                    cur,
                    warp.index,
                    store,
                    lanes,
                    addrs,
                    sx,
                    sy,
                    any_top and bool(top[act].any()),
                )
            )

    # -- instruction execution --------------------------------------------

    def _exec_load(self, group, decoded, active, cur) -> None:
        _, base, offset = decoded.srcs[0]
        if decoded.kind == OpKind.LOAD_SHARED:
            result = self._read_shared(group, base, offset, active, cur, "load")
        else:
            addr = self._address_sym(group, base, offset, active, cur)
            self._record_global(group, addr, active, cur, store=False)
            result = _Sym(
                np.zeros(group.n), top=np.ones(group.n, dtype=bool)
            )
        self._write_reg(group, decoded.dst_reg, active, result, cur)

    def _exec_store(self, group, decoded, active, cur) -> None:
        space, base, offset = decoded.dst_mem
        value = self._operand(group, decoded.srcs[0], active, cur)
        if space == "shared":
            self._write_shared(group, base, offset, value, active, cur)
        else:
            addr = self._address_sym(group, base, offset, active, cur)
            self._record_global(group, addr, active, cur, store=True)

    def _exec_arith(self, group, decoded, active, cur) -> None:
        op = decoded.opcode
        if op is Opcode.SEL:
            self._exec_select(group, decoded, active, cur)
            return
        operands = [
            self._operand(group, src, active, cur) for src in decoded.srcs
        ]
        val = _EVAL_TABLE[op]([sym.val for sym in operands])
        val = np.asarray(val, dtype=float)
        if val.ndim == 0:
            val = np.full(group.n, float(val))
        result = _Sym(val)
        for sym in operands:
            result.top = result.top | sym.top

        if op is Opcode.MOV:
            result.sx, result.sy = operands[0].sx, operands[0].sy
        elif op in _LINEAR_SIGN:
            sign = _LINEAR_SIGN[op]
            result.sx = operands[0].sx + sign * operands[1].sx
            result.sy = operands[0].sy + sign * operands[1].sy
        elif op in (Opcode.IMUL, Opcode.IMAD):
            a, b = operands[0], operands[1]
            # (a0 + as*d)(b0 + bs*d) is affine iff one factor is
            # stride-free on every lane; the cross term kills the rest.
            result.sx = a.sx * b.val + b.sx * a.val
            result.sy = a.sy * b.val + b.sy * a.val
            result.top |= a.strided & b.strided
            if op is Opcode.IMAD:
                result.sx = result.sx + operands[2].sx
                result.sy = result.sy + operands[2].sy
        elif op is Opcode.ISHL:
            a, k = operands[0], operands[1]
            factor = np.exp2(np.where(k.strided | k.top, 0, k.val))
            result.sx = a.sx * factor
            result.sy = a.sy * factor
            result.top |= k.strided
        else:
            # Every other op (float math, right shift, bitwise, min,
            # max) is nonlinear in ctaid: exact when the inputs carry no
            # stride, top otherwise.
            for sym in operands:
                result.top |= sym.strided
        self._write_reg(group, decoded.dst_reg, active, result, cur)

    def _exec_select(self, group, decoded, active, cur) -> None:
        rows = group.rows
        pidx = decoded.srcs[0][1]
        a = self._operand(group, decoded.srcs[1], active, cur)
        b = self._operand(group, decoded.srcs[2], active, cur)
        pred = self.P[rows, pidx]
        result = _Sym(
            np.where(pred, a.val, b.val),
            np.where(pred, a.sx, b.sx),
            np.where(pred, a.sy, b.sy),
            np.where(pred, a.top, b.top),
        )
        # Members with a different predicate pick the other arm.
        if self.pred_unknown[pidx] or self.pred_nonuniform[pidx]:
            result.top = (
                result.top | ~self.PK[rows, pidx] | ~self.PU[rows, pidx]
            )
        self._write_reg(group, decoded.dst_reg, active, result, cur)

    def _exec_setp(self, group, decoded, active, cur) -> None:
        a = self._operand(group, decoded.srcs[0], active, cur)
        b = self._operand(group, decoded.srcs[1], active, cur)
        known = ~(a.top | b.top)
        anchor = _CMP_FUNCS[decoded.cmp](a.val, b.val)
        diff = a.val - b.val
        if a.strided.any() or b.strided.any():
            diff_lo, diff_hi = self.box.extremes(a.sx - b.sx, a.sy - b.sy)
            lo = diff + diff_lo
            hi = diff + diff_hi
        else:
            lo = hi = diff
        uniform = _UNIFORM_TESTS[decoded.cmp](lo, hi)
        full = bool(active.all())
        act_rows = group.rows if full else group.rows[active]
        dst = decoded.dst_pred
        pu = uniform & known
        self.P[act_rows, dst] = anchor if full else anchor[active]
        self.PU[act_rows, dst] = pu if full else pu[active]
        self.PK[act_rows, dst] = known if full else known[active]
        if not pu.all():
            self.pred_nonuniform[dst] = True
        if not known.all():
            self.pred_unknown[dst] = True


def trace_block_class(
    kernel: Kernel,
    launch: LaunchConfig,
    box: ClassBox,
    *,
    spec: GpuSpec | None = None,
    max_warp_instructions: int = 2_000_000,
    track_registers: bool = True,
    record_shared_accesses: bool = True,
) -> ClassTrace:
    """Symbolically execute one block class over its ctaid box.

    Returns a :class:`ClassTrace` holding every memory access with its
    anchor address and exact ctaid strides, control-uniformity evidence,
    and the checker's raw material (uninitialized reads, write/clobber
    counts, divergence).  ``trace.complete`` is False when the kernel
    left the affine domain in a way that blocks further progress; the
    trace still holds everything observed up to that point.

    ``track_registers=False`` drops the register-provenance bookkeeping
    (uninitialized reads, write/clobber counts) and
    ``record_shared_accesses=False`` drops per-warp shared access
    records (``trace.shared_strided`` still flags class-varying shared
    addresses) -- the dedup proof consumes neither; global accesses and
    control evidence are unaffected.
    """
    del spec  # reserved: bounds come from the kernel's own declaration
    tracer = _ClassTracer(
        kernel,
        launch,
        box,
        max_warp_instructions,
        track_registers,
        record_shared_accesses,
    )
    return tracer.run()
