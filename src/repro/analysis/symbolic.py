"""Symbolic trace synthesis: O(program) BlockTraces for affine kernels.

The interpreters pay O(instructions x warps x blocks) for a full-grid
trace.  For the kernels the dedup engine proves homogeneous, that cost
is almost entirely redundant: every block of a proved class replays the
representative's trace, so only the *representative* needs a trace at
all -- and its trace does not need the memory contents to exist.

This module synthesizes a class representative's :class:`BlockTrace`
from the program alone:

* **Coverage gate.**  Synthesis is offered only when the taint analysis
  (:func:`repro.sim.engine.analyze_dependence`) shows that no control
  flow, shared address, or global address can depend on global-memory
  *contents*, and the affine fixed point
  (:func:`repro.analysis.affine.affine_summary`) confirms every address
  and guard is data-free (loop-carried pointers may widen to TOP -- the
  synthesizer re-executes the loop, so only *data* taint is fatal).
  Under that gate, loaded values can only flow into stored data --
  never into anything a trace records -- so executing the anchor with
  zeroed loads is trace-equivalent to executing it with the real arena.
  SpMV and other data-dependent kernels are refused and fall back to
  the batched interpreter.
* **Symbolic execution.**  :class:`TraceSynthesizer` walks the anchor
  block once per class with the per-warp reference schedule (min-PC
  reconvergence, barrier-delimited stages), recording the exact event
  streams, dependence distances, and per-stage statistics the
  interpreters would -- but it never reads or writes global memory, and
  it counts memory traffic in closed form: coalescing segment counts
  and bytes through :func:`repro.memory.coalescing.affine_transactions`
  and bank-conflict degrees through
  :func:`repro.memory.banks.affine_conflict_degree`, both derived from
  the affine lane strides the kernels' address arithmetic produces (a
  non-affine half-warp falls back to the exact protocol, so the counts
  are always exact).
* **Byte identity.**  The result is rebuilt through
  :meth:`BlockTrace.from_synthesis`, which canonicalizes stage mappings
  and coerces event fields, so a synthesized trace pickles to exactly
  the bytes the interpreters produce.  ``trace_mode="both"`` in the
  engine enforces this on every run that interprets alongside.

The cost per class is O(program trace length x warps per block) --
independent of the grid -- and the engine synthesizes at most one trace
per dedup class, so full-grid traces of affine kernels cost
O(classes x program) instead of O(blocks x program).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import GTX285, GpuSpec, WARP_SIZE
from repro.isa.program import Kernel
from repro.memory.banks import warp_transactions_affine
from repro.memory.coalescing import coalesce_warp, coalesce_warp_affine
from repro.sim.engine import KernelDependence, analyze_dependence
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.trace import EV_GLOBAL_LD, EV_GLOBAL_ST, EV_SHARED, BlockTrace
from repro.analysis.affine import KernelAffineSummary, affine_summary

__all__ = [
    "SynthesisCoverage",
    "TraceSynthesizer",
    "synthesis_coverage",
    "synthesize_block_trace",
]


@dataclass(frozen=True)
class SynthesisCoverage:
    """Whether a launch is eligible for trace synthesis, and why not."""

    covered: bool
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.covered


def synthesis_coverage(
    kernel: Kernel,
    launch: LaunchConfig,
    *,
    dependence: KernelDependence | None = None,
    summary: KernelAffineSummary | None = None,
) -> SynthesisCoverage:
    """Static gate for zero-memory synthesis of a launch's traces.

    Refusal is always sound -- the engine falls back to the batched
    interpreter -- and carries the first obstruction found.  Both
    analyses can be passed in when the caller already ran them.
    """
    if dependence is None:
        dependence = analyze_dependence(kernel)
    if dependence.data_dependent:
        return SynthesisCoverage(
            False,
            "global-memory contents can steer control flow or addresses",
        )
    if summary is None:
        summary = affine_summary(kernel, launch)
    # Loop-carried pointers widen to TOP coefficients without being any
    # less replayable -- the synthesizer re-executes the loop.  What it
    # cannot replay is an address derived from global-memory *contents*,
    # so the summary gate is data-freedom, not full affine closure.
    if any(address.form.data for address in summary.addresses):
        return SynthesisCoverage(
            False, "a memory address is derived from loaded data"
        )
    if any("data" in deps for deps in summary.guards.values()):
        return SynthesisCoverage(
            False, "a branch guard is derived from loaded data"
        )
    return SynthesisCoverage(True, "data-free control and addressing")


class _SynthesisSimulator(FunctionalSimulator):
    """The per-warp reference schedule with memory contents elided.

    Inherits the oracle's scheduling, issue accounting, and dependence
    tracking wholesale (so those stay byte-identical by construction)
    and overrides only the memory instructions: global loads deposit
    zeros without touching the arena (sound under
    :func:`synthesis_coverage`), global stores skip the write, and all
    traffic statistics come from the closed-form affine counters with
    exact fallback.  Shared memory keeps real values -- block-uniform
    and tid-derived data legitimately round-trips through it into
    addresses.
    """

    def __init__(
        self,
        kernel: Kernel,
        gmem: GlobalMemory,
        spec: GpuSpec = GTX285,
        max_warp_instructions: int = 50_000_000,
    ) -> None:
        # The per-warp path, not the batched one: a synthesizer runs one
        # block per dedup class, where slab batching has nothing to win.
        super().__init__(
            kernel,
            gmem=gmem,
            spec=spec,
            max_warp_instructions=max_warp_instructions,
            batched=False,
        )

    def _fetch(self, run, warp, operand, active):
        tag = operand[0]
        if tag != "mem":
            return super()._fetch(run, warp, operand, active)
        base_idx, offset = operand[1], operand[2]
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        addresses = addresses.astype(np.int64)
        values = np.zeros(WARP_SIZE)
        if active.any():
            values[active] = run.smem.read(addresses[active])
            if base_idx < 0:
                halves = self._active_halfwarps(active)
                txn = (values, halves, halves)
            else:
                actual, ideal = warp_transactions_affine(
                    addresses, active, self._bank_config
                )
                txn = (values, actual, ideal)
        else:
            txn = (values, 0, 0)
        useful = 4 * int(active.sum())
        run.stage.shared_transactions += txn[1]
        run.stage.shared_transactions_ideal += txn[2]
        run.stage.shared_useful_bytes += useful
        return values, (txn[1], txn[2])

    def _exec_shared(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        addresses = self._shared_addresses(run, warp, base_idx, offset)
        warp_slice = self._warp_slice(warp)
        actual = ideal = 0
        if active.any():
            if is_load:
                values = np.zeros(WARP_SIZE)
                values[active] = run.smem.read(addresses[active])
                run.R[warp_slice, decoded.dst_reg][active] = values[active]
            else:
                store_vals, _ = self._fetch(run, warp, decoded.srcs[0], active)
                run.smem.write(addresses[active], store_vals[active])
            actual, ideal = warp_transactions_affine(
                addresses, active, self._bank_config
            )
        run.stage.shared_transactions += actual
        run.stage.shared_transactions_ideal += ideal
        run.stage.shared_useful_bytes += 4 * int(active.sum())
        self._emit_event(warp, decoded, EV_SHARED, actual, 0, None)

    def _exec_global(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        addresses = addresses.astype(np.int64)

        n_active = int(active.sum())
        stage = run.stage
        stage.global_requests += 1
        stage.global_useful_bytes += 4 * n_active

        primary_txns = 0
        primary_bytes = 0
        segments = None
        cacheable = False
        if n_active:
            if is_load:
                # Zeroed loads: sound because the coverage gate proved
                # loaded values never reach control flow or addressing.
                run.R[warp_slice, decoded.dst_reg][active] = 0.0
            else:
                # The operand fetch's statistics (a shared-memory source
                # counts bank transactions) must still happen; only the
                # arena write is elided.
                self._fetch(run, warp, decoded.srcs[0], active)

            chosen = addresses[active]
            first_address = int(chosen[0])
            allocation = self.gmem.allocation_at(first_address)
            array_name = allocation.name if allocation else "?"
            run.track_global(
                array_name, int(chosen.min()), int(chosen.max()) + 4, is_load
            )
            cacheable = self.gmem.is_cacheable(first_address)
            for position, granularity in enumerate(run.launch.granularities):
                config = self._txn_config(granularity)
                if position == 0 and run.launch.record_segments:
                    # Absolute segment addresses are recorded: take the
                    # exact protocol, whose transaction list is the
                    # event payload.
                    transactions = coalesce_warp(addresses, active, 4, config)
                    count = len(transactions)
                    nbytes = sum(t.size for t in transactions)
                    segments = tuple(
                        (t.address, t.size) for t in transactions
                    )
                else:
                    count, nbytes = coalesce_warp_affine(
                        addresses, active, 4, config
                    )
                stage.global_transactions[granularity] = (
                    stage.global_transactions.get(granularity, 0) + count
                )
                stage.global_bytes[granularity] = (
                    stage.global_bytes.get(granularity, 0) + nbytes
                )
                per_array = stage.global_by_array.setdefault(array_name, {})
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (old[0] + count, old[1] + nbytes)
                if position == 0:
                    primary_txns = count
                    primary_bytes = nbytes

        payload = (cacheable, segments) if segments is not None else None
        event_kind = EV_GLOBAL_LD if is_load else EV_GLOBAL_ST
        self._emit_event(
            warp, decoded, event_kind, primary_txns, primary_bytes, payload
        )


class TraceSynthesizer:
    """Synthesize class-representative traces for one kernel.

    Construct once per (kernel, arena) -- kernel validation and decode
    happen here -- then call :meth:`synthesize` once per dedup class.
    The arena is consulted for allocation metadata (names, bounds,
    cacheability) only; its contents are never read and never written.

    The caller is responsible for the coverage gate
    (:func:`synthesis_coverage`) and, for multi-member classes, for the
    translation-invariance proof
    (:func:`repro.analysis.dedup_proof.prove_block_class`); this class
    synthesizes whatever anchor it is handed.
    """

    def __init__(
        self,
        kernel: Kernel,
        gmem: GlobalMemory,
        spec: GpuSpec = GTX285,
        max_warp_instructions: int = 50_000_000,
    ) -> None:
        self._simulator = _SynthesisSimulator(
            kernel,
            gmem,
            spec=spec,
            max_warp_instructions=max_warp_instructions,
        )

    def synthesize(
        self, launch: LaunchConfig, block: tuple[int, int]
    ) -> BlockTrace:
        """Closed-form :class:`BlockTrace` for one class anchor."""
        trace = self._simulator.run_block(launch, block)
        return BlockTrace.from_synthesis(
            trace.block,
            trace.stages,
            trace.warp_streams,
            trace.global_load_ranges,
            trace.global_store_ranges,
        )


def synthesize_block_trace(
    kernel: Kernel,
    launch: LaunchConfig,
    block: tuple[int, int],
    gmem: GlobalMemory,
    *,
    spec: GpuSpec = GTX285,
    max_warp_instructions: int = 50_000_000,
) -> BlockTrace:
    """One-shot :class:`TraceSynthesizer` convenience wrapper."""
    synthesizer = TraceSynthesizer(
        kernel, gmem, spec=spec, max_warp_instructions=max_warp_instructions
    )
    return synthesizer.synthesize(launch, block)
