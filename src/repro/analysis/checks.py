"""Kernel static checker built on the affine tracer.

Runs the concolic class tracer over every boundary-role block class and
turns its observations into structured diagnostics:

========================  ========  ==========================================
code                      severity  meaning
========================  ========  ==========================================
``shared-race``           error     two warps touch the same shared word in
                                    one barrier interval, at least one writes
``barrier-divergence``    error     a warp reaches ``bar.sync`` with part of
                                    its threads branched away
``shared-oob``            error     shared access outside the kernel's static
                                    footprint, or misaligned
``global-oob``            error     global access outside every allocation,
                                    or escaping its allocation for some block,
                                    or misaligned
``uninit-read``           warning   a register is read before any write
``dead-store``            warning   every dynamic instance of a register
                                    write is overwritten before being read
``nonuniform-control``    info      control flow varies inside a block class
                                    (legal; blocks the dedup proof)
``data-addresses``        info      a global address depends on loaded data
                                    (bounds not statically checkable)
``analysis-incomplete``   info      the tracer left the affine domain and
                                    stopped early
========================  ========  ==========================================

Race checking is scoped to one barrier interval (*stage*): accesses by
the same warp are program-ordered, so only conflicts between different
warps are scheduling-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.program import Kernel
from repro.sim.engine import TAINT_BLOCK, partition_blocks, analyze_dependence
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.analysis.affine import ClassBox, ClassTrace, trace_block_class

#: Severity sort order (most severe first).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, anchored to a static instruction."""

    severity: str  # 'error' | 'warning' | 'info'
    code: str
    kernel: str
    index: int  # static instruction index (-1: kernel-wide)
    message: str
    instruction: str = ""  # rendered instruction text

    def format(self) -> str:
        where = f"{self.kernel}[{self.index}]" if self.index >= 0 else self.kernel
        text = f"{self.severity}: {where}: {self.message} [{self.code}]"
        if self.instruction:
            text += f"\n    {self.instruction}"
        return text


def _sort_key(diag: Diagnostic):
    return (SEVERITIES.index(diag.severity), diag.index, diag.code)


def check_kernel(
    kernel: Kernel,
    launch: LaunchConfig,
    gmem: GlobalMemory | None = None,
    *,
    max_warp_instructions: int = 2_000_000,
) -> list[Diagnostic]:
    """Statically check one kernel under one launch configuration.

    Every boundary-role block class is traced symbolically; findings
    are deduplicated across classes.  ``gmem`` enables global
    out-of-bounds checking against real allocations; without it only
    shared bounds are checked.
    """
    dependence = analyze_dependence(kernel)
    # Partition by block *roles* even for data-dependent kernels: the
    # checker wants coverage of boundary control flow, not dedup; data
    # taint alone would explode the grid into singletons.
    role_dependence = replace(
        dependence,
        control=dependence.control & TAINT_BLOCK,
        shared_addr=dependence.shared_addr & TAINT_BLOCK,
        global_addr=dependence.global_addr & TAINT_BLOCK,
    )
    classes = partition_blocks(launch, role_dependence)

    traces: list[ClassTrace] = []
    for cls in classes:
        box = ClassBox.from_members(cls.members)
        if box is None:  # pragma: no cover - role classes are rectangles
            box = ClassBox(
                min(m[0] for m in cls.members),
                max(m[0] for m in cls.members),
                min(m[1] for m in cls.members),
                max(m[1] for m in cls.members),
            )
        traces.append(
            trace_block_class(
                kernel,
                launch,
                box,
                max_warp_instructions=max_warp_instructions,
            )
        )

    finder = _DiagnosticFinder(kernel)
    for trace in traces:
        finder.scan_trace(trace, gmem)
    finder.scan_dead_stores(traces)
    return sorted(finder.diagnostics, key=_sort_key)


class _DiagnosticFinder:
    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.diagnostics: list[Diagnostic] = []
        self._seen: set = set()

    def emit(self, severity, code, index, message, dedup_key=None) -> None:
        key = dedup_key if dedup_key is not None else (code, index, message)
        if key in self._seen:
            return
        self._seen.add(key)
        instruction = ""
        if 0 <= index < len(self.kernel.instructions):
            instruction = str(self.kernel.instructions[index])
        self.diagnostics.append(
            Diagnostic(
                severity, code, self.kernel.name, index, message, instruction
            )
        )

    # ------------------------------------------------------------------
    def scan_trace(self, trace: ClassTrace, gmem: GlobalMemory | None) -> None:
        box = trace.box
        at = f"blocks ({box.x0},{box.y0})..({box.x1},{box.y1})"

        if trace.divergent_barrier is not None:
            index, warp = trace.divergent_barrier
            self.emit(
                "error",
                "barrier-divergence",
                index,
                f"warp {warp} reaches bar.sync with only part of its "
                f"threads converged ({at})",
                dedup_key=("barrier-divergence", index),
            )
        if trace.incomplete is not None:
            index, code, message = trace.incomplete
            if code == "shared-oob":
                self.emit("error", "shared-oob", index, f"{message} ({at})",
                          dedup_key=("shared-oob", index))
            elif code != "barrier-divergence":
                self.emit(
                    "info",
                    "analysis-incomplete",
                    index,
                    f"static analysis stopped: {message} ({at})",
                    dedup_key=("analysis-incomplete", index),
                )

        for index, kind in trace.nonuniform_control:
            self.emit(
                "info",
                "nonuniform-control",
                index,
                f"{kind} predicate differs between blocks of one class "
                f"({at}); dedup falls back to probes",
                dedup_key=("nonuniform-control", index),
            )

        for index, reg in trace.uninit_reads:
            self.emit(
                "warning",
                "uninit-read",
                index,
                f"register %r{reg} is read before any write",
                dedup_key=("uninit-read", index, reg),
            )

        self._scan_races(trace)
        self._scan_global(trace, gmem)

    # ------------------------------------------------------------------
    def _scan_races(self, trace: ClassTrace) -> None:
        # word -> {warp -> (reads, writes)} per barrier interval.
        intervals: dict = {}
        for access in trace.shared_accesses:
            if access.unknown:
                continue
            for address in set(access.addresses.tolist()):
                slot = intervals.setdefault((access.stage, address >> 2), {})
                slot.setdefault(access.warp, []).append(
                    (access.index, access.store)
                )
        for (stage, word), by_warp in sorted(intervals.items()):
            if len(by_warp) < 2:
                continue
            writers = [
                (warp, index)
                for warp, accesses in by_warp.items()
                for index, store in accesses
                if store
            ]
            if not writers:
                continue
            for warp, index in writers:
                for other_warp, accesses in by_warp.items():
                    if other_warp == warp:
                        continue
                    for other_index, other_store in accesses:
                        verb = "written" if other_store else "read"
                        self.emit(
                            "error",
                            "shared-race",
                            index,
                            f"shared word {word} is written by warp {warp} "
                            f"and {verb} by warp {other_warp} (instruction "
                            f"{other_index}) in barrier interval {stage}",
                            dedup_key=(
                                "shared-race",
                                *sorted((index, other_index)),
                            ),
                        )

    # ------------------------------------------------------------------
    def _scan_global(self, trace: ClassTrace, gmem: GlobalMemory | None) -> None:
        box = trace.box
        for access in trace.global_accesses:
            if access.unknown:
                self.emit(
                    "info",
                    "data-addresses",
                    access.index,
                    "global address depends on loaded data; bounds not "
                    "statically checkable",
                    dedup_key=("data-addresses", access.index),
                )
                continue
            misaligned = access.addresses % 4 != 0
            if misaligned.any():
                self.emit(
                    "error",
                    "global-oob",
                    access.index,
                    f"global access at byte {int(access.addresses[misaligned][0])} "
                    "is not 4-byte aligned",
                    dedup_key=("global-oob", access.index),
                )
                continue
            if gmem is None:
                continue
            lo, hi = box.extremes(
                access.stride_x.astype(float), access.stride_y.astype(float)
            )
            for k in range(len(access.addresses)):
                address = int(access.addresses[k])
                allocation = gmem.allocation_at(address)
                if allocation is None:
                    self.emit(
                        "error",
                        "global-oob",
                        access.index,
                        f"global access at byte {address} is outside every "
                        "allocation",
                        dedup_key=("global-oob", access.index),
                    )
                    break
                span_lo = address + int(lo[k])
                span_hi = address + int(hi[k]) + 4
                if span_lo < allocation.base or span_hi > allocation.end:
                    self.emit(
                        "error",
                        "global-oob",
                        access.index,
                        f"global access range [{span_lo}, {span_hi}) escapes "
                        f"allocation {allocation.name!r} "
                        f"[{allocation.base}, {allocation.end})",
                        dedup_key=("global-oob", access.index),
                    )
                    break

    # ------------------------------------------------------------------
    def scan_dead_stores(self, traces: list[ClassTrace]) -> None:
        # Dead only if *every* class completed (an aborted trace may
        # have stopped before the read) and every dynamic instance
        # across the whole grid was clobbered unread.
        if any(not trace.complete for trace in traces):
            return
        writes: dict[int, int] = {}
        clobbered: dict[int, int] = {}
        for trace in traces:
            for index, count in trace.register_writes.items():
                writes[index] = writes.get(index, 0) + count
            for index, count in trace.clobbered_writes.items():
                clobbered[index] = clobbered.get(index, 0) + count
        for index, total in sorted(writes.items()):
            if total > 0 and clobbered.get(index, 0) == total:
                self.emit(
                    "warning",
                    "dead-store",
                    index,
                    "every value this instruction writes is overwritten "
                    "before being read",
                    dedup_key=("dead-store", index),
                )
