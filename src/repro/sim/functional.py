"""SIMT functional simulator (the paper's Barra analogue).

Executes native kernels warp by warp with lockstep lanes, producing both
correct numerical results and the *dynamic* program statistics the
performance model consumes: warp-level instruction counts by type,
shared-memory transactions corrected for bank conflicts, and coalesced
global-memory transactions (paper Fig. 1's "info extractor" inputs).

Execution model:

* lanes of a warp advance under **min-PC reconvergence**: each step, the
  lanes at the smallest program counter execute together.  This supports
  uniform and divergent structured control flow (if/else, loops with
  per-lane trip counts) and reconverges as soon as PCs meet;
* warps of a block run one synchronization stage at a time; a ``bar``
  splits stages exactly as the paper divides programs by barriers;
* every executed warp-instruction appends a compact event (with its
  register-dependence distance) to the warp's stream so the hardware
  timing simulator can replay it.

Two interpreters implement that model:

* the **block-wide batched interpreter** (default): each step, all
  non-exited, non-barrier warps whose min-PC lands on the same
  instruction execute it *once* over a ``(k_warps, 32)`` slab of the
  block's register file, with vectorized coalescing and bank analysis
  (:func:`repro.memory.coalescing.coalesce_warp_batch`,
  :func:`repro.memory.banks.warp_transactions_batch`).  Convergent
  kernels collapse to one NumPy dispatch per dynamic instruction;
  divergent warps simply form smaller PC-groups, so min-PC semantics
  are unchanged;
* the original **per-warp interpreter** (``batched=False``), kept as
  the reference oracle: differential tests assert the two produce
  bit-identical :class:`BlockTrace`\\ s.

Per-warp semantics are purely local, so batching is only a schedule
change: it is observable solely to kernels with *unsynchronized*
cross-warp memory traffic inside one stage (racy in the CUDA model;
barrier-synchronized communication behaves identically in both modes).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import WARP_SIZE, GpuSpec, GTX285
from repro.errors import (
    DivergenceError,
    LaunchError,
    MemoryAccessError,
    SimulationError,
)
from repro.isa.instructions import Imm, MemRef, Pred, Reg, Special
from repro.isa.opcodes import Opcode, OpKind
from repro.isa.program import Kernel
from repro.isa.validate import validate_kernel
from repro.memory.banks import (
    BankConfig,
    warp_transactions,
    warp_transactions_batch,
)
from repro.memory.coalescing import (
    TransactionConfig,
    coalesce_warp,
    coalesce_warp_multi,
)
from repro.sim.memory import GlobalMemory, SharedMemory
from repro.tune import resolve as tune_resolve
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
    BlockTrace,
    KernelTrace,
    StageStats,
    TYPE_INDEX,
    aggregate_blocks,
)

# Instructions that count as "actual computation" for the paper's
# computational-density metric.  Integer MADs are address bookkeeping.
_MAD_OPS = (Opcode.FMAD, Opcode.DFMA)

#: Environment override for :attr:`FunctionalSimulator.grid_batch_blocks`
#: (historical alias; resolution -- kwarg > env > tuning profile >
#: built-in default -- lives in :func:`repro.tune.resolve`).
GRID_BATCH_BLOCKS_ENV = "REPRO_GRID_BATCH_BLOCKS"


@dataclass(frozen=True)
class LaunchConfig:
    """One kernel launch: grid shape, block size, scalar parameters."""

    grid: tuple[int, int]
    block_threads: int
    params: dict[str, float] = field(default_factory=dict)
    granularities: tuple[int, ...] = (32,)
    record_segments: bool = False

    def __post_init__(self) -> None:
        gx, gy = self.grid
        if gx <= 0 or gy <= 0:
            raise LaunchError("grid dimensions must be positive")
        if self.block_threads <= 0:
            raise LaunchError("block must have at least one thread")
        if not self.granularities:
            raise LaunchError("at least one coalescing granularity is required")

    @property
    def num_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def warps_per_block(self) -> int:
        return -(-self.block_threads // WARP_SIZE)

    def all_blocks(self) -> list[tuple[int, int]]:
        gx, gy = self.grid
        return [(x, y) for y in range(gy) for x in range(gx)]


class _Decoded:
    """Pre-decoded instruction: everything the hot loop needs."""

    __slots__ = (
        "opcode",
        "kind",
        "type_index",
        "guard",
        "target",
        "dst_reg",
        "dst_pred",
        "dst_mem",
        "srcs",
        "reads",
        "writes",
        "preds_read",
        "cmp",
        "is_mad",
        "mnemonic",
        "type_name",
    )

    def __init__(self, instr, labels: dict[str, int]) -> None:
        self.opcode = instr.opcode
        self.kind = instr.opcode.kind
        self.type_name = instr.opcode.instr_type
        self.type_index = TYPE_INDEX[self.type_name]
        self.mnemonic = instr.opcode.mnemonic
        self.guard = (
            (instr.guard[0].index, instr.guard[1]) if instr.guard else None
        )
        self.target = labels[instr.target] if instr.target else -1
        self.dst_reg = instr.dst.index if isinstance(instr.dst, Reg) else -1
        self.dst_pred = instr.dst.index if isinstance(instr.dst, Pred) else -1
        self.dst_mem = None
        if isinstance(instr.dst, MemRef):
            base = instr.dst.base.index if instr.dst.base else -1
            self.dst_mem = (instr.dst.space, base, instr.dst.offset)
        self.srcs = tuple(_decode_operand(s) for s in instr.srcs)
        self.reads = instr.registers_read()
        self.writes = instr.registers_written()
        self.preds_read = tuple(
            s.index for s in instr.srcs if isinstance(s, Pred)
        ) + ((instr.guard[0].index,) if instr.guard else ())
        self.cmp = instr.cmp
        self.is_mad = instr.opcode in _MAD_OPS


def _decode_operand(operand):
    if isinstance(operand, Reg):
        return ("reg", operand.index)
    if isinstance(operand, Imm):
        return ("imm", float(operand.value))
    if isinstance(operand, Special):
        return ("special", operand.name)
    if isinstance(operand, Pred):
        return ("pred", operand.index)
    if isinstance(operand, MemRef):
        base = operand.base.index if operand.base else -1
        return ("mem", base, operand.offset)
    raise SimulationError(f"cannot decode operand {operand!r}")


class _WarpState:
    """Mutable per-warp execution state."""

    __slots__ = (
        "index",
        "pc",
        "exited",
        "at_barrier",
        "stream",
        "reg_producer",
        "pred_producer",
        "issued",
    )

    def __init__(self, index: int, lanes_alive: np.ndarray, num_regs: int, num_preds: int):
        self.index = index
        self.pc = np.zeros(WARP_SIZE, dtype=np.int64)
        self.exited = ~lanes_alive
        self.at_barrier = False
        self.stream: list[tuple] = []
        self.reg_producer = np.full(max(num_regs, 1), -1, dtype=np.int64)
        self.pred_producer = np.full(max(num_preds, 1), -1, dtype=np.int64)
        self.issued = 0

    @property
    def done(self) -> bool:
        return bool(self.exited.all())


_CMP_FUNCS = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


class _IntervalList:
    """Bounded list of disjoint, sorted ``[lo, hi)`` byte intervals.

    Tracks a block's global-memory footprint within one allocation.
    Overlapping or *adjacent* intervals merge on insertion, so the list
    holds the canonical union of everything added -- a pure function of
    the *set* of inserted hulls, independent of insertion order (which
    is what keeps the batched interpreter's instruction-major insertion
    bit-identical to the per-warp oracle's warp-major one).  The final
    :meth:`capped` view widens smallest-gap pairs down to ``cap``
    intervals; mid-run memory is bounded by ``watermark``, beyond which
    the same widening runs eagerly (only then can insertion order show
    through -- far past anything the bundled kernels produce).
    Compared to the previous single ``[lo, hi)`` hull, kernels that
    stride within one shared allocation keep their slices distinct,
    removing cross-block RAW false positives.
    """

    __slots__ = ("spans", "cap", "watermark")

    def __init__(self, cap: int = 8, watermark: int = 64) -> None:
        self.spans: list[tuple[int, int]] = []
        self.cap = cap
        self.watermark = watermark

    def add(self, lo: int, hi: int) -> None:
        spans = self.spans
        n = len(spans)
        if n:
            # Dominant cases first: growing/contained in the hull that
            # an earlier access of the same pattern created.
            index = bisect.bisect_right(spans, (lo, hi))
            if index and spans[index - 1][1] >= hi:
                return  # fully contained in the span left of the cut
            # Find the run [first, stop) of spans overlapping/touching.
            first = index
            if index and spans[index - 1][1] >= lo:
                first = index - 1
            stop = index
            while stop < n and spans[stop][0] <= hi:
                stop += 1
            if first == stop:  # disjoint: plain insertion
                spans.insert(index, (lo, hi))
            else:
                merged = (
                    min(lo, spans[first][0]),
                    max(hi, spans[stop - 1][1]),
                )
                spans[first:stop] = [merged]
        else:
            spans.append((lo, hi))
        if len(spans) > self.watermark:
            _widen_to(spans, self.cap)

    def capped(self) -> list[tuple[int, int]]:
        """The final bounded spans (deterministic given the union)."""
        if len(self.spans) <= self.cap:
            return self.spans
        out = list(self.spans)
        _widen_to(out, self.cap)
        return out


def _widen_to(spans: list[tuple[int, int]], cap: int) -> None:
    """Merge smallest-gap neighbours in place until ``cap`` intervals."""
    while len(spans) > cap:
        gaps = [spans[i + 1][0] - spans[i][1] for i in range(len(spans) - 1)]
        i = gaps.index(min(gaps))
        spans[i : i + 2] = [(spans[i][0], spans[i + 1][1])]


class _BlockRun:
    """All mutable state of one block's execution.

    Bundling the register file, shared memory, stage accumulators and
    launch context into one object makes :meth:`FunctionalSimulator
    .run_block` reentrant: concurrent, nested or interleaved block runs
    on the same simulator instance cannot corrupt each other, which the
    deduplicating engine and its process pool rely on.
    """

    __slots__ = (
        "R",
        "P",
        "smem",
        "launch",
        "block",
        "specials",
        "stages",
        "stage",
        "stage_warps",
        "warps",
        "load_ranges",
        "store_ranges",
    )

    def __init__(
        self,
        kernel: Kernel,
        launch: LaunchConfig,
        block: tuple[int, int],
    ) -> None:
        bx, by = block
        gx, gy = launch.grid
        threads = launch.block_threads
        num_warps = launch.warps_per_block
        padded = num_warps * WARP_SIZE

        self.R = np.zeros((padded, max(kernel.num_registers, 1)), dtype=np.float64)
        self.P = np.zeros((padded, max(kernel.num_predicates, 1)), dtype=bool)
        for name in kernel.params:
            if name not in launch.params:
                raise LaunchError(f"missing launch parameter {name!r}")
            self.R[:, kernel.param_regs[name]] = float(launch.params[name])
        self.smem = SharedMemory(kernel.shared_memory_words)
        self.launch = launch
        self.block = (bx, by)
        self.specials = {
            "ntid": float(threads),
            "ctaid_x": float(bx),
            "ctaid_y": float(by),
            "nctaid_x": float(gx),
            "nctaid_y": float(gy),
        }
        lane_ids = np.arange(WARP_SIZE, dtype=np.int64)
        self.warps = []
        for w in range(num_warps):
            alive = (w * WARP_SIZE + lane_ids) < threads
            self.warps.append(
                _WarpState(w, alive, kernel.num_registers, kernel.num_predicates)
            )
        self.stages = [StageStats()]
        self.stage = self.stages[0]
        self.stage_warps: set[int] = set()
        self.load_ranges: dict[str, _IntervalList] = {}
        self.store_ranges: dict[str, _IntervalList] = {}

    #: Single blocks use their own SharedMemory directly (no arena
    #: translation); the multi-block _GridRun overrides this.
    smem_offsets = None

    def slots(self) -> list:
        return [self]

    def streams(self) -> list[list]:
        return [warp.stream for warp in self.warps]

    def exited_rows(self) -> np.ndarray:
        return np.stack([warp.exited for warp in self.warps])

    def next_stage(self) -> None:
        self.stage.active_warps = len(self.stage_warps)
        self.stage_warps = set()
        self.stage = StageStats()
        self.stages.append(self.stage)

    def track_global(self, array: str, lo: int, hi: int, is_load: bool) -> None:
        """Grow the block's load/store footprint, per allocation.

        Per-allocation bookkeeping keeps the engine's cross-block RAW
        check free of cross-allocation false positives; a bounded
        interval list per allocation (instead of one ``[lo, hi)`` hull)
        additionally keeps *strided* slices within one allocation
        distinct (see :class:`_IntervalList`).
        """
        ranges = self.load_ranges if is_load else self.store_ranges
        intervals = ranges.get(array)
        if intervals is None:
            intervals = ranges[array] = _IntervalList()
        intervals.add(lo, hi)

    def finish(self) -> BlockTrace:
        self.stage.active_warps = len(self.stage_warps)
        for stage in self.stages:
            stage.canonicalize_order()
        streams = [warp.stream for warp in self.warps]
        return BlockTrace(
            block=self.block,
            stages=self.stages,
            warp_streams=streams,
            global_load_ranges=tuple(
                span
                for intervals in self.load_ranges.values()
                for span in intervals.capped()
            ),
            global_store_ranges=tuple(
                span
                for intervals in self.store_ranges.values()
                for span in intervals.capped()
            ),
        )


class _BlockSlot:
    """Per-block bookkeeping inside a multi-block batched run.

    The interpreter's statistics hooks see the same attribute surface
    as :class:`_BlockRun` (stage, stage_warps, footprint intervals,
    per-block stage advance), so single-block and grid runs share one
    accounting code path.
    """

    __slots__ = (
        "block",
        "stages",
        "stage",
        "stage_warps",
        "load_ranges",
        "store_ranges",
    )

    track_global = _BlockRun.track_global
    next_stage = _BlockRun.next_stage

    def __init__(self, block: tuple[int, int]) -> None:
        self.block = block
        self.stages = [StageStats()]
        self.stage = self.stages[0]
        self.stage_warps: set[int] = set()
        self.load_ranges: dict[str, _IntervalList] = {}
        self.store_ranges: dict[str, _IntervalList] = {}


class _GridRun:
    """Stacked execution state for a *batch* of independent blocks.

    Whole batches of blocks ride the batched interpreter as extra warp
    rows: the register/predicate files stack to ``(B * warps_per_block
    * 32, regs)``, shared memory becomes one arena of bank-aligned
    per-block slices, and block-varying specials (``ctaid``) become
    per-row columns.  Per-block statistics, warp streams and footprints
    are routed to :class:`_BlockSlot` entries, so the resulting
    :class:`BlockTrace` objects are bit-identical to running each block
    alone.

    Barrier-synchronized kernels (matmul, cyclic reduction -- the
    paper's headline workloads) batch too: ``bar.sync`` parks only the
    arriving warp's rows, and a block advances its own stage the moment
    *its* warps have all arrived (per-block barrier release, see
    :meth:`_BatchedInterpreter._release_arrived`).  Blocks therefore
    move through their synchronization stages asynchronously within one
    slab; cross-block isolation needs nothing new, because shared
    memory was already per-block arena slices.

    Lockstep execution interleaves blocks, so *cross-block* global
    read-after-write visibility differs from the serial block loop --
    exactly the hazard class the engine's RAW check already reports for
    data-dependent kernels (racy kernels have no defined trace order in
    the CUDA model either way).
    """

    __slots__ = (
        "R",
        "P",
        "smem",
        "smem_offsets",
        "smem_bytes",
        "launch",
        "block_slots",
        "specials",
        "_exited",
    )

    def __init__(
        self,
        kernel: Kernel,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]],
    ) -> None:
        gx, gy = launch.grid
        threads = launch.block_threads
        num_warps = launch.warps_per_block
        num_blocks = len(blocks)
        rows = num_blocks * num_warps
        padded = rows * WARP_SIZE

        self.R = np.zeros((padded, max(kernel.num_registers, 1)), dtype=np.float64)
        self.P = np.zeros((padded, max(kernel.num_predicates, 1)), dtype=bool)
        for name in kernel.params:
            if name not in launch.params:
                raise LaunchError(f"missing launch parameter {name!r}")
            self.R[:, kernel.param_regs[name]] = float(launch.params[name])

        # One bank-aligned shared-memory slice per block: the 64-byte
        # stride keeps every block's bank/word pattern identical to a
        # standalone arena, so conflict counts are unchanged.
        words = kernel.shared_memory_words
        bank_words = 16  # 16 banks x 4-byte words = one 64B bank period
        pad_words = -(-max(words, 1) // bank_words) * bank_words
        self.smem = SharedMemory(pad_words * num_blocks)
        self.smem_bytes = words * 4
        block_of_row = np.repeat(np.arange(num_blocks, dtype=np.int64), num_warps)
        self.smem_offsets = (block_of_row * (pad_words * 4))[:, None]

        self.launch = launch
        self.block_slots = [_BlockSlot(block) for block in blocks]
        bx = np.asarray([b[0] for b in blocks], dtype=np.float64)
        by = np.asarray([b[1] for b in blocks], dtype=np.float64)
        self.specials = {
            "ntid": float(threads),
            "ctaid_x": np.repeat(bx, num_warps),
            "ctaid_y": np.repeat(by, num_warps),
            "nctaid_x": float(gx),
            "nctaid_y": float(gy),
        }
        lane_ids = np.arange(WARP_SIZE, dtype=np.int64)
        local = (np.arange(rows, dtype=np.int64) % num_warps)[:, None]
        self._exited = (local * WARP_SIZE + lane_ids) >= threads

    def slots(self) -> list:
        return self.block_slots

    def streams(self) -> list[list]:
        return [[] for _ in range(len(self.block_slots) * self.launch.warps_per_block)]

    def exited_rows(self) -> np.ndarray:
        return self._exited

    def finish(self, streams: list[list]) -> list[BlockTrace]:
        """Per-block traces, bit-identical to standalone block runs."""
        wpb = self.launch.warps_per_block
        traces = []
        for index, slot in enumerate(self.block_slots):
            slot.stage.active_warps = len(slot.stage_warps)
            for stage in slot.stages:
                stage.canonicalize_order()
            traces.append(
                BlockTrace(
                    block=slot.block,
                    stages=slot.stages,
                    warp_streams=streams[index * wpb : (index + 1) * wpb],
                    global_load_ranges=tuple(
                        span
                        for intervals in slot.load_ranges.values()
                        for span in intervals.capped()
                    ),
                    global_store_ranges=tuple(
                        span
                        for intervals in slot.store_ranges.values()
                        for span in intervals.capped()
                    ),
                )
            )
        return traces


class FunctionalSimulator:
    """Execute a kernel and collect dynamic statistics.

    Parameters
    ----------
    kernel:
        The native program to run (validated on construction).
    gmem:
        Device global memory; host code allocates inputs/outputs here.
    spec:
        Architecture parameters (bank count, warp size assumptions).
    max_warp_instructions:
        Safety valve against runaway loops.
    batched:
        Use the block-wide batched interpreter (default).  ``False``
        selects the original per-warp loop, kept as the reference
        oracle for differential testing; both produce bit-identical
        :class:`BlockTrace` results for barrier-synchronized kernels.
    grid_batch_blocks:
        Blocks per multi-block slab in :meth:`run_blocks`.  ``None``
        (default) resolves through :func:`repro.tune.resolve` *per
        launch* (see :meth:`grid_batch_blocks_for`):
        ``$REPRO_TUNE_GRID_BATCH_BLOCKS`` /
        ``$REPRO_GRID_BATCH_BLOCKS``, then the machine's persisted
        tuning profile (``repro tune run``) keyed by the launch's
        warps-per-block, then the built-in default.
    """

    def __init__(
        self,
        kernel: Kernel,
        gmem: GlobalMemory | None = None,
        spec: GpuSpec = GTX285,
        max_warp_instructions: int = 50_000_000,
        batched: bool = True,
        grid_batch_blocks: int | None = None,
    ) -> None:
        validate_kernel(kernel, spec)
        self.kernel = kernel
        self.gmem = gmem if gmem is not None else GlobalMemory()
        self.spec = spec
        self.max_warp_instructions = max_warp_instructions
        self.batched = batched
        self._grid_batch_kwarg = grid_batch_blocks
        self._decoded = [
            _Decoded(instr, kernel.labels) for instr in kernel.instructions
        ]
        self._has_barrier = any(
            d.kind == OpKind.BARRIER for d in self._decoded
        )
        self._bank_config = BankConfig(
            num_banks=spec.sm.shared_memory_banks,
            bank_width=spec.sm.bank_width_bytes,
        )
        self._lane_ids = np.arange(WARP_SIZE, dtype=np.int64)
        self._txn_configs: dict[int, TransactionConfig] = {}
        for granularity in (4, 8, 16, 32, 64, 128):
            self._txn_config(granularity)

    @property
    def grid_batch_blocks(self) -> int:
        """Launch-independent slab width (no warps-per-block context).

        Kept for callers without a launch in hand; slab-forming paths
        use :meth:`grid_batch_blocks_for`, which also consults the
        tuning profile's per-warps-per-block table.
        """
        return tune_resolve(
            "grid_batch_blocks", kwarg=self._grid_batch_kwarg, spec=self.spec
        )

    @grid_batch_blocks.setter
    def grid_batch_blocks(self, value: int | None) -> None:
        # An explicit width has kwarg precedence: it wins over the env
        # and the profile for every subsequent launch.
        self._grid_batch_kwarg = value

    def grid_batch_blocks_for(self, launch: LaunchConfig) -> int:
        """Slab width for one launch, resolved at ``run_blocks`` time.

        The tuning profile stores the measured best width *per
        warps-per-block* (wide blocks saturate the batch earlier), so
        the width is a property of the launch, not of the simulator:
        one simulator instance serves differently-shaped launches with
        each launch's own tuned width.  Explicit ``grid_batch_blocks``
        kwargs and the environment still override.
        """
        return tune_resolve(
            "grid_batch_blocks",
            kwarg=self._grid_batch_kwarg,
            spec=self.spec,
            warps_per_block=launch.warps_per_block,
        )

    def _txn_config(self, granularity: int) -> TransactionConfig:
        """Memoized coalescing config for one granularity.

        Granularity 4 is the paper's "ideal" case: each distinct word
        is its own transaction (Fig. 11a).  The segment ceiling comes
        from the architecture spec (128 B on the GT200 baseline;
        registered generations may transact cache lines only).
        """
        config = self._txn_configs.get(granularity)
        if config is None:
            config = self._txn_configs[granularity] = TransactionConfig(
                min_segment=granularity,
                max_segment=(
                    4
                    if granularity == 4
                    else self.spec.memory.max_segment_bytes
                ),
            )
        return config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]] | None = None,
    ) -> KernelTrace:
        """Run all blocks (or a sample) and aggregate their statistics.

        When ``blocks`` is a sample, aggregate statistics are scaled to
        the full grid (representative-block methodology, DESIGN.md).
        """
        self._check_launch(launch)
        chosen = blocks if blocks is not None else launch.all_blocks()
        if not chosen:
            raise LaunchError("no blocks selected")
        traces = self.run_blocks(launch, chosen)
        return aggregate_blocks(traces, scale_to_blocks=launch.num_blocks)

    def run_blocks(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]],
    ) -> list[BlockTrace]:
        """Simulate many blocks, in order.

        With the batched interpreter, blocks are executed in grid
        batches of :attr:`grid_batch_blocks` -- every block's warps
        ride the same PC-grouped NumPy dispatches (see
        :class:`_GridRun`) -- which is what makes full-grid traces of
        both data-dependent kernels (the paper's SpMV) and
        barrier-synchronized ones (matmul, cyclic reduction: blocks
        release their barriers independently) cheap.  The per-warp
        oracle runs block by block.
        """
        from repro import obs

        self._check_launch(launch)
        if not (self.batched and len(blocks) > 1):
            return [self.run_block(launch, block) for block in blocks]
        traces: list[BlockTrace] = []
        step = max(1, int(self.grid_batch_blocks_for(launch)))
        with obs.span(
            "functional.run_blocks", blocks=len(blocks), slab=step
        ):
            if obs.enabled():
                obs.metrics.observe("functional.slab_width", step)
                obs.metrics.inc("functional.blocks", len(blocks))
            for start in range(0, len(blocks), step):
                chunk = blocks[start : start + step]
                if len(chunk) == 1:
                    traces.append(self.run_block(launch, chunk[0]))
                    continue
                for block in chunk:
                    bx, by = block
                    gx, gy = launch.grid
                    if not (0 <= bx < gx and 0 <= by < gy):
                        raise LaunchError(
                            f"block {block} outside grid {launch.grid}"
                        )
                run = _GridRun(self.kernel, launch, chunk)
                interpreter = _BatchedInterpreter(self, run)
                interpreter.execute()
                traces.extend(run.finish(interpreter.streams))
        return traces

    def run_block(
        self, launch: LaunchConfig, block: tuple[int, int]
    ) -> BlockTrace:
        """Execute a single block to completion (reentrant)."""
        trace, _ = self.run_block_state(launch, block)
        return trace

    def run_block_state(
        self, launch: LaunchConfig, block: tuple[int, int]
    ) -> tuple[BlockTrace, _BlockRun]:
        """:meth:`run_block` plus the final per-run state (register and
        predicate files), for oracles and differential tests.  Nothing
        is retained on the simulator, so concurrent runs stay isolated.
        """
        self._check_launch(launch)
        bx, by = block
        gx, gy = launch.grid
        if not (0 <= bx < gx and 0 <= by < gy):
            raise LaunchError(f"block {block} outside grid {launch.grid}")

        run = _BlockRun(self.kernel, launch, (bx, by))
        if self.batched:
            _BatchedInterpreter(self, run).execute()
            return run.finish(), run
        while True:
            for warp in run.warps:
                if not warp.done and not warp.at_barrier:
                    self._run_warp_until_barrier(run, warp)
            waiting = [w for w in run.warps if w.at_barrier]
            if not waiting:
                break
            for warp in waiting:
                warp.at_barrier = False
            run.next_stage()

        return run.finish(), run

    # ------------------------------------------------------------------
    # warp execution
    # ------------------------------------------------------------------
    def _check_launch(self, launch: LaunchConfig) -> None:
        if launch.block_threads > self.spec.sm.max_threads_per_block:
            raise LaunchError(
                f"{launch.block_threads} threads/block exceeds the "
                f"{self.spec.sm.max_threads_per_block} limit"
            )

    def _run_warp_until_barrier(self, run: _BlockRun, warp: _WarpState) -> None:
        instructions = self._decoded
        num_instructions = len(instructions)
        while True:
            alive = ~warp.exited
            if not alive.any():
                return
            pcs = warp.pc
            cur = int(pcs[alive].min())
            if cur >= num_instructions:
                raise SimulationError("execution ran past the end of the kernel")
            mask = alive & (pcs == cur)
            decoded = instructions[cur]
            warp.issued += 1
            if warp.issued > self.max_warp_instructions:
                raise SimulationError(
                    "warp exceeded the instruction budget (runaway loop?)"
                )

            kind = decoded.kind
            if kind == OpKind.EXIT:
                # exit occupies an issue slot like any other control
                # instruction, so it belongs in the extracted mix AND
                # the replayed warp stream (branch does the same) --
                # both trace consumers must see the same issue count.
                self._record_issue(run, decoded)
                self._emit_event(
                    warp, decoded, EV_ARITH, decoded.type_index, 0, None
                )
                warp.exited |= mask
                continue
            if kind == OpKind.BARRIER:
                if not np.array_equal(mask, alive):
                    raise DivergenceError(
                        "bar.sync reached by a divergent warp "
                        f"(warp {warp.index}, pc {cur})"
                    )
                self._record_issue(run, decoded)
                warp.stream.append((EV_BAR, 0, 0, 0, None))
                warp.pc[alive] = cur + 1
                warp.at_barrier = True
                return

            active = mask
            if decoded.guard is not None:
                pidx, want = decoded.guard
                warp_slice = self._warp_slice(warp)
                pred_vals = run.P[warp_slice, pidx]
                active = mask & (pred_vals == want)

            if kind == OpKind.BRANCH:
                self._record_issue(run, decoded)
                self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
                warp.pc[mask] = cur + 1
                if active.any():
                    warp.pc[active] = decoded.target
                continue

            self._execute(run, warp, decoded, mask, active)
            warp.pc[mask] = cur + 1

    def _warp_slice(self, warp: _WarpState) -> slice:
        base = warp.index * WARP_SIZE
        return slice(base, base + WARP_SIZE)

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------
    def _execute(self, run, warp, decoded, mask, active) -> None:
        self._record_issue(run, decoded)
        kind = decoded.kind
        # A warp counts as *active* in a stage once it does real work;
        # warps that only evaluate a guard and branch around the body do
        # not raise the stage's warp-level parallelism (this is what
        # makes CR's late steps run at 1-warp shared bandwidth, Fig. 7a).
        if kind not in (OpKind.SETP, OpKind.NOP) and bool(active.any()):
            run.stage_warps.add(warp.index)
        if kind == OpKind.ARITH or kind == OpKind.SELECT:
            self._exec_arith(run, warp, decoded, active)
        elif kind == OpKind.SETP:
            self._exec_setp(run, warp, decoded, active)
        elif kind == OpKind.LOAD_SHARED:
            self._exec_shared(run, warp, decoded, active, is_load=True)
        elif kind == OpKind.STORE_SHARED:
            self._exec_shared(run, warp, decoded, active, is_load=False)
        elif kind == OpKind.LOAD_GLOBAL:
            self._exec_global(run, warp, decoded, active, is_load=True)
        elif kind == OpKind.STORE_GLOBAL:
            self._exec_global(run, warp, decoded, active, is_load=False)
        elif kind == OpKind.NOP:
            self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:  # pragma: no cover - all kinds handled above
            raise SimulationError(f"unhandled opcode kind {kind}")

    def _fetch(self, run, warp, operand, active):
        """Fetch one operand as a 32-lane float64 vector.

        Shared-memory operands also return the bank-transaction counts
        they generated: (values, actual, ideal)."""
        tag = operand[0]
        warp_slice = self._warp_slice(warp)
        if tag == "reg":
            return run.R[warp_slice, operand[1]], None
        if tag == "imm":
            return np.full(WARP_SIZE, operand[1]), None
        if tag == "special":
            name = operand[1]
            if name == "tid":
                base = warp.index * WARP_SIZE
                return (base + self._lane_ids).astype(np.float64), None
            return np.full(WARP_SIZE, run.specials[name]), None
        if tag == "mem":
            base_idx, offset = operand[1], operand[2]
            addresses = np.full(WARP_SIZE, float(offset))
            if base_idx >= 0:
                addresses = addresses + run.R[warp_slice, base_idx]
            addresses = addresses.astype(np.int64)
            values = np.zeros(WARP_SIZE)
            if active.any():
                if base_idx < 0:
                    # Broadcast of one static word: one transaction per
                    # half-warp, never a conflict.
                    values[active] = run.smem.read(addresses[active])
                    halves = self._active_halfwarps(active)
                    txn = (values, halves, halves)
                else:
                    values[active] = run.smem.read(addresses[active])
                    actual, ideal = warp_transactions(
                        addresses, active, self._bank_config
                    )
                    txn = (values, actual, ideal)
            else:
                txn = (values, 0, 0)
            useful = 4 * int(active.sum())
            run.stage.shared_transactions += txn[1]
            run.stage.shared_transactions_ideal += txn[2]
            run.stage.shared_useful_bytes += useful
            return values, (txn[1], txn[2])
        raise SimulationError(f"cannot fetch operand {operand!r}")

    @staticmethod
    def _active_halfwarps(active: np.ndarray) -> int:
        lo = bool(active[:16].any())
        hi = bool(active[16:].any())
        return int(lo) + int(hi)

    def _exec_arith(self, run, warp, decoded, active) -> None:
        warp_slice = self._warp_slice(warp)
        values = []
        shared_txn = None
        if decoded.kind == OpKind.SELECT:
            pidx = decoded.srcs[0][1]
            pred_vals = run.P[warp_slice, pidx]
            a, _ = self._fetch(run, warp, decoded.srcs[1], active)
            b, _ = self._fetch(run, warp, decoded.srcs[2], active)
            result = np.where(pred_vals, a, b)
        else:
            for operand in decoded.srcs:
                value, txn = self._fetch(run, warp, operand, active)
                values.append(value)
                if txn is not None:
                    shared_txn = txn
            result = _evaluate(decoded.opcode, values)
        if decoded.dst_reg >= 0 and active.any():
            run.R[warp_slice, decoded.dst_reg][active] = result[active]
        if shared_txn is None:
            self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:
            self._emit_event(
                warp, decoded, EV_ARITH_SHARED, decoded.type_index, shared_txn[0], None
            )

    def _exec_setp(self, run, warp, decoded, active) -> None:
        warp_slice = self._warp_slice(warp)
        a, _ = self._fetch(run, warp, decoded.srcs[0], active)
        b, _ = self._fetch(run, warp, decoded.srcs[1], active)
        result = _CMP_FUNCS[decoded.cmp](a, b)
        if active.any():
            run.P[warp_slice, decoded.dst_pred][active] = result[active]
        self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)

    def _shared_addresses(self, run, warp, base_idx, offset):
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        return addresses.astype(np.int64)

    def _exec_shared(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            _, base_idx, offset = decoded.dst_mem[0], decoded.dst_mem[1], decoded.dst_mem[2]
        addresses = self._shared_addresses(run, warp, base_idx, offset)
        warp_slice = self._warp_slice(warp)
        actual = ideal = 0
        if active.any():
            if is_load:
                values = np.zeros(WARP_SIZE)
                values[active] = run.smem.read(addresses[active])
                run.R[warp_slice, decoded.dst_reg][active] = values[active]
            else:
                store_vals, _ = self._fetch(run, warp, decoded.srcs[0], active)
                run.smem.write(addresses[active], store_vals[active])
            actual, ideal = warp_transactions(addresses, active, self._bank_config)
        run.stage.shared_transactions += actual
        run.stage.shared_transactions_ideal += ideal
        run.stage.shared_useful_bytes += 4 * int(active.sum())
        self._emit_event(warp, decoded, EV_SHARED, actual, 0, None)

    def _exec_global(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        addresses = addresses.astype(np.int64)

        n_active = int(active.sum())
        stage = run.stage
        stage.global_requests += 1
        stage.global_useful_bytes += 4 * n_active

        primary_txns = 0
        primary_bytes = 0
        segments = None
        cacheable = False
        if n_active:
            if is_load:
                values = np.zeros(WARP_SIZE)
                values[active] = self.gmem.read(addresses[active])
                run.R[warp_slice, decoded.dst_reg][active] = values[active]
            else:
                store_vals, _ = self._fetch(run, warp, decoded.srcs[0], active)
                self.gmem.write(addresses[active], store_vals[active])

            chosen = addresses[active]
            first_address = int(chosen[0])
            allocation = self.gmem.allocation_at(first_address)
            array_name = allocation.name if allocation else "?"
            run.track_global(
                array_name, int(chosen.min()), int(chosen.max()) + 4, is_load
            )
            cacheable = self.gmem.is_cacheable(first_address)
            for position, granularity in enumerate(run.launch.granularities):
                config = self._txn_config(granularity)
                transactions = coalesce_warp(addresses, active, 4, config)
                count = len(transactions)
                nbytes = sum(t.size for t in transactions)
                stage.global_transactions[granularity] = (
                    stage.global_transactions.get(granularity, 0) + count
                )
                stage.global_bytes[granularity] = (
                    stage.global_bytes.get(granularity, 0) + nbytes
                )
                per_array = stage.global_by_array.setdefault(array_name, {})
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (old[0] + count, old[1] + nbytes)
                if position == 0:
                    primary_txns = count
                    primary_bytes = nbytes
                    if run.launch.record_segments:
                        segments = tuple((t.address, t.size) for t in transactions)

        payload = (cacheable, segments) if segments is not None else None
        event_kind = EV_GLOBAL_LD if is_load else EV_GLOBAL_ST
        self._emit_event(
            warp, decoded, event_kind, primary_txns, primary_bytes, payload
        )

    # ------------------------------------------------------------------
    # statistics plumbing
    # ------------------------------------------------------------------
    def _record_issue(self, run, decoded) -> None:
        stage = run.stage
        stage.instructions[decoded.mnemonic] += 1
        stage.instr_by_type[decoded.type_name] += 1
        if decoded.is_mad:
            stage.mad_instructions += 1

    def _emit_event(self, warp, decoded, kind, a, b, payload) -> None:
        event_index = len(warp.stream)
        producer = -1
        for reg in decoded.reads:
            candidate = warp.reg_producer[reg]
            if candidate > producer:
                producer = candidate
        for pred in decoded.preds_read:
            candidate = warp.pred_producer[pred]
            if candidate > producer:
                producer = candidate
        # Plain-int dep keeps warp streams byte-identical (pickled
        # digests included) across the per-warp and batched interpreters.
        dep = int(event_index - producer) if producer >= 0 else 0
        warp.stream.append((kind, dep, a, b, payload))
        for reg in decoded.writes:
            warp.reg_producer[reg] = event_index
        if decoded.dst_pred >= 0:
            warp.pred_producer[decoded.dst_pred] = event_index


_INT64_MAX = np.iinfo(np.int64).max

#: Lane index where the second half-warp starts (GT200 half-warp width).
HALF_WARP_SPLIT = 16


class _BatchedInterpreter:
    """Batched execution of one :class:`_BlockRun` or :class:`_GridRun`.

    Each step groups all runnable warps (not exited, not parked at a
    barrier) by the instruction their min-PC lands on and executes every
    group's instruction *once* over the run's full ``(rows, 32)``
    register slab, with per-warp group membership folded into the active
    mask.  Working full-width keeps every register access a basic-slice
    *view* (no gather/scatter copies); warps outside the group see only
    masked-out lanes, so they are never observably touched.  Per-warp
    state that the per-warp oracle keeps in :class:`_WarpState` lives
    here in stacked arrays: PCs and exit masks as ``(rows, 32)``,
    dependence producers as ``(rows, num_regs)``, issue counters and
    stream lengths as ``(rows,)``.  Warp streams are appended per warp
    (they are Python lists the timing simulator replays), but
    everything else -- arithmetic, predicate evaluation, shared/global
    traffic, coalescing and bank analysis, dependence distances -- is
    one NumPy dispatch per dynamic instruction per PC-group.

    A :class:`_GridRun` stacks whole batches of blocks as extra warp
    rows (statistics route to per-block slots); a single block is
    simply the ``num_slots == 1`` case of the same machinery.  Barriers
    are released *per block*: ``bar.sync`` parks the arriving warps,
    and as soon as every live warp of one block is parked that block's
    slot advances its stage and its warps resume -- blocks in one slab
    move through their synchronization stages independently, so
    barrier-heavy kernels batch just like barrier-free ones.

    Warp semantics are purely warp-local, so the produced
    :class:`BlockTrace` is bit-identical to the per-warp oracle's for
    every kernel whose cross-warp communication is barrier-synchronized
    (unsynchronized intra-stage races are schedule-dependent in either
    interpreter).
    """

    __slots__ = (
        "sim",
        "launch",
        "slots",
        "num_slots",
        "wpb",
        "smem",
        "smem_offsets",
        "specials",
        "decoded",
        "streams",
        "num_warps",
        "PC",
        "alive",
        "at_bar",
        "has_bar",
        "issued",
        "stream_lens",
        "reg_producer",
        "pred_producer",
        "R3",
        "P3",
        "tid_values",
        "warp_range",
        "all_warps",
        "_unmarked",
        "_operand_cache",
        "_alloc_cache",
        "_gran_configs",
        "_totals_tail",
    )

    def __init__(self, sim: FunctionalSimulator, run) -> None:
        self.sim = sim
        self.launch = run.launch
        self.slots = run.slots()
        self.num_slots = len(self.slots)
        self.wpb = run.launch.warps_per_block
        self.smem = run.smem
        self.smem_offsets = run.smem_offsets
        self.specials = run.specials
        self.decoded = sim._decoded
        num_warps = self.num_slots * self.wpb
        self.num_warps = num_warps
        self.streams = run.streams()
        exited = run.exited_rows()
        self.alive = ~exited
        # Invariant: exited lanes sit at PC = _INT64_MAX, so per-warp
        # min-PCs and "fully exited" fall out of one row minimum and no
        # separate exit mask is consulted on the hot path.
        self.PC = np.where(exited, _INT64_MAX, 0)
        self.at_bar = np.zeros(num_warps, dtype=bool)
        self.has_bar = sim._has_barrier
        self.issued = np.zeros(num_warps, dtype=np.int64)
        self.stream_lens = np.zeros(num_warps, dtype=np.int64)
        self.reg_producer = np.full(
            (num_warps, max(sim.kernel.num_registers, 1)), -1, dtype=np.int64
        )
        self.P3 = run.P.reshape(num_warps, WARP_SIZE, run.P.shape[1])
        self.R3 = run.R.reshape(num_warps, WARP_SIZE, run.R.shape[1])
        self.pred_producer = np.full(
            (num_warps, max(sim.kernel.num_predicates, 1)), -1, dtype=np.int64
        )
        self.warp_range = np.arange(num_warps)
        self.all_warps = list(range(num_warps))
        self.tid_values = (
            (self.warp_range % self.wpb)[:, None] * WARP_SIZE + sim._lane_ids
        ).astype(np.float64)
        # Rows whose warp has not yet done "real work" in the current
        # stage (multi-block accounting amortizes marking through this).
        self._unmarked = set(self.all_warps)
        # Immediates and launch-uniform specials never change during a
        # run and are only ever read, so their slabs are shared; global
        # allocation lookups are memoized per static instruction.
        self._operand_cache: dict[tuple, np.ndarray] = {}
        self._alloc_cache: dict[int, object] = {}
        granularities = run.launch.granularities
        self._gran_configs = [sim._txn_config(g) for g in granularities]
        self._totals_tail = range(1, len(granularities))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def execute(self) -> None:
        num_instructions = len(self.decoded)
        budget = self.sim.max_warp_instructions
        steps = 0
        with np.errstate(all="ignore"):
            while True:
                minpc = self.PC.min(axis=1)
                if self.has_bar:
                    minpc = np.where(self.at_bar, _INT64_MAX, minpc)
                top = int(minpc.min())
                if top >= num_instructions:
                    if top < _INT64_MAX:
                        raise SimulationError(
                            "execution ran past the end of the kernel"
                        )
                    if self.at_bar.any():  # pragma: no cover - releases
                        # fire the moment a block's last warp arrives,
                        # so a fully parked grid cannot be reached.
                        raise SimulationError(
                            "warps parked at a barrier with no runnable "
                            "peers (internal error)"
                        )
                    return
                runnable = minpc != _INT64_MAX
                self.issued += runnable
                # A warp's issue count never exceeds the step count, so
                # the exact (per-warp) budget check only needs to run
                # once steps could have pushed some warp past it.
                steps += 1
                if steps > budget and int(self.issued.max()) > budget:
                    raise SimulationError(
                        "warp exceeded the instruction budget (runaway loop?)"
                    )
                # Groups are computed once per step; executing one group
                # never changes another group's PCs or masks, so the
                # partition stays valid for the whole step.
                group = minpc == top
                if bool(group.all()):
                    # Convergent fast path: every warp in one group.
                    self._step(group, self.all_warps, top)
                elif bool((group == runnable).all()):
                    # Single group, but some warps are blocked.
                    self._step(group, np.flatnonzero(group).tolist(), top)
                else:
                    for pc in np.unique(minpc[runnable]):
                        sub = minpc == pc
                        self._step(sub, np.flatnonzero(sub).tolist(), int(pc))

    def _step(self, group: np.ndarray, ws: list, pc: int) -> None:
        """Execute instruction ``pc`` once for the warps in ``group``.

        ``ws`` lists the group's warp indices (``all_warps`` on the
        convergent fast path, so no index extraction is paid there).
        Exited lanes never match ``PC == pc`` (they sit at the sentinel
        PC), so the lane mask needs no separate liveness term.
        """
        decoded = self.decoded[pc]
        mask = self.PC == pc
        if ws is not self.all_warps:
            mask = group[:, None] & mask

        kind = decoded.kind
        if kind == OpKind.EXIT:
            # exit occupies an issue slot like any other control
            # instruction (see the per-warp oracle).
            self._record_issue(decoded, ws)
            self._emit(ws, decoded, EV_ARITH, decoded.type_index, 0, None)
            self.PC = np.where(mask, _INT64_MAX, self.PC)
            self.alive = self.alive & ~mask
            if self.has_bar:
                # A warp exiting in full may leave its block with every
                # remaining live warp parked at a barrier: release it.
                self._release_arrived(ws)
            return
        if kind == OpKind.BARRIER:
            divergent = group & (mask != self.alive).any(axis=1)
            if divergent.any():
                row = int(np.flatnonzero(divergent)[0])
                slot = self.slots[row // self.wpb]
                raise DivergenceError(
                    "bar.sync reached by a divergent warp "
                    f"(block {slot.block}, warp {row % self.wpb}, pc {pc})"
                )
            self._record_issue(decoded, ws)
            for w in ws:
                self.streams[w].append((EV_BAR, 0, 0, 0, None))
            self.stream_lens += group
            self.PC = np.where(mask, pc + 1, self.PC)
            self.at_bar |= group
            self._release_arrived(ws)
            return

        active = mask
        if decoded.guard is not None:
            pidx, want = decoded.guard
            if want:
                active = mask & self.P3[:, :, pidx]
            else:
                active = mask & ~self.P3[:, :, pidx]

        if kind == OpKind.BRANCH:
            self._record_issue(decoded, ws)
            self._emit(ws, decoded, EV_ARITH, decoded.type_index, 0, None)
            self.PC = np.where(mask, pc + 1, self.PC)
            self.PC = np.where(active, decoded.target, self.PC)
            return

        self._execute(ws, decoded, active)
        self.PC = np.where(mask, pc + 1, self.PC)

    def _release_arrived(self, ws) -> None:
        """Per-block barrier release: advance fully arrived blocks.

        A block is released the moment every one of its warp rows is
        either parked at the barrier or fully exited (CUDA's
        ``bar.sync`` counts only live warps) -- its slot's stage
        advances and its warps resume on the next step, independently
        of every other block in the slab.  Only the blocks touched by
        the current PC-group (``ws``) can newly satisfy that condition,
        so only those are checked.
        """
        at_bar = self.at_bar
        if not at_bar.any():
            return
        wpb = self.wpb
        if ws is self.all_warps:
            candidates = range(self.num_slots)
        else:
            candidates = sorted({w // wpb for w in ws})
        for index in candidates:
            lo = index * wpb
            rows = slice(lo, lo + wpb)
            parked = at_bar[rows]
            if not parked.any():
                continue
            if not (parked | ~self.alive[rows].any(axis=1)).all():
                continue  # some live warp has not arrived yet
            at_bar[rows] = False
            self.slots[index].next_stage()
            self._unmarked.update(range(lo, lo + wpb))

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------
    def _execute(self, ws, decoded, active) -> None:
        self._record_issue(decoded, ws)
        kind = decoded.kind
        # A warp counts as *active* in a stage once it does real work
        # (same rule as the per-warp oracle).
        if kind not in (OpKind.SETP, OpKind.NOP) and self._unmarked:
            working = active.any(axis=1)
            if working.all():
                rows = self._unmarked
                self._unmarked = set()
            else:
                rows = [r for r in self._unmarked if working[r]]
                self._unmarked.difference_update(rows)
            if self.num_slots == 1:
                self.slots[0].stage_warps.update(rows)
            else:
                wpb = self.wpb
                for r in rows:
                    self.slots[r // wpb].stage_warps.add(r % wpb)
        if kind == OpKind.ARITH or kind == OpKind.SELECT:
            self._exec_arith(ws, decoded, active)
        elif kind == OpKind.SETP:
            self._exec_setp(ws, decoded, active)
        elif kind == OpKind.LOAD_SHARED:
            self._exec_shared(ws, decoded, active, is_load=True)
        elif kind == OpKind.STORE_SHARED:
            self._exec_shared(ws, decoded, active, is_load=False)
        elif kind == OpKind.LOAD_GLOBAL:
            self._exec_global(ws, decoded, active, is_load=True)
        elif kind == OpKind.STORE_GLOBAL:
            self._exec_global(ws, decoded, active, is_load=False)
        elif kind == OpKind.NOP:
            self._emit(ws, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:  # pragma: no cover - all kinds handled above
            raise SimulationError(f"unhandled opcode kind {kind}")

    def _fetch(self, operand, active):
        """Fetch one operand as a full ``(num_warps, 32)`` float64 slab.

        Register slabs are views into the block register file; constant
        slabs are cached and shared (callers never mutate operands).
        Shared-memory operands also return their per-warp
        (actual, ideal) bank-transaction counts.
        """
        tag = operand[0]
        if tag == "reg":
            return self.R3[:, :, operand[1]], None
        if tag == "special" and operand[1] == "tid":
            return self.tid_values, None
        if tag == "imm" or tag == "special":
            cached = self._operand_cache.get(operand)
            if cached is None:
                value = operand[1] if tag == "imm" else self.specials[operand[1]]
                if isinstance(value, np.ndarray):
                    # Block-varying special (ctaid in a grid batch):
                    # one value per warp row, broadcast across lanes.
                    cached = np.broadcast_to(
                        value[:, None], (self.num_warps, WARP_SIZE)
                    )
                else:
                    cached = np.full((self.num_warps, WARP_SIZE), float(value))
                self._operand_cache[operand] = cached
            return cached, None
        if tag == "mem":
            base_idx, offset = operand[1], operand[2]
            addresses = self._shared_addresses(base_idx, offset, active)
            if active.all():
                values = self.smem.read(addresses.ravel()).reshape(
                    addresses.shape
                )
            else:
                values = np.zeros((self.num_warps, WARP_SIZE))
                if active.any():
                    values[active] = self.smem.read(addresses[active])
            if base_idx < 0:
                # Broadcast of one static word: one transaction per
                # active half-warp, never a conflict.
                halves = active[:, :HALF_WARP_SPLIT].any(axis=1).astype(
                    np.int64
                ) + active[:, HALF_WARP_SPLIT:].any(axis=1).astype(np.int64)
                actual, ideal = halves, halves
            else:
                actual, ideal = warp_transactions_batch(
                    addresses, active, self.sim._bank_config
                )
            self._account_shared(actual, ideal, active)
            return values, (actual, ideal)
        raise SimulationError(f"cannot fetch operand {operand!r}")

    def _shared_addresses(self, base_idx, offset, active) -> np.ndarray:
        """Shared addresses, translated into the grid arena if batched.

        Grid batches validate block-local bounds *before* adding the
        per-block arena offset, preserving the standalone out-of-bounds
        behaviour; the 64-byte-aligned offsets never change bank/word
        patterns, so conflict counts are unaffected.
        """
        addresses = self._addresses(base_idx, offset)
        if self.smem_offsets is None:
            return addresses
        if active.any():
            chosen = addresses[active]
            footprint = self.sim.kernel.shared_memory_words * 4
            if int(chosen.min()) < 0 or int(chosen.max()) + 4 > footprint:
                raise MemoryAccessError(
                    f"shared access out of bounds (footprint = {footprint} B)"
                )
        return addresses + self.smem_offsets

    def _account_shared(self, actual, ideal, active) -> None:
        if self.num_slots == 1:
            stage = self.slots[0].stage
            stage.shared_transactions += int(actual.sum())
            stage.shared_transactions_ideal += int(ideal.sum())
            stage.shared_useful_bytes += 4 * int(active.sum())
            return
        wpb = self.wpb
        per_actual = actual.reshape(-1, wpb).sum(axis=1).tolist()
        per_ideal = ideal.reshape(-1, wpb).sum(axis=1).tolist()
        per_useful = active.reshape(self.num_slots, -1).sum(axis=1).tolist()
        for slot, got, want, useful in zip(
            self.slots, per_actual, per_ideal, per_useful
        ):
            stage = slot.stage
            stage.shared_transactions += int(got)
            stage.shared_transactions_ideal += int(want)
            stage.shared_useful_bytes += 4 * int(useful)

    def _addresses(self, base_idx: int, offset: int) -> np.ndarray:
        if base_idx < 0:
            return np.full(
                (self.num_warps, WARP_SIZE), int(offset), dtype=np.int64
            )
        addresses = self.R3[:, :, base_idx]
        if offset:
            addresses = addresses + float(offset)
        return addresses.astype(np.int64)

    def _write_slab(self, column: np.ndarray, result, active) -> None:
        """Masked write into a register/predicate column view."""
        if active.all():
            column[:, :] = result
        else:
            column[active] = result[active]

    def _exec_arith(self, ws, decoded, active) -> None:
        shared_actual = None
        if decoded.kind == OpKind.SELECT:
            pred_vals = self.P3[:, :, decoded.srcs[0][1]]
            a, _ = self._fetch(decoded.srcs[1], active)
            b, _ = self._fetch(decoded.srcs[2], active)
            result = np.where(pred_vals, a, b)
        else:
            values = []
            for operand in decoded.srcs:
                value, txn = self._fetch(operand, active)
                values.append(value)
                if txn is not None:
                    shared_actual = txn[0]
            result = _eval_fn(decoded.opcode)(values)
        if decoded.dst_reg >= 0 and active.any():
            self._write_slab(self.R3[:, :, decoded.dst_reg], result, active)
        if shared_actual is None:
            self._emit(ws, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:
            self._emit(
                ws,
                decoded,
                EV_ARITH_SHARED,
                decoded.type_index,
                shared_actual,
                None,
            )

    def _exec_setp(self, ws, decoded, active) -> None:
        a, _ = self._fetch(decoded.srcs[0], active)
        b, _ = self._fetch(decoded.srcs[1], active)
        result = _CMP_FUNCS[decoded.cmp](a, b)
        if active.any():
            self._write_slab(self.P3[:, :, decoded.dst_pred], result, active)
        self._emit(ws, decoded, EV_ARITH, decoded.type_index, 0, None)

    def _exec_shared(self, ws, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        addresses = self._shared_addresses(base_idx, offset, active)
        if active.any():
            full = active.all()
            if is_load:
                if full:
                    self.R3[:, :, decoded.dst_reg][:, :] = self.smem.read(
                        addresses.ravel()
                    ).reshape(addresses.shape)
                else:
                    values = self.smem.read(addresses[active])
                    self.R3[:, :, decoded.dst_reg][active] = values
            else:
                store_vals, _ = self._fetch(decoded.srcs[0], active)
                # Row-major flattening stores in ascending warp order,
                # matching the serial oracle's last-writer-wins.
                if full:
                    self.smem.write(addresses.ravel(), store_vals.ravel())
                else:
                    self.smem.write(addresses[active], store_vals[active])
            actual, ideal = warp_transactions_batch(
                addresses, active, self.sim._bank_config
            )
        else:
            actual = ideal = np.zeros(self.num_warps, dtype=np.int64)
        self._account_shared(actual, ideal, active)
        self._emit(ws, decoded, EV_SHARED, actual, 0, None)

    def _allocation_for(self, decoded, address: int):
        """Allocation lookup memoized per static instruction.

        Consecutive executions of one load/store overwhelmingly target
        the same allocation; a containment check on the memoized hit
        avoids re-scanning the allocation list, and a miss falls back
        to the full scan (``None`` results are never memoized).
        """
        key = id(decoded)
        allocation = self._alloc_cache.get(key)
        if allocation is not None and allocation.contains(address):
            return allocation
        allocation = self.sim.gmem.allocation_at(address)
        if allocation is not None:
            self._alloc_cache[key] = allocation
        return allocation

    def _exec_global(self, ws, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        addresses = self._addresses(base_idx, offset)

        single = self.num_slots == 1
        num_warps = self.num_warps
        wpb = self.wpb
        n_active = int(active.sum())
        if single:
            stage = self.slots[0].stage
            stage.global_requests += len(ws)
            stage.global_useful_bytes += 4 * n_active
        else:
            per_useful = active.reshape(self.num_slots, -1).sum(axis=1).tolist()
            for slot, k in self._per_slot_counts(ws):
                slot.stage.global_requests += k
            for slot, useful in zip(self.slots, per_useful):
                slot.stage.global_useful_bytes += 4 * int(useful)

        primary_txns: np.ndarray | int = 0
        primary_bytes: np.ndarray | int = 0
        payloads = None
        if n_active:
            full = n_active == active.size
            gmem = self.sim.gmem
            if is_load:
                if full:
                    self.R3[:, :, decoded.dst_reg][:, :] = gmem.read(
                        addresses.ravel()
                    ).reshape(addresses.shape)
                else:
                    values = gmem.read(addresses[active])
                    self.R3[:, :, decoded.dst_reg][active] = values
            else:
                store_vals, _ = self._fetch(decoded.srcs[0], active)
                if full:
                    gmem.write(addresses.ravel(), store_vals.ravel())
                else:
                    gmem.write(addresses[active], store_vals[active])

            if full:
                lo = addresses.min(axis=1)
                hi = addresses.max(axis=1) + 4
                first_addr = addresses[:, 0]
                active_rows = None
                rows = self.all_warps
            else:
                lo = np.where(active, addresses, _INT64_MAX).min(axis=1)
                hi = np.where(active, addresses, -1).max(axis=1) + 4
                first_lane = active.argmax(axis=1)
                first_addr = addresses[self.warp_range, first_lane]
                active_rows = active.any(axis=1)
                rows = np.flatnonzero(active_rows).tolist()
            names: list[str | None] = [None] * num_warps
            slots = self.slots
            for i in rows:
                allocation = self._allocation_for(decoded, int(first_addr[i]))
                names[i] = allocation.name if allocation else "?"
                slots[i // wpb].track_global(
                    names[i], int(lo[i]), int(hi[i]), is_load
                )
            one_name = len({names[i] for i in rows}) == 1

            record = self.launch.record_segments
            granularities = self.launch.granularities
            # Non-primary granularities only feed aggregate counters,
            # so their per-warp histograms are skipped when a single
            # block with one target allocation is running.  Addresses
            # were validated 4-byte aligned by the read/write above.
            outputs = coalesce_warp_multi(
                addresses,
                None if full else active,
                4,
                self._gran_configs,
                want_segments_at=0 if record else None,
                totals_only=(
                    self._totals_tail if one_name and single else ()
                ),
                aligned=True,
            )
            segments = None
            for position, granularity in enumerate(granularities):
                counts, nbytes, total_txns, total_bytes, segs = outputs[
                    position
                ]
                if single:
                    self._account_gran_single(
                        granularity,
                        total_txns,
                        total_bytes,
                        counts,
                        nbytes,
                        names,
                        rows,
                        one_name,
                    )
                else:
                    self._account_gran_grid(
                        granularity, counts, nbytes, names, rows, one_name
                    )
                if position == 0:
                    primary_txns = counts
                    primary_bytes = nbytes
                    segments = segs
            if segments is not None:
                cacheable_names = gmem.cacheable_names
                payloads = [
                    (
                        (names[i] in cacheable_names, segments[i])
                        if active_rows is None or active_rows[i]
                        else None
                    )
                    for i in range(num_warps)
                ]

        event_kind = EV_GLOBAL_LD if is_load else EV_GLOBAL_ST
        self._emit(ws, decoded, event_kind, primary_txns, primary_bytes, payloads)

    def _account_gran_single(
        self, granularity, total_txns, total_bytes, counts, nbytes,
        names, rows, one_name,
    ) -> None:
        stage = self.slots[0].stage
        stage.global_transactions[granularity] = (
            stage.global_transactions.get(granularity, 0) + total_txns
        )
        stage.global_bytes[granularity] = (
            stage.global_bytes.get(granularity, 0) + total_bytes
        )
        if one_name:
            per_array = stage.global_by_array.setdefault(names[rows[0]], {})
            old = per_array.get(granularity, (0, 0))
            per_array[granularity] = (
                old[0] + total_txns,
                old[1] + total_bytes,
            )
        else:
            for i in rows:
                per_array = stage.global_by_array.setdefault(names[i], {})
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (
                    old[0] + int(counts[i]),
                    old[1] + int(nbytes[i]),
                )

    def _account_gran_grid(
        self, granularity, counts, nbytes, names, rows, one_name
    ) -> None:
        wpb = self.wpb
        per_txn = counts.reshape(-1, wpb).sum(axis=1).tolist()
        per_bytes = nbytes.reshape(-1, wpb).sum(axis=1).tolist()
        for slot, txn, nb in zip(self.slots, per_txn, per_bytes):
            if not txn:
                # A block with no active lanes for this instruction must
                # not even create the granularity keys (serial parity).
                continue
            stage = slot.stage
            stage.global_transactions[granularity] = (
                stage.global_transactions.get(granularity, 0) + int(txn)
            )
            stage.global_bytes[granularity] = (
                stage.global_bytes.get(granularity, 0) + int(nb)
            )
            if one_name:
                per_array = stage.global_by_array.setdefault(
                    names[rows[0]], {}
                )
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (
                    old[0] + int(txn),
                    old[1] + int(nb),
                )
        if not one_name:
            for i in rows:
                stage = self.slots[i // wpb].stage
                per_array = stage.global_by_array.setdefault(names[i], {})
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (
                    old[0] + int(counts[i]),
                    old[1] + int(nbytes[i]),
                )

    # ------------------------------------------------------------------
    # statistics plumbing
    # ------------------------------------------------------------------
    def _record_issue(self, decoded, ws) -> None:
        if self.num_slots == 1:
            k = len(ws)
            stage = self.slots[0].stage
            stage.instructions[decoded.mnemonic] += k
            stage.instr_by_type[decoded.type_name] += k
            if decoded.is_mad:
                stage.mad_instructions += k
            return
        for slot, k in self._per_slot_counts(ws):
            stage = slot.stage
            stage.instructions[decoded.mnemonic] += k
            stage.instr_by_type[decoded.type_name] += k
            if decoded.is_mad:
                stage.mad_instructions += k

    def _per_slot_counts(self, ws):
        """(slot, group-warp-count) pairs for one PC-group."""
        if ws is self.all_warps:
            wpb = self.wpb
            return [(slot, wpb) for slot in self.slots]
        counts: dict[int, int] = {}
        wpb = self.wpb
        for w in ws:
            b = w // wpb
            counts[b] = counts.get(b, 0) + 1
        return [(self.slots[b], k) for b, k in counts.items()]

    def _emit(self, ws, decoded, kind, a, b, payloads) -> None:
        """Append one event per group warp with batched dep tracking.

        ``a``/``b`` are either scalars shared by every warp or per-warp
        arrays; ``payloads`` is ``None`` or one payload per warp.  The
        appended tuples carry plain Python ints, matching the per-warp
        oracle's streams byte for byte.
        """
        producer = None
        owned = False  # single-source producers stay read-only views
        for reg in decoded.reads:
            column = self.reg_producer[:, reg]
            if producer is None:
                producer = column
            elif owned:
                np.maximum(producer, column, out=producer)
            else:
                producer = np.maximum(producer, column)
                owned = True
        for pidx in decoded.preds_read:
            column = self.pred_producer[:, pidx]
            if producer is None:
                producer = column
            elif owned:
                np.maximum(producer, column, out=producer)
            else:
                producer = np.maximum(producer, column)
                owned = True
        event_index = self.stream_lens
        if producer is None:
            dep = None
        else:
            dep = np.where(producer >= 0, event_index - producer, 0)
        a_vec = isinstance(a, np.ndarray)
        b_vec = isinstance(b, np.ndarray)
        for w in ws:
            self.streams[w].append(
                (
                    kind,
                    int(dep[w]) if dep is not None else 0,
                    int(a[w]) if a_vec else a,
                    int(b[w]) if b_vec else b,
                    payloads[w] if payloads is not None else None,
                )
            )
        full = len(ws) == self.num_warps
        for reg in decoded.writes:
            column = self.reg_producer[:, reg]
            if full:
                column[:] = event_index
            else:
                column[ws] = event_index[ws]
        if decoded.dst_pred >= 0:
            column = self.pred_producer[:, decoded.dst_pred]
            if full:
                column[:] = event_index
            else:
                column[ws] = event_index[ws]
        if full:
            self.stream_lens = event_index + 1
        else:
            event_index = event_index.copy()
            event_index[ws] += 1
            self.stream_lens = event_index


def _int_op(fn):
    """Wrap an int64 operation as a float64-in/float64-out evaluator."""

    def apply(values: list[np.ndarray]) -> np.ndarray:
        ints = [np.asarray(v, dtype=np.float64).astype(np.int64) for v in values]
        return fn(*ints).astype(np.float64)

    return apply


#: Arithmetic evaluators (float32 semantics), shared by both
#: interpreters.  Each entry works elementwise, so ``(32,)`` lane
#: vectors and ``(k_warps, 32)`` slabs go through the same function.
#: The batched interpreter calls entries directly under one loop-wide
#: ``np.errstate``; the per-warp oracle goes through :func:`_evaluate`.
_EVAL_TABLE = {
    Opcode.MOV: lambda v: v[0],
    Opcode.FADD: lambda v: _f32(np.float32(v[0]) + np.float32(v[1])),
    Opcode.FMUL: lambda v: _f32(np.float32(v[0]) * np.float32(v[1])),
    Opcode.FMAD: lambda v: _f32(
        np.float32(v[0]) * np.float32(v[1]) + np.float32(v[2])
    ),
    Opcode.FNEG: lambda v: -v[0],
    Opcode.FMIN: lambda v: np.minimum(v[0], v[1]),
    Opcode.FMAX: lambda v: np.maximum(v[0], v[1]),
    Opcode.RCP: lambda v: _f32(np.float32(1.0) / np.float32(v[0])),
    Opcode.SIN: lambda v: _f32(np.sin(np.float32(v[0]))),
    Opcode.COS: lambda v: _f32(np.cos(np.float32(v[0]))),
    Opcode.LG2: lambda v: _f32(np.log2(np.float32(v[0]))),
    Opcode.EX2: lambda v: _f32(np.exp2(np.float32(v[0]))),
    Opcode.RSQRT: lambda v: _f32(np.float32(1.0) / np.sqrt(np.float32(v[0]))),
    Opcode.DADD: lambda v: v[0] + v[1],
    Opcode.DMUL: lambda v: v[0] * v[1],
    Opcode.DFMA: lambda v: v[0] * v[1] + v[2],
    Opcode.IADD: _int_op(lambda a, b: a + b),
    Opcode.ISUB: _int_op(lambda a, b: a - b),
    Opcode.IMUL: _int_op(lambda a, b: a * b),
    Opcode.IMAD: _int_op(lambda a, b, c: a * b + c),
    Opcode.ISHL: _int_op(lambda a, b: a << b),
    Opcode.ISHR: _int_op(lambda a, b: a >> b),
    Opcode.IAND: _int_op(lambda a, b: a & b),
    Opcode.IOR: _int_op(lambda a, b: a | b),
    Opcode.IXOR: _int_op(lambda a, b: a ^ b),
    Opcode.IMIN: _int_op(np.minimum),
    Opcode.IMAX: _int_op(np.maximum),
}


def _eval_fn(opcode: Opcode):
    fn = _EVAL_TABLE.get(opcode)
    if fn is None:
        raise SimulationError(f"no evaluator for opcode {opcode.mnemonic}")
    return fn


def _evaluate(opcode: Opcode, values: list[np.ndarray]) -> np.ndarray:
    """Apply an arithmetic opcode to lane vectors (float32 semantics)."""
    fn = _eval_fn(opcode)
    with np.errstate(all="ignore"):
        return fn(values)


def _f32(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.float32).astype(np.float64)
