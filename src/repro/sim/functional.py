"""SIMT functional simulator (the paper's Barra analogue).

Executes native kernels warp by warp with lockstep lanes, producing both
correct numerical results and the *dynamic* program statistics the
performance model consumes: warp-level instruction counts by type,
shared-memory transactions corrected for bank conflicts, and coalesced
global-memory transactions (paper Fig. 1's "info extractor" inputs).

Execution model:

* lanes of a warp advance under **min-PC reconvergence**: each step, the
  lanes at the smallest program counter execute together.  This supports
  uniform and divergent structured control flow (if/else, loops with
  per-lane trip counts) and reconverges as soon as PCs meet;
* warps of a block run one synchronization stage at a time; a ``bar``
  splits stages exactly as the paper divides programs by barriers;
* every executed warp-instruction appends a compact event (with its
  register-dependence distance) to the warp's stream so the hardware
  timing simulator can replay it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import WARP_SIZE, GpuSpec, GTX285
from repro.errors import DivergenceError, LaunchError, SimulationError
from repro.isa.instructions import Imm, MemRef, Pred, Reg, Special
from repro.isa.opcodes import Opcode, OpKind
from repro.isa.program import Kernel
from repro.isa.validate import validate_kernel
from repro.memory.banks import BankConfig, warp_transactions
from repro.memory.coalescing import TransactionConfig, coalesce_warp
from repro.sim.memory import GlobalMemory, SharedMemory
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
    BlockTrace,
    KernelTrace,
    StageStats,
    TYPE_INDEX,
    aggregate_blocks,
)

# Instructions that count as "actual computation" for the paper's
# computational-density metric.  Integer MADs are address bookkeeping.
_MAD_OPS = (Opcode.FMAD, Opcode.DFMA)


@dataclass(frozen=True)
class LaunchConfig:
    """One kernel launch: grid shape, block size, scalar parameters."""

    grid: tuple[int, int]
    block_threads: int
    params: dict[str, float] = field(default_factory=dict)
    granularities: tuple[int, ...] = (32,)
    record_segments: bool = False

    def __post_init__(self) -> None:
        gx, gy = self.grid
        if gx <= 0 or gy <= 0:
            raise LaunchError("grid dimensions must be positive")
        if self.block_threads <= 0:
            raise LaunchError("block must have at least one thread")
        if not self.granularities:
            raise LaunchError("at least one coalescing granularity is required")

    @property
    def num_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def warps_per_block(self) -> int:
        return -(-self.block_threads // WARP_SIZE)

    def all_blocks(self) -> list[tuple[int, int]]:
        gx, gy = self.grid
        return [(x, y) for y in range(gy) for x in range(gx)]


class _Decoded:
    """Pre-decoded instruction: everything the hot loop needs."""

    __slots__ = (
        "opcode",
        "kind",
        "type_index",
        "guard",
        "target",
        "dst_reg",
        "dst_pred",
        "dst_mem",
        "srcs",
        "reads",
        "writes",
        "preds_read",
        "cmp",
        "is_mad",
        "mnemonic",
        "type_name",
    )

    def __init__(self, instr, labels: dict[str, int]) -> None:
        self.opcode = instr.opcode
        self.kind = instr.opcode.kind
        self.type_name = instr.opcode.instr_type
        self.type_index = TYPE_INDEX[self.type_name]
        self.mnemonic = instr.opcode.mnemonic
        self.guard = (
            (instr.guard[0].index, instr.guard[1]) if instr.guard else None
        )
        self.target = labels[instr.target] if instr.target else -1
        self.dst_reg = instr.dst.index if isinstance(instr.dst, Reg) else -1
        self.dst_pred = instr.dst.index if isinstance(instr.dst, Pred) else -1
        self.dst_mem = None
        if isinstance(instr.dst, MemRef):
            base = instr.dst.base.index if instr.dst.base else -1
            self.dst_mem = (instr.dst.space, base, instr.dst.offset)
        self.srcs = tuple(_decode_operand(s) for s in instr.srcs)
        self.reads = instr.registers_read()
        self.writes = instr.registers_written()
        self.preds_read = tuple(
            s.index for s in instr.srcs if isinstance(s, Pred)
        ) + ((instr.guard[0].index,) if instr.guard else ())
        self.cmp = instr.cmp
        self.is_mad = instr.opcode in _MAD_OPS


def _decode_operand(operand):
    if isinstance(operand, Reg):
        return ("reg", operand.index)
    if isinstance(operand, Imm):
        return ("imm", float(operand.value))
    if isinstance(operand, Special):
        return ("special", operand.name)
    if isinstance(operand, Pred):
        return ("pred", operand.index)
    if isinstance(operand, MemRef):
        base = operand.base.index if operand.base else -1
        return ("mem", base, operand.offset)
    raise SimulationError(f"cannot decode operand {operand!r}")


class _WarpState:
    """Mutable per-warp execution state."""

    __slots__ = (
        "index",
        "pc",
        "exited",
        "at_barrier",
        "stream",
        "reg_producer",
        "pred_producer",
        "issued",
    )

    def __init__(self, index: int, lanes_alive: np.ndarray, num_regs: int, num_preds: int):
        self.index = index
        self.pc = np.zeros(WARP_SIZE, dtype=np.int64)
        self.exited = ~lanes_alive
        self.at_barrier = False
        self.stream: list[tuple] = []
        self.reg_producer = np.full(max(num_regs, 1), -1, dtype=np.int64)
        self.pred_producer = np.full(max(num_preds, 1), -1, dtype=np.int64)
        self.issued = 0

    @property
    def done(self) -> bool:
        return bool(self.exited.all())


_CMP_FUNCS = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


class _BlockRun:
    """All mutable state of one block's execution.

    Bundling the register file, shared memory, stage accumulators and
    launch context into one object makes :meth:`FunctionalSimulator
    .run_block` reentrant: concurrent, nested or interleaved block runs
    on the same simulator instance cannot corrupt each other, which the
    deduplicating engine and its process pool rely on.
    """

    __slots__ = (
        "R",
        "P",
        "smem",
        "launch",
        "block",
        "specials",
        "stages",
        "stage",
        "stage_warps",
        "warps",
        "load_ranges",
        "store_ranges",
    )

    def __init__(
        self,
        kernel: Kernel,
        launch: LaunchConfig,
        block: tuple[int, int],
    ) -> None:
        bx, by = block
        gx, gy = launch.grid
        threads = launch.block_threads
        num_warps = launch.warps_per_block
        padded = num_warps * WARP_SIZE

        self.R = np.zeros((padded, max(kernel.num_registers, 1)), dtype=np.float64)
        self.P = np.zeros((padded, max(kernel.num_predicates, 1)), dtype=bool)
        for name in kernel.params:
            if name not in launch.params:
                raise LaunchError(f"missing launch parameter {name!r}")
            self.R[:, kernel.param_regs[name]] = float(launch.params[name])
        self.smem = SharedMemory(kernel.shared_memory_words)
        self.launch = launch
        self.block = (bx, by)
        self.specials = {
            "ntid": float(threads),
            "ctaid_x": float(bx),
            "ctaid_y": float(by),
            "nctaid_x": float(gx),
            "nctaid_y": float(gy),
        }
        lane_ids = np.arange(WARP_SIZE, dtype=np.int64)
        self.warps = []
        for w in range(num_warps):
            alive = (w * WARP_SIZE + lane_ids) < threads
            self.warps.append(
                _WarpState(w, alive, kernel.num_registers, kernel.num_predicates)
            )
        self.stages = [StageStats()]
        self.stage = self.stages[0]
        self.stage_warps: set[int] = set()
        self.load_ranges: dict[str, list[int]] = {}
        self.store_ranges: dict[str, list[int]] = {}

    def next_stage(self) -> None:
        self.stage.active_warps = len(self.stage_warps)
        self.stage_warps = set()
        self.stage = StageStats()
        self.stages.append(self.stage)

    def track_global(self, array: str, addresses, is_load: bool) -> None:
        """Widen the block's load/store footprint, per allocation.

        One hull per accessed allocation keeps the engine's cross-block
        RAW check free of cross-allocation false positives: a store-only
        output laid out between two load-only inputs must not appear
        inside the load hull.
        """
        lo = int(addresses.min())
        hi = int(addresses.max()) + 4
        ranges = self.load_ranges if is_load else self.store_ranges
        span = ranges.get(array)
        if span is None:
            ranges[array] = [lo, hi]
        else:
            if lo < span[0]:
                span[0] = lo
            if hi > span[1]:
                span[1] = hi

    def finish(self) -> BlockTrace:
        self.stage.active_warps = len(self.stage_warps)
        streams = [warp.stream for warp in self.warps]
        return BlockTrace(
            block=self.block,
            stages=self.stages,
            warp_streams=streams,
            global_load_ranges=tuple(
                (lo, hi) for lo, hi in self.load_ranges.values()
            ),
            global_store_ranges=tuple(
                (lo, hi) for lo, hi in self.store_ranges.values()
            ),
        )


class FunctionalSimulator:
    """Execute a kernel and collect dynamic statistics.

    Parameters
    ----------
    kernel:
        The native program to run (validated on construction).
    gmem:
        Device global memory; host code allocates inputs/outputs here.
    spec:
        Architecture parameters (bank count, warp size assumptions).
    max_warp_instructions:
        Safety valve against runaway loops.
    """

    def __init__(
        self,
        kernel: Kernel,
        gmem: GlobalMemory | None = None,
        spec: GpuSpec = GTX285,
        max_warp_instructions: int = 50_000_000,
    ) -> None:
        validate_kernel(kernel)
        self.kernel = kernel
        self.gmem = gmem if gmem is not None else GlobalMemory()
        self.spec = spec
        self.max_warp_instructions = max_warp_instructions
        self._decoded = [
            _Decoded(instr, kernel.labels) for instr in kernel.instructions
        ]
        self._bank_config = BankConfig(
            num_banks=spec.sm.shared_memory_banks,
            bank_width=spec.sm.bank_width_bytes,
        )
        self._lane_ids = np.arange(WARP_SIZE, dtype=np.int64)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]] | None = None,
    ) -> KernelTrace:
        """Run all blocks (or a sample) and aggregate their statistics.

        When ``blocks`` is a sample, aggregate statistics are scaled to
        the full grid (representative-block methodology, DESIGN.md).
        """
        self._check_launch(launch)
        chosen = blocks if blocks is not None else launch.all_blocks()
        if not chosen:
            raise LaunchError("no blocks selected")
        traces = [self.run_block(launch, block) for block in chosen]
        return aggregate_blocks(traces, scale_to_blocks=launch.num_blocks)

    def run_block(
        self, launch: LaunchConfig, block: tuple[int, int]
    ) -> BlockTrace:
        """Execute a single block to completion (reentrant)."""
        trace, _ = self.run_block_state(launch, block)
        return trace

    def run_block_state(
        self, launch: LaunchConfig, block: tuple[int, int]
    ) -> tuple[BlockTrace, _BlockRun]:
        """:meth:`run_block` plus the final per-run state (register and
        predicate files), for oracles and differential tests.  Nothing
        is retained on the simulator, so concurrent runs stay isolated.
        """
        self._check_launch(launch)
        bx, by = block
        gx, gy = launch.grid
        if not (0 <= bx < gx and 0 <= by < gy):
            raise LaunchError(f"block {block} outside grid {launch.grid}")

        run = _BlockRun(self.kernel, launch, (bx, by))
        while True:
            for warp in run.warps:
                if not warp.done and not warp.at_barrier:
                    self._run_warp_until_barrier(run, warp)
            waiting = [w for w in run.warps if w.at_barrier]
            if not waiting:
                break
            for warp in waiting:
                warp.at_barrier = False
            run.next_stage()

        return run.finish(), run

    # ------------------------------------------------------------------
    # warp execution
    # ------------------------------------------------------------------
    def _check_launch(self, launch: LaunchConfig) -> None:
        if launch.block_threads > self.spec.sm.max_threads_per_block:
            raise LaunchError(
                f"{launch.block_threads} threads/block exceeds the "
                f"{self.spec.sm.max_threads_per_block} limit"
            )

    def _run_warp_until_barrier(self, run: _BlockRun, warp: _WarpState) -> None:
        instructions = self._decoded
        num_instructions = len(instructions)
        while True:
            alive = ~warp.exited
            if not alive.any():
                return
            pcs = warp.pc
            cur = int(pcs[alive].min())
            if cur >= num_instructions:
                raise SimulationError("execution ran past the end of the kernel")
            mask = alive & (pcs == cur)
            decoded = instructions[cur]
            warp.issued += 1
            if warp.issued > self.max_warp_instructions:
                raise SimulationError(
                    "warp exceeded the instruction budget (runaway loop?)"
                )

            kind = decoded.kind
            if kind == OpKind.EXIT:
                # exit occupies an issue slot like any other control
                # instruction, so it belongs in the extracted mix AND
                # the replayed warp stream (branch does the same) --
                # both trace consumers must see the same issue count.
                self._record_issue(run, decoded)
                self._emit_event(
                    warp, decoded, EV_ARITH, decoded.type_index, 0, None
                )
                warp.exited |= mask
                continue
            if kind == OpKind.BARRIER:
                if not np.array_equal(mask, alive):
                    raise DivergenceError(
                        "bar.sync reached by a divergent warp "
                        f"(warp {warp.index}, pc {cur})"
                    )
                self._record_issue(run, decoded)
                warp.stream.append((EV_BAR, 0, 0, 0, None))
                warp.pc[alive] = cur + 1
                warp.at_barrier = True
                return

            active = mask
            if decoded.guard is not None:
                pidx, want = decoded.guard
                warp_slice = self._warp_slice(warp)
                pred_vals = run.P[warp_slice, pidx]
                active = mask & (pred_vals == want)

            if kind == OpKind.BRANCH:
                self._record_issue(run, decoded)
                self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
                warp.pc[mask] = cur + 1
                if active.any():
                    warp.pc[active] = decoded.target
                continue

            self._execute(run, warp, decoded, mask, active)
            warp.pc[mask] = cur + 1

    def _warp_slice(self, warp: _WarpState) -> slice:
        base = warp.index * WARP_SIZE
        return slice(base, base + WARP_SIZE)

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------
    def _execute(self, run, warp, decoded, mask, active) -> None:
        self._record_issue(run, decoded)
        kind = decoded.kind
        # A warp counts as *active* in a stage once it does real work;
        # warps that only evaluate a guard and branch around the body do
        # not raise the stage's warp-level parallelism (this is what
        # makes CR's late steps run at 1-warp shared bandwidth, Fig. 7a).
        if kind not in (OpKind.SETP, OpKind.NOP) and bool(active.any()):
            run.stage_warps.add(warp.index)
        if kind == OpKind.ARITH or kind == OpKind.SELECT:
            self._exec_arith(run, warp, decoded, active)
        elif kind == OpKind.SETP:
            self._exec_setp(run, warp, decoded, active)
        elif kind == OpKind.LOAD_SHARED:
            self._exec_shared(run, warp, decoded, active, is_load=True)
        elif kind == OpKind.STORE_SHARED:
            self._exec_shared(run, warp, decoded, active, is_load=False)
        elif kind == OpKind.LOAD_GLOBAL:
            self._exec_global(run, warp, decoded, active, is_load=True)
        elif kind == OpKind.STORE_GLOBAL:
            self._exec_global(run, warp, decoded, active, is_load=False)
        elif kind == OpKind.NOP:
            self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:  # pragma: no cover - all kinds handled above
            raise SimulationError(f"unhandled opcode kind {kind}")

    def _fetch(self, run, warp, operand, active):
        """Fetch one operand as a 32-lane float64 vector.

        Shared-memory operands also return the bank-transaction counts
        they generated: (values, actual, ideal)."""
        tag = operand[0]
        warp_slice = self._warp_slice(warp)
        if tag == "reg":
            return run.R[warp_slice, operand[1]], None
        if tag == "imm":
            return np.full(WARP_SIZE, operand[1]), None
        if tag == "special":
            name = operand[1]
            if name == "tid":
                base = warp.index * WARP_SIZE
                return (base + self._lane_ids).astype(np.float64), None
            return np.full(WARP_SIZE, run.specials[name]), None
        if tag == "mem":
            base_idx, offset = operand[1], operand[2]
            addresses = np.full(WARP_SIZE, float(offset))
            if base_idx >= 0:
                addresses = addresses + run.R[warp_slice, base_idx]
            addresses = addresses.astype(np.int64)
            values = np.zeros(WARP_SIZE)
            if active.any():
                if base_idx < 0:
                    # Broadcast of one static word: one transaction per
                    # half-warp, never a conflict.
                    values[active] = run.smem.read(addresses[active])
                    halves = self._active_halfwarps(active)
                    txn = (values, halves, halves)
                else:
                    values[active] = run.smem.read(addresses[active])
                    actual, ideal = warp_transactions(
                        addresses, active, self._bank_config
                    )
                    txn = (values, actual, ideal)
            else:
                txn = (values, 0, 0)
            useful = 4 * int(active.sum())
            run.stage.shared_transactions += txn[1]
            run.stage.shared_transactions_ideal += txn[2]
            run.stage.shared_useful_bytes += useful
            return values, (txn[1], txn[2])
        raise SimulationError(f"cannot fetch operand {operand!r}")

    @staticmethod
    def _active_halfwarps(active: np.ndarray) -> int:
        lo = bool(active[:16].any())
        hi = bool(active[16:].any())
        return int(lo) + int(hi)

    def _exec_arith(self, run, warp, decoded, active) -> None:
        warp_slice = self._warp_slice(warp)
        values = []
        shared_txn = None
        if decoded.kind == OpKind.SELECT:
            pidx = decoded.srcs[0][1]
            pred_vals = run.P[warp_slice, pidx]
            a, _ = self._fetch(run, warp, decoded.srcs[1], active)
            b, _ = self._fetch(run, warp, decoded.srcs[2], active)
            result = np.where(pred_vals, a, b)
        else:
            for operand in decoded.srcs:
                value, txn = self._fetch(run, warp, operand, active)
                values.append(value)
                if txn is not None:
                    shared_txn = txn
            result = _evaluate(decoded.opcode, values)
        if decoded.dst_reg >= 0 and active.any():
            run.R[warp_slice, decoded.dst_reg][active] = result[active]
        if shared_txn is None:
            self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)
        else:
            self._emit_event(
                warp, decoded, EV_ARITH_SHARED, decoded.type_index, shared_txn[0], None
            )

    def _exec_setp(self, run, warp, decoded, active) -> None:
        warp_slice = self._warp_slice(warp)
        a, _ = self._fetch(run, warp, decoded.srcs[0], active)
        b, _ = self._fetch(run, warp, decoded.srcs[1], active)
        result = _CMP_FUNCS[decoded.cmp](a, b)
        if active.any():
            run.P[warp_slice, decoded.dst_pred][active] = result[active]
        self._emit_event(warp, decoded, EV_ARITH, decoded.type_index, 0, None)

    def _shared_addresses(self, run, warp, base_idx, offset):
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        return addresses.astype(np.int64)

    def _exec_shared(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            _, base_idx, offset = decoded.dst_mem[0], decoded.dst_mem[1], decoded.dst_mem[2]
        addresses = self._shared_addresses(run, warp, base_idx, offset)
        warp_slice = self._warp_slice(warp)
        actual = ideal = 0
        if active.any():
            if is_load:
                values = np.zeros(WARP_SIZE)
                values[active] = run.smem.read(addresses[active])
                run.R[warp_slice, decoded.dst_reg][active] = values[active]
            else:
                store_vals, _ = self._fetch(run, warp, decoded.srcs[0], active)
                run.smem.write(addresses[active], store_vals[active])
            actual, ideal = warp_transactions(addresses, active, self._bank_config)
        run.stage.shared_transactions += actual
        run.stage.shared_transactions_ideal += ideal
        run.stage.shared_useful_bytes += 4 * int(active.sum())
        self._emit_event(warp, decoded, EV_SHARED, actual, 0, None)

    def _exec_global(self, run, warp, decoded, active, is_load: bool) -> None:
        if is_load:
            base_idx, offset = decoded.srcs[0][1], decoded.srcs[0][2]
        else:
            base_idx, offset = decoded.dst_mem[1], decoded.dst_mem[2]
        warp_slice = self._warp_slice(warp)
        addresses = np.full(WARP_SIZE, float(offset))
        if base_idx >= 0:
            addresses = addresses + run.R[warp_slice, base_idx]
        addresses = addresses.astype(np.int64)

        n_active = int(active.sum())
        stage = run.stage
        stage.global_requests += 1
        stage.global_useful_bytes += 4 * n_active

        primary_txns = 0
        primary_bytes = 0
        segments = None
        cacheable = False
        if n_active:
            if is_load:
                values = np.zeros(WARP_SIZE)
                values[active] = self.gmem.read(addresses[active])
                run.R[warp_slice, decoded.dst_reg][active] = values[active]
            else:
                store_vals, _ = self._fetch(run, warp, decoded.srcs[0], active)
                self.gmem.write(addresses[active], store_vals[active])

            first_address = int(addresses[active][0])
            allocation = self.gmem.allocation_at(first_address)
            array_name = allocation.name if allocation else "?"
            run.track_global(array_name, addresses[active], is_load)
            cacheable = self.gmem.is_cacheable(first_address)
            for position, granularity in enumerate(run.launch.granularities):
                # Granularity 4 is the paper's "ideal" case: each
                # distinct word is its own transaction (Fig. 11a).
                config = TransactionConfig(
                    min_segment=granularity,
                    max_segment=4 if granularity == 4 else 128,
                )
                transactions = coalesce_warp(addresses, active, 4, config)
                count = len(transactions)
                nbytes = sum(t.size for t in transactions)
                stage.global_transactions[granularity] = (
                    stage.global_transactions.get(granularity, 0) + count
                )
                stage.global_bytes[granularity] = (
                    stage.global_bytes.get(granularity, 0) + nbytes
                )
                per_array = stage.global_by_array.setdefault(array_name, {})
                old = per_array.get(granularity, (0, 0))
                per_array[granularity] = (old[0] + count, old[1] + nbytes)
                if position == 0:
                    primary_txns = count
                    primary_bytes = nbytes
                    if run.launch.record_segments:
                        segments = tuple((t.address, t.size) for t in transactions)

        payload = (cacheable, segments) if segments is not None else None
        event_kind = EV_GLOBAL_LD if is_load else EV_GLOBAL_ST
        self._emit_event(
            warp, decoded, event_kind, primary_txns, primary_bytes, payload
        )

    # ------------------------------------------------------------------
    # statistics plumbing
    # ------------------------------------------------------------------
    def _record_issue(self, run, decoded) -> None:
        stage = run.stage
        stage.instructions[decoded.mnemonic] += 1
        stage.instr_by_type[decoded.type_name] += 1
        if decoded.is_mad:
            stage.mad_instructions += 1

    def _emit_event(self, warp, decoded, kind, a, b, payload) -> None:
        event_index = len(warp.stream)
        producer = -1
        for reg in decoded.reads:
            candidate = warp.reg_producer[reg]
            if candidate > producer:
                producer = candidate
        for pred in decoded.preds_read:
            candidate = warp.pred_producer[pred]
            if candidate > producer:
                producer = candidate
        dep = event_index - producer if producer >= 0 else 0
        warp.stream.append((kind, dep, a, b, payload))
        for reg in decoded.writes:
            warp.reg_producer[reg] = event_index
        if decoded.dst_pred >= 0:
            warp.pred_producer[decoded.dst_pred] = event_index


def _evaluate(opcode: Opcode, values: list[np.ndarray]) -> np.ndarray:
    """Apply an arithmetic opcode to lane vectors (float32 semantics)."""
    with np.errstate(all="ignore"):
        if opcode is Opcode.MOV:
            return values[0]
        if opcode is Opcode.FADD:
            return _f32(np.float32(values[0]) + np.float32(values[1]))
        if opcode is Opcode.FMUL:
            return _f32(np.float32(values[0]) * np.float32(values[1]))
        if opcode is Opcode.FMAD:
            return _f32(
                np.float32(values[0]) * np.float32(values[1]) + np.float32(values[2])
            )
        if opcode is Opcode.FNEG:
            return -values[0]
        if opcode is Opcode.FMIN:
            return np.minimum(values[0], values[1])
        if opcode is Opcode.FMAX:
            return np.maximum(values[0], values[1])
        if opcode is Opcode.RCP:
            return _f32(np.float32(1.0) / np.float32(values[0]))
        if opcode is Opcode.SIN:
            return _f32(np.sin(np.float32(values[0])))
        if opcode is Opcode.COS:
            return _f32(np.cos(np.float32(values[0])))
        if opcode is Opcode.LG2:
            return _f32(np.log2(np.float32(values[0])))
        if opcode is Opcode.EX2:
            return _f32(np.exp2(np.float32(values[0])))
        if opcode is Opcode.RSQRT:
            return _f32(np.float32(1.0) / np.sqrt(np.float32(values[0])))
        if opcode is Opcode.DADD:
            return values[0] + values[1]
        if opcode is Opcode.DMUL:
            return values[0] * values[1]
        if opcode is Opcode.DFMA:
            return values[0] * values[1] + values[2]
        ints = [np.asarray(v, dtype=np.float64).astype(np.int64) for v in values]
        if opcode is Opcode.IADD:
            return (ints[0] + ints[1]).astype(np.float64)
        if opcode is Opcode.ISUB:
            return (ints[0] - ints[1]).astype(np.float64)
        if opcode is Opcode.IMUL:
            return (ints[0] * ints[1]).astype(np.float64)
        if opcode is Opcode.IMAD:
            return (ints[0] * ints[1] + ints[2]).astype(np.float64)
        if opcode is Opcode.ISHL:
            return (ints[0] << ints[1]).astype(np.float64)
        if opcode is Opcode.ISHR:
            return (ints[0] >> ints[1]).astype(np.float64)
        if opcode is Opcode.IAND:
            return (ints[0] & ints[1]).astype(np.float64)
        if opcode is Opcode.IOR:
            return (ints[0] | ints[1]).astype(np.float64)
        if opcode is Opcode.IXOR:
            return (ints[0] ^ ints[1]).astype(np.float64)
        if opcode is Opcode.IMIN:
            return np.minimum(ints[0], ints[1]).astype(np.float64)
        if opcode is Opcode.IMAX:
            return np.maximum(ints[0], ints[1]).astype(np.float64)
    raise SimulationError(f"no evaluator for opcode {opcode.mnemonic}")


def _f32(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.float32).astype(np.float64)
