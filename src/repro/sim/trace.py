"""Dynamic execution traces: what the functional simulator records.

Two views of one execution:

* **Aggregate statistics** (:class:`StageStats`) -- warp-level dynamic
  instruction counts by type, shared-memory transactions with and
  without bank conflicts, and global-memory transactions by coalescing
  granularity and by target array.  This is the "info extractor" input
  of the paper's workflow (Fig. 1).
* **Per-warp event streams** -- a compact timeline the hardware timing
  simulator replays.  Each event carries its register-dependence
  distance so the timing model can honour real instruction-level
  parallelism.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from collections import Counter
from dataclasses import dataclass, field

#: Event kinds (first tuple slot).
EV_ARITH = 0  # (EV_ARITH, dep, type_index, 0, None)
EV_SHARED = 1  # (EV_SHARED, dep, transactions, 0, None)
EV_ARITH_SHARED = 2  # (EV_ARITH_SHARED, dep, type_index, transactions, None)
EV_GLOBAL_LD = 3  # (EV_GLOBAL_LD, dep, n_txn, bytes, segments|None)
EV_GLOBAL_ST = 4  # (EV_GLOBAL_ST, dep, n_txn, bytes, segments|None)
EV_BAR = 5  # (EV_BAR, 0, 0, 0, None)

#: Instruction type name -> event type index.
TYPE_INDEX = {"I": 0, "II": 1, "III": 2, "IV": 3}
TYPE_NAMES = ("I", "II", "III", "IV")

Event = tuple  # (kind, dep, a, b, payload)


def _new_type_counter() -> dict[str, int]:
    return {name: 0 for name in TYPE_NAMES}


@dataclass
class StageStats:
    """Aggregate dynamic statistics for one synchronization stage."""

    instructions: Counter = field(default_factory=Counter)  # opcode name -> count
    instr_by_type: dict[str, int] = field(default_factory=_new_type_counter)
    mad_instructions: int = 0
    shared_transactions: int = 0
    shared_transactions_ideal: int = 0
    shared_useful_bytes: int = 0
    global_requests: int = 0
    global_transactions: dict[int, int] = field(default_factory=dict)  # gran -> n
    global_bytes: dict[int, int] = field(default_factory=dict)  # gran -> bytes
    global_useful_bytes: int = 0
    global_by_array: dict[str, dict[int, tuple[int, int]]] = field(
        default_factory=dict
    )
    active_warps: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(self.instr_by_type.values())

    @property
    def computational_density(self) -> float:
        """Fraction of instructions doing actual computation (MAD-style)."""
        total = self.total_instructions
        return self.mad_instructions / total if total else 0.0

    @property
    def bank_conflict_factor(self) -> float:
        """Shared transactions per conflict-free transaction (>= 1)."""
        if not self.shared_transactions_ideal:
            return 1.0
        return self.shared_transactions / self.shared_transactions_ideal

    def coalescing_efficiency(self, granularity: int = 32) -> float:
        """Useful global bytes / transferred bytes at a granularity."""
        transferred = self.global_bytes.get(granularity, 0)
        if not transferred:
            return 1.0
        return self.global_useful_bytes / transferred

    def merge(self, other: "StageStats") -> None:
        """Accumulate another block's statistics for the same stage."""
        self.instructions.update(other.instructions)
        for name, count in other.instr_by_type.items():
            self.instr_by_type[name] += count
        self.mad_instructions += other.mad_instructions
        self.shared_transactions += other.shared_transactions
        self.shared_transactions_ideal += other.shared_transactions_ideal
        self.shared_useful_bytes += other.shared_useful_bytes
        self.global_requests += other.global_requests
        for gran, count in other.global_transactions.items():
            self.global_transactions[gran] = (
                self.global_transactions.get(gran, 0) + count
            )
        for gran, nbytes in other.global_bytes.items():
            self.global_bytes[gran] = self.global_bytes.get(gran, 0) + nbytes
        self.global_useful_bytes += other.global_useful_bytes
        for array, per_gran in other.global_by_array.items():
            mine = self.global_by_array.setdefault(array, {})
            for gran, (txn, nbytes) in per_gran.items():
                old_txn, old_bytes = mine.get(gran, (0, 0))
                mine[gran] = (old_txn + txn, old_bytes + nbytes)
        self.active_warps = max(self.active_warps, other.active_warps)

    def canonicalize_order(self) -> None:
        """Rewrite the open-keyed mappings in sorted-key order.

        Which interpreter schedule first touched an opcode or
        granularity decides dict *insertion* order, which pickles
        observably even when the contents are equal.  Finalized traces
        canonicalize so that equal stages are byte-identical wherever
        they were produced (the differential gates' pickled-byte
        comparisons rely on this); ``instr_by_type`` already has a
        fixed key order by construction.
        """
        self.instructions = Counter(dict(sorted(self.instructions.items())))
        self.global_transactions = dict(
            sorted(self.global_transactions.items())
        )
        self.global_bytes = dict(sorted(self.global_bytes.items()))
        self.global_by_array = {
            array: dict(sorted(per_gran.items()))
            for array, per_gran in sorted(self.global_by_array.items())
        }

    def canonical(self) -> tuple:
        """Order-independent tuple form (fingerprinting, equality)."""
        return (
            tuple(sorted(self.instructions.items())),
            tuple(sorted(self.instr_by_type.items())),
            self.mad_instructions,
            self.shared_transactions,
            self.shared_transactions_ideal,
            self.shared_useful_bytes,
            self.global_requests,
            tuple(sorted(self.global_transactions.items())),
            tuple(sorted(self.global_bytes.items())),
            self.global_useful_bytes,
            tuple(
                sorted(
                    (array, tuple(sorted(per_gran.items())))
                    for array, per_gran in self.global_by_array.items()
                )
            ),
            self.active_warps,
        )

    def scaled(self, factor: float) -> "StageStats":
        """A copy with all extensive quantities multiplied by ``factor``."""
        out = StageStats()
        out.instructions = Counter(
            {k: int(round(v * factor)) for k, v in self.instructions.items()}
        )
        out.instr_by_type = {
            k: int(round(v * factor)) for k, v in self.instr_by_type.items()
        }
        out.mad_instructions = int(round(self.mad_instructions * factor))
        out.shared_transactions = int(round(self.shared_transactions * factor))
        out.shared_transactions_ideal = int(
            round(self.shared_transactions_ideal * factor)
        )
        out.shared_useful_bytes = int(round(self.shared_useful_bytes * factor))
        out.global_requests = int(round(self.global_requests * factor))
        out.global_transactions = {
            g: int(round(v * factor)) for g, v in self.global_transactions.items()
        }
        out.global_bytes = {
            g: int(round(v * factor)) for g, v in self.global_bytes.items()
        }
        out.global_useful_bytes = int(round(self.global_useful_bytes * factor))
        out.global_by_array = {
            array: {
                g: (int(round(t * factor)), int(round(b * factor)))
                for g, (t, b) in per_gran.items()
            }
            for array, per_gran in self.global_by_array.items()
        }
        out.active_warps = self.active_warps
        return out


def stream_digest(warp_streams: list[list[Event]]) -> str:
    """Content hash of one block's warp streams.

    This is the timing layer's class identity: two blocks with equal
    digests replay identically, wherever their traces came from.  The
    digest doubles as the class table entry in measured-run cache keys.
    """
    return hashlib.sha256(
        pickle.dumps(warp_streams, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def intern_stage_strings(trace: "BlockTrace") -> "BlockTrace":
    """Re-intern the string keys of a trace's per-stage mappings.

    In-process interpretation shares one string object per opcode name,
    type name and allocation name across every block (they come from
    the kernel's constants); unpickling a pool worker's result instead
    materializes fresh copies per chunk.  The values are equal either
    way, but pickling a *list* of traces observes the sharing topology
    (memo back-references), so a pooled run's aggregate would not be
    byte-identical to the serial reference.  Interning restores one
    shared object per distinct string; idempotent, mutates in place.
    """
    for stage in trace.stages:
        stage.instructions = Counter(
            {sys.intern(op): n for op, n in stage.instructions.items()}
        )
        stage.instr_by_type = {
            sys.intern(name): n for name, n in stage.instr_by_type.items()
        }
        stage.global_by_array = {
            sys.intern(name): per_gran
            for name, per_gran in stage.global_by_array.items()
        }
    return trace


def _plain_event(event: Event) -> Event:
    """One event with every field coerced to the interpreter's types.

    Streams carry ``(kind, dep, a, b, payload)`` with plain ints and, on
    global events of a ``record_segments`` launch, a
    ``(cacheable, ((address, size), ...))`` payload.  Pickle observes
    the difference between ``2`` and ``np.int64(2)``, so synthesized
    streams are normalized through this before they can stand in for
    interpreted ones.
    """
    kind, dep, a, b, payload = event
    if payload is not None:
        cacheable, segments = payload
        payload = (
            bool(cacheable),
            tuple((int(lo), int(size)) for lo, size in segments),
        )
    return (int(kind), int(dep), int(a), int(b), payload)


@dataclass
class BlockTrace:
    """Everything recorded while simulating one block.

    ``global_load_ranges`` / ``global_store_ranges`` are byte spans
    ``[lo, hi)`` this block touched through global loads and stores,
    a bounded interval list per accessed allocation.  The engine's
    cross-block read-after-write check compares them across blocks;
    they are deliberately excluded from :meth:`stats_key`, since
    block-shifted bases move the footprint without changing behaviour.

    The stream digest and behavioural fingerprint are memoized on the
    trace (keyed by the per-warp stream lengths, which any legitimate
    stream mutation changes), so very large data-dependent class tables
    are hashed once instead of once per ``MeasuredRunCache`` lookup.
    Mutating events *in place* without changing stream lengths bypasses
    the invalidation -- streams are append-only records everywhere in
    this codebase.
    """

    block: tuple[int, int]
    stages: list[StageStats]
    warp_streams: list[list[Event]]
    global_load_ranges: tuple[tuple[int, int], ...] = ()
    global_store_ranges: tuple[tuple[int, int], ...] = ()
    _digest_memo: tuple | None = field(
        default=None, repr=False, compare=False
    )
    _stats_key_memo: tuple | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_warps(self) -> int:
        return len(self.warp_streams)

    @property
    def totals(self) -> StageStats:
        total = StageStats()
        for stage in self.stages:
            total.merge(stage)
        return total

    @classmethod
    def from_synthesis(
        cls,
        block: tuple[int, int],
        stages: list[StageStats],
        warp_streams: list[list[Event]],
        global_load_ranges: tuple[tuple[int, int], ...] = (),
        global_store_ranges: tuple[tuple[int, int], ...] = (),
    ) -> "BlockTrace":
        """Build a finalized trace from synthesized components.

        The symbolic synthesizer (:mod:`repro.analysis.symbolic`)
        assembles its per-stage statistics and warp streams from
        closed-form counting rules, which may leave NumPy scalars or
        insertion-ordered mappings behind.  This constructor is the
        byte-identity chokepoint: stages are canonicalized and every
        event field is coerced to the plain Python types the
        interpreters emit, so a synthesized trace pickles to exactly
        the bytes an interpreted one does (the ``trace_mode="both"``
        divergence check and the engine's stream digests rely on it).
        """
        for stage in stages:
            stage.canonicalize_order()
        return cls(
            block=(int(block[0]), int(block[1])),
            stages=list(stages),
            warp_streams=[
                [_plain_event(event) for event in stream]
                for stream in warp_streams
            ],
            global_load_ranges=tuple(
                (int(lo), int(hi)) for lo, hi in global_load_ranges
            ),
            global_store_ranges=tuple(
                (int(lo), int(hi)) for lo, hi in global_store_ranges
            ),
        )

    def __getstate__(self):
        # The memos are cheap to rebuild and would otherwise serialize a
        # second rendering of the streams into every on-disk cache entry
        # and worker IPC message.
        state = self.__dict__.copy()
        state["_digest_memo"] = None
        state["_stats_key_memo"] = None
        return state

    def _stream_lengths(self) -> tuple[int, ...]:
        return tuple(len(stream) for stream in self.warp_streams)

    def stream_digest(self) -> str:
        """Memoized :func:`stream_digest` of this block's streams."""
        lengths = self._stream_lengths()
        memo = self._digest_memo
        if memo is not None and memo[0] == lengths:
            return memo[1]
        digest = stream_digest(self.warp_streams)
        self._digest_memo = (lengths, digest)
        return digest

    def stats_key(self) -> tuple:
        """Behavioural fingerprint of this block's execution.

        Block coordinates are deliberately excluded: two blocks with
        equal keys produced indistinguishable statistics and warp
        streams, so either can stand in for the other (the engine's
        deduplication test).
        """
        lengths = self._stream_lengths()
        memo = self._stats_key_memo
        if memo is not None and memo[0] == lengths:
            return memo[1]
        key = (
            tuple(stage.canonical() for stage in self.stages),
            tuple(tuple(stream) for stream in self.warp_streams),
        )
        self._stats_key_memo = (lengths, key)
        return key


@dataclass
class KernelTrace:
    """Aggregated dynamic statistics for a whole launch.

    ``exact`` records whether the stage statistics are a true sum over
    all ``num_blocks`` blocks (full grid, or engine replication with
    exact multiplicities) or a scaled-up representative sample.
    ``engine_stats`` is attached by the simulation engine when the trace
    was produced through it (see :mod:`repro.sim.engine`).
    """

    stages: list[StageStats]
    num_blocks: int
    block_traces: list[BlockTrace] = field(default_factory=list)
    exact: bool = True
    engine_stats: object | None = None

    @property
    def totals(self) -> StageStats:
        total = StageStats()
        for stage in self.stages:
            total.merge(stage)
        return total

    @property
    def num_stages(self) -> int:
        return len(self.stages)


def aggregate_blocks(
    block_traces: list[BlockTrace], scale_to_blocks: int | None = None
) -> KernelTrace:
    """Combine per-block traces; optionally scale a sample to a full grid.

    Stage ``i`` of every block contributes to stage ``i`` of the result
    (stages are synchronization intervals, which line up across blocks
    for the homogeneous kernels studied here).

    When scaling a sample, each stage is scaled by the number of sampled
    blocks that actually reached it: a stage only some sampled blocks
    executed is extrapolated from those contributors alone, instead of
    being diluted by a uniform ``total / simulated`` factor that treats
    blocks which never reached the stage as zero-cost contributors.
    This deliberately assumes stage raggedness comes from a *fixed* set
    of outliers (e.g. one partial tail block deliberately included in
    the sample), not from a grid-proportional population -- the regime
    of every kernel studied here.  For proportionally ragged grids,
    simulate the full grid through the engine instead of sampling.
    """
    num_stages = max((len(t.stages) for t in block_traces), default=0)
    stages = [StageStats() for _ in range(num_stages)]
    contributors = [0] * num_stages
    for trace in block_traces:
        for i, stage in enumerate(trace.stages):
            stages[i].merge(stage)
            contributors[i] += 1
    simulated = len(block_traces)
    total = scale_to_blocks if scale_to_blocks is not None else simulated
    exact = total == simulated
    if not exact and simulated > 0:
        stages = [
            stage.scaled(total / count)
            for stage, count in zip(stages, contributors)
        ]
    return KernelTrace(
        stages=stages, num_blocks=total, block_traces=block_traces, exact=exact
    )


def aggregate_weighted(
    block_traces: list[BlockTrace], multiplicities: list[int]
) -> KernelTrace:
    """Exactly aggregate representatives with integer multiplicities.

    Each trace stands for ``multiplicity`` behaviourally identical
    blocks; stage statistics are multiplied by the exact integer count,
    so the result is bit-identical to merging every replica -- no
    representative-sample extrapolation involved.
    """
    if len(block_traces) != len(multiplicities):
        raise ValueError("one multiplicity per block trace is required")
    if any(m < 1 for m in multiplicities):
        raise ValueError("multiplicities must be positive")
    num_stages = max((len(t.stages) for t in block_traces), default=0)
    stages = [StageStats() for _ in range(num_stages)]
    for trace, mult in zip(block_traces, multiplicities):
        for i, stage in enumerate(trace.stages):
            stages[i].merge(stage if mult == 1 else stage.scaled(mult))
    return KernelTrace(
        stages=stages,
        num_blocks=sum(multiplicities),
        block_traces=list(block_traces),
        exact=True,
    )
