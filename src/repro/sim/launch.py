"""Launch helpers: representative-block simulation of large grids.

Whole-grid functional simulation is exact but costly in Python; the
kernels studied in the paper are *homogeneous* (every block executes the
same instruction sequence) or can be covered by a small sample of
blocks.  These helpers run a sample and scale the aggregate statistics,
keeping the per-warp event streams of the sampled blocks for the
hardware timing simulator.
"""

from __future__ import annotations

from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.trace import KernelTrace


def run_full(
    simulator: FunctionalSimulator, launch: LaunchConfig
) -> KernelTrace:
    """Execute every block of the grid (exact, used for validation)."""
    return simulator.run(launch)


def run_representative(
    simulator: FunctionalSimulator,
    launch: LaunchConfig,
    sample_blocks: list[tuple[int, int]] | None = None,
) -> KernelTrace:
    """Execute a block sample and scale statistics to the full grid.

    By default the single block (0, 0) is simulated.  For heterogeneous
    grids pass an explicit, representative ``sample_blocks`` list (e.g.
    evenly spaced blocks for SpMV's data-dependent access patterns).
    """
    sample = sample_blocks if sample_blocks is not None else [(0, 0)]
    return simulator.run(launch, blocks=sample)


def evenly_spaced_blocks(
    launch: LaunchConfig, count: int
) -> list[tuple[int, int]]:
    """Pick ``count`` blocks spread uniformly across the grid."""
    all_blocks = launch.all_blocks()
    if count >= len(all_blocks):
        return all_blocks
    stride = len(all_blocks) / count
    return [all_blocks[int(i * stride)] for i in range(count)]


def make_simulator(kernel, gmem: GlobalMemory | None = None, **kwargs):
    """Convenience constructor mirroring :class:`FunctionalSimulator`."""
    return FunctionalSimulator(kernel, gmem=gmem, **kwargs)
