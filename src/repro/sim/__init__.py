"""Functional SIMT simulation (the paper's Barra analogue)."""

from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.launch import (
    evenly_spaced_blocks,
    make_simulator,
    run_full,
    run_representative,
)
from repro.sim.memory import Allocation, GlobalMemory, SharedMemory
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
    BlockTrace,
    KernelTrace,
    StageStats,
    TYPE_INDEX,
    TYPE_NAMES,
    aggregate_blocks,
)

__all__ = [
    "Allocation",
    "BlockTrace",
    "EV_ARITH",
    "EV_ARITH_SHARED",
    "EV_BAR",
    "EV_GLOBAL_LD",
    "EV_GLOBAL_ST",
    "EV_SHARED",
    "FunctionalSimulator",
    "GlobalMemory",
    "KernelTrace",
    "LaunchConfig",
    "SharedMemory",
    "StageStats",
    "TYPE_INDEX",
    "TYPE_NAMES",
    "aggregate_blocks",
    "evenly_spaced_blocks",
    "make_simulator",
    "run_full",
    "run_representative",
]
