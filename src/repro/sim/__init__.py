"""Functional SIMT simulation (the paper's Barra analogue)."""

from repro.sim.engine import (
    EngineStats,
    KernelDependence,
    SimulationEngine,
    TraceCache,
    analyze_dependence,
    kernel_fingerprint,
    partition_blocks,
)
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.launch import (
    evenly_spaced_blocks,
    make_simulator,
    run_full,
    run_representative,
)
from repro.sim.memory import Allocation, GlobalMemory, SharedMemory
from repro.sim.trace import (
    EV_ARITH,
    EV_ARITH_SHARED,
    EV_BAR,
    EV_GLOBAL_LD,
    EV_GLOBAL_ST,
    EV_SHARED,
    BlockTrace,
    KernelTrace,
    StageStats,
    TYPE_INDEX,
    TYPE_NAMES,
    aggregate_blocks,
    aggregate_weighted,
    stream_digest,
)

__all__ = [
    "Allocation",
    "BlockTrace",
    "EngineStats",
    "EV_ARITH",
    "EV_ARITH_SHARED",
    "EV_BAR",
    "EV_GLOBAL_LD",
    "EV_GLOBAL_ST",
    "EV_SHARED",
    "FunctionalSimulator",
    "GlobalMemory",
    "KernelDependence",
    "KernelTrace",
    "LaunchConfig",
    "SharedMemory",
    "SimulationEngine",
    "StageStats",
    "TYPE_INDEX",
    "TYPE_NAMES",
    "TraceCache",
    "aggregate_blocks",
    "aggregate_weighted",
    "analyze_dependence",
    "evenly_spaced_blocks",
    "kernel_fingerprint",
    "make_simulator",
    "partition_blocks",
    "run_full",
    "run_representative",
    "stream_digest",
]
