"""Device memory state for the functional simulator.

Both spaces are word-addressed (4-byte words) behind byte-based
addresses, matching how the model counts traffic.  Values are stored as
float64 so integers (column indices, addresses) and float32 data share
one representation without precision loss in the ranges we use.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryAccessError


@dataclass(frozen=True)
class Allocation:
    """One named global-memory allocation."""

    name: str
    base: int  # byte address
    size: int  # bytes

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class GlobalMemory:
    """A bump-allocated global-memory arena.

    Allocations are 128-byte aligned (one maximal coalescing segment),
    as CUDA's allocator guarantees.  Arrays can be marked *cacheable*
    to emulate binding them to a texture (used by the SpMV case study).
    """

    _ALIGN = 128

    def __init__(self, capacity_words: int = 1 << 22) -> None:
        self._data = np.zeros(capacity_words, dtype=np.float64)
        self._top = self._ALIGN  # leave address 0 unmapped to catch bugs
        self._allocations: list[Allocation] = []
        self._cacheable: set[str] = set()

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocations)

    def _grow_to(self, words: int) -> None:
        if words <= len(self._data):
            return
        new_size = max(words, 2 * len(self._data))
        grown = np.zeros(new_size, dtype=np.float64)
        grown[: len(self._data)] = self._data
        self._data = grown

    def alloc(self, words: int, name: str = "") -> int:
        """Reserve ``words`` 4-byte words; returns the base byte address."""
        if words <= 0:
            raise MemoryAccessError("allocation must be positive")
        base = self._top
        size = words * 4
        self._top += size
        if self._top % self._ALIGN:
            self._top += self._ALIGN - self._top % self._ALIGN
        self._grow_to(self._top // 4)
        allocation = Allocation(name or f"alloc{len(self._allocations)}", base, size)
        self._allocations.append(allocation)
        return base

    def alloc_array(self, values: np.ndarray, name: str = "") -> int:
        """Allocate and initialize from a 1-D numpy array."""
        values = np.asarray(values, dtype=np.float64).ravel()
        base = self.alloc(len(values), name)
        self._data[base // 4 : base // 4 + len(values)] = values
        return base

    def mark_cacheable(self, name: str) -> None:
        """Flag an allocation as texture-bound (hardware cache eligible)."""
        if not any(a.name == name for a in self._allocations):
            raise MemoryAccessError(f"no allocation named {name!r}")
        self._cacheable.add(name)

    def is_cacheable(self, address: int) -> bool:
        allocation = self.allocation_at(address)
        return allocation is not None and allocation.name in self._cacheable

    @property
    def cacheable_names(self) -> frozenset[str]:
        """Names of texture-bound allocations (batch-lookup helper)."""
        return frozenset(self._cacheable)

    def digest(self) -> str:
        """Content fingerprint of the arena (layout, flags and data).

        Used as part of on-disk trace-cache keys: data-dependent kernels
        (e.g. SpMV's index-driven gathers) produce different traces for
        different memory contents, so cached traces must be keyed by
        what the kernel could have read.
        """
        h = hashlib.sha256()
        for allocation in self._allocations:
            h.update(
                f"{allocation.name}:{allocation.base}:{allocation.size};".encode()
            )
        h.update(",".join(sorted(self._cacheable)).encode())
        h.update(self._data[: self._top // 4].tobytes())
        return h.hexdigest()

    def allocation_at(self, address: int) -> Allocation | None:
        """The allocation containing a byte address, if any."""
        for allocation in self._allocations:
            if allocation.contains(address):
                return allocation
        return None

    # ------------------------------------------------------------------
    # zero-copy export to pool workers
    # ------------------------------------------------------------------
    def share(self):
        """Export the arena through ``multiprocessing.shared_memory``.

        Returns ``(descriptor, segment)`` -- a picklable descriptor for
        worker processes plus the owning ``SharedMemory`` segment the
        caller must ``close()``/``unlink()`` after the pool is done --
        or ``None`` when the platform offers no shared memory (import
        or allocation failure), in which case callers fall back to
        pickling the arena itself.  The descriptor carries the arena's
        content digest so workers can assert they attached to the
        unchanged pre-launch contents.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on CPython
            return None
        words = self._top // 4
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(words * 8, 8)
            )
        except OSError:  # pragma: no cover - e.g. unwritable /dev/shm
            return None
        # Guaranteed cleanup: the owner should release_segment() in a
        # finally block, but tracking means an interrupted or crashed
        # run still unlinks the segment (KeyboardInterrupt handler in
        # repro.pool, atexit as the last resort).
        from repro.pool import track_segment

        track_segment(segment)
        buffer = np.ndarray(words, dtype=np.float64, buffer=segment.buf)
        np.copyto(buffer, self._data[:words])
        descriptor = {
            "shm_name": segment.name,
            "words": words,
            "top": self._top,
            "allocations": [
                (a.name, a.base, a.size) for a in self._allocations
            ],
            "cacheable": sorted(self._cacheable),
            "digest": self.digest(),
        }
        return descriptor, segment

    @classmethod
    def from_shared(cls, descriptor: dict) -> "GlobalMemory":
        """Rebuild an arena from a :meth:`share` descriptor.

        The worker copies the segment into *private* memory (its kernel
        stores must stay invisible to other workers, exactly like the
        pickling path) and then detaches.  The copy is verified against
        the descriptor's content digest: workers are guaranteed to see
        the pre-launch contents unchanged.

        An attach failure (segment vanished, /dev/shm pressure, digest
        mismatch, injected fault) raises; the pool layer treats that as
        an environmental task failure and re-executes the task through
        the serial reference instead of aborting the run.
        """
        from multiprocessing import resource_tracker, shared_memory

        from repro import faults

        faults.on_shm_attach(descriptor["shm_name"])

        # CPython < 3.13 registers even plain *attaches* with the
        # resource tracker, which double-counts the owner's segment and
        # races concurrent workers' unregisters.  Suppress registration
        # for the duration of the attach; the owner alone tracks and
        # unlinks the segment.
        original_register = resource_tracker.register

        def _no_shm_register(name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _no_shm_register
        try:
            segment = shared_memory.SharedMemory(name=descriptor["shm_name"])
        finally:
            resource_tracker.register = original_register
        try:
            words = descriptor["words"]
            gmem = cls(capacity_words=max(words, 1))
            gmem._data[:words] = np.ndarray(
                words, dtype=np.float64, buffer=segment.buf
            )
        finally:
            segment.close()
        gmem._top = descriptor["top"]
        gmem._allocations = [
            Allocation(name, base, size)
            for name, base, size in descriptor["allocations"]
        ]
        gmem._cacheable = set(descriptor["cacheable"])
        if gmem.digest() != descriptor["digest"]:
            raise MemoryAccessError(
                "shared global-memory arena changed between launch and "
                "worker attach (content digest mismatch)"
            )
        return gmem

    def _word_indices(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return addresses
        if np.any(addresses & 3):
            raise MemoryAccessError("global access must be 4-byte aligned")
        if int(addresses.min()) < self._ALIGN or int(addresses.max()) + 4 > self._top:
            raise MemoryAccessError(
                f"global access out of bounds (arena top = {self._top})"
            )
        return addresses >> 2

    def read(self, addresses: np.ndarray) -> np.ndarray:
        """Read one word per byte address."""
        return self._data[self._word_indices(addresses)]

    def write(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Write one word per byte address."""
        self._data[self._word_indices(addresses)] = values

    def read_array(self, base: int, words: int) -> np.ndarray:
        """Bulk read for host-side validation."""
        addresses = base + 4 * np.arange(words, dtype=np.int64)
        return self.read(addresses)


class SharedMemory:
    """Per-block scratchpad, word-addressed like the hardware banks."""

    def __init__(self, words: int) -> None:
        if words < 0:
            raise MemoryAccessError("shared size must be non-negative")
        self._data = np.zeros(max(words, 1), dtype=np.float64)
        self._bytes = words * 4

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def _word_indices(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return addresses
        if np.any(addresses % 4):
            raise MemoryAccessError("shared access must be 4-byte aligned")
        if np.any(addresses < 0) or np.any(addresses + 4 > self._bytes):
            raise MemoryAccessError(
                f"shared access out of bounds (footprint = {self._bytes} B)"
            )
        return addresses // 4

    def read(self, addresses: np.ndarray) -> np.ndarray:
        return self._data[self._word_indices(addresses)]

    def write(self, addresses: np.ndarray, values: np.ndarray) -> None:
        self._data[self._word_indices(addresses)] = values
