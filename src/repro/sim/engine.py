"""Deduplicating, parallel, memoizing simulation engine.

Whole-grid functional simulation in Python is the pipeline's bottleneck:
the analytical model answers in microseconds what a serial
:meth:`FunctionalSimulator.run` over thousands of blocks takes minutes
to produce.  The kernels the paper studies are *homogeneous* -- most
blocks execute the same instruction sequence with the same transaction
pattern -- so the engine exploits that structure instead of brute force:

1. **Deduplication.**  A one-pass taint analysis over the static kernel
   (:func:`analyze_dependence`) determines how block coordinates and
   memory contents can influence control flow and addressing.  Blocks
   are partitioned into equivalence classes accordingly: one class for
   fully block-uniform kernels, boundary-role classes (first/interior/
   last per grid dimension) when ``ctaid`` reaches a guard, and
   singleton classes when traces are data-dependent.  One representative
   per class is simulated and its :class:`BlockTrace` is replicated with
   the exact class multiplicity (:func:`aggregate_weighted` -- no
   representative-sample extrapolation).
2. **Probe verification.**  Taint analysis is conservative about what it
   *refuses* to dedup, but it cannot prove that block-dependent global
   addresses preserve coalescing.  Every multi-member class is therefore
   verified by also simulating a second member and comparing behavioural
   fingerprints (:meth:`BlockTrace.stats_key`); on mismatch the class is
   demoted and every member is simulated individually.
3. **Parallel fan-out.**  Blocks that do need simulating are distributed
   over a ``multiprocessing`` pool (``workers`` > 1).  Workers only
   produce statistics; global-memory *writes* stay in the worker, so the
   engine is a statistics pipeline -- numerical validation should use
   :class:`FunctionalSimulator` directly.
4. **Memoization.**  Aggregated :class:`KernelTrace` results can be
   cached on disk keyed by (kernel fingerprint, launch, spec, global
   memory digest), so CLIs and benchmark harnesses replay instantly.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import pickle
import time
import warnings
from dataclasses import dataclass, replace

from repro.arch.specs import GpuSpec, GTX285
from repro.errors import AnalysisError, LaunchError, ReproError
from repro.isa.instructions import MemRef, Pred, Reg, Special
from repro.isa.opcodes import OpKind
from repro.isa.program import Kernel
from repro.pool import (
    HealthRecord,
    PoolHealth,
    map_tasks,
    release_segment,
    start_method,
)
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.util import VersionedPickleCache, spec_fingerprint
from repro.sim.trace import (
    BlockTrace,
    KernelTrace,
    aggregate_blocks,
    aggregate_weighted,
    intern_stage_strings,
)

#: Bump when trace or aggregation semantics change: invalidates caches.
#: v2: BlockTrace carries global load/store footprints (RAW check).
#: v3: footprints are bounded interval lists (not single hulls), and
#: barrier-free grids run through the multi-block batched interpreter
#: (cross-block write visibility changed for racy kernels).
#: v4: barrier-synchronized grids batch too (per-block barrier release
#: inside one slab), so cross-block write visibility changed for racy
#: *barriered* kernels, and the slab width (grid_batch_blocks) joined
#: the key.
#: v5: the static dedup soundness proof can skip verifier probes
#: (``dedup_verify`` joined the key) and class members are canonically
#: sorted, so stats like ``simulated_blocks`` changed for proved grids.
#: v6: covered dedup classes synthesize their representative trace in
#: closed form instead of interpreting it (``trace_mode`` joined the
#: key), so ``simulated_blocks``/``synthesized_classes`` changed for
#: affine grids; the slab width resolves per launch from the launch's
#: warps-per-block.
#: v7: EngineStats carries a ``health`` degradation record
#: (:class:`repro.pool.HealthRecord`), so cached stats gained a field.
#: v8: coalescing takes its max-segment ceiling from the spec instead
#: of a hardcoded 128 B, so traces of specs with other ceilings
#: (registered architecture generations) changed.
ENGINE_CACHE_VERSION = 8

#: Taint bits.
TAINT_BLOCK = 1  # value depends on the block coordinates (ctaid)
TAINT_DATA = 2  # value depends on global-memory contents

_BLOCK_SPECIALS = ("ctaid_x", "ctaid_y")


# ----------------------------------------------------------------------
# static dependence (taint) analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelDependence:
    """How block coordinates and data can influence a block's trace."""

    control: int  # taint of any guard / branch predicate
    shared_addr: int  # taint of any shared-memory address
    global_addr: int  # taint of any global-memory address

    @property
    def data_dependent(self) -> bool:
        """Traces can differ with memory contents: no cross-block dedup."""
        return bool(
            (self.control | self.shared_addr | self.global_addr) & TAINT_DATA
        )

    @property
    def block_in_control(self) -> bool:
        return bool((self.control | self.shared_addr) & TAINT_BLOCK)

    @property
    def block_in_addresses(self) -> bool:
        return bool(self.global_addr & TAINT_BLOCK)


class _TaintState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "preds", "smem")

    def __init__(self, num_regs: int, num_preds: int) -> None:
        self.regs = [0] * max(num_regs, 1)
        self.preds = [0] * max(num_preds, 1)
        self.smem = 0

    def copy(self) -> "_TaintState":
        out = _TaintState.__new__(_TaintState)
        out.regs = list(self.regs)
        out.preds = list(self.preds)
        out.smem = self.smem
        return out

    def join(self, other: "_TaintState") -> bool:
        """Merge ``other`` in; returns True when anything widened."""
        changed = False
        for i, taint in enumerate(other.regs):
            if self.regs[i] | taint != self.regs[i]:
                self.regs[i] |= taint
                changed = True
        for i, taint in enumerate(other.preds):
            if self.preds[i] | taint != self.preds[i]:
                self.preds[i] |= taint
                changed = True
        if self.smem | other.smem != self.smem:
            self.smem |= other.smem
            changed = True
        return changed

    def operand(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand.index]
        if isinstance(operand, Pred):
            return self.preds[operand.index]
        if isinstance(operand, Special):
            return TAINT_BLOCK if operand.name in _BLOCK_SPECIALS else 0
        if isinstance(operand, MemRef):
            # Shared-memory operand of an arithmetic instruction: its
            # value is whatever any store put there.
            base = self.regs[operand.base.index] if operand.base else 0
            return self.smem | base
        return 0  # Imm


def analyze_dependence(kernel: Kernel) -> KernelDependence:
    """Flow-sensitive taint analysis over the kernel's CFG.

    A worklist abstract interpretation propagates, per program point,
    which registers/predicates depend on the block coordinates
    (``ctaid_*``) or on global-memory contents.  ``tid``, ``ntid``,
    ``nctaid_*`` and launch parameters are launch-uniform and carry no
    taint.  Flow-sensitivity matters: hand-scheduled kernels reuse dead
    staging registers (e.g. matmul's prologue scratch later holds loaded
    data), and a flow-insensitive analysis would smear that data taint
    onto the address arithmetic computed before the reuse.

    Guarded writes are weak updates (inactive lanes keep the old value);
    branches conservatively fall through as well as jump, which merges a
    superset of the genuinely reachable states.
    """
    instructions = kernel.instructions
    n = len(instructions)
    control = shared_addr = global_addr = 0

    states: list[_TaintState | None] = [None] * n
    states[0] = _TaintState(kernel.num_registers, kernel.num_predicates)
    worklist = [0]
    while worklist:
        index = worklist.pop()
        state = states[index].copy()
        instr = instructions[index]
        kind = instr.opcode.kind

        guard_taint = (
            state.preds[instr.guard[0].index] if instr.guard else 0
        )
        # A guard shapes the active mask, hence the recorded statistics,
        # even on non-branch instructions.
        control |= guard_taint
        src_taint = guard_taint
        for src in instr.srcs:
            src_taint |= state.operand(src)
            if isinstance(src, MemRef) and src.space == "shared" and src.base:
                shared_addr |= state.regs[src.base.index]

        successors = []
        if kind == OpKind.BRANCH:
            control |= src_taint
            successors.append(kernel.labels[instr.target])
            if index + 1 < n:
                successors.append(index + 1)
        elif kind == OpKind.EXIT:
            # Divergent warps continue past a lane-partial exit.
            if index + 1 < n:
                successors.append(index + 1)
        else:
            if kind == OpKind.SETP:
                old = state.preds[instr.dst.index] if instr.guard else 0
                state.preds[instr.dst.index] = old | src_taint
            elif kind == OpKind.LOAD_GLOBAL:
                ref = instr.srcs[0]
                base = state.regs[ref.base.index] if ref.base else 0
                global_addr |= base | guard_taint
                old = state.regs[instr.dst.index] if instr.guard else 0
                state.regs[instr.dst.index] = old | TAINT_DATA | guard_taint
            elif kind == OpKind.STORE_GLOBAL:
                base = (
                    state.regs[instr.dst.base.index] if instr.dst.base else 0
                )
                global_addr |= base | guard_taint
            elif kind == OpKind.LOAD_SHARED:
                ref = instr.srcs[0]
                base = state.regs[ref.base.index] if ref.base else 0
                shared_addr |= base | guard_taint
                old = state.regs[instr.dst.index] if instr.guard else 0
                state.regs[instr.dst.index] = old | state.smem | guard_taint
            elif kind == OpKind.STORE_SHARED:
                base = (
                    state.regs[instr.dst.base.index] if instr.dst.base else 0
                )
                shared_addr |= base | guard_taint
                state.smem |= src_taint
            elif isinstance(instr.dst, Reg):
                old = state.regs[instr.dst.index] if instr.guard else 0
                state.regs[instr.dst.index] = old | src_taint
            if index + 1 < n:
                successors.append(index + 1)

        for successor in successors:
            if states[successor] is None:
                states[successor] = state.copy()
                worklist.append(successor)
            elif states[successor].join(state):
                worklist.append(successor)

    return KernelDependence(
        control=control, shared_addr=shared_addr, global_addr=global_addr
    )


# ----------------------------------------------------------------------
# block partitioning
# ----------------------------------------------------------------------
@dataclass
class BlockClass:
    """A set of blocks believed to produce identical traces."""

    members: list[tuple[int, int]]

    def __post_init__(self) -> None:
        # Canonical member order: the representative and the probe
        # picks must not depend on grid iteration order, and the dedup
        # proof anchors at the minimum ctaid.
        self.members = sorted(self.members)

    @property
    def representative(self) -> tuple[int, int]:
        return self.members[0]

    @property
    def verifiers(self) -> tuple[tuple[int, int], ...]:
        """Extra members simulated to confirm the equivalence claim.

        Three probes when available: the representative's *neighbour*
        (catches parity/phase patterns a same-phase distant pick would
        miss), the *median* member (catches drift across the class),
        and the *last* member.  The last probe makes the class sound
        for any per-block activity pattern that is monotone in member
        order -- e.g. a ``gid < n`` tail guard whose cutoff falls
        strictly inside the class: if first and last members agree, no
        monotone cutoff can separate the members between them.
        """
        if len(self.members) < 2:
            return ()
        picks = {
            self.members[1],
            self.members[len(self.members) // 2],
            self.members[-1],
        }
        picks.discard(self.representative)
        return tuple(sorted(picks))


def _role(index: int, extent: int) -> int:
    """Boundary role of a block index: first, interior, or last."""
    if index == 0:
        return 0
    if index == extent - 1:
        return 2
    return 1


def partition_blocks(
    launch: LaunchConfig, dependence: KernelDependence
) -> list[BlockClass]:
    """Partition the grid into candidate equivalence classes."""
    blocks = launch.all_blocks()
    if dependence.data_dependent:
        return [BlockClass([block]) for block in blocks]
    if dependence.block_in_control:
        gx, gy = launch.grid
        by_role: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for bx, by in blocks:
            by_role.setdefault((_role(bx, gx), _role(by, gy)), []).append(
                (bx, by)
            )
        return [BlockClass(members) for members in by_role.values()]
    # Block coordinates reach at most global addresses (uniform base
    # shifts); the whole grid is one candidate class, probe-verified.
    return [BlockClass(blocks)]


# ----------------------------------------------------------------------
# engine statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineStats:
    """What the engine did for one launch (rendered in reports).

    ``replicated_blocks``/``block_classes`` only mean something in
    ``dedup`` mode (exact replication); in ``sample`` mode the trace is
    a scaled extrapolation and both are zero.
    """

    total_blocks: int
    simulated_blocks: int
    replicated_blocks: int
    block_classes: int
    probe_fallbacks: int
    workers: int
    cache_hit: bool
    wall_seconds: float
    mode: str  # 'dedup' | 'full' | 'sample'
    #: Multi-member classes whose equivalence the static proof
    #: certified, skipping their verifier probes entirely.
    proved_classes: int = 0
    #: Dedup classes whose representative trace was synthesized in
    #: closed form (no interpreter pass) vs interpreted.  Their sum is
    #: ``block_classes``; ``synthesized_classes == 0`` is the fallback
    #: signal for data-dependent kernels under ``trace_mode="symbolic"``.
    synthesized_classes: int = 0
    interpreted_classes: int = 0
    #: Degradation record for this run: pool retries/timeouts/serial
    #: fallbacks, cache quarantines, shm fallbacks, analysis fallbacks.
    #: All-zero on a healthy run.
    health: HealthRecord = HealthRecord()

    def summary(self) -> str:
        cache = "cache hit" if self.cache_hit else "cache miss"
        if self.mode == "dedup":
            detail = (
                f"{self.replicated_blocks} replicated, "
                f"{self.block_classes} classes"
            )
            qualifiers = []
            if self.proved_classes:
                qualifiers.append(f"{self.proved_classes} proved")
            if self.synthesized_classes:
                qualifiers.append(f"{self.synthesized_classes} synthesized")
            if qualifiers:
                detail += f" ({', '.join(qualifiers)})"
            detail += ", dedup"
        elif self.mode == "sample":
            detail = "representative sample, scaled"
        else:
            detail = "full grid"
        return (
            f"{self.simulated_blocks}/{self.total_blocks} blocks simulated "
            f"({detail}, {cache}, {self.wall_seconds * 1e3:.1f} ms)"
        )


# ----------------------------------------------------------------------
# fingerprints and the on-disk cache
# ----------------------------------------------------------------------
def kernel_fingerprint(kernel: Kernel) -> str:
    """Stable content hash of a kernel's code and static resources."""
    h = hashlib.sha256()
    h.update(kernel.name.encode())
    for instr in kernel.instructions:
        h.update(repr(instr).encode())
    h.update(repr(sorted(kernel.labels.items())).encode())
    h.update(repr(kernel.params).encode())
    h.update(repr(sorted(kernel.param_regs.items())).encode())
    h.update(
        f"{kernel.num_registers}:{kernel.num_predicates}:"
        f"{kernel.shared_memory_words}".encode()
    )
    return h.hexdigest()


def _launch_key(launch: LaunchConfig) -> tuple:
    return (
        launch.grid,
        launch.block_threads,
        tuple(sorted(launch.params.items())),
        launch.granularities,
        launch.record_segments,
    )


class TraceCache(VersionedPickleCache):
    """Pickled :class:`KernelTrace` results keyed by content hashes.

    Shared mechanics (fail-open loads, mtime-refreshing LRU, atomic
    stores under the ``$REPRO_CACHE_MAX_BYTES`` budget) live in
    :class:`repro.util.VersionedPickleCache`.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        super().__init__(directory, ENGINE_CACHE_VERSION, ".trace.pkl")

    def load(self, key: str) -> KernelTrace | None:
        trace = self.load_payload(key)
        return trace if isinstance(trace, KernelTrace) else None

    def store(self, key: str, trace: KernelTrace) -> None:
        self.store_payload(key, trace)


# ----------------------------------------------------------------------
# cross-block read-after-write detection
# ----------------------------------------------------------------------
def find_cross_block_raw(
    traces: list[BlockTrace],
) -> list[tuple[tuple, tuple, tuple, tuple]]:
    """Store/load range-overlap check across simulated blocks.

    Returns ``(loading block, load range, storing block, store range)``
    tuples, at most one per block whose global-load footprint overlaps
    another block's global-store footprint.  Blocks of one launch
    cannot synchronize, so such a kernel has no defined result in the
    CUDA model and its recorded statistics are schedule-dependent (see
    DESIGN.md "Parallelism knobs").  Footprints are per-allocation
    hulls: a reported overlap may be a false positive *within* one
    allocation (a block striding past another's slice), but disjoint
    hulls are a sound proof of independence, and separate allocations
    never conflict.
    """
    stores = sorted(
        (lo, hi, trace.block)
        for trace in traces
        for lo, hi in trace.global_store_ranges
    )
    if not stores:
        return []
    store_lows = [lo for lo, _, _ in stores]
    # Prefix "top two store ends from distinct blocks": enough to find,
    # for any load, an overlapping store from a *different* block
    # (second always tracks the best hull owned by another block than
    # best's, even with several hulls per block).
    best: tuple[int, tuple | None] = (-1, None)  # (hi, (lo, hi, block))
    second: tuple[int, tuple | None] = (-1, None)  # best of other blocks
    prefix = []
    for lo, hi, block in stores:
        if best[1] is None or hi > best[0]:
            if best[1] is not None and best[1][2] != block and best[0] > second[0]:
                second = best
            best = (hi, (lo, hi, block))
        elif block != best[1][2] and hi > second[0]:
            second = (hi, (lo, hi, block))
        prefix.append((best, second))

    conflicts = []
    for trace in traces:
        for lo, hi in trace.global_load_ranges:
            index = bisect.bisect_left(store_lows, hi)  # stores with lo < hi
            if not index:
                continue
            top, other = prefix[index - 1]
            overlap = None
            if top[1] is not None and top[1][2] != trace.block and top[0] > lo:
                overlap = top[1]
            elif other[1] is not None and other[0] > lo:
                overlap = other[1]
            if overlap is not None:
                conflicts.append(
                    (
                        trace.block,
                        (lo, hi),
                        overlap[2],
                        (overlap[0], overlap[1]),
                    )
                )
                break  # one report per loading block is enough
    return conflicts


# ----------------------------------------------------------------------
# multiprocessing plumbing
# ----------------------------------------------------------------------
_WORKER_STATE: tuple[FunctionalSimulator, LaunchConfig] | None = None

#: Sentinel first element of _WORKER_STATE when the shared-memory arena
#: attach failed in the initializer: tasks then raise an ordinary
#: exception instead of killing the worker, and the pool layer degrades
#: them to the serial (pickle-free) reference instead of aborting.
_ATTACH_FAILED = "shm-attach-failed"


def _init_worker(
    kernel, gmem, spec, max_warp_instructions, launch, batched,
    grid_batch_blocks,
) -> None:
    global _WORKER_STATE
    if isinstance(gmem, dict):
        # Shared-memory arena descriptor (see GlobalMemory.share):
        # attach, copy into private worker memory, verify the digest.
        # An attach failure must not crash the initializer (that breaks
        # the whole pool); it is deferred to the tasks as an ordinary,
        # serially recoverable error.
        try:
            gmem = GlobalMemory.from_shared(gmem)
        except Exception as exc:
            _WORKER_STATE = (_ATTACH_FAILED, repr(exc))
            return
    simulator = FunctionalSimulator(
        kernel,
        gmem=gmem,
        spec=spec,
        max_warp_instructions=max_warp_instructions,
        batched=batched,
        grid_batch_blocks=grid_batch_blocks,
    )
    _WORKER_STATE = (simulator, launch)


def _run_chunk_task(chunk: list[tuple[int, int]]) -> list[BlockTrace]:
    simulator, launch = _WORKER_STATE
    if simulator == _ATTACH_FAILED:
        raise ReproError(
            f"worker could not attach the shared global-memory arena "
            f"({launch}); falling back to serial execution"
        )
    return simulator.run_blocks(launch, chunk)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class SimulationEngine:
    """Fast functional-simulation frontend for the analysis pipeline.

    Parameters
    ----------
    kernel, gmem, spec, max_warp_instructions:
        Forwarded to the underlying :class:`FunctionalSimulator`.
    workers:
        Process-pool width for fanning out unique blocks.  ``0`` or
        ``1`` simulates in-process (and is the only mode whose global
        memory writes are observable to the caller).
    cache_dir:
        Directory for the on-disk :class:`KernelTrace` memo cache;
        ``None`` disables memoization.
    batched:
        Use the block-wide batched interpreter (default).  ``False``
        selects the per-warp reference oracle -- bit-identical traces,
        kept for differential benchmarks and tests.
    grid_batch_blocks:
        Blocks per multi-block interpreter slab (and per worker chunk).
        ``None`` defers to :func:`repro.tune.resolve` per launch:
        ``$REPRO_TUNE_GRID_BATCH_BLOCKS`` /
        ``$REPRO_GRID_BATCH_BLOCKS``, then the machine's persisted
        tuning profile keyed by the launch's warps-per-block, then the
        built-in default.
    dedup_verify:
        How multi-member dedup classes are verified.  ``"proof"``
        (default) consults the static soundness proof
        (:mod:`repro.analysis.dedup_proof`) first and only probe-
        simulates classes the proof refuses.  ``"probe"`` is the
        probe-only status quo.  ``"both"`` runs the proof *and* the
        probes and raises :class:`~repro.errors.AnalysisError` if a
        proved class's probes disagree -- a prover-or-simulator bug
        that must never be silently demoted.
    trace_mode:
        Where a dedup class's representative trace comes from.
        ``"symbolic"`` (default) synthesizes it in closed form
        (:mod:`repro.analysis.symbolic`) whenever the coverage gate and
        the dedup proof cover the class, falling back to the batched
        interpreter otherwise (data-dependent kernels like SpMV always
        fall back; ``EngineStats.synthesized_classes`` reports the
        split).  ``"interpret"`` is the interpreter-only status quo.
        ``"both"`` synthesizes *and* interprets every covered class and
        raises :class:`~repro.errors.AnalysisError` unless the two
        traces are pickle-byte-identical -- the differential audit
        mirroring ``dedup_verify="both"``.
    task_timeout:
        Per-task watchdog budget (seconds) for pooled simulation tasks;
        a hung worker is killed after this long and its task re-executed
        serially.  ``None`` defers to ``$REPRO_POOL_TIMEOUT`` (unset
        disables the watchdog).
    faults:
        Optional fault-injection plan (:class:`repro.faults.FaultPlan`
        or a ``$REPRO_FAULTS``-style string) activated for the duration
        of each :meth:`run` -- chaos testing without mutating global
        state permanently.
    """

    def __init__(
        self,
        kernel: Kernel,
        gmem: GlobalMemory | None = None,
        spec: GpuSpec = GTX285,
        workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        max_warp_instructions: int = 50_000_000,
        batched: bool = True,
        grid_batch_blocks: int | None = None,
        dedup_verify: str = "proof",
        trace_mode: str = "symbolic",
        task_timeout: float | None = None,
        faults=None,
    ) -> None:
        if dedup_verify not in ("proof", "probe", "both"):
            raise ReproError(
                f"dedup_verify must be 'proof', 'probe', or 'both', "
                f"not {dedup_verify!r}"
            )
        if trace_mode not in ("symbolic", "interpret", "both"):
            raise ReproError(
                f"trace_mode must be 'symbolic', 'interpret', or 'both', "
                f"not {trace_mode!r}"
            )
        self.kernel = kernel
        self.gmem = gmem if gmem is not None else GlobalMemory()
        self.spec = spec
        self.dedup_verify = dedup_verify
        self.trace_mode = trace_mode
        self.workers = max(0, int(workers))
        self.max_warp_instructions = max_warp_instructions
        self.batched = batched
        self.simulator = FunctionalSimulator(
            kernel,
            gmem=self.gmem,
            spec=spec,
            max_warp_instructions=max_warp_instructions,
            batched=batched,
            grid_batch_blocks=grid_batch_blocks,
        )
        self.dependence = analyze_dependence(kernel)
        self.cache = TraceCache(cache_dir) if cache_dir is not None else None
        self.task_timeout = task_timeout
        from repro.faults import parse_plan

        self.faults_plan = parse_plan(faults) if isinstance(faults, str) else faults
        # Per-run degradation accumulators, reset at the top of run().
        self._pool_health = PoolHealth()
        self._shm_fallbacks = 0
        self._proof_fallbacks = 0
        self._symbolic_fallbacks = 0

    # ------------------------------------------------------------------
    def run(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]] | None = None,
        dedup: bool = True,
    ) -> KernelTrace:
        """Drop-in replacement for :meth:`FunctionalSimulator.run`.

        ``blocks=None`` covers the full grid -- deduplicated and exact
        unless ``dedup=False`` forces one simulation per block.  A
        ``blocks`` sample reproduces the representative methodology
        (per-stage scaling, ``exact=False`` unless the sample is the
        grid).
        """
        from contextlib import nullcontext

        from repro import faults as faults_mod
        from repro import obs

        context = (
            faults_mod.injected(self.faults_plan)
            if self.faults_plan is not None
            else nullcontext()
        )
        with context:
            with obs.span(
                "engine.run",
                kernel=self.kernel.name,
                spec=getattr(self.spec, "name", None),
                workers=self.workers,
                dedup=dedup,
            ):
                trace = self._run(launch, blocks, dedup)
            self._absorb_stats(trace.engine_stats)
            return trace

    def _absorb_stats(self, stats) -> None:
        """Fold this run's EngineStats into the obs metric registry.

        Spans and metrics travel out-of-band: nothing here touches the
        trace payload, so instrumented runs stay byte-identical.
        """
        from repro import obs
        from repro.obs import metrics

        if not obs.enabled() or not isinstance(stats, EngineStats):
            return
        metrics.inc("engine.runs")
        metrics.inc("engine.blocks.total", stats.total_blocks)
        metrics.inc("engine.blocks.simulated", stats.simulated_blocks)
        metrics.inc("engine.blocks.replicated", stats.replicated_blocks)
        metrics.inc("engine.classes.proved", stats.proved_classes)
        metrics.inc(
            "engine.classes.synthesized", stats.synthesized_classes
        )
        metrics.inc(
            "engine.classes.interpreted", stats.interpreted_classes
        )
        metrics.inc("engine.probe_fallbacks", stats.probe_fallbacks)
        metrics.observe("engine.wall_seconds", stats.wall_seconds)
        metrics.absorb_health("engine", stats.health)

    def _run(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]] | None,
        dedup: bool,
    ) -> KernelTrace:
        started = time.perf_counter()
        self._pool_health = PoolHealth()
        self._shm_fallbacks = 0
        self._proof_fallbacks = 0
        self._symbolic_fallbacks = 0
        cache_quarantines = self.cache.quarantines if self.cache else 0
        cache_write_errors = self.cache.write_errors if self.cache else 0
        if blocks is not None:
            blocks = list(blocks)
            if not blocks:
                raise LaunchError("no blocks selected")
        key = self._cache_key(launch, blocks, dedup) if self.cache else None
        if key is not None:
            cached = self.cache.load(key)
            if cached is not None:
                stats = cached.engine_stats
                if isinstance(stats, EngineStats):
                    # Health describes *this* run, not the run that
                    # populated the cache: a hit simulated nothing, so
                    # nothing can have degraded.
                    stats = replace(
                        stats,
                        cache_hit=True,
                        wall_seconds=time.perf_counter() - started,
                        health=HealthRecord(),
                    )
                cached.engine_stats = stats
                # Cached block traces carry their footprints: warm runs
                # of a schedule-dependent kernel must warn too.
                self._warn_cross_block_raw(cached.block_traces)
                return cached

        if blocks is not None:
            trace, stats = self._run_sample(launch, list(blocks), started)
        elif not dedup:
            trace, stats = self._run_full(launch, started)
        else:
            trace, stats = self._run_dedup(launch, started)
        trace.engine_stats = stats

        if key is not None:
            self.cache.store(key, trace)
        # Attached after the store so a failed store itself shows up;
        # the cached copy's health is replaced on every hit anyway.
        trace.engine_stats = replace(
            stats,
            health=self._pool_health.record(
                cache_quarantines=(
                    (self.cache.quarantines - cache_quarantines)
                    if self.cache
                    else 0
                ),
                cache_write_errors=(
                    (self.cache.write_errors - cache_write_errors)
                    if self.cache
                    else 0
                ),
                shm_fallbacks=self._shm_fallbacks,
                proof_fallbacks=self._proof_fallbacks,
                symbolic_fallbacks=self._symbolic_fallbacks,
            ),
        )
        return trace

    # ------------------------------------------------------------------
    def _stats(
        self,
        launch: LaunchConfig,
        simulated: int,
        classes: int,
        fallbacks: int,
        mode: str,
        started: float,
        proved: int = 0,
        synthesized: int = 0,
    ) -> EngineStats:
        total = launch.num_blocks
        dedup = mode == "dedup"
        return EngineStats(
            total_blocks=total,
            simulated_blocks=simulated,
            replicated_blocks=(
                max(total - simulated, 0) if dedup else 0
            ),
            block_classes=classes if dedup else 0,
            probe_fallbacks=fallbacks,
            workers=self.workers,
            cache_hit=False,
            wall_seconds=time.perf_counter() - started,
            mode=mode,
            proved_classes=proved,
            synthesized_classes=synthesized if dedup else 0,
            interpreted_classes=max(classes - synthesized, 0) if dedup else 0,
        )

    def _run_sample(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]],
        started: float,
    ) -> tuple[KernelTrace, EngineStats]:
        traces = self._simulate(launch, blocks)
        self._warn_cross_block_raw(traces)
        trace = aggregate_blocks(traces, scale_to_blocks=launch.num_blocks)
        stats = self._stats(launch, len(blocks), 0, 0, "sample", started)
        return trace, stats

    def _run_full(
        self, launch: LaunchConfig, started: float
    ) -> tuple[KernelTrace, EngineStats]:
        blocks = launch.all_blocks()
        traces = self._simulate(launch, blocks)
        self._warn_cross_block_raw(traces)
        trace = aggregate_blocks(traces)
        stats = self._stats(launch, len(blocks), 0, 0, "full", started)
        return trace, stats

    def _run_dedup(
        self, launch: LaunchConfig, started: float
    ) -> tuple[KernelTrace, EngineStats]:
        from repro import obs

        classes = partition_blocks(launch, self.dependence)

        # Phase 0: static soundness proof.  A proved class is exact by
        # translation invariance, so its verifier probes are skipped
        # entirely (under "both" they still run, as a prover audit).
        proved: set[int] = set()
        if self.dedup_verify in ("proof", "both"):
            # Imported lazily: repro.analysis.checks imports this
            # module for the taint pass and the block partitioner.
            from repro.analysis.dedup_proof import prove_block_class

            with obs.span("engine.proof", classes=len(classes)):
                for index, cls in enumerate(classes):
                    if not cls.verifiers:
                        continue
                    if prove_block_class(
                        self.kernel, launch, cls.members, self.gmem
                    ):
                        proved.add(index)
        # Multi-member classes the proof did not certify fall back to
        # probe simulation (all of them, under dedup_verify="probe").
        self._proof_fallbacks = sum(
            1
            for index, cls in enumerate(classes)
            if cls.verifiers and index not in proved
        )

        # Phase 0.5: symbolic synthesis.  A class whose equivalence is
        # settled without probes (singleton, or certified by the proof)
        # and whose kernel passes the coverage gate gets its
        # representative trace synthesized in closed form -- no
        # interpreter pass, no memory contents.  Unproved multi-member
        # classes keep interpreting: their probe verification needs the
        # real traces anyway.
        synthesized: dict[int, BlockTrace] = {}
        if self.trace_mode in ("symbolic", "both"):
            # Lazy for the same reason as the proof import above.
            from repro.analysis.symbolic import (
                TraceSynthesizer,
                synthesis_coverage,
            )

            with obs.span("engine.synthesis", classes=len(classes)):
                if synthesis_coverage(
                    self.kernel, launch, dependence=self.dependence
                ):
                    synthesizer = TraceSynthesizer(
                        self.kernel,
                        self.gmem,
                        spec=self.spec,
                        max_warp_instructions=self.max_warp_instructions,
                    )
                    for index, cls in enumerate(classes):
                        if cls.verifiers and index not in proved:
                            continue
                        synthesized[index] = synthesizer.synthesize(
                            launch, cls.representative
                        )
            self._symbolic_fallbacks = len(classes) - len(synthesized)

        # Phase 1: representatives plus the verification members of
        # every unproved multi-member class, all simulated in one
        # (possibly parallel) batch.  A synthesized representative is
        # interpreted only when something still needs its real trace:
        # the "both" differential audit, or a pending probe comparison.
        probe_blocks: list[tuple[int, int]] = []
        for index, cls in enumerate(classes):
            audit = cls.verifiers and (
                index not in proved or self.dedup_verify == "both"
            )
            if index not in synthesized or self.trace_mode == "both" or audit:
                probe_blocks.append(cls.representative)
            if audit:
                probe_blocks.extend(cls.verifiers)
        probe_traces = dict(
            zip(probe_blocks, self._simulate(launch, probe_blocks))
        )

        # Synthesized traces must be byte-identical to interpreted ones
        # -- not merely equal -- because traces are pickled into the
        # cache and compared by stats_key.  Under "both" every covered
        # class is checked on every run.
        if self.trace_mode == "both":
            for index, synthetic in synthesized.items():
                rep = classes[index].representative
                expected = pickle.dumps(
                    probe_traces[rep], pickle.HIGHEST_PROTOCOL
                )
                actual = pickle.dumps(synthetic, pickle.HIGHEST_PROTOCOL)
                if actual != expected:
                    raise AnalysisError(
                        f"symbolic synthesis of kernel "
                        f"{self.kernel.name!r} block {rep} diverges from "
                        "the interpreter (pickled traces differ); "
                        "synthesizer or interpreter bug"
                    )

        # Phase 2: verify; classes with any disagreeing probe are
        # demoted and every member is simulated individually.  A
        # *proved* class whose probes disagree is a contradiction
        # between the prover and the simulator: hard error.
        fallback_blocks: list[tuple[int, int]] = []
        demoted: set[int] = set()
        with obs.span("engine.verify", probes=len(probe_blocks)):
            for index, cls in enumerate(classes):
                if not cls.verifiers:
                    continue
                if index in proved and self.dedup_verify != "both":
                    continue
                rep_key = probe_traces[cls.representative].stats_key()
                if any(
                    probe_traces[v].stats_key() != rep_key
                    for v in cls.verifiers
                ):
                    if index in proved:
                        raise AnalysisError(
                            f"dedup proof certified class "
                            f"{cls.members[0]}..{cls.members[-1]} of "
                            f"kernel {self.kernel.name!r}, but probe "
                            "simulations disagree with the "
                            "representative; prover or simulator bug"
                        )
                    demoted.add(index)
                    fallback_blocks.extend(
                        b for b in cls.members if b not in probe_traces
                    )
        fallback_traces = dict(
            zip(fallback_blocks, self._simulate(launch, fallback_blocks))
        )
        simulated_traces = {**probe_traces, **fallback_traces}
        # Data-dependent grids are all singleton classes, so at this
        # point every block has a real trace: check cross-block RAW.
        self._warn_cross_block_raw(list(simulated_traces.values()))

        # Phase 3: exact aggregation with per-class multiplicities, and
        # a per-block trace table so the timing simulator sees the right
        # stream at every block index.
        with obs.span(
            "engine.aggregate",
            classes=len(classes),
            demoted=len(demoted),
        ):
            entries: list[tuple[BlockTrace, int]] = []
            trace_for: dict[tuple[int, int], BlockTrace] = {}
            for index, cls in enumerate(classes):
                if index not in demoted:
                    # Verifier traces equal the representative's, so
                    # one entry with the full multiplicity is exact.  A
                    # synthesized trace is byte-identical to the
                    # interpreted one, so either serves.
                    rep_trace = synthesized.get(index)
                    if rep_trace is None:
                        rep_trace = simulated_traces[cls.representative]
                    entries.append((rep_trace, len(cls.members)))
                    for member in cls.members:
                        trace_for[member] = rep_trace
                else:
                    for member in cls.members:
                        member_trace = simulated_traces[member]
                        entries.append((member_trace, 1))
                        trace_for[member] = member_trace

            trace = aggregate_weighted(
                [t for t, _ in entries], [m for _, m in entries]
            )
            if len(entries) == 1:
                # Homogeneous grid: a single representative lets the
                # timing simulator use its fast wave-extrapolation path.
                trace.block_traces = [entries[0][0]]
            else:
                trace.block_traces = [
                    trace_for[b] for b in launch.all_blocks()
                ]
        stats = self._stats(
            launch,
            len(simulated_traces),
            len(classes),
            len(demoted),
            "dedup",
            started,
            proved=len(proved),
            synthesized=len(synthesized),
        )
        return trace, stats

    # ------------------------------------------------------------------
    def _simulate(
        self, launch: LaunchConfig, blocks: list[tuple[int, int]]
    ) -> list[BlockTrace]:
        from repro import obs

        with obs.span(
            "engine.simulate", blocks=len(blocks), workers=self.workers
        ):
            return self._simulate_blocks(launch, blocks)

    def _simulate_blocks(
        self, launch: LaunchConfig, blocks: list[tuple[int, int]]
    ) -> list[BlockTrace]:
        """Simulate blocks, preserving order; parallel when configured.

        Blocks are fanned out in grid-batch-sized chunks so every
        worker (and the serial path) rides the multi-block batched
        interpreter for barrier-free kernels.  Pool policy (fork on
        Linux only, serial fallback, deterministic order) lives in
        :mod:`repro.pool`, shared with the hardware timing layer.
        """
        if self.workers <= 1 or len(blocks) <= 1:
            return self.simulator.run_blocks(launch, blocks)
        step = max(1, int(self.simulator.grid_batch_blocks_for(launch)))
        chunks = [blocks[i : i + step] for i in range(0, len(blocks), step)]
        # Ship the arena through multiprocessing.shared_memory instead
        # of re-pickling it per fan-out; workers copy it into private
        # memory and verify the pre-launch content digest.  Fork pools
        # inherit the parent's arena copy-on-write, so only spawn-style
        # pools (which would otherwise pickle it per worker) use the
        # segment; platforms without shared memory fall back to
        # pickling the arena.
        shared = (
            self.gmem.share()
            if len(chunks) > 1 and start_method() != "fork"
            else None
        )
        if shared is not None:
            gmem_arg, segment = shared
        else:
            gmem_arg, segment = self.gmem, None
        health = self._pool_health
        fallbacks_before = health.serial_fallbacks
        try:
            results = map_tasks(
                chunks,
                self.workers,
                serial_fn=lambda chunk: self.simulator.run_blocks(
                    launch, chunk
                ),
                worker_fn=_run_chunk_task,
                initializer=_init_worker,
                initargs=(
                    self.kernel,
                    gmem_arg,
                    self.spec,
                    self.max_warp_instructions,
                    launch,
                    self.batched,
                    step,
                ),
                task_timeout=self.task_timeout,
                health=health,
            )
        finally:
            if segment is not None:
                # Tracked at creation (GlobalMemory.share); releasing is
                # idempotent, so the interrupt/atexit safety nets and
                # this finally can both fire.
                release_segment(segment)
        if segment is not None:
            # Tasks that degraded to the serial reference while the
            # shared arena was the transport: attach failures and any
            # other worker loss end up here, executed against the
            # caller's own arena -- bit-identical, pickle-free.
            self._shm_fallbacks += health.serial_fallbacks - fallbacks_before
        # Unpickled worker results carry per-chunk copies of strings the
        # in-process interpreter shares grid-wide; re-interning keeps a
        # pooled (or partially serial-recovered) run's aggregate
        # pickle-byte-identical to the serial reference.
        return [
            intern_stage_strings(trace)
            for chunk_traces in results
            for trace in chunk_traces
        ]

    def _warn_cross_block_raw(self, traces: list[BlockTrace]) -> None:
        """Warn when simulated blocks read ranges other blocks wrote.

        Only data-dependent kernels are checked: for them the loaded
        values can steer addresses or control flow, so cross-block
        visibility (serial row-major vs per-worker pre-launch copies)
        changes the *statistics*, not just the numerics.  Block-uniform
        kernels replicate one representative and are schedule-
        independent by construction.
        """
        if not self.dependence.data_dependent:
            return
        conflicts = find_cross_block_raw(traces)
        if not conflicts:
            return

        def describe(block, span):
            allocation = self.gmem.allocation_at(span[0])
            name = allocation.name if allocation else "?"
            return f"block {block} [{span[0]:#x}, {span[1]:#x}) in {name!r}"

        shown = "; ".join(
            f"{describe(loader, load_span)} overlaps stores of "
            f"{describe(storer, store_span)}"
            for loader, load_span, storer, store_span in conflicts[:3]
        )
        message = (
            f"kernel {self.kernel.name!r}: cross-block global "
            f"read-after-write detected ({len(conflicts)} overlapping "
            f"block(s)): {shown}. Blocks of one launch cannot "
            "synchronize, so these statistics are schedule-dependent "
            "(see DESIGN.md 'Parallelism knobs')."
        )
        # ``warnings.warn`` keeps owning the user-facing rendering (and
        # its once-per-location dedup); the structured record lands in
        # the event log every time, unfiltered.
        from repro.obs import log as obs_log

        obs_log.warning(
            message,
            render=False,
            kernel=self.kernel.name,
            conflicts=len(conflicts),
        )
        warnings.warn(message, RuntimeWarning, stacklevel=4)

    # ------------------------------------------------------------------
    def _cache_key(
        self,
        launch: LaunchConfig,
        blocks: list[tuple[int, int]] | None,
        dedup: bool,
    ) -> str:
        h = hashlib.sha256()
        h.update(f"engine-v{ENGINE_CACHE_VERSION};".encode())
        h.update(kernel_fingerprint(self.kernel).encode())
        h.update(repr(_launch_key(launch)).encode())
        h.update(spec_fingerprint(self.spec).encode())
        h.update(self.gmem.digest().encode())
        h.update(repr(tuple(blocks) if blocks is not None else "full").encode())
        h.update(f"dedup={dedup}".encode())
        # Proof-skipped probes change EngineStats (simulated_blocks,
        # proved_classes), which ride inside the cached trace.
        h.update(f"verify={self.dedup_verify}".encode())
        # Synthesis changes EngineStats the same way (simulated_blocks,
        # synthesized_classes), even though the traces themselves are
        # byte-identical across modes.
        h.update(f"trace={self.trace_mode}".encode())
        # The runaway-instruction guard must still fire on warm caches.
        h.update(f"limit={self.simulator.max_warp_instructions}".encode())
        # Pooled workers see pickled gmem copies, so cross-block write
        # visibility depends on the pool width (blocks sharing a worker
        # share its copy); never share entries across widths, and fold
        # the serial cases (workers 0 and 1 run identically in-process).
        h.update(f"workers={self.workers if self.workers > 1 else 0}".encode())
        if self.batched:
            # Slab width likewise shapes cross-block visibility for
            # racy kernels (blocks sharing a slab interleave lockstep);
            # the per-warp oracle never forms slabs, so its keys stay
            # width-independent.
            h.update(
                f"gbb={self.simulator.grid_batch_blocks_for(launch)};".encode()
            )
        if not self.batched:
            # Batched and per-warp traces are bit-identical for
            # well-synchronized kernels; the oracle is keyed separately
            # so differential benchmarks never serve each other's
            # entries for racy ones.
            h.update(b"interp=warp;")
        return h.hexdigest()
