"""Tridiagonal systems solver: cyclic reduction (paper Section 5.2).

Solves many independent ``n``-equation tridiagonal systems, one system
per block, ``n/2`` threads each, entirely in shared memory:

* **forward reduction**: ``log2(n)`` steps; step ``k`` updates the
  equations at stride ``2**k``, halving the active threads.  The
  power-of-two stride doubles the bank-conflict degree every step
  (2-way, 4-way, 8-way, ... -- paper Fig. 5), so the shared-transaction
  count stays *constant* while useful work halves (Fig. 7b);
* **backward substitution**: mirrors the communication pattern to
  recover all unknowns.

``CR-NBC`` is the paper's padding optimization: one pad word per 16
elements redirects conflicting accesses to distinct banks at the price
of slightly more complex index arithmetic ("minimal extra instruction
overhead"), shifting the bottleneck from shared memory to the
instruction pipeline and speeding the solver up ~1.6x (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.arch.specs import GTX285, GpuSpec
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm, Reg
from repro.isa.program import Kernel
from repro.memory.layout import pad_index, padded_length
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

#: Padding interval = number of shared-memory banks.
PAD_EVERY = 16


def _log2(n: int) -> int:
    m = n.bit_length() - 1
    if n <= 1 or (1 << m) != n:
        raise LaunchError(f"system size must be a power of two >= 2, got {n}")
    return m


class _IndexEmitter:
    """Emits shared-memory byte addresses, optionally padded."""

    def __init__(self, b: KernelBuilder, padded: bool) -> None:
        self.b = b
        self.padded = padded
        self._scratch = b.reg() if padded else None

    def static(self, index: int) -> int:
        """Byte offset of a compile-time element index."""
        if self.padded:
            return 4 * pad_index(index, PAD_EVERY)
        return 4 * index

    def emit(self, dst: Reg, index: Reg) -> None:
        """dst = byte address of dynamic element ``index``."""
        b = self.b
        if self.padded:
            b.ishr(self._scratch, index, Imm(4))
            b.iadd(dst, index, self._scratch)
            b.ishl(dst, dst, Imm(2))
        else:
            b.ishl(dst, index, Imm(2))


def build_cr_kernel(n: int, padded: bool = False) -> Kernel:
    """Cyclic reduction kernel for ``n``-equation systems.

    ``padded=True`` builds CR-NBC.  Layout: global arrays ``a, b, c, d``
    (sub-, main-, super-diagonal, rhs) and output ``x`` hold all systems
    back to back; block ``ctaid_x`` owns elements
    ``[ctaid_x * n, (ctaid_x+1) * n)``.
    """
    m = _log2(n)
    half = n // 2
    suffix = "nbc" if padded else "cr"
    b = KernelBuilder(f"tridiag_{suffix}_{n}", params=("a", "b", "c", "d", "x"))

    length = padded_length(n + 1, PAD_EVERY) if padded else n + 1
    offs = {name: b.alloc_shared(length) * 1 for name in ("a", "b", "c", "d", "x")}
    # alloc_shared returns byte offsets already.
    idx = _IndexEmitter(b, padded)

    sysbase = b.reg()
    b.imul(sysbase, b.ctaid_x, Imm(n))

    guard = b.pred()
    aux = b.pred()

    # Working registers for the elimination steps, declared early so the
    # load stage can stage global data through them (batching all loads
    # before the stores keeps the loads pipelined in the memory system,
    # as hand-scheduled native code would).
    a_l, b_l, c_l, d_l = b.regs(4)
    a_e, b_e, c_e, d_e = b.regs(4)
    a_r, b_r, c_r, d_r = b.regs(4)
    k1, k2 = b.regs(2)

    # ------------------------------------------------------------------
    # stage 0: load the system into shared memory (coalesced, 2 per lane)
    # ------------------------------------------------------------------
    gaddr = b.reg()
    value = b.reg()
    saddr1 = b.reg()
    saddr2 = b.reg()
    elem = b.reg()
    b.iadd(elem, sysbase, b.tid)
    staging = (a_l, b_l, c_l, d_l, a_e, b_e, c_e, d_e)
    for i, name in enumerate(("a", "b", "c", "d")):
        b.imad(gaddr, elem, Imm(4), b.param(name))
        b.ldg(staging[2 * i], gaddr)
        b.ldg(staging[2 * i + 1], gaddr, offset=4 * half)
    for lane_offset, saddr in ((0, saddr1), (half, saddr2)):
        target = b.reg()
        b.iadd(target, b.tid, Imm(lane_offset))
        idx.emit(saddr, target)
    for i, name in enumerate(("a", "b", "c", "d")):
        b.sts(staging[2 * i], saddr1, offset=offs[name])
        b.sts(staging[2 * i + 1], saddr2, offset=offs[name])

    # Ghost equation at index n: identity row (b=1, a=c=d=0, x=0) keeps
    # boundary neighbours harmless without divergent special-casing.
    b.isetp(guard, "eq", b.tid, Imm(0))
    one = b.reg()
    zero = b.reg()
    with b.if_then(guard):
        b.mov(one, Imm(1.0))
        b.mov(zero, Imm(0.0))
        ghost = idx.static(n)
        b.sts(one, base=None, offset=offs["b"] + ghost)
        for name in ("a", "c", "d", "x"):
            b.sts(zero, base=None, offset=offs[name] + ghost)
    b.bar()

    eq = b.reg()
    addr_e = b.reg()
    addr_l = b.reg()
    addr_r = b.reg()
    side = b.reg()

    # ------------------------------------------------------------------
    # forward reduction: steps 1..m (paper Fig. 5)
    # ------------------------------------------------------------------
    for k in range(1, m + 1):
        stride = 1 << k
        h = stride >> 1
        active = n >> k
        b.isetp(guard, "lt", b.tid, Imm(active))
        with b.if_then(guard):
            b.ishl(eq, b.tid, Imm(k))
            b.iadd(eq, eq, Imm(stride - 1))
            idx.emit(addr_e, eq)
            b.isub(side, eq, Imm(h))
            idx.emit(addr_l, side)
            b.iadd(side, eq, Imm(h))
            b.imin(side, side, Imm(n))  # clamp to the ghost row
            idx.emit(addr_r, side)
            for reg, addr in (
                ((a_l, b_l, c_l, d_l), addr_l),
                ((a_e, b_e, c_e, d_e), addr_e),
                ((a_r, b_r, c_r, d_r), addr_r),
            ):
                for target, name in zip(reg, ("a", "b", "c", "d")):
                    b.lds(target, addr, offset=offs[name])
            # k1 = a_e / b_l ; k2 = c_e / b_r  (negated for the MADs)
            b.rcp(k1, b_l)
            b.fmul(k1, a_e, k1)
            b.fneg(k1, k1)
            b.rcp(k2, b_r)
            b.fmul(k2, c_e, k2)
            b.fneg(k2, k2)
            # a' = -a_l k1 ; b' = b_e - c_l k1 - a_r k2
            # c' = -c_r k2 ; d' = d_e - d_l k1 - d_r k2
            b.fmul(a_e, a_l, k1)
            b.fmad(b_e, c_l, k1, b_e)
            b.fmad(b_e, a_r, k2, b_e)
            b.fmul(c_e, c_r, k2)
            b.fmad(d_e, d_l, k1, d_e)
            b.fmad(d_e, d_r, k2, d_e)
            for source, name in (
                (a_e, "a"), (b_e, "b"), (c_e, "c"), (d_e, "d")
            ):
                b.sts(source, addr_e, offset=offs[name])
        b.bar()

    # ------------------------------------------------------------------
    # solve the remaining 1-equation system: x[n-1] = d / b
    # ------------------------------------------------------------------
    b.isetp(guard, "eq", b.tid, Imm(0))
    with b.if_then(guard):
        last = idx.static(n - 1)
        b.lds(b_e, base=None, offset=offs["b"] + last)
        b.lds(d_e, base=None, offset=offs["d"] + last)
        b.rcp(b_e, b_e)
        b.fmul(d_e, d_e, b_e)
        b.sts(d_e, base=None, offset=offs["x"] + last)
    b.bar()

    # ------------------------------------------------------------------
    # backward substitution: steps m..1
    # ------------------------------------------------------------------
    for k in range(m, 0, -1):
        stride = 1 << k
        h = stride >> 1
        active = n >> k
        b.isetp(guard, "lt", b.tid, Imm(active))
        with b.if_then(guard):
            b.ishl(eq, b.tid, Imm(k))
            b.iadd(eq, eq, Imm(h - 1))
            idx.emit(addr_e, eq)
            b.iadd(side, eq, Imm(h))
            idx.emit(addr_r, side)
            b.isub(side, eq, Imm(h))
            b.isetp(aux, "lt", side, Imm(0))
            b.sel(side, aux, Imm(n), side)  # left neighbour or ghost
            idx.emit(addr_l, side)
            b.lds(a_e, addr_e, offset=offs["a"])
            b.lds(b_e, addr_e, offset=offs["b"])
            b.lds(c_e, addr_e, offset=offs["c"])
            b.lds(d_e, addr_e, offset=offs["d"])
            b.lds(k1, addr_l, offset=offs["x"])
            b.lds(k2, addr_r, offset=offs["x"])
            # x = (d - a x_left - c x_right) / b
            b.fneg(a_e, a_e)
            b.fmad(d_e, a_e, k1, d_e)
            b.fneg(c_e, c_e)
            b.fmad(d_e, c_e, k2, d_e)
            b.rcp(b_e, b_e)
            b.fmul(d_e, d_e, b_e)
            b.sts(d_e, addr_e, offset=offs["x"])
        b.bar()

    # ------------------------------------------------------------------
    # store the solution (coalesced, mirrors the load)
    # ------------------------------------------------------------------
    b.lds(value, saddr1, offset=offs["x"])
    b.lds(k1, saddr2, offset=offs["x"])
    b.imad(gaddr, elem, Imm(4), b.param("x"))
    b.stg(gaddr, value)
    b.stg(gaddr, k1, offset=4 * half)
    b.exit()
    return b.build()


# ----------------------------------------------------------------------
# host side
# ----------------------------------------------------------------------
@dataclass
class TridiagProblem:
    """Many independent diagonally dominant systems."""

    n: int
    num_systems: int
    gmem: GlobalMemory
    sub: np.ndarray  # (systems, n)
    main: np.ndarray
    sup: np.ndarray
    rhs: np.ndarray
    bases: dict[str, int]

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.num_systems, 1),
            block_threads=self.n // 2,
            params={name: base for name, base in self.bases.items()},
        )

    def solution(self) -> np.ndarray:
        flat = self.gmem.read_array(self.bases["x"], self.num_systems * self.n)
        return flat.reshape(self.num_systems, self.n)

    def reference(self) -> np.ndarray:
        return np.stack(
            [
                thomas_solve(self.sub[i], self.main[i], self.sup[i], self.rhs[i])
                for i in range(self.num_systems)
            ]
        )


def thomas_solve(
    sub: np.ndarray, main: np.ndarray, sup: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Sequential Thomas algorithm (the CPU reference)."""
    n = len(main)
    c_prime = np.zeros(n)
    d_prime = np.zeros(n)
    c_prime[0] = sup[0] / main[0]
    d_prime[0] = rhs[0] / main[0]
    for i in range(1, n):
        denom = main[i] - sub[i] * c_prime[i - 1]
        c_prime[i] = sup[i] / denom
        d_prime[i] = (rhs[i] - sub[i] * d_prime[i - 1]) / denom
    x = np.zeros(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x


def prepare_problem(
    n: int, num_systems: int, seed: int = 11
) -> TridiagProblem:
    """Random diagonally dominant systems (well-conditioned for CR)."""
    rng = np.random.default_rng(seed)
    sub = rng.uniform(-1, 1, size=(num_systems, n))
    sup = rng.uniform(-1, 1, size=(num_systems, n))
    sub[:, 0] = 0.0
    sup[:, -1] = 0.0
    main = 4.0 + rng.uniform(0, 1, size=(num_systems, n))
    rhs = rng.uniform(-1, 1, size=(num_systems, n))
    gmem = GlobalMemory()
    bases = {
        "a": gmem.alloc_array(sub.ravel(), "a"),
        "b": gmem.alloc_array(main.ravel(), "b"),
        "c": gmem.alloc_array(sup.ravel(), "c"),
        "d": gmem.alloc_array(rhs.ravel(), "d"),
        "x": gmem.alloc(num_systems * n, "x"),
    }
    return TridiagProblem(n, num_systems, gmem, sub, main, sup, rhs, bases)


def run_cr(
    n: int = 512,
    num_systems: int = 512,
    padded: bool = False,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    representative: bool = True,
    measure: bool = True,
    seed: int = 11,
    workers: int = 0,
    trace_cache: str | None = None,
    task_timeout: float | None = None,
    spec: GpuSpec = GTX285,
) -> AppRun:
    """The paper's experiment: 512 512-equation systems, CR or CR-NBC."""
    problem = prepare_problem(n, num_systems, seed)
    kernel = build_cr_kernel(n, padded)
    sample = [(0, 0)] if representative else None
    return execute(
        name=f"{'CR-NBC' if padded else 'CR'} (n={n}, systems={num_systems})",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        spec=spec,
        workers=workers,
        trace_cache=trace_cache,
        task_timeout=task_timeout,
    )


def validate_cr(
    n: int, num_systems: int = 4, padded: bool = False, seed: int = 5
) -> float:
    """Solve a full grid and return max abs error vs Thomas."""
    problem = prepare_problem(n, num_systems, seed)
    kernel = build_cr_kernel(n, padded)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.solution() - problem.reference())))


def forward_stage_count(n: int) -> int:
    """Stages covering load + forward reduction (paper Fig. 6's view)."""
    return 1 + _log2(n)
