"""Sparse matrix-vector multiply: ELL and blocked-ELL (Section 5.3).

Three storage formats, exactly the paper's progression (Figs. 9-12):

* **ELL** -- one thread per row; matrix values and column indices are
  stored slot-major so consecutive threads read consecutive words
  (coalesced); vector-entry reads follow the column indices and are the
  uncoalesced, data-dependent part that dominates performance;
* **BELL+IM** -- 3x3 blocked ELLPACK with *interleaved matrix* storage:
  one thread per block row, one column index per block (1/9th of the
  index traffic), matrix entries stored sub-entry-major so each of the
  nine loads per block is coalesced across threads (paper Fig. 9d);
* **BELL+IMIV** -- additionally stores the *vector* interleaved, the
  paper's novel optimization: neighbouring rows have similar column
  positions, and interleaving scatters each block column's three vector
  words so nearby threads' requests land in the same transaction
  (paper Fig. 10b), cutting vector bytes per entry.

The x vector can be bound to the texture cache (hardware simulator) to
regenerate the paper's "+Cache" variants (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.arch.specs import GTX285, GpuSpec
from repro.apps.matrices import BlockSparseMatrix
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel
from repro.memory.layout import deinterleave, interleave
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.launch import evenly_spaced_blocks
from repro.sim.memory import GlobalMemory

BLOCK_THREADS = 64

#: The three storage formats of Figs. 11-12.
FORMATS = ("ell", "bell_im", "bell_imiv")

#: Coalescing granularities the paper's Fig. 11 evaluates.
GRANULARITIES = (32, 16, 4)


def build_ell_kernel(width: int, n: int) -> Kernel:
    """Scalar ELL SpMV: thread per row, ``width`` entries each."""
    if width < 1:
        raise LaunchError("ELL width must be positive")
    b = KernelBuilder(f"spmv_ell_w{width}", params=("vals", "cols", "x", "y", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        pv = b.reg()
        pc = b.reg()
        b.imad(pv, gid, Imm(4), b.param("vals"))
        b.imad(pc, gid, Imm(4), b.param("cols"))
        acc = b.reg()
        b.mov(acc, Imm(0))
        val = b.reg()
        col = b.reg()
        va = b.reg()
        xv = b.reg()
        for e in range(width):
            offset = 4 * e * n
            b.ldg(val, pv, offset=offset)
            b.ldg(col, pc, offset=offset)
            b.imad(va, col, Imm(4), b.param("x"))
            b.ldg(xv, va)
            b.fmad(acc, val, xv, acc)
        out = b.reg()
        b.imad(out, gid, Imm(4), b.param("y"))
        b.stg(out, acc)
    b.exit()
    return b.build()


def build_bell_kernel(
    slots: int, block_rows: int, interleaved_vector: bool
) -> Kernel:
    """Blocked-ELL SpMV (3x3 blocks): thread per block row.

    Matrix storage is always interleaved (IM); ``interleaved_vector``
    selects BELL+IMIV.  Output y is written interleaved (coalesced) and
    de-interleaved on the host.
    """
    if slots < 1:
        raise LaunchError("BELL needs at least one block slot")
    tag = "imiv" if interleaved_vector else "im"
    b = KernelBuilder(
        f"spmv_bell_{tag}_s{slots}", params=("vals", "cols", "x", "y", "nbr")
    )
    br = b.reg()
    b.imad(br, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", br, b.param("nbr"))
    with b.if_then(guard):
        vb = b.reg()
        cb = b.reg()
        b.imad(vb, br, Imm(4), b.param("vals"))
        b.imad(cb, br, Imm(4), b.param("cols"))
        acc = b.regs(3)
        for reg in acc:
            b.mov(reg, Imm(0))
        vals = b.regs(9)
        xs = b.regs(3)
        col = b.reg()
        va = b.reg()
        for e in range(slots):
            b.ldg(col, cb, offset=4 * e * block_rows)
            for sub in range(9):
                b.ldg(vals[sub], vb, offset=4 * (e * 9 + sub) * block_rows)
            if interleaved_vector:
                # x'[j * nbr + c]: the three words are far apart, but at
                # fixed j neighbouring threads' block columns cluster.
                b.imad(va, col, Imm(4), b.param("x"))
                for j in range(3):
                    b.ldg(xs[j], va, offset=4 * j * block_rows)
            else:
                # natural x[3c + j]
                b.imad(va, col, Imm(12), b.param("x"))
                for j in range(3):
                    b.ldg(xs[j], va, offset=4 * j)
            for i in range(3):
                for j in range(3):
                    b.fmad(acc[i], vals[i * 3 + j], xs[j], acc[i])
        yb = b.reg()
        b.imad(yb, br, Imm(4), b.param("y"))
        for i in range(3):
            b.stg(yb, acc[i], offset=4 * i * block_rows)
    b.exit()
    return b.build()


# ----------------------------------------------------------------------
# host side
# ----------------------------------------------------------------------
@dataclass
class SpmvProblem:
    """One prepared SpMV instance in device memory."""

    fmt: str
    matrix: BlockSparseMatrix
    gmem: GlobalMemory
    x: np.ndarray
    params: dict[str, float]
    grid_blocks: int
    y_base: int

    def launch(self, record_segments: bool = True) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.grid_blocks, 1),
            block_threads=BLOCK_THREADS,
            params=self.params,
            granularities=GRANULARITIES,
            record_segments=record_segments,
        )

    def result(self) -> np.ndarray:
        n = self.matrix.n
        raw = self.gmem.read_array(self.y_base, n)
        if self.fmt == "ell":
            return raw
        return deinterleave(raw, self.matrix.block_size)

    def reference(self) -> np.ndarray:
        return self.matrix.multiply(self.x)


def prepare_problem(
    matrix: BlockSparseMatrix, fmt: str, seed: int = 13
) -> SpmvProblem:
    """Lay the matrix and a random vector out in device memory."""
    if fmt not in FORMATS:
        raise LaunchError(f"unknown SpMV format {fmt!r}; expected {FORMATS}")
    rng = np.random.default_rng(seed)
    n = matrix.n
    x = rng.uniform(-1, 1, size=n)
    gmem = GlobalMemory()

    if fmt == "ell":
        values, columns = matrix.to_ell()
        # slot-major: entry (row, e) at word e*n + row (coalesced in row)
        base_vals = gmem.alloc_array(values.T.ravel(), "vals")
        base_cols = gmem.alloc_array(columns.T.ravel(), "cols")
        base_x = gmem.alloc_array(x, "x")
        base_y = gmem.alloc(n, "y")
        grid_blocks = -(-n // BLOCK_THREADS)
        params = {
            "vals": base_vals,
            "cols": base_cols,
            "x": base_x,
            "y": base_y,
            "n": n,
        }
    else:
        nbr = matrix.block_rows
        bsz = matrix.block_size
        # (slot, sub, block_row) order: each of the 9 sub-entry streams
        # is contiguous across threads -- the interleaved matrix (IM).
        vals_im = np.transpose(matrix.values, (1, 2, 3, 0)).reshape(
            matrix.slots, bsz * bsz, nbr
        )
        base_vals = gmem.alloc_array(vals_im.ravel(), "vals")
        base_cols = gmem.alloc_array(matrix.block_cols.T.ravel(), "cols")
        stored_x = interleave(x, bsz) if fmt == "bell_imiv" else x
        base_x = gmem.alloc_array(stored_x, "x")
        base_y = gmem.alloc(n, "y")
        grid_blocks = -(-nbr // BLOCK_THREADS)
        params = {
            "vals": base_vals,
            "cols": base_cols,
            "x": base_x,
            "y": base_y,
            "nbr": nbr,
        }
    gmem.mark_cacheable("x")
    return SpmvProblem(fmt, matrix, gmem, x, params, grid_blocks, base_y)


def build_kernel_for(problem: SpmvProblem) -> Kernel:
    matrix = problem.matrix
    if problem.fmt == "ell":
        return build_ell_kernel(matrix.slots * matrix.block_size, matrix.n)
    return build_bell_kernel(
        matrix.slots, matrix.block_rows, problem.fmt == "bell_imiv"
    )


def run_spmv(
    matrix: BlockSparseMatrix,
    fmt: str,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    use_cache: bool = False,
    sample_blocks: int | None = 12,
    measure: bool = True,
    seed: int = 13,
    workers: int = 0,
    trace_cache: str | None = None,
    task_timeout: float | None = None,
    spec: GpuSpec = GTX285,
) -> AppRun:
    """Full workflow on one storage format.

    ``sample_blocks`` controls representative sampling (None = whole
    grid, exact); samples are spread evenly so data-dependent vector
    access patterns are representative (paper Section 3: dynamic
    statistics "enable us to handle data-dependent applications").
    SpMV traces are data-dependent, so the engine cannot deduplicate
    blocks -- ``workers`` fans the full grid out across processes and
    ``trace_cache`` memoizes repeat launches instead.  The paper-figure
    benchmarks default to exact grids (``sample_blocks=None``) now that
    parallel full grids are cheap, keeping ``--sample`` as an opt-in.
    """
    problem = prepare_problem(matrix, fmt, seed)
    kernel = build_kernel_for(problem)
    launch = problem.launch()
    sample = (
        evenly_spaced_blocks(launch, sample_blocks)
        if sample_blocks is not None
        else None
    )
    return execute(
        name=f"spmv {fmt} ({matrix.n}x{matrix.n})",
        kernel=kernel,
        gmem=problem.gmem,
        launch=launch,
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        use_cache=use_cache,
        spec=spec,
        workers=workers,
        trace_cache=trace_cache,
        task_timeout=task_timeout,
    )


def validate_spmv(matrix: BlockSparseMatrix, fmt: str, seed: int = 9) -> float:
    """Whole-grid run; max abs error against the dense reference."""
    problem = prepare_problem(matrix, fmt, seed)
    kernel = build_kernel_for(problem)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(record_segments=False),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.result() - problem.reference())))


def gflops(matrix: BlockSparseMatrix, seconds: float) -> float:
    """Effective GFLOPS: 2 flops per stored nonzero (paper Fig. 12)."""
    return 2.0 * matrix.nnz / seconds / 1e9


def bytes_per_entry(run: AppRun, matrix: BlockSparseMatrix) -> dict[str, dict[int, float]]:
    """Average transferred bytes per matrix entry, by array and
    granularity (regenerates paper Fig. 11a)."""
    totals = run.trace.totals
    out: dict[str, dict[int, float]] = {}
    for array in ("vals", "cols", "x"):
        per_gran = totals.global_by_array.get(array, {})
        out[array] = {
            gran: nbytes / matrix.nnz for gran, (_, nbytes) in per_gran.items()
        }
    return out
