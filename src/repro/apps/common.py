"""Shared harness for the case-study applications.

Each case study runs through the same pipeline the paper's Fig. 1 shows:
functional simulation (dynamic statistics + warp streams), occupancy,
the performance model's analysis, and a hardware "measurement" on the
timing simulator.  :class:`AppRun` bundles the artifacts so examples,
tests and benchmarks can compare model predictions with measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.occupancy import KernelResources, Occupancy, compute_occupancy
from repro.arch.specs import GpuSpec, GTX285
from repro.hw.gpu import HardwareGpu, MeasuredRun
from repro.isa.program import Kernel
from repro.model.performance import PerformanceModel
from repro.model.report import PerformanceReport
from repro.sim.engine import SimulationEngine
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.trace import KernelTrace


@dataclass
class AppRun:
    """One analyzed-and-measured kernel launch."""

    name: str
    kernel: Kernel
    launch: LaunchConfig
    resources: KernelResources
    occupancy: Occupancy
    trace: KernelTrace
    report: PerformanceReport | None = None
    measured: MeasuredRun | None = None

    @property
    def predicted_seconds(self) -> float:
        return self.report.predicted_seconds if self.report else float("nan")

    @property
    def measured_seconds(self) -> float:
        return self.measured.seconds if self.measured else float("nan")

    @property
    def model_error(self) -> float:
        """|predicted - measured| / measured (the paper's 5-15% metric)."""
        return self.report.error_against(self.measured.seconds)


def kernel_resources(kernel: Kernel, launch: LaunchConfig) -> KernelResources:
    """Resource declaration the occupancy calculator consumes."""
    return KernelResources(
        threads_per_block=launch.block_threads,
        registers_per_thread=kernel.num_registers,
        shared_memory_per_block=kernel.shared_memory_bytes,
    )


def _cache_provenance(
    engine_used: bool,
    trace_cache: str | None,
    trace: KernelTrace,
    gpu: HardwareGpu | None,
    measured: MeasuredRun | None,
    model: PerformanceModel | None,
) -> dict:
    """How each cache answered this run: ``hit``/``cold``/``off``.

    ``calibration`` only appears when the model carries provenance
    (:mod:`repro.__main__` stamps ``calibration_provenance`` when it
    builds the model around :func:`repro.micro.load_or_calibrate`).
    """
    provenance: dict = {}
    stats = getattr(trace, "engine_stats", None)
    if engine_used and trace_cache is not None:
        hit = bool(getattr(stats, "cache_hit", False))
        provenance["trace"] = "hit" if hit else "cold"
    else:
        provenance["trace"] = "off"
    if measured is not None:
        if gpu is not None and gpu.cache is not None:
            provenance["measured"] = (
                "hit" if measured.from_cache else "cold"
            )
        else:
            provenance["measured"] = "off"
    calibration = getattr(model, "calibration_provenance", None)
    if calibration is not None:
        provenance["calibration"] = calibration
    return provenance


def execute(
    name: str,
    kernel: Kernel,
    gmem: GlobalMemory,
    launch: LaunchConfig,
    sample_blocks: list[tuple[int, int]] | None = None,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    measure: bool = True,
    spec: GpuSpec = GTX285,
    use_cache: bool = False,
    engine: bool = True,
    workers: int = 0,
    trace_cache: str | None = None,
    task_timeout: float | None = None,
) -> AppRun:
    """Run the full workflow on one kernel launch.

    ``sample_blocks=None`` simulates the whole grid (exact);
    a sample list scales statistics to the grid (representative mode).

    ``engine=True`` (default) routes the functional simulation through
    :class:`SimulationEngine` -- block deduplication on full grids,
    optional ``workers``-wide process fan-out, and an on-disk trace memo
    cache at ``trace_cache``.  Pass ``engine=False`` when the *numerical*
    results must land in ``gmem`` (validation paths): the engine only
    guarantees the statistics, not replicated blocks' memory writes.

    ``spec`` may be any architecture (registry generations included):
    the launch's traced coalescing granularities are extended to cover
    the spec's minimum transaction segment, so the performance model
    always finds statistics at the granularity it analyzes.
    """
    from repro import obs
    from repro.util import spec_fingerprint

    gran = spec.memory.min_segment_bytes
    if gran not in launch.granularities:
        launch = dataclasses.replace(
            launch, granularities=tuple(launch.granularities) + (gran,)
        )
    span = obs.span(
        "app.execute",
        app=name,
        kernel=kernel.name,
        spec=getattr(spec, "name", None),
        workers=workers,
    )
    with span:
        if obs.enabled():
            obs.annotate(**{
                f"spec.{getattr(spec, 'name', 'unnamed')}":
                    spec_fingerprint(spec)
            })
        if engine:
            sim_engine = SimulationEngine(
                kernel,
                gmem=gmem,
                spec=spec,
                workers=workers,
                cache_dir=trace_cache,
                task_timeout=task_timeout,
            )
            trace = sim_engine.run(launch, blocks=sample_blocks)
        else:
            simulator = FunctionalSimulator(kernel, gmem=gmem, spec=spec)
            trace = simulator.run(launch, blocks=sample_blocks)
        resources = kernel_resources(kernel, launch)
        occupancy = compute_occupancy(spec, resources)

        report = None
        if model is not None:
            report = model.analyze(trace, launch, resources)

        measured = None
        if measure:
            # The default timing simulator shares the engine's pool
            # width; callers wanting the measured-run cache pass their
            # own gpu.
            gpu = gpu or HardwareGpu(
                spec=spec, workers=workers, task_timeout=task_timeout
            )
            measured = gpu.measure(
                trace.block_traces if len(trace.block_traces) > 1
                else trace.block_traces[0],
                num_blocks=launch.num_blocks,
                resident_per_sm=occupancy.blocks_per_sm,
                use_cache=use_cache,
            )

    if report is not None:
        report = dataclasses.replace(
            report,
            cache_provenance=_cache_provenance(
                engine_used=engine,
                trace_cache=trace_cache,
                trace=trace,
                gpu=gpu if measure else None,
                measured=measured,
                model=model,
            ),
        )

    return AppRun(
        name=name,
        kernel=kernel,
        launch=launch,
        resources=resources,
        occupancy=occupancy,
        trace=trace,
        report=report,
        measured=measured,
    )
