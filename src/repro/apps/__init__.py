"""Case-study applications: dense MM, tridiagonal solver, SpMV."""

from repro.apps.common import AppRun, execute, kernel_resources
from repro.apps.matmul import (
    TILE_SIZES,
    build_matmul_kernel,
    run_matmul,
    validate_matmul,
)
from repro.apps.matrices import BlockSparseMatrix, qcd_like, random_blocked
from repro.apps.spmv import (
    FORMATS,
    GRANULARITIES,
    build_bell_kernel,
    build_ell_kernel,
    bytes_per_entry,
    run_spmv,
    validate_spmv,
)
from repro.apps.tridiag import (
    build_cr_kernel,
    forward_stage_count,
    run_cr,
    thomas_solve,
    validate_cr,
)

__all__ = [
    "AppRun",
    "BlockSparseMatrix",
    "FORMATS",
    "GRANULARITIES",
    "TILE_SIZES",
    "build_bell_kernel",
    "build_cr_kernel",
    "build_ell_kernel",
    "build_matmul_kernel",
    "bytes_per_entry",
    "execute",
    "forward_stage_count",
    "kernel_resources",
    "qcd_like",
    "random_blocked",
    "run_cr",
    "run_matmul",
    "run_spmv",
    "thomas_solve",
    "validate_cr",
    "validate_matmul",
    "validate_spmv",
]
