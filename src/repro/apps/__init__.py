"""Case-study applications: dense MM, tridiagonal solver, SpMV,
tree reduction, a 3-point Jacobi stencil (ghost-cell and guarded
boundary layouts), and a work-efficient Blelloch prefix scan."""

from repro.apps.common import AppRun, execute, kernel_resources
from repro.apps.matmul import (
    TILE_SIZES,
    build_matmul_kernel,
    run_matmul,
    validate_matmul,
)
from repro.apps.matrices import BlockSparseMatrix, qcd_like, random_blocked
from repro.apps.reduction import (
    build_reduction_kernel,
    reduction_stage_count,
    run_reduction,
    validate_reduction,
)
from repro.apps.scan import (
    build_scan_kernel,
    run_scan,
    scan_stage_count,
    validate_scan,
)
from repro.apps.spmv import (
    FORMATS,
    GRANULARITIES,
    build_bell_kernel,
    build_ell_kernel,
    bytes_per_entry,
    run_spmv,
    validate_spmv,
)
from repro.apps.stencil import (
    build_stencil_kernel,
    run_stencil,
    validate_stencil,
)
from repro.apps.tridiag import (
    build_cr_kernel,
    forward_stage_count,
    run_cr,
    thomas_solve,
    validate_cr,
)

__all__ = [
    "AppRun",
    "BlockSparseMatrix",
    "FORMATS",
    "GRANULARITIES",
    "TILE_SIZES",
    "build_bell_kernel",
    "build_cr_kernel",
    "build_ell_kernel",
    "build_matmul_kernel",
    "build_reduction_kernel",
    "build_scan_kernel",
    "build_stencil_kernel",
    "bytes_per_entry",
    "execute",
    "forward_stage_count",
    "kernel_resources",
    "qcd_like",
    "random_blocked",
    "reduction_stage_count",
    "scan_stage_count",
    "run_cr",
    "run_matmul",
    "run_reduction",
    "run_scan",
    "run_spmv",
    "run_stencil",
    "thomas_solve",
    "validate_cr",
    "validate_matmul",
    "validate_reduction",
    "validate_scan",
    "validate_spmv",
    "validate_stencil",
]
