"""Sparse matrices for the SpMV case study (paper Section 5.3).

The paper evaluates on QCD, a naturally 3x3-blocked matrix from the
Williams/Bell/Choi SpMV suite: 49,152 x 49,152 with 1,916,928 nonzeros
-- 16,384 block rows of exactly 13 3x3 blocks.  The original file is
not redistributable here, so :func:`qcd_like` synthesizes a matrix with
the same dimensions, block structure, uniform 13-blocks-per-row pattern
and lattice locality: sites of a periodic 4-D lattice coupled to their
+-1 neighbours in every dimension plus +-2 in the first two (12
neighbours + the diagonal = 13 blocks).  Locality is what gives vector-
entry interleaving its win, so preserving it preserves the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class BlockSparseMatrix:
    """A square block-sparse matrix with uniform block-row degree.

    ``block_cols[i, e]`` is the block-column of slot ``e`` in block row
    ``i``; ``values[i, e]`` is the dense ``b x b`` block.
    """

    block_size: int
    block_cols: np.ndarray  # (block_rows, slots) int
    values: np.ndarray  # (block_rows, slots, b, b) float

    def __post_init__(self) -> None:
        rows, slots = self.block_cols.shape
        expected = (rows, slots, self.block_size, self.block_size)
        if self.values.shape != expected:
            raise ModelError(
                f"values shape {self.values.shape} != expected {expected}"
            )
        if np.any(self.block_cols < 0) or np.any(self.block_cols >= rows):
            raise ModelError("block column indices out of range")

    @property
    def block_rows(self) -> int:
        return self.block_cols.shape[0]

    @property
    def slots(self) -> int:
        return self.block_cols.shape[1]

    @property
    def n(self) -> int:
        return self.block_rows * self.block_size

    @property
    def nnz(self) -> int:
        return self.values.size

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Dense reference SpMV (float64)."""
        b = self.block_size
        y = np.zeros(self.n)
        xb = x.reshape(self.block_rows, b)
        for e in range(self.slots):
            cols = self.block_cols[:, e]
            contrib = np.einsum("ijk,ik->ij", self.values[:, e], xb[cols])
            y += contrib.reshape(-1)
        return y

    # ------------------------------------------------------------------
    # scalar ELL view (one thread per row)
    # ------------------------------------------------------------------
    def to_ell(self) -> tuple[np.ndarray, np.ndarray]:
        """Scalar ELLPACK arrays: (values, columns), shape (n, width).

        Width is ``slots * block_size`` (39 for QCD); rows are exactly
        full, so no padding entries are needed (as for the real QCD).
        """
        b = self.block_size
        width = self.slots * b
        values = np.zeros((self.n, width))
        columns = np.zeros((self.n, width), dtype=np.int64)
        for e in range(self.slots):
            cols = self.block_cols[:, e]
            for i in range(b):
                rows = np.arange(self.block_rows) * b + i
                for j in range(b):
                    values[rows, e * b + j] = self.values[:, e, i, j]
                    columns[rows, e * b + j] = cols * b + j
        return values, columns


def qcd_like(
    dims: tuple[int, int, int, int] = (8, 8, 16, 16),
    block_size: int = 3,
    seed: int = 42,
) -> BlockSparseMatrix:
    """Synthetic QCD-style matrix on a periodic 4-D lattice.

    Default dims give 8*8*16*16 = 16,384 block rows of 13 3x3 blocks:
    49,152 rows and 1,916,928 nonzeros, matching the published QCD
    matrix shape.
    """
    sites = int(np.prod(dims))
    rng = np.random.default_rng(seed)
    coords = np.stack(
        np.unravel_index(np.arange(sites), dims), axis=1
    )  # (sites, 4)

    offsets = [np.zeros(4, dtype=np.int64)]
    for d in range(4):
        for sign in (1, -1):
            step = np.zeros(4, dtype=np.int64)
            step[d] = sign
            offsets.append(step)
    for d in (0, 1):
        for sign in (2, -2):
            step = np.zeros(4, dtype=np.int64)
            step[d] = sign
            offsets.append(step)

    block_cols = np.zeros((sites, len(offsets)), dtype=np.int64)
    dims_arr = np.asarray(dims)
    for e, offset in enumerate(offsets):
        neighbour = (coords + offset) % dims_arr
        block_cols[:, e] = np.ravel_multi_index(neighbour.T, dims)
    block_cols.sort(axis=1)

    values = rng.uniform(
        -1, 1, size=(sites, len(offsets), block_size, block_size)
    )
    return BlockSparseMatrix(block_size, block_cols, values)


def random_blocked(
    block_rows: int,
    slots: int,
    block_size: int = 3,
    bandwidth: int | None = None,
    seed: int = 0,
) -> BlockSparseMatrix:
    """Random banded block matrix (for tests and extra workloads).

    Block columns are drawn near the diagonal within ``bandwidth`` to
    keep the locality structure SpMV formats care about.
    """
    if slots > block_rows:
        raise ModelError("more slots than block columns available")
    rng = np.random.default_rng(seed)
    bandwidth = bandwidth if bandwidth is not None else max(slots * 4, 8)
    block_cols = np.zeros((block_rows, slots), dtype=np.int64)
    for i in range(block_rows):
        lo = max(0, i - bandwidth)
        hi = min(block_rows, i + bandwidth + 1)
        candidates = [c for c in range(lo, hi) if c != i]
        if len(candidates) < slots - 1:
            raise ModelError("bandwidth too small for the requested slots")
        chosen = rng.choice(candidates, size=slots - 1, replace=False)
        block_cols[i] = np.sort(np.concatenate(([i], chosen)))
    values = rng.uniform(-1, 1, size=(block_rows, slots, block_size, block_size))
    return BlockSparseMatrix(block_size, block_cols, values)
