"""1-D 3-point Jacobi stencil with a shared-memory halo.

Each block of ``T`` threads updates ``T`` interior points of a 1-D
grid.  The block cooperatively stages its ``T + 2``-point working set
(interior plus one halo cell per side) into shared memory -- the two
halo loads ride on the boundary threads -- synchronizes once, and then
every thread computes ``w0*u[i-1] + w1*u[i] + w2*u[i+1]`` straight out
of shared memory before storing the result.

Two boundary layouts share that structure:

* **ghost cells** (default): the input array carries one extra cell at
  each end, so halo loads never leave the allocation and every block
  executes the identical instruction sequence (no boundary
  special-casing) -- a block-uniform kernel the engine dedups to a
  single probe-verified class;
* **guarded** (``guarded=True``): no ghost cells -- the edge threads
  *predicate* their halo loads on the block's grid position (``ctaid``
  against 0 and ``nctaid - 1``) and default the missing neighbour to
  the zero Dirichlet boundary.  ``ctaid`` thereby reaches control
  flow, so the engine partitions the grid by boundary role
  (first/interior/last) into three probe-verified classes -- the same
  sweep, exercised through heterogeneous dedup.  With zero-valued
  ghost cells the two layouts produce bit-identical results (the
  compute phase is instruction-for-instruction the same).

Along with the tree reduction this opens the barrier-synchronized
workload family the grid-batched interpreter targets: one barrier
stage whose shared traffic is reused by three reads per loaded word.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

#: Default block size: 2 warps, matching the paper's small-block style.
BLOCK_THREADS = 64

#: Default Jacobi weights (left, center, right).
WEIGHTS = (0.25, 0.5, 0.25)


def build_stencil_kernel(
    block_threads: int = BLOCK_THREADS, guarded: bool = False
) -> Kernel:
    """Native kernel computing one weighted 3-point sweep.

    Ghost-cell layout (default): ``u`` holds ``n + 2`` values (ghost
    cells at both ends) and every block runs the identical instruction
    sequence.  Guarded layout (``guarded=True``): ``u`` holds exactly
    ``n`` values; the edge threads predicate their halo loads on the
    block's grid position and seed the missing neighbour with the zero
    boundary value.  ``out`` holds the ``n`` updated points either
    way.  Weights are launch parameters, so one kernel serves any
    3-point scheme.
    """
    if block_threads < 2:
        raise LaunchError("stencil blocks need at least two threads")
    t = block_threads
    b = KernelBuilder(
        f"jacobi3{'g' if guarded else ''}_{t}",
        params=("u", "out", "w0", "w1", "w2"),
    )
    smem = b.alloc_shared(t + 2)

    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    gaddr = b.reg()
    # Ghost layout: u[gid] is the point left of this thread's center
    # (the array is shifted by its leading ghost).  Guarded layout:
    # u[gid] IS the center.
    b.imad(gaddr, gid, Imm(4), b.param("u"))
    saddr = b.reg()
    b.ishl(saddr, b.tid, Imm(2))

    center = b.reg()
    b.ldg(center, gaddr, offset=0 if guarded else 4)
    b.sts(center, saddr, offset=smem + 4)

    # Halo: thread 0 stages the left neighbour, the last thread the
    # right one.  The ghost layout loads unconditionally; the guarded
    # layout first publishes the boundary value, then overwrites it
    # only when the block has an in-bounds neighbour.
    halo = b.reg()
    edge = b.pred()
    b.isetp(edge, "eq", b.tid, Imm(0))
    with b.if_then(edge):
        if guarded:
            b.sts(Imm(0.0), saddr, offset=smem)
            inner = b.pred()
            b.isetp(inner, "gt", b.ctaid_x, Imm(0))
            with b.if_then(inner):
                laddr = b.reg()
                b.iadd(laddr, gaddr, Imm(-4))
                b.ldg(halo, laddr)  # u[block_base - 1]
                b.sts(halo, saddr, offset=smem)
        else:
            b.ldg(halo, gaddr)  # u[block_base]
            b.sts(halo, saddr, offset=smem)
    b.isetp(edge, "eq", b.tid, Imm(t - 1))
    with b.if_then(edge):
        if guarded:
            b.sts(Imm(0.0), saddr, offset=smem + 8)
            last = b.reg()
            b.iadd(last, b.nctaid_x, Imm(-1))
            inner = b.pred()
            b.isetp(inner, "lt", b.ctaid_x, last)
            with b.if_then(inner):
                raddr = b.reg()
                b.iadd(raddr, gaddr, Imm(4))
                b.ldg(halo, raddr)  # u[block_base + t]
                b.sts(halo, saddr, offset=smem + 8)
        else:
            b.ldg(halo, gaddr, offset=8)  # u[block_base + t + 1]
            b.sts(halo, saddr, offset=smem + 8)
    b.bar()

    left = b.reg()
    right = b.reg()
    b.lds(left, saddr, offset=smem)
    b.lds(center, saddr, offset=smem + 4)
    b.lds(right, saddr, offset=smem + 8)
    result = b.reg()
    b.fmul(result, left, b.param("w0"))
    b.fmad(result, center, b.param("w1"), result)
    b.fmad(result, right, b.param("w2"), result)
    oaddr = b.reg()
    b.imad(oaddr, gid, Imm(4), b.param("out"))
    b.stg(oaddr, result)
    b.exit()
    return b.build()


@dataclass
class StencilProblem:
    """Host-side state of one Jacobi sweep."""

    n: int
    block_threads: int
    weights: tuple[float, float, float]
    gmem: GlobalMemory
    u: np.ndarray  # n + 2 values (ghosts included), or n when guarded
    base_u: int
    base_out: int
    guarded: bool = False

    def launch(self) -> LaunchConfig:
        w0, w1, w2 = self.weights
        return LaunchConfig(
            grid=(self.n // self.block_threads, 1),
            block_threads=self.block_threads,
            params={
                "u": self.base_u,
                "out": self.base_out,
                "w0": w0,
                "w1": w1,
                "w2": w2,
            },
        )

    def result(self) -> np.ndarray:
        return self.gmem.read_array(self.base_out, self.n)

    def reference(self) -> np.ndarray:
        """The sweep in the kernel's float32 operation order.

        The guarded layout behaves exactly like zero-valued ghost
        cells, so both layouts share one padded formulation.
        """
        padded = self.u
        if self.guarded:
            padded = np.concatenate(([0.0], self.u, [0.0]))
        u32 = padded.astype(np.float32)
        w0, w1, w2 = (np.float32(w) for w in self.weights)
        acc = w0 * u32[:-2]
        acc = w1 * u32[1:-1] + acc
        acc = w2 * u32[2:] + acc
        return acc.astype(np.float64)


def prepare_problem(
    n: int = 1024,
    block_threads: int = BLOCK_THREADS,
    weights: tuple[float, float, float] = WEIGHTS,
    seed: int = 23,
    guarded: bool = False,
    values: np.ndarray | None = None,
) -> StencilProblem:
    """Build one problem instance.

    ``values`` (length ``n``) pins the *interior* points -- the
    differential tests hand both layouts the same field, with the
    ghost layout's ghost cells set to the guarded layout's implicit
    zero boundary.  Without ``values``, points are random; the default
    ghost layout then also draws random (nonzero) ghosts, preserving
    the historical problem distribution.
    """
    if n % block_threads:
        raise LaunchError(f"n={n} must divide by block_threads={block_threads}")
    rng = np.random.default_rng(seed)
    if values is not None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) != n:
            raise LaunchError(f"values must hold n={n} interior points")
        u = values if guarded else np.concatenate(([0.0], values, [0.0]))
    elif guarded:
        u = rng.uniform(-1, 1, size=n)
    else:
        u = rng.uniform(-1, 1, size=n + 2)
    gmem = GlobalMemory()
    base_u = gmem.alloc_array(u, "u")
    base_out = gmem.alloc(n, "out")
    return StencilProblem(
        n, block_threads, weights, gmem, u, base_u, base_out, guarded
    )


def run_stencil(
    n: int = 1024,
    block_threads: int = BLOCK_THREADS,
    weights: tuple[float, float, float] = WEIGHTS,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    representative: bool = True,
    measure: bool = True,
    seed: int = 23,
    workers: int = 0,
    trace_cache: str | None = None,
    guarded: bool = False,
) -> AppRun:
    """Full workflow on one Jacobi sweep."""
    problem = prepare_problem(n, block_threads, weights, seed, guarded)
    kernel = build_stencil_kernel(block_threads, guarded)
    sample = [(0, 0)] if representative else None
    return execute(
        name=f"jacobi3{'g' if guarded else ''} n={n} "
        f"({n // block_threads} blocks)",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        workers=workers,
        trace_cache=trace_cache,
    )


def validate_stencil(
    n: int = 256,
    block_threads: int = BLOCK_THREADS,
    weights: tuple[float, float, float] = WEIGHTS,
    seed: int = 9,
    guarded: bool = False,
) -> float:
    """Run the full grid and return the max abs error vs the float32
    reference (the operation orders match, so this is exactly 0.0)."""
    problem = prepare_problem(n, block_threads, weights, seed, guarded)
    kernel = build_stencil_kernel(block_threads, guarded)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.result() - problem.reference())))
