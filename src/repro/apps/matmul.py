"""Dense matrix multiply, Volkov-Demmel style (paper Section 5.1).

The computational procedure: the result matrix is tiled into
``64 x s`` sub-matrices, each mapped to a 64-thread (2-warp) block.
Only *one* input matrix's ``s x s`` tile is staged in shared memory
(Volkov & Demmel's key reordering); the other is streamed through
registers.  Thread ``t`` owns row ``t`` of its block's tile and keeps
``s`` accumulators in registers.  Per k-step it loads one A element
(coalesced) and performs ``s`` MADs whose second operand comes straight
from shared memory -- which is why the shared-transaction count tracks
the MAD count in Fig. 4(a).

The paper studies tile widths s = 8, 16, 32 ("sub-matrix sizes 8x8,
16x16, 32x32"): larger tiles cut global traffic ~in half per step and
raise computational density, but the 32x32 tile's register/shared
footprint drops occupancy from 8 blocks (16 warps) to 3 blocks
(6 warps), shifting the bottleneck to shared memory (Table 2, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.arch.specs import GTX285, GpuSpec
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

#: Block shape used for every tile size (paper Table 2: "a block
#: consists of 64 threads or 2 warps for all three cases").
BLOCK_THREADS = 64

#: The paper's three tile widths.
TILE_SIZES = (8, 16, 32)


def build_matmul_kernel(n: int, tile: int) -> Kernel:
    """Native kernel computing C = A * B (column-major, n x n).

    ``tile`` is the sub-matrix width ``s``; the block computes a
    ``64 x s`` tile of C over ``n / s`` shared-memory-staged chunks.
    """
    if n % BLOCK_THREADS or n % tile:
        raise LaunchError(f"n={n} must divide by {BLOCK_THREADS} and {tile}")
    if BLOCK_THREADS % tile:
        raise LaunchError(f"tile={tile} must divide {BLOCK_THREADS}")
    s = tile
    loads_per_thread = (s * s) // BLOCK_THREADS  # B-tile elements per thread
    chunks = n // s

    b = KernelBuilder(f"sgemm_{s}x{s}", params=("A", "B", "C", "n"))
    smem_tile = b.alloc_shared(s * s)

    # The B-tile staging registers double as prologue scratch, the way a
    # hand-scheduled native kernel would reuse dead registers.  This is
    # what lands the kernel on the paper's Table 2 register counts
    # (30 for 16x16, 58 for 32x32).
    tmp = b.regs(max(loads_per_thread, 4))
    row, colbase, kk0, j0 = tmp[0], tmp[1], tmp[2], tmp[3]

    b.imad(row, b.ctaid_x, Imm(BLOCK_THREADS), b.tid)
    addr_a = b.reg()  # -> A[row, k], advances down a row (column-major)
    b.imad(addr_a, row, Imm(4), b.param("A"))
    b.imul(colbase, b.ctaid_y, Imm(s))

    addr_c = b.reg()  # -> C[row, colbase]
    b.imad(addr_c, colbase, b.param("n"), row)
    b.imad(addr_c, addr_c, Imm(4), b.param("C"))

    # Per-thread B-load base: element (kk, j) = (t % s, colbase + t // s).
    b.iand(kk0, b.tid, Imm(s - 1))
    b.ishr(j0, b.tid, Imm(s.bit_length() - 1))
    b.iadd(j0, j0, colbase)
    addr_b = b.reg()
    b.imad(addr_b, j0, b.param("n"), kk0)
    b.imad(addr_b, addr_b, Imm(4), b.param("B"))

    addr_s = b.reg()  # shared store base: word t of the tile
    b.ishl(addr_s, b.tid, Imm(2))

    acc = b.regs(s)
    for reg in acc:
        b.mov(reg, Imm(0))
    a_cur = b.reg()
    # The prefetch register reuses a staging register: tile staging is
    # complete before the compute phase reads A, and each chunk performs
    # an even number of swaps, so lifetimes never overlap.  This keeps
    # the kernel at Table 2's register counts (30 / 58).
    a_next = tmp[0]

    row_stride = 4 * n  # bytes between consecutive columns (column-major)
    with b.counted_loop(chunks):
        # Cooperative B-tile load: coalesced in kk, then staged to shared.
        for e in range(loads_per_thread):
            b.ldg(tmp[e], addr_b, offset=e * (BLOCK_THREADS // s) * row_stride)
        for e in range(loads_per_thread):
            b.sts(tmp[e], addr_s, offset=smem_tile + e * BLOCK_THREADS * 4)
        b.iadd(addr_b, addr_b, Imm(4 * s))
        b.bar()
        # Compute phase: one A element + s MADs per k-step; the MAD's
        # second operand reads the tile directly from shared memory.
        # The A element for step kk+1 is prefetched while step kk's MADs
        # run (Volkov-style software pipelining hides the load latency).
        b.ldg(a_cur, addr_a)
        b.iadd(addr_a, addr_a, Imm(row_stride))
        for kk in range(s):
            if kk + 1 < s:
                b.ldg(a_next, addr_a)
                b.iadd(addr_a, addr_a, Imm(row_stride))
            for j in range(s):
                b.fmad(
                    acc[j],
                    a_cur,
                    b.smem(offset=smem_tile + 4 * (kk + j * s)),
                    acc[j],
                )
            a_cur, a_next = a_next, a_cur
        b.bar()

    for j in range(s):
        b.stg(addr_c, acc[j], offset=j * row_stride)
    b.exit()
    return b.build()


@dataclass
class MatmulProblem:
    """Host-side state of one C = A*B instance."""

    n: int
    tile: int
    gmem: GlobalMemory
    a: np.ndarray
    b: np.ndarray
    base_a: int
    base_b: int
    base_c: int

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.n // BLOCK_THREADS, self.n // self.tile),
            block_threads=BLOCK_THREADS,
            params={
                "A": self.base_a,
                "B": self.base_b,
                "C": self.base_c,
                "n": self.n,
            },
        )

    def result(self) -> np.ndarray:
        flat = self.gmem.read_array(self.base_c, self.n * self.n)
        return flat.reshape((self.n, self.n), order="F")

    def reference(self) -> np.ndarray:
        return (
            self.a.astype(np.float32) @ self.b.astype(np.float32)
        ).astype(np.float64)


def prepare_problem(n: int, tile: int, seed: int = 7) -> MatmulProblem:
    """Allocate and initialize matrices in device memory (column-major)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n))
    bmat = rng.uniform(-1, 1, size=(n, n))
    gmem = GlobalMemory()
    base_a = gmem.alloc_array(a.ravel(order="F"), "A")
    base_b = gmem.alloc_array(bmat.ravel(order="F"), "B")
    base_c = gmem.alloc(n * n, "C")
    return MatmulProblem(n, tile, gmem, a, bmat, base_a, base_b, base_c)


def run_matmul(
    n: int,
    tile: int,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    representative: bool = True,
    measure: bool = True,
    seed: int = 7,
    workers: int = 0,
    trace_cache: str | None = None,
    task_timeout: float | None = None,
    spec: GpuSpec = GTX285,
) -> AppRun:
    """Full workflow on one tile size.

    Representative mode simulates block (0, 0) and scales -- every block
    executes the identical instruction sequence, so statistics are
    exact.  ``representative=False`` covers the full grid through the
    deduplicating engine (exact multiplicities, no extrapolation).
    """
    problem = prepare_problem(n, tile, seed)
    kernel = build_matmul_kernel(n, tile)
    sample = [(0, 0)] if representative else None
    return execute(
        name=f"sgemm {tile}x{tile} (n={n})",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        spec=spec,
        workers=workers,
        trace_cache=trace_cache,
        task_timeout=task_timeout,
    )


def validate_matmul(n: int, tile: int, seed: int = 3) -> float:
    """Run the whole grid and return the max abs error vs numpy."""
    problem = prepare_problem(n, tile, seed)
    kernel = build_matmul_kernel(n, tile)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.result() - problem.reference())))


def gflops(n: int, seconds: float) -> float:
    """Effective GFLOPS of an n x n x n multiply (2 flops per MAD)."""
    return 2.0 * n**3 / seconds / 1e9
