"""Work-efficient block-level prefix sum (Blelloch scan).

Each block of ``T`` threads computes the *exclusive* prefix sum of its
contiguous ``T``-element segment in shared memory: an up-sweep builds a
reduction tree (``log2 T`` levels), thread 0 clears the tree root, and
a down-sweep propagates partial sums back down (another ``log2 T``
levels) -- every level separated by a ``bar.sync``, the canonical
"per-level barrier" workload of the GPU-scan literature.  A ``gid < n``
guard predicates the tail block's loads and stores, so grids whose
element count is not a block multiple run partially-active last blocks
without ghost padding.

This is the ROADMAP's "genuinely heterogeneous classes" scenario: the
guard routes ``ctaid`` into control flow, so the simulation engine's
taint analysis refuses single-class dedup and partitions the grid by
boundary role (first/interior/last along x) -- three probe-verified
classes instead of one, with the tail block's shorter activity caught
by the last-member probe.

Both element types the pipeline models are supported: ``f32`` sums in
float32 operation order (validated bit-exactly against a NumPy
reference replaying the same tree) and ``i32`` sums exactly in integer
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

#: Default block size: 2 warps, 64 elements per block segment.
BLOCK_THREADS = 64

#: Supported element types (opcode + reference dtype).
DTYPES = ("f32", "i32")


def _log2(value: int) -> int:
    m = value.bit_length() - 1
    if value <= 1 or (1 << m) != value:
        raise LaunchError(
            f"block_threads must be a power of two >= 2, got {value}"
        )
    return m


def scan_stage_count(block_threads: int) -> int:
    """Synchronization stages of one block: load, ``log2 T`` up-sweep
    levels, the root clear, ``log2 T`` down-sweep levels, the store."""
    return 2 * _log2(block_threads) + 3


def build_scan_kernel(
    block_threads: int = BLOCK_THREADS, dtype: str = "f32"
) -> Kernel:
    """Native kernel scanning one ``block_threads``-element segment."""
    m = _log2(block_threads)
    if dtype not in DTYPES:
        raise LaunchError(f"dtype must be one of {DTYPES}, got {dtype!r}")
    t = block_threads
    b = KernelBuilder(f"scan_{t}_{dtype}", params=("src", "out", "n"))
    smem = b.alloc_shared(t)

    def add(dst, x, y):
        (b.fadd if dtype == "f32" else b.iadd)(dst, x, y)

    identity = Imm(0.0) if dtype == "f32" else Imm(0)

    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    active = b.pred()
    b.isetp(active, "lt", gid, b.param("n"))

    # Load (tail-guarded): inactive lanes contribute the sum identity,
    # so the padded tree never changes any active element's prefix.
    val = b.reg()
    b.mov(val, identity)
    with b.if_then(active):
        gaddr = b.reg()
        b.imad(gaddr, gid, Imm(4), b.param("src"))
        b.ldg(val, gaddr)
    saddr = b.reg()
    b.ishl(saddr, b.tid, Imm(2))
    b.sts(val, saddr, offset=smem)
    b.bar()

    guard = b.pred()
    left = b.reg()
    right = b.reg()
    iaddr = b.reg()
    jaddr = b.reg()

    # Up-sweep: level d folds pairs 2**(d+1) apart; thread k handles
    # elements i = 2s*k + 2s - 1 and j = 2s*k + s - 1 (s = 2**d).
    for d in range(m):
        s = 1 << d
        b.isetp(guard, "lt", b.tid, Imm(t >> (d + 1)))
        with b.if_then(guard):
            b.imad(iaddr, b.tid, Imm(2 * s), Imm(2 * s - 1))
            b.ishl(iaddr, iaddr, Imm(2))
            b.imad(jaddr, b.tid, Imm(2 * s), Imm(s - 1))
            b.ishl(jaddr, jaddr, Imm(2))
            b.lds(left, iaddr, offset=smem)
            b.lds(right, jaddr, offset=smem)
            add(left, left, right)
            b.sts(left, iaddr, offset=smem)
        b.bar()

    # Clear the root: the exclusive scan's seed.
    b.isetp(guard, "eq", b.tid, Imm(0))
    with b.if_then(guard):
        b.sts(identity, None, offset=smem + 4 * (t - 1))
    b.bar()

    # Down-sweep: each node passes its value left and the folded sum
    # right, exactly inverting the up-sweep's pairing.
    for d in range(m - 1, -1, -1):
        s = 1 << d
        b.isetp(guard, "lt", b.tid, Imm(t >> (d + 1)))
        with b.if_then(guard):
            b.imad(iaddr, b.tid, Imm(2 * s), Imm(2 * s - 1))
            b.ishl(iaddr, iaddr, Imm(2))
            b.imad(jaddr, b.tid, Imm(2 * s), Imm(s - 1))
            b.ishl(jaddr, jaddr, Imm(2))
            b.lds(left, iaddr, offset=smem)
            b.lds(right, jaddr, offset=smem)
            b.sts(left, jaddr, offset=smem)
            add(left, left, right)
            b.sts(left, iaddr, offset=smem)
        b.bar()

    # Store (tail-guarded).
    b.lds(val, saddr, offset=smem)
    with b.if_then(active):
        oaddr = b.reg()
        b.imad(oaddr, gid, Imm(4), b.param("out"))
        b.stg(oaddr, val)
    b.exit()
    return b.build()


@dataclass
class ScanProblem:
    """Host-side state of one segmented exclusive-scan launch."""

    n: int
    block_threads: int
    dtype: str
    num_blocks: int
    gmem: GlobalMemory
    data: np.ndarray  # n values
    base_src: int
    base_out: int

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.num_blocks, 1),
            block_threads=self.block_threads,
            params={"src": self.base_src, "out": self.base_out, "n": self.n},
        )

    def result(self) -> np.ndarray:
        return self.gmem.read_array(self.base_out, self.n)

    def reference(self) -> np.ndarray:
        """Per-segment exclusive scans in the kernel's exact tree order.

        Replays the Blelloch up-/down-sweep over each zero-padded
        segment -- in float32 for ``f32`` (identical operation order,
        so the comparison is bit-exact) and in exact integers for
        ``i32``.
        """
        t = self.block_threads
        m = _log2(t)
        padded = np.zeros(self.num_blocks * t, dtype=np.float64)
        padded[: self.n] = self.data
        work = padded.reshape(self.num_blocks, t)
        a = (
            work.astype(np.float32)
            if self.dtype == "f32"
            else work.astype(np.int64)
        )
        for d in range(m):
            s = 1 << d
            k = np.arange(t >> (d + 1))
            i = 2 * s * k + 2 * s - 1
            j = 2 * s * k + s - 1
            a[:, i] = a[:, i] + a[:, j]
        a[:, t - 1] = 0
        for d in range(m - 1, -1, -1):
            s = 1 << d
            k = np.arange(t >> (d + 1))
            i = 2 * s * k + 2 * s - 1
            j = 2 * s * k + s - 1
            folded = a[:, i] + a[:, j]
            a[:, j] = a[:, i]
            a[:, i] = folded
        return a.reshape(-1)[: self.n].astype(np.float64)


def prepare_problem(
    n: int = 1000,
    block_threads: int = BLOCK_THREADS,
    dtype: str = "f32",
    seed: int = 29,
) -> ScanProblem:
    _log2(block_threads)
    if dtype not in DTYPES:
        raise LaunchError(f"dtype must be one of {DTYPES}, got {dtype!r}")
    if n <= 0:
        raise LaunchError("n must be positive")
    rng = np.random.default_rng(seed)
    if dtype == "f32":
        data = rng.uniform(-1, 1, size=n)
    else:
        data = rng.integers(-50, 50, size=n).astype(np.float64)
    num_blocks = -(-n // block_threads)
    gmem = GlobalMemory()
    base_src = gmem.alloc_array(data, "src")
    base_out = gmem.alloc(n, "out")
    return ScanProblem(
        n, block_threads, dtype, num_blocks, gmem, data, base_src, base_out
    )


def run_scan(
    n: int = 1000,
    block_threads: int = BLOCK_THREADS,
    dtype: str = "f32",
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    representative: bool = True,
    measure: bool = True,
    seed: int = 29,
    workers: int = 0,
    trace_cache: str | None = None,
) -> AppRun:
    """Full workflow on one segmented-scan launch."""
    problem = prepare_problem(n, block_threads, dtype, seed)
    kernel = build_scan_kernel(block_threads, dtype)
    sample = [(0, 0)] if representative else None
    return execute(
        name=f"scan {dtype} n={n} ({problem.num_blocks} blocks)",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        workers=workers,
        trace_cache=trace_cache,
    )


def validate_scan(
    n: int = 500,
    block_threads: int = BLOCK_THREADS,
    dtype: str = "f32",
    seed: int = 7,
) -> float:
    """Run the full grid and return the max abs error vs the reference
    (operation orders match, so this is exactly 0.0)."""
    problem = prepare_problem(n, block_threads, dtype, seed)
    kernel = build_scan_kernel(block_threads, dtype)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.result() - problem.reference())))
