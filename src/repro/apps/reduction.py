"""Block-wise tree reduction with per-level barriers.

Each block sums a contiguous segment of ``2 * block_threads`` elements:
a coalesced two-element load folds the segment in half on the way into
shared memory, then ``log2(block_threads)`` halving levels run with a
``bar.sync`` between them -- thread ``t`` of level ``h`` adds
``smem[t + h]`` to its register-resident partial sum and publishes it
back to ``smem[t]`` for the next level.  Thread 0 finally writes the
block's total to ``out[ctaid_x]``.

The kernel is the canonical barrier-synchronized workload shape: every
level is one synchronization stage whose active-warp count halves until
a single warp (then a single lane) carries the work, exactly the
shrinking-parallelism profile of the paper's cyclic reduction (Fig. 7)
in its simplest form.  It exists to exercise the grid-batched
interpreter's per-block barrier release and, alongside the stencil, the
engine's boundary-role partitioning with real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, execute
from repro.errors import LaunchError
from repro.hw.gpu import HardwareGpu
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel
from repro.model.performance import PerformanceModel
from repro.sim.functional import LaunchConfig
from repro.sim.memory import GlobalMemory

#: Default block size: 4 warps, 256 elements per block.
BLOCK_THREADS = 128


def _log2(value: int) -> int:
    m = value.bit_length() - 1
    if value <= 1 or (1 << m) != value:
        raise LaunchError(
            f"block_threads must be a power of two >= 2, got {value}"
        )
    return m


def reduction_stage_count(block_threads: int) -> int:
    """Stages of one block: load + ``log2`` levels + the final store."""
    return _log2(block_threads) + 2


def build_reduction_kernel(block_threads: int = BLOCK_THREADS) -> Kernel:
    """Native kernel summing ``2 * block_threads`` elements per block."""
    m = _log2(block_threads)
    b = KernelBuilder(f"reduce_{block_threads}", params=("src", "out"))
    smem = b.alloc_shared(block_threads)

    # elem = ctaid_x * 2T + tid; the two loads are both fully coalesced.
    elem = b.reg()
    b.imul(elem, b.ctaid_x, Imm(2 * block_threads))
    b.iadd(elem, elem, b.tid)
    gaddr = b.reg()
    b.imad(gaddr, elem, Imm(4), b.param("src"))
    acc = b.reg()
    other = b.reg()
    b.ldg(acc, gaddr)
    b.ldg(other, gaddr, offset=4 * block_threads)
    b.fadd(acc, acc, other)

    saddr = b.reg()
    b.ishl(saddr, b.tid, Imm(2))
    b.sts(acc, saddr, offset=smem)
    b.bar()

    # Halving levels: thread t < h folds smem[t + h] into its register-
    # resident partial (its own smem[t] is what it wrote last level) and
    # publishes the new partial for the next level's readers.
    guard = b.pred()
    for level in range(m - 1, -1, -1):
        h = 1 << level
        b.isetp(guard, "lt", b.tid, Imm(h))
        with b.if_then(guard):
            b.lds(other, saddr, offset=smem + 4 * h)
            b.fadd(acc, acc, other)
            b.sts(acc, saddr, offset=smem)
        b.bar()

    b.isetp(guard, "eq", b.tid, Imm(0))
    with b.if_then(guard):
        oaddr = b.reg()
        b.imad(oaddr, b.ctaid_x, Imm(4), b.param("out"))
        b.stg(oaddr, acc)
    b.exit()
    return b.build()


@dataclass
class ReductionProblem:
    """Host-side state of one segmented-sum instance."""

    block_threads: int
    num_blocks: int
    gmem: GlobalMemory
    data: np.ndarray
    base_src: int
    base_out: int

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.num_blocks, 1),
            block_threads=self.block_threads,
            params={"src": self.base_src, "out": self.base_out},
        )

    def result(self) -> np.ndarray:
        return self.gmem.read_array(self.base_out, self.num_blocks)

    def reference(self) -> np.ndarray:
        """Per-block sums in the kernel's exact float32 pairwise order."""
        values = self.data.reshape(
            self.num_blocks, 2 * self.block_threads
        ).astype(np.float32)
        half = self.block_threads
        acc = values[:, :half] + values[:, half:]
        while half > 1:
            half //= 2
            acc = acc[:, :half] + acc[:, half : 2 * half]
        return acc[:, 0].astype(np.float64)


def prepare_problem(
    block_threads: int = BLOCK_THREADS,
    num_blocks: int = 64,
    seed: int = 17,
) -> ReductionProblem:
    rng = np.random.default_rng(seed)
    data = rng.uniform(-1, 1, size=num_blocks * 2 * block_threads)
    gmem = GlobalMemory()
    base_src = gmem.alloc_array(data, "src")
    base_out = gmem.alloc(num_blocks, "out")
    return ReductionProblem(
        block_threads, num_blocks, gmem, data, base_src, base_out
    )


def run_reduction(
    block_threads: int = BLOCK_THREADS,
    num_blocks: int = 64,
    model: PerformanceModel | None = None,
    gpu: HardwareGpu | None = None,
    representative: bool = True,
    measure: bool = True,
    seed: int = 17,
    workers: int = 0,
    trace_cache: str | None = None,
) -> AppRun:
    """Full workflow on one segmented-sum launch."""
    problem = prepare_problem(block_threads, num_blocks, seed)
    kernel = build_reduction_kernel(block_threads)
    sample = [(0, 0)] if representative else None
    return execute(
        name=f"reduce {block_threads}t ({num_blocks} blocks)",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=sample,
        model=model,
        gpu=gpu,
        measure=measure,
        workers=workers,
        trace_cache=trace_cache,
    )


def validate_reduction(
    block_threads: int = BLOCK_THREADS, num_blocks: int = 8, seed: int = 3
) -> float:
    """Run the full grid and return the max abs error vs the float32
    pairwise reference (the orders match, so this is exactly 0.0)."""
    problem = prepare_problem(block_threads, num_blocks, seed)
    kernel = build_reduction_kernel(block_threads)
    execute(
        name="validate",
        kernel=kernel,
        gmem=problem.gmem,
        launch=problem.launch(),
        sample_blocks=None,
        measure=False,
        engine=False,  # numerical results must land in gmem
    )
    return float(np.max(np.abs(problem.result() - problem.reference())))
