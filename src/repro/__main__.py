"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the modelled GPU's specification and derived peaks.
``calibrate``
    Run the microbenchmark suite and save calibration tables as JSON.
``matmul`` / ``tridiag`` / ``spmv``
    Run a case study and print the model report next to the hardware
    measurement.
"""

from __future__ import annotations

import argparse
import sys

from repro.arch.specs import GTX285
from repro.sim.trace import TYPE_NAMES


def _cmd_info(_args) -> int:
    spec = GTX285
    print(f"device               : {spec.name}")
    print(f"SMs                  : {spec.num_sms} @ {spec.core_clock_ghz} GHz")
    print(
        f"memory clusters      : {spec.memory.num_clusters} "
        f"({spec.sms_per_cluster} SMs each)"
    )
    print(f"registers / SM       : {spec.sm.registers}")
    print(f"shared memory / SM   : {spec.sm.shared_memory_bytes} B "
          f"({spec.sm.shared_memory_banks} banks)")
    print(
        "ceilings             : "
        f"{spec.sm.max_threads_per_block} threads/block, "
        f"{spec.sm.max_blocks} blocks, {spec.sm.max_warps} warps"
    )
    for name in TYPE_NAMES:
        print(
            f"type {name:<3s} peak        : "
            f"{spec.peak_instruction_throughput(name) / 1e9:6.2f} GI/s "
            f"({spec.units_for_type(name)} units)"
        )
    print(f"peak single precision: {spec.peak_gflops:.1f} GFLOPS")
    print(f"peak shared bandwidth: {spec.peak_shared_bandwidth / 1e9:.1f} GB/s")
    print(f"peak global bandwidth: {spec.peak_global_bandwidth / 1e9:.1f} GB/s")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.micro import calibrate

    print("running microbenchmarks ...", file=sys.stderr)
    tables = calibrate(iterations=args.iterations)
    tables.save(args.output)
    print(f"calibration saved to {args.output}")
    return 0


def _make_model(args):
    from repro.hw import HardwareGpu
    from repro.micro import CalibrationTables, calibrate
    from repro.micro.cache import (
        default_calibration_path,
        default_measure_cache_dir,
        load_or_calibrate,
    )
    from repro.model import PerformanceModel

    # --workers governs both layers: the functional-simulation engine
    # and the timing simulator's cluster fan-out.  --no-cache likewise
    # disables the measured-run memo cache next to the trace cache.
    measure_cache = None
    if not getattr(args, "no_cache", False):
        measure_cache = str(default_measure_cache_dir())
    gpu = HardwareGpu(
        workers=getattr(args, "workers", 0), cache_dir=measure_cache
    )
    if args.calibration:
        tables = CalibrationTables.load(args.calibration, gpu=gpu)
    elif getattr(args, "no_cache", False):
        print("calibrating (cache disabled) ...", file=sys.stderr)
        tables = calibrate(gpu)
    else:
        path = default_calibration_path()
        tables = load_or_calibrate(
            gpu,
            path=path,
            on_calibrate=lambda: print(
                f"calibrating (tables will be cached at {path}) ...",
                file=sys.stderr,
            ),
        )
    return gpu, PerformanceModel(tables)


def _engine_kwargs(args) -> dict:
    """Engine knobs shared by the case-study commands."""
    from repro.micro.cache import default_trace_cache_dir

    trace_cache = None
    if not getattr(args, "no_cache", False):
        trace_cache = str(default_trace_cache_dir())
    return {"workers": args.workers, "trace_cache": trace_cache}


def _print_run(run) -> None:
    print(run.report.render())
    print(f"hardware measurement : {run.measured.milliseconds:.4f} ms")
    print(f"model error          : {run.model_error:.1%}")


def _cmd_matmul(args) -> int:
    from repro.apps.matmul import gflops, run_matmul

    gpu, model = _make_model(args)
    run = run_matmul(
        args.n,
        args.tile,
        model=model,
        gpu=gpu,
        representative=not args.full,
        **_engine_kwargs(args),
    )
    print(f"\nSGEMM {args.n}x{args.n}, {args.tile}x{args.tile} sub-matrices")
    _print_run(run)
    print(f"effective            : {gflops(args.n, run.measured.seconds):.0f} GFLOPS")
    return 0


def _cmd_tridiag(args) -> int:
    from repro.apps.tridiag import run_cr

    gpu, model = _make_model(args)
    run = run_cr(
        args.n,
        args.systems,
        padded=args.padded,
        model=model,
        gpu=gpu,
        representative=not args.full,
        **_engine_kwargs(args),
    )
    name = "CR-NBC" if args.padded else "CR"
    print(f"\n{name}: {args.systems} systems x {args.n} equations")
    _print_run(run)
    return 0


def _cmd_spmv(args) -> int:
    from repro.apps.matrices import qcd_like
    from repro.apps.spmv import gflops, run_spmv

    gpu, model = _make_model(args)
    matrix = qcd_like()
    run = run_spmv(
        matrix,
        args.format,
        model=model,
        gpu=gpu,
        use_cache=args.cache,
        sample_blocks=None if args.full else 12,
        **_engine_kwargs(args),
    )
    print(f"\nSpMV {args.format} on synthetic QCD ({matrix.n}^2)")
    _print_run(run)
    print(f"effective            : {gflops(matrix, run.measured.seconds):.1f} GFLOPS")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative GPU performance analysis (HPCA 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the modelled GPU specification")

    cal = sub.add_parser("calibrate", help="run microbenchmarks, save JSON")
    cal.add_argument("-o", "--output", default="calibration.json")
    cal.add_argument("--iterations", type=int, default=60)

    for name in ("matmul", "tridiag", "spmv"):
        case = sub.add_parser(name, help=f"run the {name} case study")
        case.add_argument(
            "--calibration", help="reuse a saved calibration JSON"
        )
        case.add_argument(
            "--no-cache",
            action="store_true",
            help="skip the default calibration/trace/measured-run caches "
            "(~/.cache/repro)",
        )
        case.add_argument(
            "--workers",
            type=int,
            default=0,
            help="process-pool width for the simulation engine and the "
            "timing simulator (0 = in-process)",
        )
        case.add_argument(
            "--full",
            action="store_true",
            help="simulate the full grid (deduplicated, exact) instead of a "
            "representative sample",
        )
        if name == "matmul":
            case.add_argument("--n", type=int, default=512)
            case.add_argument("--tile", type=int, default=16, choices=(8, 16, 32))
        elif name == "tridiag":
            case.add_argument("--n", type=int, default=512)
            case.add_argument("--systems", type=int, default=512)
            case.add_argument("--padded", action="store_true")
        else:
            case.add_argument(
                "--format",
                default="bell_imiv",
                choices=("ell", "bell_im", "bell_imiv"),
            )
            case.add_argument("--cache", action="store_true")
    return parser


_COMMANDS = {
    "info": _cmd_info,
    "calibrate": _cmd_calibrate,
    "matmul": _cmd_matmul,
    "tridiag": _cmd_tridiag,
    "spmv": _cmd_spmv,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
