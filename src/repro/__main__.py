"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the modelled GPU's specification and derived peaks.
``calibrate``
    Run the microbenchmark suite and save calibration tables as JSON.
``matmul`` / ``tridiag`` / ``spmv``
    Run a case study and print the model report next to the hardware
    measurement.
``tune``
    Measured-cost auto-tuning (:mod:`repro.tune`): ``run`` measures and
    persists this machine's tuning profile, ``show`` prints the
    resolved engine knobs and their provenance, ``trend`` compares
    per-commit ``BENCH_engine_smoke.json`` artifacts.
``analyze``
    Run the static kernel checker (:mod:`repro.analysis`) over the
    built-in app kernels; exits nonzero on any error-severity
    diagnostic (races, OOB accesses, divergent barriers).
``specs``
    The architecture registry (:mod:`repro.arch.registry`): ``list``
    enumerates the registered generations (``--markdown`` emits the
    ``docs/ARCHITECTURES.md`` reference), ``show`` prints one spec,
    and ``crossval`` runs the held-out cross-GPU validation harness
    (:mod:`repro.model.crossval`).

Most commands take ``--spec NAME`` to run against any registered
architecture generation instead of the GT200 baseline.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs import log as obs_log
from repro.sim.trace import TYPE_NAMES


def _resolve_spec(args):
    """Registered spec selected by ``--spec`` (default: the baseline)."""
    from repro.arch.registry import BASELINE, get_spec

    return get_spec(getattr(args, "spec", None) or BASELINE)


def _cmd_info(args) -> int:
    spec = _resolve_spec(args)
    print(f"device               : {spec.name}")
    print(f"SMs                  : {spec.num_sms} @ {spec.core_clock_ghz} GHz")
    print(
        f"memory clusters      : {spec.memory.num_clusters} "
        f"({spec.sms_per_cluster} SMs each)"
    )
    print(f"registers / SM       : {spec.sm.registers}")
    print(f"shared memory / SM   : {spec.sm.shared_memory_bytes} B "
          f"({spec.sm.shared_memory_banks} banks)")
    print(
        "ceilings             : "
        f"{spec.sm.max_threads_per_block} threads/block, "
        f"{spec.sm.max_blocks} blocks, {spec.sm.max_warps} warps"
    )
    for name in TYPE_NAMES:
        print(
            f"type {name:<3s} peak        : "
            f"{spec.peak_instruction_throughput(name) / 1e9:6.2f} GI/s "
            f"({spec.units_for_type(name)} units)"
        )
    print(f"peak single precision: {spec.peak_gflops:.1f} GFLOPS")
    print(f"peak shared bandwidth: {spec.peak_shared_bandwidth / 1e9:.1f} GB/s")
    print(f"peak global bandwidth: {spec.peak_global_bandwidth / 1e9:.1f} GB/s")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.hw import HardwareGpu
    from repro.micro import calibrate

    spec = _resolve_spec(args)
    obs_log.info(
        f"running microbenchmarks on {spec.name} ...", spec=spec.name
    )
    tables = calibrate(HardwareGpu(spec=spec), iterations=args.iterations)
    tables.save(args.output)
    print(f"calibration saved to {args.output}")
    return 0


def _make_model(args):
    from repro.hw import HardwareGpu
    from repro.micro import CalibrationTables, calibrate
    from repro.micro.cache import (
        default_calibration_path,
        default_measure_cache_dir,
        load_or_calibrate,
    )
    from repro.model import PerformanceModel

    # --workers governs both layers: the functional-simulation engine
    # and the timing simulator's cluster fan-out.  --no-cache likewise
    # disables the measured-run memo cache next to the trace cache.
    # --spec selects the architecture; calibration caches are per-spec.
    spec = _resolve_spec(args)
    measure_cache = None
    if not getattr(args, "no_cache", False):
        measure_cache = str(default_measure_cache_dir())
    gpu = HardwareGpu(
        spec=spec,
        workers=getattr(args, "workers", 0),
        cache_dir=measure_cache,
        task_timeout=getattr(args, "task_timeout", None),
    )
    if args.calibration:
        tables = CalibrationTables.load(args.calibration, gpu=gpu)
        provenance = "file"
    elif getattr(args, "no_cache", False):
        obs_log.info("calibrating (cache disabled) ...")
        tables = calibrate(gpu)
        provenance = "cold"
    else:
        path = default_calibration_path(spec)
        ran = []

        def on_calibrate() -> None:
            ran.append(True)
            obs_log.info(
                f"calibrating (tables will be cached at {path}) ...",
                path=str(path),
            )

        tables = load_or_calibrate(
            gpu, path=path, on_calibrate=on_calibrate
        )
        provenance = "cold" if ran else "hit"
    model = PerformanceModel(tables, spec=spec)
    # Stamped for the report's cache-provenance line (apps.common reads
    # it back when assembling PerformanceReport.cache_provenance).
    model.calibration_provenance = provenance
    return gpu, model


def _engine_kwargs(args) -> dict:
    """Engine knobs shared by the case-study commands."""
    from repro.micro.cache import default_trace_cache_dir

    _ensure_tuned(args)
    trace_cache = None
    if not getattr(args, "no_cache", False):
        trace_cache = str(default_trace_cache_dir())
    return {
        "workers": args.workers,
        "trace_cache": trace_cache,
        "task_timeout": getattr(args, "task_timeout", None),
    }


def _ensure_tuned(args) -> None:
    """Self-populate the tuning profile before the first engine run.

    Mirrors calibration's ``load_or_calibrate``: first use on a machine
    measures once, every later run resolves against the persisted
    profile.  ``--no-cache`` (nothing should persist) and
    ``$REPRO_TUNE_AUTO=0`` skip the measurement.
    """
    from repro.tune import default_tune_dir, ensure_profile

    ensure_profile(
        spec=_resolve_spec(args),
        dry_run=getattr(args, "no_cache", False),
        on_tune=lambda: obs_log.info(
            "measuring engine tuning parameters (profile will be "
            f"cached at {default_tune_dir()}) ...",
            directory=str(default_tune_dir()),
        ),
    )


def _print_run(run) -> None:
    print(run.report.render())
    print(f"hardware measurement : {run.measured.milliseconds:.4f} ms")
    print(f"model error          : {run.model_error:.1%}")


def _run_as_json(run, **extra) -> str:
    """Machine-readable case-study result, health telemetry included.

    ``engine.health`` and ``measured.health`` carry the degradation
    counters (pool retries, serial fallbacks, cache quarantines, ...);
    both are all-zero dicts on a healthy run, so consumers can alert on
    any nonzero value without knowing the field names in advance.
    """
    import dataclasses
    import json

    stats = run.trace.engine_stats
    payload = {
        "name": run.name,
        "predicted_ms": run.report.predicted_milliseconds,
        "measured_ms": run.measured.milliseconds,
        "model_error": run.model_error,
        "bottleneck": run.report.bottleneck,
        "engine": dataclasses.asdict(stats) if stats is not None else None,
        "measured": {
            "cycles": run.measured.cycles,
            "extrapolated": run.measured.extrapolated,
            "from_cache": run.measured.from_cache,
            "health": dataclasses.asdict(run.measured.health),
        },
        "cache_provenance": run.report.cache_provenance,
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)


def _cmd_matmul(args) -> int:
    from repro.apps.matmul import gflops, run_matmul

    gpu, model = _make_model(args)
    run = run_matmul(
        args.n,
        args.tile,
        model=model,
        gpu=gpu,
        spec=_resolve_spec(args),
        representative=not args.full,
        **_engine_kwargs(args),
    )
    if args.json:
        print(_run_as_json(run, gflops=gflops(args.n, run.measured.seconds)))
        return 0
    print(f"\nSGEMM {args.n}x{args.n}, {args.tile}x{args.tile} sub-matrices")
    _print_run(run)
    print(f"effective            : {gflops(args.n, run.measured.seconds):.0f} GFLOPS")
    return 0


def _cmd_tridiag(args) -> int:
    from repro.apps.tridiag import run_cr

    gpu, model = _make_model(args)
    run = run_cr(
        args.n,
        args.systems,
        padded=args.padded,
        model=model,
        gpu=gpu,
        spec=_resolve_spec(args),
        representative=not args.full,
        **_engine_kwargs(args),
    )
    if args.json:
        print(_run_as_json(run))
        return 0
    name = "CR-NBC" if args.padded else "CR"
    print(f"\n{name}: {args.systems} systems x {args.n} equations")
    _print_run(run)
    return 0


def _cmd_spmv(args) -> int:
    from repro.apps.matrices import qcd_like
    from repro.apps.spmv import gflops, run_spmv

    gpu, model = _make_model(args)
    matrix = qcd_like()
    run = run_spmv(
        matrix,
        args.format,
        model=model,
        gpu=gpu,
        spec=_resolve_spec(args),
        use_cache=args.cache,
        sample_blocks=None if args.full else 12,
        **_engine_kwargs(args),
    )
    if args.json:
        print(_run_as_json(run, gflops=gflops(matrix, run.measured.seconds)))
        return 0
    print(f"\nSpMV {args.format} on synthetic QCD ({matrix.n}^2)")
    _print_run(run)
    print(f"effective            : {gflops(matrix, run.measured.seconds):.1f} GFLOPS")
    return 0


def _cmd_tune(args) -> int:
    return _TUNE_COMMANDS[args.tune_command](args)


def _cmd_tune_run(args) -> int:
    from repro.tune import autotune, default_tune_dir, save_profile

    obs_log.info("measuring engine tuning parameters ...")
    profile = autotune(
        workers_counts=tuple(args.workers_counts),
        slab_repeats=args.repeats,
        events_repeats=args.repeats + 1,
        save=False,
    )
    print(f"machine              : {profile.machine}")
    print(
        "per-event cost       : "
        f"{profile.meta['seconds_per_event'] * 1e6:.2f} us/event, "
        f"pool startup {profile.meta['pool_startup_seconds'] * 1e3:.1f} ms"
    )
    print(
        "min_parallel_events  : "
        + ", ".join(
            f"{w} workers -> {v}"
            for w, v in sorted(profile.min_parallel_events.items())
        )
    )
    print(
        "grid_batch_blocks    : "
        + ", ".join(
            f"{warps} warps/block -> {v}"
            for warps, v in sorted(profile.grid_batch_blocks.items())
        )
        + f" (default {profile.default_grid_batch_blocks})"
    )
    if args.dry_run:
        print("dry run: profile not saved")
        return 0
    path = save_profile(profile)
    print(f"profile saved (auto-applied from now on): {path}")
    print(f"profile directory    : {default_tune_dir()}")
    return 0


def _cmd_tune_show(args) -> int:
    from repro.arch.specs import GTX285
    from repro.tune import (
        default_tune_dir,
        load_profile,
        machine_fingerprint,
        resolve_with_source,
    )
    from repro.util import spec_fingerprint

    spec = GTX285
    spec_fp = spec_fingerprint(spec)
    profile = load_profile(spec_fp)
    print(f"machine              : {machine_fingerprint()}")
    print(f"profile directory    : {default_tune_dir()}")
    if profile is None:
        print("profile              : none (run `python -m repro tune run`)")
    else:
        print(f"profile              : created {profile.created}")
        for warps, value in sorted(profile.grid_batch_blocks.items()):
            print(f"  grid_batch_blocks[{warps} warps/block] = {value}")
        for workers, value in sorted(profile.min_parallel_events.items()):
            print(f"  min_parallel_events[{workers} workers] = {value}")
    value, source = resolve_with_source(
        "grid_batch_blocks", spec=spec, warps_per_block=args.warps or None
    )
    print(f"grid_batch_blocks    : {value} (from {source})")
    value, source = resolve_with_source(
        "min_parallel_events", spec=spec, workers=args.workers
    )
    print(f"min_parallel_events  : {value} (from {source})")
    return 0


def _cmd_tune_trend(args) -> int:
    from repro.tune.trend import trend_report

    report, markdown = trend_report(args.inputs, threshold=args.threshold)
    print(markdown)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"markdown report written: {args.markdown}", file=sys.stderr)
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"JSON report written: {args.json}", file=sys.stderr)
    for name in report["regressions"]:
        message = f"engine_smoke perf trend: {name} regressed"
        if args.github_warnings:
            # GitHub Actions annotation: visible on the run summary
            # without failing the job (warn, don't gate).
            print(f"::warning title=perf trend::{message}")
        else:
            print(f"WARNING: {message}", file=sys.stderr)
    if args.fail_on_regression and report["regressions"]:
        return 1
    return 0


def _cmd_obs(args) -> int:
    return _OBS_COMMANDS[args.obs_command](args)


def _cmd_obs_report(args) -> int:
    from repro.obs.report import (
        ObsReportError,
        build_report,
        render_markdown,
        render_text,
    )

    try:
        report = build_report(args.directory, top_spans=args.top)
    except ObsReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    elif args.markdown:
        print(render_markdown(report))
    else:
        print(render_text(report))
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis.report import (
        BUILTIN_KERNELS,
        analyze_kernels,
        error_count,
        render_json,
        render_text,
    )

    names = args.kernel if args.kernel else sorted(BUILTIN_KERNELS)
    reports = analyze_kernels(names)
    print(render_json(reports) if args.json else render_text(reports))
    return 1 if error_count(reports) else 0


def _cmd_specs(args) -> int:
    return _SPECS_COMMANDS[args.specs_command](args)


def _emit(text: str, path: str | None) -> None:
    """Write to ``path``, or stdout when the path is ``-``."""
    if path and path != "-":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written: {path}", file=sys.stderr)
    else:
        print(text)


def _cmd_specs_list(args) -> int:
    from repro.arch.registry import entries, render_json, render_markdown

    if args.markdown is not None:
        _emit(render_markdown(), args.markdown)
        return 0
    if args.json:
        print(render_json())
        return 0
    for entry in entries():
        spec = entry.spec
        print(
            f"{entry.name:<14} {spec.name:<24} "
            f"{spec.num_sms:>3} SMs @ {spec.core_clock_ghz:.2f} GHz, "
            f"{spec.sm.max_warps:>2} warps/SM, "
            f"{spec.peak_gflops:7.1f} GFLOPS, "
            f"{spec.peak_global_bandwidth / 1e9:6.1f} GB/s global"
        )
    return 0


def _cmd_specs_show(args) -> int:
    from repro.arch.registry import describe, get_entry

    entry = get_entry(args.name)
    if args.json:
        import json

        print(json.dumps(describe(entry), indent=2, sort_keys=True))
        return 0
    payload = describe(entry)
    print(f"registry name        : {entry.name}")
    print(f"device               : {entry.spec.name}")
    print(f"fingerprint          : {entry.fingerprint}")
    print(f"provenance           : {entry.provenance}")
    print(f"SMs                  : {payload['num_sms']} "
          f"@ {payload['core_clock_ghz']} GHz")
    print(f"functional units     : {payload['functional_units']}")
    for section in ("sm", "memory", "derived"):
        print(f"[{section}]")
        for key, value in sorted(payload[section].items()):
            print(f"  {key:<28} = {value}")
    return 0


def _cmd_specs_crossval(args) -> int:
    from repro.micro.cache import default_trace_cache_dir
    from repro.model.crossval import cross_validate

    _ensure_tuned(args)
    trace_cache = None
    if not args.no_cache:
        trace_cache = str(default_trace_cache_dir())
    report = cross_validate(
        targets=tuple(args.specs) if args.specs else None,
        kernels=tuple(args.kernels) if args.kernels else None,
        source=args.source,
        warp_counts=tuple(args.warp_counts) if args.warp_counts else None,
        iterations=args.iterations,
        use_calibration_cache=not args.no_cache,
        workers=args.workers,
        trace_cache=trace_cache,
        progress=obs_log.info,
    )
    emitted = False
    if args.json is not None:
        _emit(report.to_json(), args.json)
        emitted = True
    if args.markdown is not None:
        _emit(report.render_markdown(), args.markdown)
        emitted = True
    if not emitted:
        print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative GPU performance analysis (HPCA 2011 reproduction)",
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        help="record structured traces/metrics/manifest for this run "
        "into DIR (also honored via $REPRO_OBS); inspect with "
        "`repro obs report DIR`",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="stderr log threshold (also honored via $REPRO_LOG; "
        "default: info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_flag(command) -> None:
        command.add_argument(
            "--spec",
            metavar="NAME",
            help="registered architecture generation to model "
            "(see `repro specs list`; default: gt200)",
        )

    info = sub.add_parser("info", help="print the modelled GPU specification")
    add_spec_flag(info)

    cal = sub.add_parser("calibrate", help="run microbenchmarks, save JSON")
    cal.add_argument("-o", "--output", default="calibration.json")
    cal.add_argument("--iterations", type=int, default=60)
    add_spec_flag(cal)

    for name in ("matmul", "tridiag", "spmv"):
        case = sub.add_parser(name, help=f"run the {name} case study")
        add_spec_flag(case)
        case.add_argument(
            "--calibration", help="reuse a saved calibration JSON"
        )
        case.add_argument(
            "--no-cache",
            action="store_true",
            help="skip the default calibration/trace/measured-run caches "
            "(~/.cache/repro)",
        )
        case.add_argument(
            "--workers",
            type=int,
            default=0,
            help="process-pool width for the simulation engine and the "
            "timing simulator (0 = in-process)",
        )
        case.add_argument(
            "--full",
            action="store_true",
            help="simulate the full grid (deduplicated, exact) instead of a "
            "representative sample",
        )
        case.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-task watchdog for pooled work: a hung worker is "
            "killed after this long and its task re-executed serially "
            "(default: $REPRO_POOL_TIMEOUT, else no timeout)",
        )
        case.add_argument(
            "--json",
            action="store_true",
            help="emit the result as JSON (predictions, measurement, "
            "engine stats and degradation-health counters)",
        )
        if name == "matmul":
            case.add_argument("--n", type=int, default=512)
            case.add_argument("--tile", type=int, default=16, choices=(8, 16, 32))
        elif name == "tridiag":
            case.add_argument("--n", type=int, default=512)
            case.add_argument("--systems", type=int, default=512)
            case.add_argument("--padded", action="store_true")
        else:
            case.add_argument(
                "--format",
                default="bell_imiv",
                choices=("ell", "bell_im", "bell_imiv"),
            )
            case.add_argument("--cache", action="store_true")

    tune = sub.add_parser(
        "tune",
        help="measured-cost auto-tuning (profiles, knobs, perf trends)",
    )
    tune_sub = tune.add_subparsers(dest="tune_command", required=True)

    tune_run = tune_sub.add_parser(
        "run", help="measure this machine and persist a tuning profile"
    )
    tune_run.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="best-of repeats per measurement (higher = less noise)",
    )
    tune_run.add_argument(
        "--workers-counts",
        type=int,
        nargs="+",
        default=[2, 4, 8],
        metavar="N",
        help="pool widths to compute serial/pool crossovers for",
    )
    tune_run.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print, but do not persist the profile",
    )

    tune_show = tune_sub.add_parser(
        "show", help="print resolved tuning values and their provenance"
    )
    tune_show.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool width context for the min_parallel_events lookup",
    )
    tune_show.add_argument(
        "--warps",
        type=int,
        default=0,
        help="warps-per-block context for the grid_batch_blocks lookup",
    )

    tune_trend = tune_sub.add_parser(
        "trend",
        help="perf-trajectory report over BENCH_engine_smoke.json files",
    )
    tune_trend.add_argument(
        "inputs",
        nargs="+",
        help="JSON artifact files and/or directories containing them",
    )
    tune_trend.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative per-gate regression flagged in the report",
    )
    tune_trend.add_argument(
        "--markdown", help="also write the markdown report to this path"
    )
    tune_trend.add_argument(
        "--json", help="also write the JSON report to this path"
    )
    tune_trend.add_argument(
        "--github-warnings",
        action="store_true",
        help="emit ::warning:: annotations for regressions (CI)",
    )
    tune_trend.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit nonzero when any gate regressed (default: warn only)",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="observability runs: summarize traces recorded with --obs",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report",
        help="summarize one recorded run (top spans, cache hit rates, "
        "degradation events)",
    )
    obs_report.add_argument(
        "directory", help="directory a previous `--obs DIR` run wrote"
    )
    report_group = obs_report.add_mutually_exclusive_group()
    report_group.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    report_group.add_argument(
        "--markdown",
        action="store_true",
        help="emit the report as markdown (CI job summaries)",
    )
    obs_report.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="number of spans in the self-time ranking",
    )

    analyze = sub.add_parser(
        "analyze",
        help="static kernel checker: races, OOB, divergent barriers",
    )
    group = analyze.add_mutually_exclusive_group()
    group.add_argument(
        "--kernel",
        action="append",
        metavar="NAME",
        help="analyze one built-in kernel (repeatable; default: all)",
    )
    group.add_argument(
        "--all",
        action="store_true",
        help="analyze every built-in kernel (the default)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )

    specs = sub.add_parser(
        "specs",
        help="architecture registry: list/show generations, cross-GPU "
        "validation",
    )
    specs_sub = specs.add_subparsers(dest="specs_command", required=True)

    specs_list = specs_sub.add_parser(
        "list", help="list the registered architecture generations"
    )
    list_group = specs_list.add_mutually_exclusive_group()
    list_group.add_argument(
        "--json",
        action="store_true",
        help="emit the full registry (all spec fields, derived peaks, "
        "provenance) as JSON",
    )
    list_group.add_argument(
        "--markdown",
        nargs="?",
        const="-",
        metavar="PATH",
        help="emit the architecture reference document "
        "(docs/ARCHITECTURES.md) to PATH, or stdout without PATH",
    )

    specs_show = specs_sub.add_parser(
        "show", help="print one registered architecture in full"
    )
    specs_show.add_argument("name", help="registry name (see `specs list`)")
    specs_show.add_argument(
        "--json", action="store_true", help="emit the spec as JSON"
    )

    crossval = specs_sub.add_parser(
        "crossval",
        help="held-out cross-GPU validation: predict each kernel on "
        "specs the model was not calibrated against",
    )
    crossval.add_argument(
        "--specs",
        action="append",
        metavar="NAME",
        help="target spec to predict on (repeatable; default: every "
        "registered generation)",
    )
    crossval.add_argument(
        "--kernel",
        action="append",
        dest="kernels",
        metavar="NAME",
        help="kernel-zoo workload (repeatable; default: all built-ins)",
    )
    crossval.add_argument(
        "--source",
        metavar="NAME",
        help="calibrate on this spec for every target (default: "
        "held-out pairing via the registry baseline)",
    )
    crossval.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="PATH",
        help="emit the report as JSON to PATH (stdout without PATH); "
        "CI uploads this as BENCH_crossval.json",
    )
    crossval.add_argument(
        "--markdown",
        nargs="?",
        const="-",
        metavar="PATH",
        help="emit the report as markdown to PATH (stdout without PATH)",
    )
    crossval.add_argument(
        "--iterations",
        type=int,
        default=60,
        help="microbenchmark iterations per calibration point",
    )
    crossval.add_argument(
        "--warp-counts",
        type=int,
        nargs="+",
        metavar="W",
        help="calibration warp sweep (default: per-spec grid)",
    )
    crossval.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool width for simulation (0 = in-process)",
    )
    crossval.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the per-spec calibration and trace caches",
    )
    return parser


_COMMANDS = {
    "info": _cmd_info,
    "calibrate": _cmd_calibrate,
    "matmul": _cmd_matmul,
    "tridiag": _cmd_tridiag,
    "spmv": _cmd_spmv,
    "tune": _cmd_tune,
    "analyze": _cmd_analyze,
    "specs": _cmd_specs,
    "obs": _cmd_obs,
}

_OBS_COMMANDS = {
    "report": _cmd_obs_report,
}

_SPECS_COMMANDS = {
    "list": _cmd_specs_list,
    "show": _cmd_specs_show,
    "crossval": _cmd_specs_crossval,
}

_TUNE_COMMANDS = {
    "run": _cmd_tune_run,
    "show": _cmd_tune_show,
    "trend": _cmd_tune_trend,
}


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    if args.log_level:
        obs_log.set_level(args.log_level)
    # `obs report` reads a recorded directory; recording *it* would
    # clobber the very run it is summarizing, so it never records.
    obs_dir = args.obs or os.environ.get("REPRO_OBS") or None
    if args.command == "obs":
        obs_dir = None

    def dispatch() -> int:
        try:
            return _COMMANDS[args.command](args)
        except ReproError as exc:
            # Domain errors (unknown spec/kernel names, malformed
            # calibration files, ...) are user errors, not crashes.
            obs_log.error(f"error: {exc}")
            return 2

    if obs_dir is None:
        return dispatch()

    from repro import obs

    recorder = obs.start()
    status: int | None = None
    try:
        status = dispatch()
        return status
    finally:
        obs.stop()
        obs.export_session(
            recorder,
            obs_dir,
            argv=list(argv) if argv is not None else sys.argv[1:],
            command=args.command,
            exit_status=1 if status is None else status,
        )


if __name__ == "__main__":
    raise SystemExit(main())
