"""Shared process-pool plumbing for the simulation layers.

Both the functional-simulation engine (:mod:`repro.sim.engine`) and the
hardware timing layer (:mod:`repro.hw.engine`) fan independent tasks
across worker processes.  This module owns the one pool policy they
share, so worker-count semantics, start-method quirks, and -- since the
fault-tolerance layer -- failure semantics cannot drift apart:

* **fork on Linux only.**  macOS still offers fork, but forking after
  numpy/Accelerate initialisation can deadlock children; everywhere but
  Linux the safer (slower) spawn method is used.
* **serial fallback.**  ``workers <= 1`` or a single task runs in the
  caller's process through ``serial_fn`` -- the only mode whose side
  effects (e.g. global-memory writes) are observable to the caller, and
  the mode every parallel run must be bit-identical to.
* **deterministic aggregation.**  Results come back in task order, so
  callers reduce them exactly as a serial loop would.
* **self-healing.**  A crashed worker (``BrokenProcessPool``, abnormal
  exit) triggers a bounded retry with exponential backoff through a
  rebuilt pool; a hung task is detected by the per-task timeout
  watchdog, its pool is killed, and the task is re-executed in-process
  through ``serial_fn`` -- the bit-identity reference -- so a degraded
  run returns *exactly* the healthy result.  What degraded is reported
  in a :class:`PoolHealth` record, never swallowed.
* **no leaked segments.**  Shared-memory segments registered through
  :func:`track_segment` are unlinked on ``KeyboardInterrupt`` and at
  interpreter exit, so an interrupted run cannot strand ``/dev/shm``
  entries.
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, fields

#: Environment variable supplying a default per-task timeout (seconds)
#: for pooled tasks; unset or non-positive disables the watchdog.
POOL_TIMEOUT_ENV = "REPRO_POOL_TIMEOUT"

#: Bounded retries per task through rebuilt pools before the serial
#: fallback takes over.
DEFAULT_MAX_RETRIES = 2

#: First backoff delay before a pool rebuild; doubles per rebuild,
#: capped at 1 s (crash loops must not spin the CPU, tests must not
#: crawl).
DEFAULT_RETRY_BACKOFF = 0.05


def start_method() -> str:
    """The multiprocessing start method both simulation layers use."""
    import multiprocessing

    if (
        sys.platform == "linux"
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return "spawn"


# ----------------------------------------------------------------------
# degradation telemetry
# ----------------------------------------------------------------------
@dataclass
class PoolHealth:
    """Mutable failure counters for one or more :func:`map_tasks` calls.

    ``wall_seconds_lost`` is an estimate (timeout budgets spent waiting
    on hung tasks plus backoff sleeps), not a precise accounting.
    """

    tasks: int = 0
    retried: int = 0
    serial_fallbacks: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    task_errors: int = 0
    pool_rebuilds: int = 0
    interrupts: int = 0
    wall_seconds_lost: float = 0.0

    @property
    def degraded(self) -> bool:
        return bool(
            self.retried
            or self.serial_fallbacks
            or self.timeouts
            or self.worker_crashes
            or self.task_errors
            or self.pool_rebuilds
            or self.interrupts
        )

    def merge(self, other: "PoolHealth") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def record(self, **extra) -> "HealthRecord":
        """Freeze these counters into a :class:`HealthRecord`.

        ``extra`` supplies the layer-specific counters the pool cannot
        know (cache quarantines, shm fallbacks, analysis fallbacks).
        """
        return HealthRecord(
            pool_retries=self.retried,
            serial_fallbacks=self.serial_fallbacks,
            timeouts=self.timeouts,
            worker_crashes=self.worker_crashes,
            task_errors=self.task_errors,
            pool_rebuilds=self.pool_rebuilds,
            wall_seconds_lost=self.wall_seconds_lost,
            **extra,
        )


@dataclass(frozen=True)
class HealthRecord:
    """Frozen degradation summary attached to engine/timing results.

    All-zero (the default) means a fully healthy run.  The analysis
    fallbacks (``proof_fallbacks``/``symbolic_fallbacks``) are expected
    behaviour for data-dependent kernels and do *not* count as
    degradation; everything else records a survived fault.
    """

    pool_retries: int = 0
    serial_fallbacks: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    task_errors: int = 0
    pool_rebuilds: int = 0
    wall_seconds_lost: float = 0.0
    #: Corrupt on-disk cache entries renamed to ``*.corrupt``.
    cache_quarantines: int = 0
    #: Cache stores that failed open (fsync/write/replace errors).
    cache_write_errors: int = 0
    #: Pool tasks that fell back while a shared-memory arena was the
    #: transport (attach failures degrade to pickled/serial execution).
    shm_fallbacks: int = 0
    #: Multi-member dedup classes the static proof refused (probed).
    proof_fallbacks: int = 0
    #: Dedup classes interpreted because symbolic synthesis was not
    #: covered (e.g. data-dependent kernels).
    symbolic_fallbacks: int = 0

    @property
    def degraded(self) -> bool:
        return bool(
            self.pool_retries
            or self.serial_fallbacks
            or self.timeouts
            or self.worker_crashes
            or self.task_errors
            or self.pool_rebuilds
            or self.cache_quarantines
            or self.cache_write_errors
            or self.shm_fallbacks
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """Compact nonzero-counter listing, e.g. ``retries=1 timeouts=2``."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if not value:
                continue
            if f.name == "wall_seconds_lost":
                parts.append(f"lost={value:.1f}s")
            else:
                name = f.name.replace("pool_retries", "retries")
                parts.append(f"{name}={value}")
        return " ".join(parts) if parts else "ok"


# ----------------------------------------------------------------------
# shared-memory segment tracking
# ----------------------------------------------------------------------
_TRACKED_SEGMENTS: dict[int, object] = {}


def track_segment(segment) -> None:
    """Register a ``SharedMemory`` segment for guaranteed cleanup.

    Tracked segments are unlinked when a pooled run is interrupted
    (``KeyboardInterrupt``) and, as a last resort, at interpreter exit
    -- an aborted sweep must never strand ``/dev/shm`` entries.
    """
    _TRACKED_SEGMENTS[id(segment)] = segment


def release_segment(segment) -> None:
    """Close and unlink a tracked segment (idempotent, best-effort)."""
    _TRACKED_SEGMENTS.pop(id(segment), None)
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


def cleanup_segments() -> None:
    """Release every tracked segment (interrupt/exit safety net)."""
    for segment in list(_TRACKED_SEGMENTS.values()):
        release_segment(segment)


atexit.register(cleanup_segments)


# ----------------------------------------------------------------------
# the pooled map
# ----------------------------------------------------------------------
class _SpanEnvelope:
    """Worker capture shipped home beside one task's result.

    The pool strips the envelope at harvest, so callers receive exactly
    the object ``worker_fn`` returned -- observability on or off never
    changes a result's pickled bytes, only adds this out-of-band
    sidecar.
    """

    __slots__ = ("result", "events", "counters", "gauges", "histograms")

    def __init__(self, result, recorder) -> None:
        self.result = result
        self.events = recorder.events
        self.counters = recorder.counters
        self.gauges = recorder.gauges
        self.histograms = recorder.histograms


def _call_task(worker_fn, index, task, attempt, plan, obs_lane=None):
    """Module-level (picklable) task wrapper run inside workers.

    Consults the fault-injection plan first: the plan is shipped
    explicitly so spawn workers honor plans installed programmatically
    in the parent (fork workers would inherit the global anyway).
    ``obs_lane`` (set only when the parent records) installs a fresh
    per-task recorder -- replacing any recorder a fork worker inherited,
    whose events would otherwise die with the worker -- and wraps the
    result in a :class:`_SpanEnvelope` for the parent to adopt.
    """
    from repro import faults

    faults.on_pool_task(index, attempt, plan)
    if obs_lane is None:
        return worker_fn(task)
    from repro import obs

    with obs.capture(obs_lane) as recorder:
        with recorder.span("pool.task", index=index, attempt=attempt):
            result = worker_fn(task)
    return _SpanEnvelope(result, recorder)


def default_task_timeout() -> float | None:
    """Per-task watchdog budget from ``$REPRO_POOL_TIMEOUT``.

    Unset, unparsable, or non-positive values disable the watchdog
    (fail open: a bad env var must not change results, only patience).
    """
    raw = os.environ.get(POOL_TIMEOUT_ENV)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _stop_executor(executor, kill: bool) -> None:
    """Shut an executor down, killing workers first when asked.

    ``kill=True`` is the hung-worker watchdog path: a worker stuck in a
    task would block a graceful shutdown forever, so workers are killed
    outright and the shutdown must not wait on them.
    """
    if kill:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
    try:
        executor.shutdown(wait=not kill, cancel_futures=True)
    except Exception:
        pass


def map_tasks(
    tasks: Sequence,
    workers: int,
    serial_fn: Callable,
    worker_fn: Callable,
    initializer: Callable | None = None,
    initargs: Iterable = (),
    task_timeout: float | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    health: PoolHealth | None = None,
) -> list:
    """Apply a function to every task, preserving task order.

    ``workers <= 1`` (or a single task) calls ``serial_fn`` in-process;
    otherwise a pool of ``min(workers, len(tasks))`` processes is built
    with ``initializer(*initargs)`` and each task is handed to the
    module-level (picklable) ``worker_fn``.  The two functions must
    compute the same pure result for a task; parallel runs are then
    bit-identical to serial ones.

    Failure semantics (all recorded in ``health``):

    * A worker death (``BrokenProcessPool``: OOM kill, segfault,
      ``os._exit``) loses the in-flight tasks; finished results are
      harvested, the pool is rebuilt after an exponential backoff, and
      the lost tasks are retried up to ``max_retries`` times each before
      degrading to ``serial_fn``.
    * ``task_timeout`` (seconds per task; default from
      ``$REPRO_POOL_TIMEOUT``, ``None`` disables) is the hung-worker
      watchdog: on expiry the pool is killed, the offending task is
      re-executed through ``serial_fn``, and the survivors continue
      through a fresh pool.  The budget is the time spent *waiting* on
      one task's result, which overlaps other tasks' execution -- size
      it generously.
    * A task that raises an ordinary exception in a worker is re-run
      through ``serial_fn``: either the failure was environmental
      (e.g. a shared-memory attach failure) and the serial reference
      recovers it bit-identically, or it is genuine and ``serial_fn``
      raises the true error to the caller.
    * ``KeyboardInterrupt`` kills the pool and unlinks every tracked
      shared-memory segment (:func:`track_segment`) before re-raising.

    Because every degraded path re-executes through ``serial_fn``, the
    returned list is exactly the healthy result regardless of faults.
    """
    tasks = list(tasks)
    if health is None:
        health = PoolHealth()
    health.tasks += len(tasks)
    if not tasks:
        return []
    from repro import obs

    recorder = obs.current()
    if recorder is not None:
        recorder.inc("pool.tasks", len(tasks))
    if workers <= 1 or len(tasks) == 1:
        with obs.span(
            "pool.map_tasks", tasks=len(tasks), workers=workers,
            mode="serial",
        ):
            return [serial_fn(task) for task in tasks]
    if task_timeout is None:
        task_timeout = default_task_timeout()

    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    from repro import faults

    plan = faults.active_plan()
    context = multiprocessing.get_context(start_method())
    processes = min(workers, len(tasks))
    results: dict[int, object] = {}
    attempts = [0] * len(tasks)
    pending = list(range(len(tasks)))
    executor = None

    # Worker-side span capture: one deterministic lane per pool call
    # (``pool<n>.t<index>``), shipped only when the parent records.
    # Counter deltas against ``health`` are folded into the metric
    # registry at the end, so shared PoolHealth objects (the engine
    # accumulates one across _simulate calls) are not double-counted.
    lane_prefix = (
        recorder.next_pool_lane() if recorder is not None else None
    )
    health_before = (
        {f.name: getattr(health, f.name) for f in fields(health)}
        if recorder is not None
        else None
    )
    pool_span = obs.span(
        "pool.map_tasks",
        tasks=len(tasks),
        workers=processes,
        mode="pool",
        lane=lane_prefix,
    )
    pool_span.__enter__()

    def harvest(value):
        """Strip a worker envelope, adopting its capture exactly once.

        Every path that stores a pooled future's result goes through
        here; lost attempts never produce an envelope and serial
        re-runs record straight into the parent recorder, so no span
        can land twice.
        """
        if isinstance(value, _SpanEnvelope):
            if recorder is not None:
                recorder.adopt(
                    value.events,
                    value.counters,
                    value.gauges,
                    value.histograms,
                )
            return value.result
        return value

    def run_serial(index: int) -> None:
        results[index] = serial_fn(tasks[index])
        health.serial_fallbacks += 1

    try:
        while pending:
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=min(processes, len(pending)),
                    mp_context=context,
                    initializer=initializer,
                    initargs=tuple(initargs),
                )
            futures = {
                i: executor.submit(
                    _call_task,
                    worker_fn,
                    i,
                    tasks[i],
                    attempts[i],
                    plan,
                    f"{lane_prefix}.t{i}" if lane_prefix else None,
                )
                for i in pending
            }
            completed: set[int] = set()
            timed_out: int | None = None
            crashed = False
            for i in pending:
                try:
                    results[i] = harvest(
                        futures[i].result(timeout=task_timeout)
                    )
                    completed.add(i)
                except FutureTimeout:
                    timed_out = i
                    break
                except BrokenProcessPool:
                    crashed = True
                    break
                except Exception:
                    # Genuine task error: let the bit-identity reference
                    # decide -- it either recovers the result or raises
                    # the true error in the caller's process.
                    health.task_errors += 1
                    run_serial(i)
                    completed.add(i)

            if timed_out is None and not crashed:
                pending = []
                break

            # The pool is compromised: stop it (killing workers when a
            # hang is suspected), harvest finished siblings, and decide
            # each survivor's fate.
            _stop_executor(executor, kill=timed_out is not None)
            executor = None
            health.pool_rebuilds += 1
            for i in pending:
                if i in completed or i == timed_out:
                    continue
                future = futures[i]
                if future.done() and not future.cancelled():
                    try:
                        results[i] = harvest(future.result(timeout=0))
                        completed.add(i)
                    except Exception:
                        pass  # lost with the pool; handled below

            if timed_out is not None:
                health.timeouts += 1
                health.wall_seconds_lost += task_timeout or 0.0
                # The hung task gets no second chance to hang: straight
                # to the serial reference.
                run_serial(timed_out)
                completed.add(timed_out)
                survivors = [i for i in pending if i not in completed]
            else:
                health.worker_crashes += 1
                # Any in-flight task may have killed the worker; all
                # lost tasks consume one retry.
                survivors = []
                for i in pending:
                    if i in completed:
                        continue
                    attempts[i] += 1
                    if attempts[i] > max_retries:
                        run_serial(i)
                    else:
                        survivors.append(i)
                health.retried += len(survivors)

            pending = survivors
            if pending:
                delay = min(
                    retry_backoff * (2 ** max(health.pool_rebuilds - 1, 0)),
                    1.0,
                )
                if delay > 0:
                    time.sleep(delay)
                    health.wall_seconds_lost += delay
    except KeyboardInterrupt:
        health.interrupts += 1
        if executor is not None:
            _stop_executor(executor, kill=True)
            executor = None
        cleanup_segments()
        raise
    finally:
        if executor is not None:
            _stop_executor(executor, kill=False)
        pool_span.__exit__(None, None, None)

    if recorder is not None and health_before is not None:
        for name, previous in health_before.items():
            delta = getattr(health, name) - previous
            if delta and name != "tasks":
                recorder.inc(f"pool.{name}", delta)
    return [results[i] for i in range(len(tasks))]
