"""Shared process-pool plumbing for the simulation layers.

Both the functional-simulation engine (:mod:`repro.sim.engine`) and the
hardware timing layer (:mod:`repro.hw.engine`) fan independent tasks
across a ``multiprocessing`` pool.  This module owns the one pool policy
they share, so worker-count semantics and start-method quirks cannot
drift apart:

* **fork on Linux only.**  macOS still offers fork, but forking after
  numpy/Accelerate initialisation can deadlock children; everywhere but
  Linux the safer (slower) spawn method is used.
* **serial fallback.**  ``workers <= 1`` or a single task runs in the
  caller's process through ``serial_fn`` -- the only mode whose side
  effects (e.g. global-memory writes) are observable to the caller, and
  the mode every parallel run must be bit-identical to.
* **deterministic aggregation.**  Results come back in task order
  (``pool.map``), so callers reduce them exactly as a serial loop would.
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterable, Sequence


def start_method() -> str:
    """The multiprocessing start method both simulation layers use."""
    import multiprocessing

    if (
        sys.platform == "linux"
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return "spawn"


def map_tasks(
    tasks: Sequence,
    workers: int,
    serial_fn: Callable,
    worker_fn: Callable,
    initializer: Callable | None = None,
    initargs: Iterable = (),
) -> list:
    """Apply a function to every task, preserving task order.

    ``workers <= 1`` (or a single task) calls ``serial_fn`` in-process;
    otherwise a pool of ``min(workers, len(tasks))`` processes is built
    with ``initializer(*initargs)`` and each task is handed to the
    module-level (picklable) ``worker_fn``.  The two functions must
    compute the same pure result for a task; parallel runs are then
    bit-identical to serial ones.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers <= 1 or len(tasks) == 1:
        return [serial_fn(task) for task in tasks]
    import multiprocessing

    context = multiprocessing.get_context(start_method())
    processes = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (processes * 4))
    with context.Pool(
        processes=processes, initializer=initializer, initargs=tuple(initargs)
    ) as pool:
        return pool.map(worker_fn, tasks, chunksize=chunksize)
