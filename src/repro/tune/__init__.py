"""Measured-cost auto-tuning: profiles, tuners, and the trend reporter.

The package replaces the engine's fixed heuristics with measured,
persisted per-machine tuning profiles (see :mod:`repro.tune.profile`
for the precedence rules).  Import surface:

* :func:`resolve` / :func:`resolve_with_source` -- the one resolution
  helper every consumption site (``HardwareGpu``,
  ``FunctionalSimulator``, ``SimulationEngine``) goes through;
* :class:`TuningProfile`, :func:`load_profile`, :func:`save_profile`,
  :func:`default_tune_dir` -- the persisted profile store;
* :func:`autotune` -- run both tuners and build a fresh profile
  (imports the measurement modules lazily; they pull in the simulator
  stack, which this package root must not do because the simulators
  import :mod:`repro.tune` themselves).

The tuners live in :mod:`repro.tune.events` (serial/pool crossover) and
:mod:`repro.tune.slab` (grid-batch slab width); the perf-trajectory
reporter in :mod:`repro.tune.trend`.
"""

from __future__ import annotations

from repro.tune.profile import (
    BUILTIN_DEFAULTS,
    ENV_OVERRIDES,
    PARAM_FLOORS,
    TUNE_DIR_ENV,
    TUNE_PROFILE_VERSION,
    TuneProfileCache,
    TuningProfile,
    default_tune_dir,
    load_profile,
    machine_fingerprint,
    new_profile,
    profile_key,
    resolve,
    resolve_with_source,
    save_profile,
)

__all__ = [
    "BUILTIN_DEFAULTS",
    "ENV_OVERRIDES",
    "PARAM_FLOORS",
    "TUNE_DIR_ENV",
    "TUNE_PROFILE_VERSION",
    "TuneProfileCache",
    "TuningProfile",
    "autotune",
    "default_tune_dir",
    "load_profile",
    "machine_fingerprint",
    "new_profile",
    "profile_key",
    "resolve",
    "resolve_with_source",
    "save_profile",
]


def autotune(
    spec=None,
    workers_counts: tuple[int, ...] = (2, 4, 8),
    slab_candidates: tuple[int, ...] | None = None,
    slab_repeats: int = 2,
    events_repeats: int = 3,
    save: bool = True,
    directory=None,
) -> TuningProfile:
    """Measure both tuners and build (optionally persist) a profile.

    The heavyweight imports happen here, not at package import time,
    because ``sim``/``hw`` import :mod:`repro.tune` for :func:`resolve`.
    """
    from repro.arch.specs import GTX285
    from repro.tune.events import tune_min_parallel_events
    from repro.tune.slab import DEFAULT_CANDIDATES, tune_grid_batch_blocks
    from repro.util import spec_fingerprint

    spec = GTX285 if spec is None else spec
    cost, crossovers = tune_min_parallel_events(
        spec, workers_counts=workers_counts, repeats=events_repeats
    )
    slab = tune_grid_batch_blocks(
        candidates=(
            DEFAULT_CANDIDATES if slab_candidates is None else slab_candidates
        ),
        repeats=slab_repeats,
        spec=spec,
    )
    profile = new_profile(
        spec_fp=spec_fingerprint(spec),
        min_parallel_events=crossovers,
        grid_batch_blocks=slab.by_warps,
        default_grid_batch_blocks=slab.default,
        # The narrowest measured pool has the largest crossover; using
        # it as the width-agnostic default keeps unknown widths from
        # paying pool startup they cannot amortize.
        default_min_parallel_events=(
            max(crossovers.values()) if crossovers else None
        ),
        meta={
            "seconds_per_event": cost.seconds_per_event,
            "pool_startup_seconds": cost.pool_startup_seconds,
            "probe_events": cost.probe_events,
            "probe_seconds": cost.probe_seconds,
            "slab_timings": slab.timings,
        },
    )
    if save:
        save_profile(profile, directory=directory)
    return profile
