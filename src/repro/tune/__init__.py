"""Measured-cost auto-tuning: profiles, tuners, and the trend reporter.

The package replaces the engine's fixed heuristics with measured,
persisted per-machine tuning profiles (see :mod:`repro.tune.profile`
for the precedence rules).  Import surface:

* :func:`resolve` / :func:`resolve_with_source` -- the one resolution
  helper every consumption site (``HardwareGpu``,
  ``FunctionalSimulator``, ``SimulationEngine``) goes through;
* :class:`TuningProfile`, :func:`load_profile`, :func:`save_profile`,
  :func:`default_tune_dir` -- the persisted profile store;
* :func:`autotune` -- run both tuners and build a fresh profile
  (imports the measurement modules lazily; they pull in the simulator
  stack, which this package root must not do because the simulators
  import :mod:`repro.tune` themselves);
* :func:`ensure_profile` -- load the machine's profile, auto-running
  :func:`autotune` on first use the way calibration self-populates
  (``$REPRO_TUNE_AUTO=0`` or ``dry_run=True`` opts out).

The tuners live in :mod:`repro.tune.events` (serial/pool crossover) and
:mod:`repro.tune.slab` (grid-batch slab width); the perf-trajectory
reporter in :mod:`repro.tune.trend`.
"""

from __future__ import annotations

from repro.tune.profile import (
    BUILTIN_DEFAULTS,
    ENV_OVERRIDES,
    PARAM_FLOORS,
    TUNE_DIR_ENV,
    TUNE_PROFILE_VERSION,
    TuneProfileCache,
    TuningProfile,
    default_tune_dir,
    load_profile,
    machine_fingerprint,
    new_profile,
    profile_key,
    resolve,
    resolve_with_source,
    save_profile,
)

#: Set to ``0``/``no``/``false``/``off`` to stop :func:`ensure_profile`
#: from measuring on machines where an automatic tuning run is
#: unwelcome (CI, tests, shared boxes); resolution then falls through
#: to the built-in defaults as before.
TUNE_AUTO_ENV = "REPRO_TUNE_AUTO"

__all__ = [
    "BUILTIN_DEFAULTS",
    "ENV_OVERRIDES",
    "PARAM_FLOORS",
    "TUNE_AUTO_ENV",
    "TUNE_DIR_ENV",
    "TUNE_PROFILE_VERSION",
    "TuneProfileCache",
    "TuningProfile",
    "autotune",
    "ensure_profile",
    "default_tune_dir",
    "load_profile",
    "machine_fingerprint",
    "new_profile",
    "profile_key",
    "resolve",
    "resolve_with_source",
    "save_profile",
]


def autotune(
    spec=None,
    workers_counts: tuple[int, ...] = (2, 4, 8),
    slab_candidates: tuple[int, ...] | None = None,
    slab_repeats: int = 2,
    events_repeats: int = 3,
    save: bool = True,
    directory=None,
) -> TuningProfile:
    """Measure both tuners and build (optionally persist) a profile.

    The heavyweight imports happen here, not at package import time,
    because ``sim``/``hw`` import :mod:`repro.tune` for :func:`resolve`.
    """
    from repro.arch.specs import GTX285
    from repro.tune.events import tune_min_parallel_events
    from repro.tune.slab import DEFAULT_CANDIDATES, tune_grid_batch_blocks
    from repro.util import spec_fingerprint

    spec = GTX285 if spec is None else spec
    cost, crossovers = tune_min_parallel_events(
        spec, workers_counts=workers_counts, repeats=events_repeats
    )
    slab = tune_grid_batch_blocks(
        candidates=(
            DEFAULT_CANDIDATES if slab_candidates is None else slab_candidates
        ),
        repeats=slab_repeats,
        spec=spec,
    )
    profile = new_profile(
        spec_fp=spec_fingerprint(spec),
        min_parallel_events=crossovers,
        grid_batch_blocks=slab.by_warps,
        default_grid_batch_blocks=slab.default,
        # The narrowest measured pool has the largest crossover; using
        # it as the width-agnostic default keeps unknown widths from
        # paying pool startup they cannot amortize.
        default_min_parallel_events=(
            max(crossovers.values()) if crossovers else None
        ),
        meta={
            "seconds_per_event": cost.seconds_per_event,
            "pool_startup_seconds": cost.pool_startup_seconds,
            "probe_events": cost.probe_events,
            "probe_seconds": cost.probe_seconds,
            "slab_timings": slab.timings,
        },
    )
    if save:
        save_profile(profile, directory=directory)
    return profile


def ensure_profile(
    spec=None,
    directory=None,
    dry_run: bool = False,
    on_tune=None,
    **autotune_kwargs,
) -> TuningProfile | None:
    """This machine's profile, auto-tuning on first use.

    The tuning analogue of calibration's ``load_or_calibrate``: when no
    profile exists for the (machine, spec) fingerprint, measure one and
    persist it so every later construction resolves against it.  Opt
    out with ``dry_run=True`` or ``$REPRO_TUNE_AUTO=0`` -- both return
    whatever is already on disk (possibly ``None``) without measuring.
    ``on_tune`` is called right before a measurement actually starts,
    for progress messages.
    """
    import os

    from repro.arch.specs import GTX285
    from repro.util import spec_fingerprint

    spec = GTX285 if spec is None else spec
    profile = load_profile(spec_fingerprint(spec), directory=directory)
    if profile is not None:
        return profile
    opted_out = os.environ.get(TUNE_AUTO_ENV, "").strip().lower() in (
        "0",
        "no",
        "false",
        "off",
    )
    if dry_run or opted_out:
        return None
    if on_tune is not None:
        on_tune()
    return autotune(
        spec=spec, save=True, directory=directory, **autotune_kwargs
    )
