"""Perf-trajectory trend reporter over ``BENCH_engine_smoke.json`` files.

CI has recorded a machine-readable measurement of every engine gate per
commit (``benchmarks/engine_smoke.py --check`` writes the
``engine-smoke-perf`` artifact) since PR 4, but nothing *compared*
trajectories across commits.  This module closes that loop: it ingests
any number of per-commit JSON artifacts, orders them deterministically
(recorded timestamp, then label), extracts one value per gate metric,
and emits a JSON report plus a markdown table flagging per-gate
regressions beyond a threshold (default 20 %).

The reporter is a pure function of its input files -- no clocks, no
environment -- so a unit test over fixture JSONs pins the exact report
(the acceptance criterion) and CI reruns are reproducible.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

#: Accepted payload schema prefix (see engine_smoke.write_perf_json).
SCHEMA_PREFIX = "engine_smoke/"

#: Crossval artifacts (``repro specs crossval --json``) are ingested
#: into the same report, so one trajectory covers engine-smoke gates
#: AND cross-GPU prediction accuracy.
CROSSVAL_SCHEMA_PREFIX = "crossval/"

#: Report schema stamp.
REPORT_SCHEMA = "tune_trend/1"

#: Default regression threshold: warn on >20 % direction-adjusted drops.
DEFAULT_THRESHOLD = 0.20

#: Gate metrics: (dotted path into the payload, higher_is_better).
GATE_METRICS: tuple[tuple[str, bool], ...] = (
    ("engine.speedup", True),
    ("engine.engine_seconds", False),
    ("timing.speedup", True),
    ("functional.speedup", True),
    ("functional.batched_ips", True),
    ("barrier.matmul.speedup", True),
    ("barrier.matmul.batched_ips", True),
    ("barrier.cyclic_reduction.speedup", True),
    ("barrier.cyclic_reduction.batched_ips", True),
)

#: Dotted paths of the bit-identity flags each payload carries.
IDENTITY_FLAGS: tuple[str, ...] = (
    "engine.identical",
    "timing.identical",
    "functional.identical",
    "barrier.matmul.identical",
    "barrier.cyclic_reduction.identical",
)

#: Crossval gate metrics: (report gate name, payload path under
#: ``summary.overall``, higher_is_better).  Gate names carry a
#: ``crossval.`` prefix so the two artifact families never collide.
CROSSVAL_METRICS: tuple[tuple[str, str, bool], ...] = (
    (
        "crossval.analytical_mean_abs_rel_error",
        "summary.overall.analytical_mean_abs_rel_error",
        False,
    ),
    (
        "crossval.scaling_mean_abs_rel_error",
        "summary.overall.scaling_mean_abs_rel_error",
        False,
    ),
    ("crossval.analytical_wins", "summary.overall.analytical_wins", True),
    ("crossval.predictions", "summary.overall.predictions", True),
)


@dataclass(frozen=True)
class TrendEntry:
    """One ingested per-commit measurement."""

    label: str  # file basename (CI names these per commit)
    timestamp: str
    values: dict  # metric path -> float
    identical: bool  # every gate's bit-identity flag held
    kind: str = "engine_smoke"  # artifact family: engine_smoke|crossval


def _dig(payload: dict, path: str):
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def collect_files(inputs: list) -> list[str]:
    """Expand files/directories into a sorted list of JSON paths.

    Directories contribute their (non-recursive) ``*.json`` members in
    name order; explicit files pass through.  Duplicates collapse.
    """
    paths: list[str] = []
    for item in inputs:
        item = os.fspath(item)
        if os.path.isdir(item):
            paths.extend(
                os.path.join(item, name)
                for name in sorted(os.listdir(item))
                if name.endswith(".json")
            )
        else:
            paths.append(item)
    seen: set[str] = set()
    unique = []
    for path in paths:
        key = os.path.abspath(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def load_entry(path: str) -> TrendEntry | None:
    """Parse one artifact; ``None`` for unreadable/foreign files."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    schema = payload.get("schema", "")
    if not isinstance(schema, str):
        return None
    if schema.startswith(CROSSVAL_SCHEMA_PREFIX):
        return _load_crossval_entry(path, payload)
    if not schema.startswith(SCHEMA_PREFIX):
        return None
    values: dict = {}
    for metric, _ in GATE_METRICS:
        value = _dig(payload, metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values[metric] = float(value)
    identical = all(_dig(payload, flag) is True for flag in IDENTITY_FLAGS)
    return TrendEntry(
        label=os.path.basename(path),
        timestamp=str(payload.get("timestamp", "")),
        values=values,
        identical=identical,
    )


def _load_crossval_entry(path: str, payload: dict) -> TrendEntry:
    """A ``BENCH_crossval.json`` artifact as a trend entry.

    Crossval payloads carry no bit-identity flags, so ``identical``
    holds vacuously (the pseudo-gate is driven by engine_smoke runs
    only -- see :func:`build_report`).
    """
    values: dict = {}
    for metric, source_path, _ in CROSSVAL_METRICS:
        value = _dig(payload, source_path)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values[metric] = float(value)
    return TrendEntry(
        label=os.path.basename(path),
        timestamp=str(payload.get("timestamp", "")),
        values=values,
        identical=True,
        kind="crossval",
    )


def load_entries(inputs: list) -> list[TrendEntry]:
    """Ingest and deterministically order all artifacts."""
    entries = [load_entry(path) for path in collect_files(inputs)]
    return sorted(
        (e for e in entries if e is not None),
        key=lambda e: (e.timestamp, e.label),
    )


def build_report(
    entries: list[TrendEntry], threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """The full trajectory report as a JSON-serializable dict.

    Per gate: the ordered series, first/previous/latest values, the
    direction-adjusted relative change of latest vs previous, and a
    regression flag when that change exceeds ``threshold`` in the bad
    direction.  A latest run with any failed bit-identity flag is
    reported as the pseudo-gate ``bit_identity``.

    Mixed inputs keep their families apart: each gate's series spans
    only the entries of its own artifact kind (an engine_smoke run
    never reads as a missing crossval measurement and vice versa), and
    the ``crossval.*`` gates appear only when at least one crossval
    artifact was ingested -- engine-only reports are unchanged.
    """
    engine_entries = [e for e in entries if e.kind == "engine_smoke"]
    crossval_entries = [e for e in entries if e.kind == "crossval"]
    metrics: list[tuple[str, bool, list[TrendEntry]]] = [
        (metric, better, engine_entries)
        for metric, better in GATE_METRICS
    ]
    if crossval_entries:
        metrics.extend(
            (metric, better, crossval_entries)
            for metric, _, better in CROSSVAL_METRICS
        )
    gates: dict = {}
    regressions: list[str] = []
    for metric, higher_is_better, kind_entries in metrics:
        series = [entry.values.get(metric) for entry in kind_entries]
        present = [v for v in series if v is not None]
        first = present[0] if present else None
        # "latest" is strictly the NEWEST run's value: a gate that
        # vanished from the newest artifact must read as missing, not
        # silently inherit an older run's number.
        latest = series[-1] if series else None
        earlier = [v for v in series[:-1] if v is not None]
        previous = earlier[-1] if earlier else None
        delta = None
        regressed = False
        if latest is not None and previous not in (None, 0):
            delta = (latest - previous) / abs(previous)
            change = delta if higher_is_better else -delta
            regressed = change < -threshold
        if regressed:
            regressions.append(metric)
        gates[metric] = {
            "series": series,
            "first": first,
            "previous": previous,
            "latest": latest,
            "delta_vs_previous": delta,
            "higher_is_better": higher_is_better,
            "regressed": regressed,
        }
    identity_ok = (
        engine_entries[-1].identical if engine_entries else True
    )
    if not identity_ok:
        regressions.append("bit_identity")
    return {
        "schema": REPORT_SCHEMA,
        "threshold": threshold,
        "runs": [
            {"label": e.label, "timestamp": e.timestamp, "kind": e.kind}
            for e in entries
        ],
        "gates": gates,
        "latest_bit_identity_ok": identity_ok,
        "regressions": regressions,
    }


def _fmt(value) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def _fmt_delta(delta) -> str:
    return "-" if delta is None else f"{delta * 100:+.1f}%"


def render_markdown(report: dict) -> str:
    """The report as a markdown document (the CI artifact)."""
    runs = report["runs"]
    lines = ["# engine_smoke perf trajectory", ""]
    if not runs:
        lines.append("No engine_smoke measurements found.")
        return "\n".join(lines) + "\n"
    span = f"`{runs[0]['label']}` ({runs[0]['timestamp']})"
    if len(runs) > 1:
        span += f" -> `{runs[-1]['label']}` ({runs[-1]['timestamp']})"
    lines.append(f"{len(runs)} run(s): {span}")
    lines.append("")
    lines.append("| gate | first | previous | latest | delta vs prev | status |")
    lines.append("|---|---:|---:|---:|---:|---|")
    for metric, gate in report["gates"].items():
        status = "**REGRESSION**" if gate["regressed"] else "ok"
        if gate["latest"] is None:
            status = "missing"
        lines.append(
            f"| {metric} | {_fmt(gate['first'])} | "
            f"{_fmt(gate['previous'])} | {_fmt(gate['latest'])} | "
            f"{_fmt_delta(gate['delta_vs_previous'])} | {status} |"
        )
    lines.append("")
    if not report["latest_bit_identity_ok"]:
        lines.append(
            "**Bit-identity FAILED in the latest run** -- at least one "
            "gate's `identical` flag is false."
        )
        lines.append("")
    flagged = [r for r in report["regressions"] if r != "bit_identity"]
    if flagged:
        lines.append(
            f"WARNING: {len(flagged)} gate(s) regressed more than "
            f"{report['threshold'] * 100:.0f}%: {', '.join(flagged)}"
        )
    else:
        lines.append(
            "No gate regressed more than "
            f"{report['threshold'] * 100:.0f}% vs the previous run."
        )
    return "\n".join(lines) + "\n"


def trend_report(
    inputs: list, threshold: float = DEFAULT_THRESHOLD
) -> tuple[dict, str]:
    """One-call entry point: ``(report dict, markdown text)``."""
    report = build_report(load_entries(inputs), threshold=threshold)
    return report, render_markdown(report)
