"""Persisted per-machine tuning profiles and the one resolution helper.

The execution engine used to run on two magic numbers --
``HardwareGpu.min_parallel_events`` (the serial/pool crossover of the
timing layer) and ``FunctionalSimulator.grid_batch_blocks`` (the
multi-block interpreter's slab width) -- fixed at 50 000 and 32 for
every machine, spec and kernel shape.  This module makes both *measured
and persisted* instead: the tuners (:mod:`repro.tune.events`,
:mod:`repro.tune.slab`) write a :class:`TuningProfile` keyed by
(machine fingerprint, spec fingerprint) under the shared cache root,
and every consumption site resolves its value through :func:`resolve`
with one documented precedence:

    explicit kwarg  >  environment override  >  tuning profile  >
    built-in default

Environment overrides are the ``$REPRO_TUNE_<PARAM>`` family (plus the
pre-existing ``$REPRO_GRID_BATCH_BLOCKS`` alias).  Every layer fails
open: an unparsable env value or a malformed profile entry emits a
``RuntimeWarning`` and falls through to the next source, and numeric
values are clamped to the parameter's floor -- a bad profile can cost
performance, never correctness (both knobs are pure schedule choices;
results are bit-identical at any setting).

Profiles ride the same :class:`repro.util.VersionedPickleCache`
protocol as the trace and measured-run caches: versioned payloads,
fail-open loads, atomic stores followed by ``$REPRO_CACHE_MAX_BYTES``
LRU eviction.  This module depends only on :mod:`repro.util` so the
simulators can import it without cycles.
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
import time
import warnings
from dataclasses import dataclass, field

from repro.util import VersionedPickleCache, default_cache_dir

#: Bump when the profile schema or the tuners' semantics change: stale
#: profiles must be ignored, never misread.
TUNE_PROFILE_VERSION = 1

#: Environment variable overriding the profile directory (tests, CI).
TUNE_DIR_ENV = "REPRO_TUNE_DIR"

#: The tunable parameters, their built-in defaults (the historical
#: constants) and floors.  These are the ONLY places the old magic
#: numbers live now; `hw.gpu` and `sim.functional` resolve through
#: :func:`resolve`.
BUILTIN_DEFAULTS = {
    "grid_batch_blocks": 32,
    "min_parallel_events": 50_000,
}

PARAM_FLOORS = {
    "grid_batch_blocks": 1,
    "min_parallel_events": 0,
}

#: Environment override names per parameter, checked in order.  The
#: bare ``REPRO_GRID_BATCH_BLOCKS`` spelling predates the subsystem and
#: is kept as an alias.
ENV_OVERRIDES = {
    "grid_batch_blocks": (
        "REPRO_TUNE_GRID_BATCH_BLOCKS",
        "REPRO_GRID_BATCH_BLOCKS",
    ),
    "min_parallel_events": ("REPRO_TUNE_MIN_PARALLEL_EVENTS",),
}

_UNSET = object()


def machine_fingerprint() -> str:
    """A stable identifier of the machine the tuners measured.

    Hostname, architecture, Python implementation/version and core
    count: the factors that move the measured costs.  Deliberately
    cheap and deterministic -- two runs on one box must agree.
    """
    return "|".join(
        (
            platform.node() or "unknown-host",
            platform.machine() or "unknown-arch",
            platform.python_implementation(),
            f"{sys.version_info[0]}.{sys.version_info[1]}",
            f"cpus={os.cpu_count() or 1}",
        )
    )


def default_tune_dir() -> str:
    """Profile directory: ``$REPRO_TUNE_DIR`` or ``<cache root>/tune``."""
    override = os.environ.get(TUNE_DIR_ENV)
    if override:
        return override
    return os.path.join(default_cache_dir(), "tune")


def profile_key(machine: str, spec_fp: str) -> str:
    """On-disk key of one (machine, spec) profile."""
    h = hashlib.sha256()
    h.update(machine.encode())
    h.update(b"|")
    h.update(spec_fp.encode())
    return h.hexdigest()[:32]


@dataclass(frozen=True)
class TuningProfile:
    """Measured engine-tuning values for one (machine, spec) pair.

    ``min_parallel_events`` maps a measured pool width to the event
    count where pooled cluster simulation starts beating serial replay;
    ``grid_batch_blocks`` maps warps-per-block to the measured slab
    sweet spot, with ``default_grid_batch_blocks`` covering shapes the
    tuner did not measure.  ``meta`` carries the raw measurements
    (per-event cost, pool startup, per-candidate timings) for
    ``repro tune show``.
    """

    machine: str
    spec: str  # spec fingerprint (repro.util.spec_fingerprint)
    created: str  # ISO timestamp, informational only
    min_parallel_events: dict = field(default_factory=dict)
    grid_batch_blocks: dict = field(default_factory=dict)
    default_grid_batch_blocks: int | None = None
    default_min_parallel_events: int | None = None
    meta: dict = field(default_factory=dict)

    def lookup(
        self,
        param: str,
        workers: int | None = None,
        warps_per_block: int | None = None,
    ):
        """The profile's raw value for one parameter, or ``None``.

        ``grid_batch_blocks``: the entry for ``warps_per_block`` when
        measured, else the profile-wide default.
        ``min_parallel_events``: the entry for the widest measured pool
        not wider than ``workers`` (the crossover shrinks as width
        grows, so the nearest-below entry is the conservative pick);
        with no such entry, the narrowest measured one; with no
        ``workers`` context, the profile-wide default.
        """
        if param == "grid_batch_blocks":
            table = self.grid_batch_blocks or {}
            if warps_per_block is not None and warps_per_block in table:
                return table[warps_per_block]
            return self.default_grid_batch_blocks
        if param == "min_parallel_events":
            table = self.min_parallel_events or {}
            if workers is not None and workers > 1 and table:
                try:
                    measured = sorted(int(k) for k in table)
                except (TypeError, ValueError):
                    return None  # malformed keys: fail open
                below = [k for k in measured if k <= workers]
                pick = below[-1] if below else measured[0]
                return table.get(pick, table.get(str(pick)))
            return self.default_min_parallel_events
        raise KeyError(f"unknown tuning parameter {param!r}")


class TuneProfileCache(VersionedPickleCache):
    """Pickled :class:`TuningProfile` store (one file per machine+spec).

    Shared mechanics -- versioned payloads so stale-schema profiles are
    ignored, fail-open loads, atomic stores under the
    ``$REPRO_CACHE_MAX_BYTES`` LRU budget -- come from
    :class:`repro.util.VersionedPickleCache`.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        super().__init__(directory, TUNE_PROFILE_VERSION, ".tune.pkl")

    def load(self, key: str) -> TuningProfile | None:
        profile = self.load_payload(key)
        return profile if isinstance(profile, TuningProfile) else None

    def store(self, key: str, profile: TuningProfile) -> None:
        self.store_payload(key, profile)


#: Per-process memo of profile loads, keyed by (directory, machine,
#: spec fingerprint) and validated against the file's mtime on every
#: lookup -- constructions are frequent (calibration builds thousands
#: of simulators), so resolve() must cost a stat, not an unpickle.
_PROFILE_MEMO: dict = {}


def load_profile(
    spec_fp: str,
    directory: str | os.PathLike | None = None,
    machine: str | None = None,
) -> TuningProfile | None:
    """The persisted profile for this machine and spec, or ``None``.

    Memoized per process: repeat lookups cost one ``os.stat`` unless
    the file changed (a ``save_profile`` here or in another process
    bumps the mtime, invalidating the memo entry).
    """
    directory = default_tune_dir() if directory is None else os.fspath(directory)
    machine = machine_fingerprint() if machine is None else machine
    cache = TuneProfileCache(directory)
    key = profile_key(machine, spec_fp)
    path = cache._path(key)
    try:
        stamp = os.stat(path).st_mtime_ns
    except OSError:
        stamp = None
    memo_key = (os.path.abspath(directory), machine, spec_fp)
    memo = _PROFILE_MEMO.get(memo_key)
    if memo is not None and memo[0] == stamp:
        return memo[1]
    profile = cache.load(key) if stamp is not None else None
    try:
        # Re-stat: the fail-open load refreshes the file's mtime (LRU
        # recency), so the memo must stamp the post-load state.
        stamp = os.stat(path).st_mtime_ns
    except OSError:
        stamp = None
    _PROFILE_MEMO[memo_key] = (stamp, profile)
    return profile


def save_profile(
    profile: TuningProfile,
    directory: str | os.PathLike | None = None,
) -> str:
    """Persist a profile (atomic, fail-open); returns its target path."""
    directory = default_tune_dir() if directory is None else os.fspath(directory)
    cache = TuneProfileCache(directory)
    key = profile_key(profile.machine, profile.spec)
    cache.store(key, profile)
    # Drop the stale memo entry now rather than trusting mtime
    # granularity to catch a same-tick overwrite.
    _PROFILE_MEMO.pop(
        (os.path.abspath(directory), profile.machine, profile.spec), None
    )
    return cache._path(key)


def new_profile(
    spec_fp: str,
    min_parallel_events: dict,
    grid_batch_blocks: dict,
    default_grid_batch_blocks: int | None = None,
    default_min_parallel_events: int | None = None,
    meta: dict | None = None,
) -> TuningProfile:
    """A profile stamped with this machine's fingerprint and the time."""
    return TuningProfile(
        machine=machine_fingerprint(),
        spec=spec_fp,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        min_parallel_events=dict(min_parallel_events),
        grid_batch_blocks=dict(grid_batch_blocks),
        default_grid_batch_blocks=default_grid_batch_blocks,
        default_min_parallel_events=default_min_parallel_events,
        meta=dict(meta or {}),
    )


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def _coerce(param: str, value, source: str) -> int | None:
    """Validate one candidate value; clamp to floor, warn on garbage."""
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        warnings.warn(
            f"ignoring {source} value {value!r} for tuning parameter "
            f"{param!r} (not an integer); falling through",
            RuntimeWarning,
            stacklevel=4,
        )
        return None
    return max(PARAM_FLOORS[param], coerced)


def resolve_with_source(
    param: str,
    kwarg=None,
    spec=None,
    workers: int | None = None,
    warps_per_block: int | None = None,
    profile=_UNSET,
    directory: str | os.PathLike | None = None,
) -> tuple[int, str]:
    """Resolve one tuning parameter plus where its value came from.

    Precedence: explicit ``kwarg`` > environment override > persisted
    profile > built-in default.  ``spec`` (a ``GpuSpec`` or an already
    computed fingerprint string) keys the profile lookup; without one,
    the profile layer is skipped.  ``profile`` short-circuits the disk
    read: pass a :class:`TuningProfile` to resolve against it, or
    ``None`` to disable the profile layer outright.
    """
    if param not in BUILTIN_DEFAULTS:
        raise KeyError(f"unknown tuning parameter {param!r}")
    if kwarg is not None:
        value = _coerce(param, kwarg, "kwarg")
        if value is not None:
            return value, "kwarg"
    for name in ENV_OVERRIDES[param]:
        raw = os.environ.get(name)
        if raw is None or raw == "":
            continue
        value = _coerce(param, raw, f"${name}")
        if value is not None:
            return value, f"env:{name}"
    if profile is _UNSET:
        profile = _load_for_spec(spec, directory)
    if profile is not None:
        try:
            raw = profile.lookup(
                param, workers=workers, warps_per_block=warps_per_block
            )
        except Exception:
            raw = None
            warnings.warn(
                f"malformed tuning profile entry for {param!r}; "
                "falling back to the built-in default",
                RuntimeWarning,
                stacklevel=3,
            )
        if raw is not None:
            value = _coerce(param, raw, "profile")
            if value is not None:
                return value, "profile"
    return BUILTIN_DEFAULTS[param], "default"


def resolve(
    param: str,
    kwarg=None,
    spec=None,
    workers: int | None = None,
    warps_per_block: int | None = None,
    profile=_UNSET,
    directory: str | os.PathLike | None = None,
) -> int:
    """:func:`resolve_with_source` without the provenance."""
    value, _ = resolve_with_source(
        param,
        kwarg=kwarg,
        spec=spec,
        workers=workers,
        warps_per_block=warps_per_block,
        profile=profile,
        directory=directory,
    )
    return value


#: Spec-fingerprint memo: specs are frozen dataclasses but carry dict
#: fields (unhashable), so key on id() while holding a strong reference
#: to pin the identity.  Bounded: the process only ever sees a handful
#: of distinct specs.
_SPEC_FP_MEMO: dict = {}


def _spec_fp(spec) -> str:
    memo = _SPEC_FP_MEMO.get(id(spec))
    if memo is not None and memo[0] is spec:
        return memo[1]
    from repro.util import spec_fingerprint

    fingerprint = spec_fingerprint(spec)
    if len(_SPEC_FP_MEMO) >= 64:
        _SPEC_FP_MEMO.clear()
    _SPEC_FP_MEMO[id(spec)] = (spec, fingerprint)
    return fingerprint


def _load_for_spec(spec, directory) -> TuningProfile | None:
    """Disk lookup for :func:`resolve`; any failure means no profile."""
    if spec is None:
        return None
    if isinstance(spec, str):
        spec_fp = spec
    else:
        try:
            spec_fp = _spec_fp(spec)
        except Exception:
            return None
    try:
        return load_profile(spec_fp, directory=directory)
    except Exception:
        return None
