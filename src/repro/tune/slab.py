"""Slab-width auto-tuner for the multi-block batched interpreter.

``FunctionalSimulator.grid_batch_blocks`` trades two costs: wide slabs
amortize per-instruction NumPy dispatch over more warp rows, narrow
slabs keep per-step Python accounting (PC grouping, barrier release,
per-block stat routing) small.  The sweet spot depends on the machine
(BLAS/NumPy build, cache sizes) and on the kernel shape -- chiefly
warps per block, which scales the rows a single block contributes.

The tuner times ``run_blocks`` over representative workloads of both
structural families the interpreter batches:

* a **barrier-free** tail-guarded streaming kernel (the dedup-resistant
  shape: every block must actually be simulated), and
* **barriered** kernels (tree reduction, Jacobi stencil) exercising
  per-block barrier release inside a slab;

for each candidate width, and records the per-machine best width as a
function of warps-per-block plus an overall default (geometric-mean
best across workloads).  Any width is bit-identical to any other --
slab width is a pure schedule choice -- so the tuner can only win or
lose wall-clock.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.arch.specs import GpuSpec, GTX285
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory

#: Candidate slab widths (the historical default, 32, sits mid-range).
DEFAULT_CANDIDATES = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class SlabWorkload:
    """One representative kernel the tuner times."""

    name: str
    kernel: object
    gmem: GlobalMemory
    launch: LaunchConfig
    warps_per_block: int
    barriered: bool


@dataclass(frozen=True)
class SlabTuning:
    """Outcome of one slab-width search.

    ``by_warps`` maps warps-per-block to its best measured width;
    ``default`` is the cross-workload compromise; ``timings`` keeps the
    raw ``{workload: {width: seconds}}`` grid for ``repro tune show``.
    """

    by_warps: dict
    default: int
    timings: dict


def _streaming_workload(
    num_blocks: int = 96, block_threads: int = 64, inner: int = 10
) -> SlabWorkload:
    """Tail-guarded streaming kernel: the barrier-free, dedup-resistant
    family (every block is simulated, as for data-dependent grids)."""
    n = num_blocks * block_threads - 17  # tail block partially active
    gmem = GlobalMemory()
    buf = gmem.alloc(n + block_threads, "buf")
    b = KernelBuilder("tune_stream", params=("buf", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        acc = b.reg()
        b.mov(acc, Imm(0.0))
        v = b.reg()
        with b.counted_loop(inner):
            b.ldg(v, addr)
            b.fmad(acc, v, v, acc)
        b.stg(addr, acc)
    b.exit()
    return SlabWorkload(
        name=f"stream_{block_threads // 32}w",
        kernel=b.build(),
        gmem=gmem,
        launch=LaunchConfig(
            grid=(num_blocks, 1),
            block_threads=block_threads,
            params={"buf": buf, "n": n},
        ),
        warps_per_block=block_threads // 32,
        barriered=False,
    )


def _reduction_workload(
    num_blocks: int = 96, block_threads: int = 128
) -> SlabWorkload:
    """Tree reduction: per-level barriers, shrinking active warps."""
    from repro.apps.reduction import build_reduction_kernel, prepare_problem

    problem = prepare_problem(
        block_threads=block_threads, num_blocks=num_blocks, seed=11
    )
    return SlabWorkload(
        name=f"reduce_{block_threads // 32}w",
        kernel=build_reduction_kernel(block_threads),
        gmem=problem.gmem,
        launch=problem.launch(),
        warps_per_block=block_threads // 32,
        barriered=True,
    )


def _stencil_workload(
    num_blocks: int = 96, block_threads: int = 64
) -> SlabWorkload:
    """Jacobi stencil: one barrier stage, halo shared traffic."""
    from repro.apps.stencil import build_stencil_kernel, prepare_problem

    problem = prepare_problem(
        n=num_blocks * block_threads, block_threads=block_threads, seed=11
    )
    return SlabWorkload(
        name=f"stencil_{block_threads // 32}w",
        kernel=build_stencil_kernel(block_threads),
        gmem=problem.gmem,
        launch=problem.launch(),
        warps_per_block=block_threads // 32,
        barriered=True,
    )


def default_workloads() -> list[SlabWorkload]:
    """The representative mix: barrier-free + barriered, 2 and 4 warps."""
    return [
        _streaming_workload(),
        _stencil_workload(),
        _reduction_workload(),
    ]


def measure_slab_timings(
    workloads: list[SlabWorkload] | None = None,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    repeats: int = 2,
    spec: GpuSpec = GTX285,
) -> tuple[dict, dict]:
    """Best-of-``repeats`` seconds per (workload, width).

    Returns ``(timings, warps_of)`` where ``timings`` is
    ``{workload_name: {width: seconds}}`` and ``warps_of`` maps each
    workload name to its warps-per-block.
    """
    workloads = default_workloads() if workloads is None else workloads
    repeats = max(1, int(repeats))
    widths = sorted({max(1, int(c)) for c in candidates})
    timings: dict = {}
    warps_of: dict = {}
    for workload in workloads:
        blocks = workload.launch.all_blocks()
        warps_of[workload.name] = workload.warps_per_block
        row: dict = {}
        for width in widths:
            simulator = FunctionalSimulator(
                workload.kernel,
                gmem=workload.gmem,
                spec=spec,
                grid_batch_blocks=width,
            )
            best = math.inf
            for _ in range(repeats):
                started = time.perf_counter()
                simulator.run_blocks(workload.launch, blocks)
                best = min(best, time.perf_counter() - started)
            row[width] = best
        timings[workload.name] = row
    return timings, warps_of


def pick_widths(timings: dict, warps_of: dict) -> tuple[dict, int]:
    """Deterministic selection from a measured timing grid.

    Per warps-per-block: the width minimizing the *sum* of that group's
    workload times (ties break toward the smaller width).  The overall
    default minimizes the geometric mean of per-workload slowdowns
    (each workload's time divided by its own best), so one fast
    workload cannot drown out a slow one.  Pure function: unit-testable
    without timing anything.
    """
    by_warps: dict = {}
    groups: dict = {}
    for name, row in timings.items():
        groups.setdefault(warps_of.get(name, 0), []).append(row)
    for warps, rows in groups.items():
        widths = sorted(set.intersection(*(set(r) for r in rows)))
        if not widths:
            continue
        total = {w: sum(r[w] for r in rows) for w in widths}
        by_warps[warps] = min((total[w], w) for w in widths)[1]

    rows = list(timings.values())
    widths = sorted(set.intersection(*(set(r) for r in rows))) if rows else []
    if not widths:
        from repro.tune.profile import BUILTIN_DEFAULTS

        return by_warps, BUILTIN_DEFAULTS["grid_batch_blocks"]
    floor = 1e-9  # clock-resolution floor: log() must never see zero
    slowdown = {
        w: math.fsum(
            math.log(
                max(r[w], floor) / max(min(r.values()), floor)
            )
            for r in rows
        )
        for w in widths
    }
    default = min(widths, key=lambda w: (slowdown[w], w))
    return by_warps, default


def tune_grid_batch_blocks(
    workloads: list[SlabWorkload] | None = None,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    repeats: int = 2,
    spec: GpuSpec = GTX285,
) -> SlabTuning:
    """Measure and select: the slab tuner's one-call entry point."""
    timings, warps_of = measure_slab_timings(
        workloads, candidates=candidates, repeats=repeats, spec=spec
    )
    by_warps, default = pick_widths(timings, warps_of)
    return SlabTuning(by_warps=by_warps, default=default, timings=timings)
