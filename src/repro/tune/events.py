"""Measured per-event cost model for the timing layer's pool crossover.

``HardwareGpu`` keeps a measurement serial when its queues replay fewer
events than ``min_parallel_events``: below that point, process-pool
startup costs more wall-clock than the parallel replay saves.  The
historical constant (50 000) encoded one machine's costs forever; this
module *measures* both sides on small probe workloads and computes the
crossover per pool width:

* ``seconds_per_event`` -- wall-clock per replayed event, timed by
  running a real :class:`~repro.hw.cluster.ClusterSimulator` over a
  probe block's event streams (the same code path
  ``HardwareGpu.measure`` fans out);
* ``pool_startup_seconds`` -- the fixed cost of spinning up the shared
  process pool (:func:`repro.pool.map_tasks`) for a trivial task set.

With ``w`` workers, pooling ``E`` events saves roughly
``seconds_per_event * E * (1 - 1/w)`` and costs
``pool_startup_seconds``, so the measured crossover is their ratio
(:meth:`EventCostModel.crossover_events`).  Results are bit-identical
either way -- the crossover is purely a wall-clock decision -- so a bad
measurement can only waste time, never change an answer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.arch.specs import GpuSpec, GTX285
from repro.hw.cluster import ClusterSimulator
from repro.hw.config import HwConfig
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.pool import map_tasks
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.tune.profile import BUILTIN_DEFAULTS

#: Probe sizing: enough replayed events to swamp timer resolution while
#: keeping one probe run in the low tens of milliseconds.
PROBE_TARGET_EVENTS = 30_000

#: Inner-loop trips of the probe kernel (events per warp ~ 3 * inner).
PROBE_INNER = 32

#: Threads per probe block (2 warps -- the paper's small-block style).
PROBE_THREADS = 64


@dataclass(frozen=True)
class EventCostModel:
    """Measured costs governing the serial/pool crossover.

    ``probe_events``/``probe_seconds`` record the raw measurement the
    per-event cost came from (surfaced by ``repro tune show``).
    """

    seconds_per_event: float
    pool_startup_seconds: float
    probe_events: int
    probe_seconds: float

    def crossover_events(self, workers: int) -> int:
        """Events above which a ``workers``-wide pool beats serial.

        ``workers <= 1`` never builds a pool, so the crossover is moot
        and the built-in default is returned unchanged; degenerate
        measurements (zero or negative savings) likewise fail open to
        the default rather than inventing a crossover.
        """
        if workers <= 1:
            return BUILTIN_DEFAULTS["min_parallel_events"]
        saving = self.seconds_per_event * (1.0 - 1.0 / workers)
        if saving <= 0.0:
            return BUILTIN_DEFAULTS["min_parallel_events"]
        return max(1, math.ceil(self.pool_startup_seconds / saving))


def _probe_work(spec: GpuSpec):
    """Event streams of one probe block (a small streaming kernel)."""
    n = PROBE_THREADS
    gmem = GlobalMemory()
    buf = gmem.alloc(n, "probe")
    b = KernelBuilder("tune_probe", params=("buf",))
    addr = b.reg()
    b.imad(addr, b.tid, Imm(4), b.param("buf"))
    acc = b.reg()
    b.mov(acc, Imm(0.0))
    v = b.reg()
    with b.counted_loop(PROBE_INNER):
        b.ldg(v, addr)
        b.fmad(acc, v, v, acc)
        b.fmad(acc, v, acc, acc)
    b.stg(addr, acc)
    b.exit()
    launch = LaunchConfig(
        grid=(1, 1), block_threads=PROBE_THREADS, params={"buf": buf}
    )
    trace = FunctionalSimulator(
        b.build(), gmem=gmem, spec=spec, grid_batch_blocks=1
    ).run_block(launch, (0, 0))
    return trace.warp_streams


def _noop_task(value):
    """Module-level (picklable) trivial pool task."""
    return value


def measure_event_costs(
    spec: GpuSpec = GTX285,
    config: HwConfig | None = None,
    repeats: int = 3,
    pool_workers: int = 2,
) -> EventCostModel:
    """Time the two sides of the crossover on this machine.

    Both measurements take the best of ``repeats`` runs (minimum: the
    least-interfered sample estimates the intrinsic cost).
    """
    repeats = max(1, int(repeats))
    work = _probe_work(spec)
    events_per_block = sum(len(stream) for stream in work)
    per_sm = max(1, PROBE_TARGET_EVENTS // max(1, events_per_block * 3))
    queues = [[work] * per_sm for _ in range(spec.sms_per_cluster)]

    best_seconds = math.inf
    events = 0
    for _ in range(repeats):
        simulator = ClusterSimulator(spec, config, use_cache=False)
        started = time.perf_counter()
        result = simulator.run([list(q) for q in queues], per_sm)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
        events = result.events

    startup = math.inf
    tasks = list(range(max(2, pool_workers)))
    for _ in range(repeats):
        started = time.perf_counter()
        map_tasks(
            tasks,
            max(2, pool_workers),
            serial_fn=_noop_task,
            worker_fn=_noop_task,
        )
        startup = min(startup, time.perf_counter() - started)

    return EventCostModel(
        seconds_per_event=best_seconds / max(1, events),
        pool_startup_seconds=startup,
        probe_events=events,
        probe_seconds=best_seconds,
    )


def tune_min_parallel_events(
    spec: GpuSpec = GTX285,
    config: HwConfig | None = None,
    workers_counts: tuple[int, ...] = (2, 4, 8),
    repeats: int = 3,
) -> tuple[EventCostModel, dict]:
    """Measured crossovers per pool width, for the tuning profile."""
    cost = measure_event_costs(spec, config, repeats=repeats)
    crossovers = {
        int(w): cost.crossover_events(int(w))
        for w in sorted(set(workers_counts))
        if int(w) > 1
    }
    return cost, crossovers
