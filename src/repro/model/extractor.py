"""Info extractor: dynamic traces -> performance-model inputs.

This is the box of the paper's Fig. 1 that turns Barra's dynamic
instruction counts into "number of instructions of each type, shared
memory transactions, and global memory transactions", split by the
synchronization stages the program's barriers define.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.occupancy import Occupancy
from repro.arch.specs import GpuSpec, GTX285
from repro.errors import ModelError
from repro.sim.functional import LaunchConfig
from repro.sim.trace import KernelTrace, StageStats


@dataclass(frozen=True)
class StageInputs:
    """Everything the component models need about one stage."""

    index: int
    instr_by_type: dict[str, int]
    mad_instructions: int
    shared_transactions: int
    shared_transactions_ideal: int
    global_transactions: dict[int, int]
    global_bytes: dict[int, int]
    global_useful_bytes: int
    global_requests: int
    active_warps_per_block: int

    @property
    def total_instructions(self) -> int:
        return sum(self.instr_by_type.values())

    @property
    def computational_density(self) -> float:
        total = self.total_instructions
        return self.mad_instructions / total if total else 0.0

    @property
    def bank_conflict_factor(self) -> float:
        if not self.shared_transactions_ideal:
            return 1.0
        return self.shared_transactions / self.shared_transactions_ideal


@dataclass(frozen=True)
class ModelInputs:
    """Per-stage statistics plus the launch/occupancy context."""

    stages: tuple[StageInputs, ...]
    num_blocks: int
    threads_per_block: int
    blocks_per_sm: int
    warps_per_block: int
    granularity: int = 32

    @property
    def serialized(self) -> bool:
        """Stages serialize when only one block fits per SM (paper §3)."""
        return self.blocks_per_sm == 1

    def active_warps_per_sm(self, stage: StageInputs, max_warps: int = 32) -> int:
        warps = stage.active_warps_per_block * self.blocks_per_sm
        return max(1, min(warps, max_warps))

    @property
    def totals(self) -> StageInputs:
        """All stages merged (for whole-program diagnostics)."""
        merged = _empty_stage(0)
        for stage in self.stages:
            merged = _merge(merged, stage)
        return merged


def _empty_stage(index: int) -> StageInputs:
    return StageInputs(
        index=index,
        instr_by_type={"I": 0, "II": 0, "III": 0, "IV": 0},
        mad_instructions=0,
        shared_transactions=0,
        shared_transactions_ideal=0,
        global_transactions={},
        global_bytes={},
        global_useful_bytes=0,
        global_requests=0,
        active_warps_per_block=0,
    )


def _merge(a: StageInputs, b: StageInputs) -> StageInputs:
    return StageInputs(
        index=a.index,
        instr_by_type={
            k: a.instr_by_type.get(k, 0) + b.instr_by_type.get(k, 0)
            for k in set(a.instr_by_type) | set(b.instr_by_type)
        },
        mad_instructions=a.mad_instructions + b.mad_instructions,
        shared_transactions=a.shared_transactions + b.shared_transactions,
        shared_transactions_ideal=(
            a.shared_transactions_ideal + b.shared_transactions_ideal
        ),
        global_transactions={
            g: a.global_transactions.get(g, 0) + b.global_transactions.get(g, 0)
            for g in set(a.global_transactions) | set(b.global_transactions)
        },
        global_bytes={
            g: a.global_bytes.get(g, 0) + b.global_bytes.get(g, 0)
            for g in set(a.global_bytes) | set(b.global_bytes)
        },
        global_useful_bytes=a.global_useful_bytes + b.global_useful_bytes,
        global_requests=a.global_requests + b.global_requests,
        active_warps_per_block=max(
            a.active_warps_per_block, b.active_warps_per_block
        ),
    )


def _stage_inputs(index: int, stats: StageStats) -> StageInputs:
    return StageInputs(
        index=index,
        instr_by_type=dict(stats.instr_by_type),
        mad_instructions=stats.mad_instructions,
        shared_transactions=stats.shared_transactions,
        shared_transactions_ideal=stats.shared_transactions_ideal,
        global_transactions=dict(stats.global_transactions),
        global_bytes=dict(stats.global_bytes),
        global_useful_bytes=stats.global_useful_bytes,
        global_requests=stats.global_requests,
        active_warps_per_block=max(stats.active_warps, 1),
    )


def extract_inputs(
    trace: KernelTrace,
    launch: LaunchConfig,
    occupancy: Occupancy,
    spec: GpuSpec = GTX285,
    granularity: int = 32,
) -> ModelInputs:
    """Build model inputs from an aggregated dynamic trace."""
    if not trace.stages:
        raise ModelError("trace has no stages")
    stages = tuple(
        _stage_inputs(i, stats) for i, stats in enumerate(trace.stages)
    )
    for stage in stages:
        if stage.global_requests and granularity not in stage.global_bytes:
            raise ModelError(
                f"trace lacks coalescing data at {granularity}-byte granularity"
            )
    return ModelInputs(
        stages=stages,
        num_blocks=trace.num_blocks,
        threads_per_block=launch.block_threads,
        blocks_per_sm=occupancy.blocks_per_sm,
        warps_per_block=occupancy.warps_per_block,
        granularity=granularity,
    )


def with_granularity(inputs: ModelInputs, granularity: int) -> ModelInputs:
    """Re-target the model at a different transaction granularity.

    Requires the functional run to have recorded that granularity
    (``LaunchConfig.granularities``) -- the paper's Fig. 11 what-if.
    """
    for stage in inputs.stages:
        if stage.global_requests and granularity not in stage.global_bytes:
            raise ModelError(
                f"no coalescing data at {granularity} bytes; re-run the "
                "functional simulation with this granularity enabled"
            )
    return replace(inputs, granularity=granularity)


def without_bank_conflicts(inputs: ModelInputs) -> ModelInputs:
    """Replace shared transactions by their conflict-free counts.

    Predicts the benefit of removing bank conflicts *before* writing the
    padded kernel -- exactly how the paper motivates CR-NBC (Fig. 6b).
    """
    stages = tuple(
        replace(stage, shared_transactions=stage.shared_transactions_ideal)
        for stage in inputs.stages
    )
    return replace(inputs, stages=stages)


def with_blocks_per_sm(inputs: ModelInputs, blocks_per_sm: int) -> ModelInputs:
    """Re-evaluate with a different resident-block count (what-if)."""
    if blocks_per_sm < 1:
        raise ModelError("blocks_per_sm must be at least 1")
    return replace(inputs, blocks_per_sm=blocks_per_sm)
