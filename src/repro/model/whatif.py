"""What-if analyses: predicted benefit of program/architecture changes.

This is the headline use of the paper's model: "foresee the benefit of
removing a certain bottleneck in a quantitative way" before writing any
code, and evaluate architectural improvements (hardware resource
allocation, avoiding bank conflicts, block scheduling, and memory
transaction granularity) against real workloads.

Every predictor here varies *one* knob of the current architecture;
swapping the whole architecture (predicting a kernel on a different
registered generation) is the job of :mod:`repro.model.crossval`,
which generalizes this machinery into a held-out validation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.occupancy import KernelResources, compute_occupancy
from repro.errors import ModelError
from repro.model.extractor import (
    ModelInputs,
    with_blocks_per_sm,
    with_granularity,
    without_bank_conflicts,
)
from repro.model.performance import PerformanceModel
from repro.model.report import PerformanceReport


@dataclass(frozen=True)
class WhatIfResult:
    """Baseline versus hypothetical analysis."""

    description: str
    baseline: PerformanceReport
    modified: PerformanceReport

    @property
    def speedup(self) -> float:
        """Baseline over hypothetical time; raises on degenerate inputs."""
        if self.baseline.predicted_seconds <= 0:
            raise ModelError("baseline time is non-positive")
        if self.modified.predicted_seconds <= 0:
            raise ModelError("hypothetical time is non-positive")
        return self.baseline.predicted_seconds / self.modified.predicted_seconds

    def render(self) -> str:
        """One-line summary; raises ModelError on degenerate predictions.

        The speedup is evaluated before any text is assembled so a
        degenerate result raises cleanly instead of emitting a
        half-formatted line.
        """
        speedup = self.speedup
        return (
            f"{self.description}: {self.baseline.predicted_milliseconds:.4f} ms "
            f"-> {self.modified.predicted_milliseconds:.4f} ms "
            f"({speedup:.2f}x, bottleneck {self.baseline.bottleneck} "
            f"-> {self.modified.bottleneck})"
        )


def _compare(
    model: PerformanceModel, inputs: ModelInputs, modified: ModelInputs, text: str
) -> WhatIfResult:
    return WhatIfResult(
        description=text,
        baseline=model.analyze_inputs(inputs),
        modified=model.analyze_inputs(modified),
    )


def predict_without_bank_conflicts(
    model: PerformanceModel, inputs: ModelInputs
) -> WhatIfResult:
    """Remove all shared-memory bank conflicts (padding / prime banks).

    The program-level version is the paper's CR padding (Section 5.2);
    the architecture-level version is its "prime number of banks"
    suggestion -- both collapse shared transactions to conflict-free.
    """
    return _compare(
        model,
        inputs,
        without_bank_conflicts(inputs),
        "remove shared-memory bank conflicts",
    )


def predict_with_granularity(
    model: PerformanceModel, inputs: ModelInputs, granularity: int
) -> WhatIfResult:
    """Change the hardware memory-transaction granularity (Fig. 11)."""
    return _compare(
        model,
        inputs,
        with_granularity(inputs, granularity),
        f"memory transaction granularity of {granularity} bytes",
    )


def predict_with_max_blocks(
    model: PerformanceModel,
    inputs: ModelInputs,
    resources: KernelResources,
    max_blocks: int,
) -> WhatIfResult:
    """Raise the resident-block ceiling (paper Section 5.1 suggestion).

    "If the maximum number of blocks was increased to 16 (without
    changing any other resources), there would be more resident parallel
    warps to achieve better instruction and shared memory throughput."
    """
    spec = model.spec.with_sm(max_blocks=max_blocks)
    occupancy = compute_occupancy(spec, resources)
    return _compare(
        model,
        inputs,
        with_blocks_per_sm(inputs, occupancy.blocks_per_sm),
        f"max resident blocks raised to {max_blocks}",
    )


def predict_with_resources(
    model: PerformanceModel,
    inputs: ModelInputs,
    resources: KernelResources,
    register_scale: float = 1.0,
    shared_scale: float = 1.0,
) -> WhatIfResult:
    """Scale the SM register file / shared memory (Section 5.1).

    "If we increase the register and shared memory resources per
    multiprocessor, we can fit more warps onto a multiprocessor."
    """
    spec = model.spec.with_sm(
        registers=int(model.spec.sm.registers * register_scale),
        shared_memory_bytes=int(
            model.spec.sm.shared_memory_bytes * shared_scale
        ),
    )
    occupancy = compute_occupancy(spec, resources)
    return _compare(
        model,
        inputs,
        with_blocks_per_sm(inputs, occupancy.blocks_per_sm),
        f"register file x{register_scale:g}, shared memory x{shared_scale:g}",
    )


def predict_with_early_resource_release(
    model: PerformanceModel, inputs: ModelInputs, extra_blocks: int = 1
) -> WhatIfResult:
    """Schedule more blocks as a block's threads retire (Section 5.2).

    The paper suggests "a mechanism to release unused hardware resources
    early as a block uses fewer and fewer threads", letting subsequent
    blocks raise warp-level parallelism in the late, narrow stages of
    cyclic reduction.
    """
    return _compare(
        model,
        inputs,
        with_blocks_per_sm(inputs, inputs.blocks_per_sm + extra_blocks),
        f"early resource release ({extra_blocks} extra resident block(s))",
    )
