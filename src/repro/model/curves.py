"""Throughput curves interpolated from microbenchmark tables.

The model evaluates instruction throughput and shared bandwidth *at the
program's warp-level parallelism* (paper Sections 4.1-4.2).  Warp counts
between measured points are piecewise-linearly interpolated; outside the
measured range the curve clamps to its end values.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.micro.calibration import CalibrationTables
from repro.sim.trace import TYPE_NAMES


@dataclass(frozen=True)
class ThroughputCurve:
    """A monotone-x piecewise-linear curve (warps -> rate)."""

    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or not self.xs:
            raise CalibrationError("curve needs matching, non-empty samples")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise CalibrationError("curve x values must strictly increase")

    def at(self, x: float) -> float:
        """Interpolated rate at ``x`` (clamped to the sampled range)."""
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        hi = bisect_left(xs, x)
        lo = hi - 1
        t = (x - xs[lo]) / (xs[hi] - xs[lo])
        return ys[lo] + t * (ys[hi] - ys[lo])

    @property
    def peak(self) -> float:
        return max(self.ys)

    def saturation_x(self, fraction: float = 0.95) -> float:
        """Smallest sampled x reaching ``fraction`` of the peak."""
        target = fraction * self.peak
        for x, y in zip(self.xs, self.ys):
            if y >= target:
                return x
        return self.xs[-1]


def instruction_curves(
    tables: CalibrationTables,
) -> dict[str, ThroughputCurve]:
    """Per-type instruction throughput curves in warp-instructions/s."""
    table = tables.instruction
    xs = tuple(float(w) for w in table.warp_counts)
    return {
        name: ThroughputCurve(xs, tuple(v * 1e9 for v in table.throughput[name]))
        for name in TYPE_NAMES
    }


def shared_curve(tables: CalibrationTables) -> ThroughputCurve:
    """Shared bandwidth curve in transaction-bytes/s."""
    table = tables.shared
    xs = tuple(float(w) for w in table.warp_counts)
    return ThroughputCurve(xs, tuple(table.bandwidth))
