"""Cross-GPU validation: held-out prediction over the spec registry.

This generalizes the single-machine what-if machinery
(:mod:`repro.model.whatif`) from "this GPU with one knob turned" to
"a different GPU entirely": predict every kernel-zoo workload on a
registered architecture (:mod:`repro.arch.registry`) using a model
that was *calibrated on a different one*, then score the prediction
against the timing simulator's ground truth on the held-out spec.

Two predictors are compared per (kernel, target) pair:

* **analytical** -- the paper's model, re-parameterized: dynamic
  program statistics are re-traced on the target spec (its bank count,
  transaction segments and occupancy ceilings), and the source spec's
  calibration tables are *transferred* by scaling each throughput
  curve with the ratio of spec-sheet peaks
  (:func:`transfer_tables`); and
* **scaling** -- the trivial peak-ratio extrapolation practitioners
  reach for first: the kernel's measured time on the source machine
  scaled by the compute-peak ratio (``t_target = t_source *
  peak_gflops_source / peak_gflops_target``), blind to what actually
  bottlenecks the kernel.

Errors are relative to the held-out measurement
(``|predicted - measured| / measured``, the paper's own metric); the
report aggregates the mean absolute relative error per spec, per
kernel, and overall.  Everything is deterministic -- the simulators
use hash-based jitter -- so the JSON artifact (``BENCH_crossval.json``
in CI) is byte-stable for a given registry and kernel zoo.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.arch.registry import (
    BASELINE,
    default_source_for,
    get_entry,
    spec_names,
)
from repro.arch.specs import GpuSpec
from repro.errors import ModelError, SpecError
from repro.hw.gpu import HardwareGpu
from repro.micro.cache import load_or_calibrate
from repro.micro.calibration import CalibrationTables, calibrate
from repro.micro.globalmem import GlobalBenchmarkResult
from repro.micro.instruction import InstructionThroughputTable
from repro.micro.shared import SharedBandwidthTable
from repro.model.performance import PerformanceModel
from repro.sim.trace import TYPE_NAMES

#: Schema tag of the JSON artifact (BENCH_crossval.json).
CROSSVAL_SCHEMA = "crossval/1"


def _effective_global_bandwidth(spec: GpuSpec) -> float:
    """Sustainable global bandwidth: theoretical peak derated by DRAM."""
    return spec.memory.peak_bandwidth * spec.memory.dram_efficiency


class TransferredTables(CalibrationTables):
    """Calibration measured on one spec, rescaled to another.

    The transfer assumes each throughput curve keeps its *shape* in
    warp-parallelism (the saturation knee is set by pipeline depth,
    which the stand-in silicon shares across generations) while its
    *ceiling* moves with the spec-sheet peak:

    * instruction curves scale per type by the ratio of
      ``peak_instruction_throughput`` (units x clock x SMs);
    * the shared-bandwidth curve scales by the ratio of
      ``peak_shared_bandwidth``;
    * synthetic global benchmarks run on the source hardware and their
      times are scaled by the ratio of efficiency-derated global
      bandwidth.

    Warp counts beyond the source sweep clamp at the scaled saturated
    value (the curves are already flat there).
    """

    def __init__(
        self, base: CalibrationTables, source: GpuSpec, target: GpuSpec
    ) -> None:
        ratios = {
            name: (
                target.peak_instruction_throughput(name)
                / source.peak_instruction_throughput(name)
            )
            for name in TYPE_NAMES
        }
        instruction = InstructionThroughputTable(
            base.instruction.warp_counts,
            {
                name: tuple(
                    value * ratios[name]
                    for value in base.instruction.throughput[name]
                )
                for name in TYPE_NAMES
            },
        )
        shared_ratio = (
            target.peak_shared_bandwidth / source.peak_shared_bandwidth
        )
        shared = SharedBandwidthTable(
            base.shared.warp_counts,
            tuple(value * shared_ratio for value in base.shared.bandwidth),
        )
        super().__init__(instruction=instruction, shared=shared, gpu=base.gpu)
        self._base = base
        self._global_ratio = _effective_global_bandwidth(
            target
        ) / _effective_global_bandwidth(source)

    def global_benchmark(
        self, num_blocks: int, threads_per_block: int, loads_per_thread: int
    ) -> GlobalBenchmarkResult:
        """Source-hardware synthetic run with bandwidth-scaled time."""
        result = self._base.global_benchmark(
            num_blocks, threads_per_block, loads_per_thread
        )
        return dataclasses.replace(
            result, seconds=result.seconds / self._global_ratio
        )


def transfer_tables(
    tables: CalibrationTables,
    target: GpuSpec,
    source: GpuSpec | None = None,
) -> TransferredTables:
    """Rescale calibration tables from ``source`` to ``target``.

    ``source=None`` reads the source spec off the tables' hardware
    handle.  Transferring a spec onto itself is the identity (all
    ratios are 1), which the tests pin down.
    """
    if source is None:
        if tables.gpu is None:
            raise ModelError(
                "calibration tables carry no hardware handle; pass the "
                "source spec explicitly"
            )
        source = tables.gpu.spec
    return TransferredTables(tables, source, target)


# ----------------------------------------------------------------------
# Predictions and the report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrossPrediction:
    """One kernel predicted on one held-out spec."""

    kernel: str
    target: str  # spec predicted on (never calibrated against)
    source: str  # spec the model was calibrated on
    measured_seconds: float  # timing-simulator ground truth on target
    analytical_seconds: float  # transferred analytical model
    scaling_seconds: float  # peak-ratio extrapolation baseline
    bottleneck: str  # analytical model's verdict on the target

    def _relative(self, predicted: float) -> float:
        if self.measured_seconds <= 0:
            raise ModelError(
                f"non-positive measurement for {self.kernel} on {self.target}"
            )
        return abs(predicted - self.measured_seconds) / self.measured_seconds

    @property
    def analytical_error(self) -> float:
        """|analytical - measured| / measured (the paper's metric)."""
        return self._relative(self.analytical_seconds)

    @property
    def scaling_error(self) -> float:
        """|scaling - measured| / measured."""
        return self._relative(self.scaling_seconds)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "target": self.target,
            "source": self.source,
            "measured_seconds": self.measured_seconds,
            "analytical_seconds": self.analytical_seconds,
            "scaling_seconds": self.scaling_seconds,
            "analytical_error": self.analytical_error,
            "scaling_error": self.scaling_error,
            "bottleneck": self.bottleneck,
        }


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class CrossValReport:
    """All held-out predictions plus aggregate error summaries."""

    baseline: str
    predictions: tuple[CrossPrediction, ...]

    @property
    def targets(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(p.target for p in self.predictions))

    @property
    def kernels(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(p.kernel for p in self.predictions))

    def _group_errors(self, key) -> dict[str, dict[str, float]]:
        groups: dict[str, list[CrossPrediction]] = {}
        for prediction in self.predictions:
            groups.setdefault(key(prediction), []).append(prediction)
        return {
            name: {
                "analytical": _mean([p.analytical_error for p in members]),
                "scaling": _mean([p.scaling_error for p in members]),
            }
            for name, members in sorted(groups.items())
        }

    def errors_by_spec(self) -> dict[str, dict[str, float]]:
        """Mean absolute relative error per target spec."""
        return self._group_errors(lambda p: p.target)

    def errors_by_kernel(self) -> dict[str, dict[str, float]]:
        """Mean absolute relative error per kernel."""
        return self._group_errors(lambda p: p.kernel)

    def summary(self) -> dict:
        """Overall means plus the analytical-vs-scaling win count."""
        wins = sum(
            1
            for p in self.predictions
            if p.analytical_error < p.scaling_error
        )
        return {
            "predictions": len(self.predictions),
            "analytical_mean_abs_rel_error": _mean(
                [p.analytical_error for p in self.predictions]
            ),
            "scaling_mean_abs_rel_error": _mean(
                [p.scaling_error for p in self.predictions]
            ),
            "analytical_wins": wins,
        }

    def to_dict(self) -> dict:
        """JSON-ready payload (``BENCH_crossval.json`` schema)."""
        ordered = sorted(
            self.predictions, key=lambda p: (p.target, p.kernel)
        )
        return {
            "schema": CROSSVAL_SCHEMA,
            "baseline": self.baseline,
            "kernels": sorted(self.kernels),
            "targets": {
                p.target: {"source": p.source} for p in ordered
            },
            "predictions": [p.to_dict() for p in ordered],
            "summary": {
                "overall": self.summary(),
                "by_spec": self.errors_by_spec(),
                "by_kernel": self.errors_by_kernel(),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable text report."""
        lines = [
            f"cross-GPU validation: {len(self.kernels)} kernels x "
            f"{len(self.targets)} held-out specs "
            f"(registry baseline: {self.baseline})",
            "",
            f"{'target':<14}{'source':<14}{'kernel':<18}"
            f"{'measured':>12}{'analytical':>12}{'err':>8}"
            f"{'scaling':>12}{'err':>8}",
        ]
        for p in sorted(self.predictions, key=lambda p: (p.target, p.kernel)):
            lines.append(
                f"{p.target:<14}{p.source:<14}{p.kernel:<18}"
                f"{p.measured_seconds * 1e3:>10.4f}ms"
                f"{p.analytical_seconds * 1e3:>10.4f}ms"
                f"{p.analytical_error:>7.0%} "
                f"{p.scaling_seconds * 1e3:>10.4f}ms"
                f"{p.scaling_error:>7.0%} "
            )
        lines.append("")
        lines.append("mean |rel error| per held-out spec (analytical | scaling):")
        for name, errors in self.errors_by_spec().items():
            lines.append(
                f"  {name:<14}{errors['analytical']:>7.1%} | "
                f"{errors['scaling']:>7.1%}"
            )
        overall = self.summary()
        lines.append(
            f"overall: analytical "
            f"{overall['analytical_mean_abs_rel_error']:.1%}, scaling "
            f"{overall['scaling_mean_abs_rel_error']:.1%} "
            f"(analytical wins {overall['analytical_wins']}"
            f"/{overall['predictions']})"
        )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown report (CI artifacts, docs)."""
        lines = [
            "# Cross-GPU validation",
            "",
            f"{len(self.kernels)} kernels x {len(self.targets)} held-out "
            f"specs; registry baseline `{self.baseline}`.  Errors are "
            "relative to the timing simulator's measurement on the "
            "held-out spec.",
            "",
            "| target | source | kernel | measured (ms) | analytical (ms) "
            "| err | scaling (ms) | err |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ]
        for p in sorted(self.predictions, key=lambda p: (p.target, p.kernel)):
            lines.append(
                f"| `{p.target}` | `{p.source}` | {p.kernel} "
                f"| {p.measured_seconds * 1e3:.4f} "
                f"| {p.analytical_seconds * 1e3:.4f} "
                f"| {p.analytical_error:.0%} "
                f"| {p.scaling_seconds * 1e3:.4f} "
                f"| {p.scaling_error:.0%} |"
            )
        lines += [
            "",
            "| held-out spec | analytical mean err | scaling mean err |",
            "| --- | --- | --- |",
        ]
        for name, errors in self.errors_by_spec().items():
            lines.append(
                f"| `{name}` | {errors['analytical']:.1%} "
                f"| {errors['scaling']:.1%} |"
            )
        overall = self.summary()
        lines += [
            "",
            f"Overall: analytical "
            f"{overall['analytical_mean_abs_rel_error']:.1%} vs scaling "
            f"{overall['scaling_mean_abs_rel_error']:.1%}; analytical "
            f"wins {overall['analytical_wins']}/{overall['predictions']}.",
            "",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def cross_validate(
    targets: tuple[str, ...] | list[str] | None = None,
    kernels: tuple[str, ...] | list[str] | None = None,
    *,
    source: str | None = None,
    warp_counts: tuple[int, ...] | None = None,
    iterations: int = 60,
    use_calibration_cache: bool = True,
    workers: int = 0,
    trace_cache: str | None = None,
    progress=None,
) -> CrossValReport:
    """Held-one-out cross-GPU validation over the registry.

    For every target spec (default: all registered), pick a *source*
    spec it was not calibrated against (``source=None`` uses
    :func:`repro.arch.registry.default_source_for`: the baseline for
    everything, and the first non-baseline spec for the baseline
    itself), calibrate on the source (per-spec cache unless
    ``use_calibration_cache=False``), then predict every kernel-zoo
    workload (default: all of ``repro analyze``'s built-in cases) on
    the target and score against the target's own measurement.

    ``warp_counts``/``iterations`` tune calibration cost (tests use
    tiny sweeps); ``workers``/``trace_cache`` are passed to the
    simulation engine.  ``progress`` is an optional callable invoked
    with one-line status strings.
    """
    # Lazy: the kernel zoo lives above the model layer (analysis ->
    # apps -> model), so importing it at module scope would be a cycle.
    from repro.analysis.report import BUILTIN_KERNELS, analysis_case
    from repro.apps.common import execute

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    target_names = tuple(targets) if targets else spec_names()
    if len(target_names) != len(set(target_names)):
        raise SpecError("duplicate target specs in crossval request")
    kernel_names = (
        tuple(kernels) if kernels else tuple(sorted(BUILTIN_KERNELS))
    )
    for name in kernel_names:
        if name not in BUILTIN_KERNELS:
            known = ", ".join(sorted(BUILTIN_KERNELS))
            raise ModelError(
                f"unknown kernel {name!r}; built-in kernels: {known}"
            )

    sources: dict[str, str] = {}
    for target in target_names:
        get_entry(target)  # raises on unknown names
        chosen = source if source is not None else default_source_for(target)
        if chosen == target:
            raise SpecError(
                f"crossval is held-out: source {chosen!r} cannot predict "
                "itself; drop it from --specs or choose another --source"
            )
        sources[target] = chosen

    specs = {
        name: get_entry(name).spec
        for name in {*target_names, *sources.values()}
    }

    tables: dict[str, CalibrationTables] = {}
    for name in sorted(set(sources.values())):
        note(f"calibrating model on source spec {name!r} ...")
        gpu = HardwareGpu(spec=specs[name])
        if use_calibration_cache:
            tables[name] = load_or_calibrate(
                gpu, warp_counts=warp_counts, iterations=iterations
            )
        else:
            tables[name] = calibrate(
                gpu, warp_counts=warp_counts, iterations=iterations
            )

    runs: dict[tuple[str, str], object] = {}

    def run_on(kernel_name: str, spec_name: str):
        """Trace + measure a zoo kernel on one spec (memoized)."""
        key = (kernel_name, spec_name)
        if key not in runs:
            note(f"running {kernel_name} on {spec_name} ...")
            # A fresh case per run: kernels store into their problem
            # arrays, so sharing one memory image across specs would
            # leak one run's outputs into the next run's inputs.
            case = analysis_case(kernel_name)
            runs[key] = execute(
                name=kernel_name,
                kernel=case.kernel,
                gmem=case.gmem,
                launch=case.launch,
                spec=specs[spec_name],
                model=None,
                measure=True,
                workers=workers,
                trace_cache=trace_cache,
            )
        return runs[key]

    from repro import obs

    predictions: list[CrossPrediction] = []
    for target in target_names:
        source_name = sources[target]
        target_spec = specs[target]
        source_spec = specs[source_name]
        model = PerformanceModel(
            transfer_tables(
                tables[source_name], target_spec, source=source_spec
            ),
            spec=target_spec,
        )
        peak_ratio = source_spec.peak_gflops / target_spec.peak_gflops
        for kernel_name in kernel_names:
            with obs.span(
                "crossval.predict",
                kernel=kernel_name,
                target=target,
                source=source_name,
            ):
                target_run = run_on(kernel_name, target)
                source_run = run_on(kernel_name, source_name)
                report = model.analyze(
                    target_run.trace,
                    target_run.launch,
                    target_run.resources,
                )
            obs.metrics.inc("crossval.predictions")
            predictions.append(
                CrossPrediction(
                    kernel=kernel_name,
                    target=target,
                    source=source_name,
                    measured_seconds=target_run.measured.seconds,
                    analytical_seconds=report.predicted_seconds,
                    scaling_seconds=source_run.measured.seconds * peak_ratio,
                    bottleneck=report.bottleneck,
                )
            )
    return CrossValReport(baseline=BASELINE, predictions=tuple(predictions))
