"""The three component models: instruction pipeline, shared, global.

Each estimates the time its architecture component spends on one stage
(paper Section 3): the instruction pipeline as a linear combination of
per-type costs at the stage's warp parallelism, shared memory as
conflict-corrected transactions over the bandwidth curve, and global
memory via a synthetic benchmark of the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec, GTX285
from repro.errors import ModelError
from repro.micro.calibration import CalibrationTables
from repro.micro.shared import SHARED_TRANSACTION_BYTES
from repro.model.curves import ThroughputCurve, instruction_curves, shared_curve
from repro.model.extractor import ModelInputs, StageInputs

#: Component names, in the paper's order.
COMPONENTS = ("instruction", "shared", "global")


@dataclass(frozen=True)
class ComponentTimes:
    """Seconds spent in each component (for one stage or a program)."""

    instruction: float
    shared: float
    global_: float

    @property
    def bottleneck(self) -> str:
        values = {
            "instruction": self.instruction,
            "shared": self.shared,
            "global": self.global_,
        }
        return max(values, key=values.get)

    @property
    def bottleneck_time(self) -> float:
        return max(self.instruction, self.shared, self.global_)

    def get(self, name: str) -> float:
        if name == "instruction":
            return self.instruction
        if name == "shared":
            return self.shared
        if name == "global":
            return self.global_
        raise ModelError(f"unknown component {name!r}")

    def next_bottleneck(self) -> str:
        """The component that binds once the current bottleneck is removed."""
        order = sorted(
            ("instruction", "shared", "global"), key=self.get, reverse=True
        )
        return order[1]

    def __add__(self, other: "ComponentTimes") -> "ComponentTimes":
        return ComponentTimes(
            self.instruction + other.instruction,
            self.shared + other.shared,
            self.global_ + other.global_,
        )


ZERO_TIMES = ComponentTimes(0.0, 0.0, 0.0)


class InstructionPipelineModel:
    """Time = sum over types of count / throughput(warps)."""

    def __init__(self, curves: dict[str, ThroughputCurve]) -> None:
        self.curves = curves

    def stage_time(self, stage: StageInputs, warps: int) -> float:
        total = 0.0
        for type_name, count in stage.instr_by_type.items():
            if not count:
                continue
            rate = self.curves[type_name].at(warps)
            if rate <= 0:
                raise ModelError(f"non-positive throughput for type {type_name}")
            total += count / rate
        return total


class SharedMemoryModel:
    """Time = conflict-corrected transactions * 64 B / bandwidth(warps)."""

    def __init__(self, curve: ThroughputCurve) -> None:
        self.curve = curve

    def stage_time(self, stage: StageInputs, warps: int) -> float:
        if not stage.shared_transactions:
            return 0.0
        bandwidth = self.curve.at(warps)
        if bandwidth <= 0:
            raise ModelError("non-positive shared bandwidth")
        return stage.shared_transactions * SHARED_TRANSACTION_BYTES / bandwidth


class GlobalMemoryModel:
    """Time from a synthetic benchmark of the same configuration.

    The synthetic run (same blocks, block size, and per-thread request
    count) yields a byte rate; the stage's coalesced transaction bytes
    divided by that rate is the stage's global-memory time.
    """

    def __init__(self, tables: CalibrationTables) -> None:
        self.tables = tables

    def stage_time(self, stage: StageInputs, inputs: ModelInputs) -> float:
        nbytes = stage.global_bytes.get(inputs.granularity, 0)
        if not nbytes:
            return 0.0
        # The synthetic benchmark mirrors the *program's* configuration
        # (blocks, block size, transactions per thread -- paper §4.3):
        # stages overlap across blocks, so the memory system sees the
        # whole request stream, not one stage's slice of it.
        totals = inputs.totals
        total_threads = inputs.num_blocks * inputs.threads_per_block
        requests_per_thread = max(
            1, round(totals.global_requests * 32 / total_threads)
        )
        # Beyond ~15 waves the synthetic rate is flat in block count, so
        # large grids reuse a 120-block measurement (keeps calibration
        # cheap without changing the estimate).
        synthetic = self.tables.global_benchmark(
            min(inputs.num_blocks, 120),
            inputs.threads_per_block,
            min(requests_per_thread, 512),
        )
        return nbytes / synthetic.byte_rate


class ComponentModels:
    """Bundle of the three component models built from calibration."""

    def __init__(
        self, tables: CalibrationTables, spec: GpuSpec = GTX285
    ) -> None:
        self.spec = spec
        self.instruction = InstructionPipelineModel(instruction_curves(tables))
        self.shared = SharedMemoryModel(shared_curve(tables))
        self.global_ = GlobalMemoryModel(tables)

    def stage_times(
        self, stage: StageInputs, inputs: ModelInputs
    ) -> ComponentTimes:
        warps = inputs.active_warps_per_sm(stage, self.spec.sm.max_warps)
        return ComponentTimes(
            instruction=self.instruction.stage_time(stage, warps),
            shared=self.shared.stage_time(stage, warps),
            global_=self.global_.stage_time(stage, inputs),
        )
