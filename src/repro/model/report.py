"""Performance reports: the workflow's outputs (paper Fig. 1, right).

A report carries exactly what the paper's tool reports to programmers
and architects: runtime prediction for each component, the bottleneck
component, instruction/memory throughput, the instruction time
breakdown, computational density, coalescing efficiency, bank-conflict
penalty, and warps per SM -- plus the cause diagnosis of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.specs import GpuSpec, GTX285
from repro.micro.calibration import CalibrationTables
from repro.model.components import ComponentTimes
from repro.model.extractor import ModelInputs, StageInputs


@dataclass(frozen=True)
class StageAnalysis:
    """Model verdict for one synchronization stage."""

    index: int
    times: ComponentTimes
    bottleneck: str
    active_warps: int
    inputs: StageInputs


@dataclass(frozen=True)
class Diagnostics:
    """Quantitative causes behind a bottleneck (paper Section 3)."""

    computational_density: float
    expensive_instruction_fraction: float
    bank_conflict_factor: float
    coalescing_efficiency: float
    warps_per_sm: int
    instruction_saturation_warps: int
    shared_saturation_warps: int
    causes: tuple[str, ...]


@dataclass(frozen=True)
class PerformanceReport:
    """Everything the model concludes about one kernel launch.

    ``engine_stats`` is present when the trace came through the
    simulation engine (:mod:`repro.sim.engine`): how many blocks were
    actually simulated vs replicated, and whether the on-disk trace
    cache hit -- so the engine's speedups are observable in reports.

    ``cache_provenance`` maps each cache a run consulted (``trace``,
    ``measured``, ``calibration``) to how it answered: ``"hit"`` when
    the artifact was replayed from disk, ``"cold"`` when it was
    computed this run, ``"off"`` when that cache was not configured.
    Absent (``None``) when the caller did not assemble provenance.
    """

    stages: tuple[StageAnalysis, ...]
    serialized: bool
    component_totals: ComponentTimes
    predicted_seconds: float
    bottleneck: str
    inputs: ModelInputs
    diagnostics: Diagnostics
    engine_stats: object | None = None
    cache_provenance: dict | None = None

    @property
    def predicted_milliseconds(self) -> float:
        return self.predicted_seconds * 1e3

    @property
    def next_bottleneck(self) -> str:
        """What would bind if the current bottleneck were removed."""
        return self.component_totals.next_bottleneck()

    def error_against(self, measured_seconds: float) -> float:
        """Relative model error versus a measurement (paper's 5-15%)."""
        return abs(self.predicted_seconds - measured_seconds) / measured_seconds

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"predicted time       : {self.predicted_milliseconds:.4f} ms",
            f"bottleneck           : {self.bottleneck}"
            + (" (per-stage serialization)" if self.serialized else ""),
            f"next bottleneck      : {self.next_bottleneck}",
            "component totals (ms): "
            f"instruction {self.component_totals.instruction * 1e3:.4f} | "
            f"shared {self.component_totals.shared * 1e3:.4f} | "
            f"global {self.component_totals.global_ * 1e3:.4f}",
            f"computational density: {self.diagnostics.computational_density:.1%}",
            f"bank conflict factor : {self.diagnostics.bank_conflict_factor:.2f}x",
            f"coalescing efficiency: {self.diagnostics.coalescing_efficiency:.1%}",
            f"warps per SM         : {self.diagnostics.warps_per_sm}",
        ]
        if self.engine_stats is not None:
            lines.append(f"engine               : {self.engine_stats.summary()}")
            health = getattr(self.engine_stats, "health", None)
            if health is not None and health.degraded:
                lines.append(f"degraded             : {health.summary()}")
        if self.cache_provenance:
            rendered = " | ".join(
                f"{kind} {state}"
                for kind, state in sorted(self.cache_provenance.items())
            )
            lines.append(f"caches               : {rendered}")
        if self.diagnostics.causes:
            lines.append("causes:")
            lines.extend(f"  - {cause}" for cause in self.diagnostics.causes)
        if self.serialized and len(self.stages) > 1:
            lines.append("per-stage breakdown (ms, bottleneck starred):")
            for stage in self.stages:
                marks = {
                    name: ("*" if stage.bottleneck == name else " ")
                    for name in ("instruction", "shared", "global")
                }
                lines.append(
                    f"  stage {stage.index:2d} [{stage.active_warps:2d} warps] "
                    f"instr {stage.times.instruction * 1e3:.4f}{marks['instruction']} "
                    f"shared {stage.times.shared * 1e3:.4f}{marks['shared']} "
                    f"global {stage.times.global_ * 1e3:.4f}{marks['global']}"
                )
        return "\n".join(lines)


def diagnose(
    inputs: ModelInputs,
    totals: ComponentTimes,
    bottleneck: str,
    tables: CalibrationTables,
    spec: GpuSpec = GTX285,
) -> Diagnostics:
    """Derive the paper's cause lists from the model inputs."""
    merged = inputs.totals
    total_instr = merged.total_instructions
    density = merged.computational_density
    expensive = (
        (merged.instr_by_type.get("III", 0) + merged.instr_by_type.get("IV", 0))
        / total_instr
        if total_instr
        else 0.0
    )
    bank_factor = merged.bank_conflict_factor
    transferred = merged.global_bytes.get(inputs.granularity, 0)
    coalescing = (
        merged.global_useful_bytes / transferred if transferred else 1.0
    )
    warps = inputs.active_warps_per_sm(
        max(inputs.stages, key=lambda s: s.active_warps_per_block),
        spec.sm.max_warps,
    )
    instr_sat = tables.instruction.saturation_warps("II")
    shared_sat = tables.shared.saturation_warps()

    causes: list[str] = []
    if bottleneck == "instruction":
        if density < 0.5:
            causes.append(
                f"low computational density ({density:.0%} of instructions "
                "do actual computation)"
            )
        if expensive > 0.05:
            causes.append(
                f"expensive instructions ({expensive:.0%} are type III/IV, "
                "e.g. rcp/cos/log or double precision)"
            )
        if warps < instr_sat:
            causes.append(
                f"insufficient parallel warps ({warps} < {instr_sat} needed "
                "to saturate the instruction pipeline)"
            )
    elif bottleneck == "shared":
        if bank_factor > 1.05:
            causes.append(
                f"bank conflicts inflate shared traffic {bank_factor:.2f}x"
            )
        if density < 0.5 and merged.shared_transactions:
            causes.append(
                "shared-memory traffic from bookkeeping instructions"
            )
        if warps < shared_sat:
            causes.append(
                f"insufficient parallel warps ({warps} < {shared_sat} needed "
                "to saturate shared memory)"
            )
    elif bottleneck == "global":
        if warps * inputs.num_blocks < 64:
            causes.append(
                "insufficient parallelism to cover global-memory latency"
            )
        if coalescing < 0.9:
            causes.append(
                f"uncoalesced accesses / large transaction granularity "
                f"(only {coalescing:.0%} of transferred bytes are useful)"
            )
    return Diagnostics(
        computational_density=density,
        expensive_instruction_fraction=expensive,
        bank_conflict_factor=bank_factor,
        coalescing_efficiency=coalescing,
        warps_per_sm=warps,
        instruction_saturation_warps=instr_sat,
        shared_saturation_warps=shared_sat,
        causes=tuple(causes),
    )
